//! Figure experiments (Figs. 1, 2, 3, 8, 9, 10, 11, 12, 13, 14, 15).

use crate::scaled::{build_row, profile_inputs, table1_rows};
use crate::Quality;
use mokey_accel::arch::{Accelerator, ArchKind, MemCompression};
use mokey_accel::sim::{simulate, simulate_memcomp, SimConfig, SimReport};
use mokey_accel::workloads::{buffer_sweep, paper_workloads, PaperWorkload};
use mokey_core::curve::{PAPER_A, PAPER_B};
use mokey_core::golden::{GoldenConfig, GoldenDictionary};
use mokey_pipeline::{CurveSource, QuantSession};
use mokey_transformer::footprint::fig1_sweep;
use mokey_transformer::quantize::{infer_quantized_batch, QuantizeSpec, QuantizedModel};
use mokey_transformer::ModelConfig;
use serde::Serialize;

/// Fig. 1 — BERT-Large weight/activation footprint vs sequence length.
#[derive(Debug, Clone, Serialize)]
pub struct Fig01Result {
    /// Rows: (sequence length, weight MB, activation MB, activation %).
    pub rows: Vec<(usize, f64, f64, f64)>,
}

/// Runs Fig. 1 (FP16 storage, as in the paper).
pub fn fig01() -> Fig01Result {
    let rows = fig1_sweep(&ModelConfig::bert_large(), 2.0)
        .into_iter()
        .map(|(seq, fp)| {
            let mb = |b: usize| b as f64 / (1 << 20) as f64;
            (seq, mb(fp.weight_bytes), mb(fp.activation_bytes), fp.activation_percent())
        })
        .collect();
    Fig01Result { rows }
}

/// Fig. 2 — Golden Dictionary generation.
#[derive(Debug, Clone, Serialize)]
pub struct Fig02Result {
    /// Histogram of the generated N(0,1) sample (bin start, count).
    pub histogram: Vec<(f64, usize)>,
    /// The 16 symmetric dictionary centroids.
    pub centroids: Vec<f64>,
}

/// Runs Fig. 2: one Gaussian draw plus the averaged dictionary.
pub fn fig02(config: &GoldenConfig) -> Fig02Result {
    let samples = mokey_tensor::init::standard_normal_vec(config.samples, config.seed);
    let mut histogram = Vec::new();
    let bins = 40;
    let (lo, hi) = (-4.0, 4.0);
    let width = (hi - lo) / bins as f64;
    for b in 0..bins {
        let start = lo + b as f64 * width;
        let count = samples.iter().filter(|&&x| x >= start && x < start + width).count();
        histogram.push((start, count));
    }
    let gd = GoldenDictionary::generate(config);
    Fig02Result { histogram, centroids: gd.full() }
}

/// Fig. 3 — exponential fit to the Golden Dictionary.
#[derive(Debug, Clone, Serialize)]
pub struct Fig03Result {
    /// Fitted base.
    pub a: f64,
    /// Fitted offset.
    pub b: f64,
    /// The paper's published constants ([`PAPER_A`], [`PAPER_B`]).
    pub paper_a: f64,
    pub paper_b: f64,
    /// Per-index (dictionary magnitude, fitted-curve magnitude).
    pub points: Vec<(f64, f64)>,
    /// RMS residual of the fit.
    pub rms: f64,
}

/// Runs Fig. 3 through the pipeline's one-time setup stage: a session
/// with [`CurveSource::Fitted`] generates the Golden Dictionary and fits
/// the curve; the figure reports that fit against the paper constants.
pub fn fig03(config: &GoldenConfig) -> Fig03Result {
    let session = QuantSession::builder().curve_source(CurveSource::Fitted(*config)).build();
    let curve = session.curve();
    let gd = session.golden().expect("fitted curve source retains the dictionary");
    let points = gd.half().iter().enumerate().map(|(i, &m)| (m, curve.magnitude(i))).collect();
    Fig03Result {
        a: curve.a,
        b: curve.b,
        paper_a: PAPER_A,
        paper_b: PAPER_B,
        points,
        rms: curve.rms_error(gd.half()),
    }
}

/// Fig. 8 — profiling-trial stability of accuracy.
#[derive(Debug, Clone, Serialize)]
pub struct Fig08Result {
    /// W+A quantized accuracy per profiling trial.
    pub trial_scores: Vec<f64>,
    /// Mean across trials.
    pub mean: f64,
    /// Standard deviation across trials (the paper's point: ~0).
    pub std: f64,
    /// FP reference score.
    pub fp_score: f64,
}

/// Runs Fig. 8 on the scaled BERT-Base MNLI row: re-profile with a fresh
/// random batch each trial and re-measure W+A accuracy. All trials share
/// one [`QuantSession`], so the (identical) weight dictionaries are built
/// once and every subsequent trial only pays for profiling.
pub fn fig08(quality: Quality) -> Fig08Result {
    let spec = &table1_rows()[0];
    let (model, task) = build_row(spec, quality);
    let session = QuantSession::with_defaults();
    let mut trial_scores = Vec::new();
    for trial in 0..quality.profiling_trials() {
        let mut spec_t = spec.clone();
        spec_t.seed = spec.seed ^ (0x1000 + trial as u64) << 16;
        let profile = profile_inputs(&model, &spec_t, quality);
        let (qm, _) = QuantizedModel::prepare_with_session(
            &session,
            &model,
            QuantizeSpec::weights_and_activations(),
            &profile,
        )
        .expect("profiled activations are non-degenerate");
        let (outputs, _) = infer_quantized_batch(&qm, &task.inputs);
        trial_scores.push(task.score(&outputs));
    }
    let mean = trial_scores.iter().sum::<f64>() / trial_scores.len() as f64;
    let std = (trial_scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>()
        / trial_scores.len() as f64)
        .sqrt();
    Fig08Result { trial_scores, mean, std, fp_score: task.fp_score }
}

/// One cell of the simulator sweep figures.
#[derive(Debug, Clone, Serialize)]
pub struct SweepCell {
    /// Workload display name.
    pub workload: String,
    /// Buffer capacity in bytes.
    pub buffer_bytes: usize,
    /// Value (cycles, speedup, or ratio depending on the figure).
    pub value: f64,
}

/// A simulator-based figure: per-workload series plus the geometric mean.
#[derive(Debug, Clone, Serialize)]
pub struct SweepFigure {
    /// Figure id ("fig09" …).
    pub id: String,
    /// All cells.
    pub cells: Vec<SweepCell>,
    /// Geometric mean per buffer size: (buffer, geomean).
    pub geomean: Vec<(usize, f64)>,
}

impl SweepFigure {
    /// Renders the sweep as a workload × buffer table, with an optional
    /// geometric-mean row.
    pub fn to_table(
        &self,
        workload_names: &[String],
        buffers: &[usize],
        fmt: impl Fn(f64) -> String,
        with_geomean: bool,
    ) -> crate::report::Table {
        let mut table = crate::report::Table::new(
            std::iter::once("workload".to_string())
                .chain(buffers.iter().map(|&b| crate::report::fmt_bytes(b)))
                .collect(),
        );
        for name in workload_names {
            let mut cells = vec![name.clone()];
            for &b in buffers {
                let v = self
                    .cells
                    .iter()
                    .find(|c| &c.workload == name && c.buffer_bytes == b)
                    .map(|c| c.value)
                    .unwrap_or(f64::NAN);
                cells.push(fmt(v));
            }
            table.row(cells);
        }
        if with_geomean {
            let mut geo = vec!["GEOMEAN".to_string()];
            for (_, g) in &self.geomean {
                geo.push(fmt(*g));
            }
            table.row(geo);
        }
        table
    }
}

fn geomean_per_buffer(cells: &[SweepCell], buffers: &[usize]) -> Vec<(usize, f64)> {
    buffers
        .iter()
        .map(|&b| {
            let vals: Vec<f64> =
                cells.iter().filter(|c| c.buffer_bytes == b).map(|c| c.value).collect();
            let g = (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp();
            (b, g)
        })
        .collect()
}

/// The full simulation matrix backing Figs. 9–15: every workload × buffer
/// × architecture, plus the two compression modes on Tensor Cores.
#[derive(Debug, Clone)]
pub struct SimMatrix {
    workloads: Vec<PaperWorkload>,
    buffers: Vec<usize>,
    /// `(workload idx, buffer idx)` → per-arch reports.
    tc: Vec<Vec<SimReport>>,
    gobo: Vec<Vec<SimReport>>,
    mokey: Vec<Vec<SimReport>>,
    oc: Vec<Vec<SimReport>>,
    ocon: Vec<Vec<SimReport>>,
}

impl SimMatrix {
    /// Runs the complete matrix. `Quality::Quick` trims to two workloads
    /// and three buffer sizes.
    pub fn run(quality: Quality) -> Self {
        let mut workloads = paper_workloads();
        let mut buffers = buffer_sweep();
        if quality == Quality::Quick {
            workloads.truncate(2);
            buffers = vec![256 << 10, 1 << 20, 4 << 20];
        }
        let mut tc = Vec::new();
        let mut gobo = Vec::new();
        let mut mokey = Vec::new();
        let mut oc = Vec::new();
        let mut ocon = Vec::new();
        for w in &workloads {
            let gemms = w.gemms();
            let mut row_tc = Vec::new();
            let mut row_gobo = Vec::new();
            let mut row_mokey = Vec::new();
            let mut row_oc = Vec::new();
            let mut row_ocon = Vec::new();
            for &buffer in &buffers {
                row_tc.push(simulate(
                    &gemms,
                    &SimConfig::new(Accelerator::tensor_cores(), buffer).with_rates(w.rates),
                ));
                row_gobo.push(simulate(
                    &gemms,
                    &SimConfig::new(Accelerator::gobo(), buffer).with_rates(w.rates),
                ));
                row_mokey.push(simulate(
                    &gemms,
                    &SimConfig::new(Accelerator::mokey(), buffer).with_rates(w.rates),
                ));
                row_oc.push(simulate_memcomp(&gemms, buffer, MemCompression::OffChip, w.rates));
                row_ocon.push(simulate_memcomp(
                    &gemms,
                    buffer,
                    MemCompression::OffChipOnChip,
                    w.rates,
                ));
            }
            tc.push(row_tc);
            gobo.push(row_gobo);
            mokey.push(row_mokey);
            oc.push(row_oc);
            ocon.push(row_ocon);
        }
        Self { workloads, buffers, tc, gobo, mokey, oc, ocon }
    }

    /// Workload names.
    pub fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|w| w.name.clone()).collect()
    }

    /// Buffer sizes.
    pub fn buffers(&self) -> &[usize] {
        &self.buffers
    }

    /// A report by indices.
    pub fn report(&self, arch: ArchKind, wi: usize, bi: usize) -> &SimReport {
        match arch {
            ArchKind::TensorCores => &self.tc[wi][bi],
            ArchKind::Gobo => &self.gobo[wi][bi],
            ArchKind::Mokey => &self.mokey[wi][bi],
        }
    }

    /// Compression-mode report by indices.
    pub fn memcomp_report(&self, mode: MemCompression, wi: usize, bi: usize) -> &SimReport {
        match mode {
            MemCompression::OffChip => &self.oc[wi][bi],
            MemCompression::OffChipOnChip => &self.ocon[wi][bi],
            MemCompression::None => &self.tc[wi][bi],
        }
    }

    fn sweep(&self, id: &str, f: impl Fn(usize, usize) -> f64) -> SweepFigure {
        let mut cells = Vec::new();
        for (wi, w) in self.workloads.iter().enumerate() {
            for (bi, &b) in self.buffers.iter().enumerate() {
                cells.push(SweepCell {
                    workload: w.name.clone(),
                    buffer_bytes: b,
                    value: f(wi, bi),
                });
            }
        }
        let geomean = geomean_per_buffer(&cells, &self.buffers);
        SweepFigure { id: id.into(), cells, geomean }
    }

    /// Fig. 9 — baseline Tensor Cores inference cycle counts.
    pub fn fig09(&self) -> SweepFigure {
        self.sweep("fig09", |wi, bi| self.tc[wi][bi].total_cycles as f64)
    }

    /// Fig. 10 — Mokey speedup over Tensor Cores.
    pub fn fig10(&self) -> SweepFigure {
        self.sweep("fig10", |wi, bi| self.mokey[wi][bi].speedup_over(&self.tc[wi][bi]))
    }

    /// Fig. 11 — Mokey energy efficiency over Tensor Cores (energy-delay
    /// scale; see EXPERIMENTS.md for the reading of the paper's axis).
    pub fn fig11(&self) -> SweepFigure {
        self.sweep("fig11", |wi, bi| self.mokey[wi][bi].edp_ratio_over(&self.tc[wi][bi]))
    }

    /// Fig. 12 — Mokey speedup over GOBO.
    pub fn fig12(&self) -> SweepFigure {
        self.sweep("fig12", |wi, bi| self.mokey[wi][bi].speedup_over(&self.gobo[wi][bi]))
    }

    /// Fig. 13 — Mokey energy efficiency over GOBO.
    pub fn fig13(&self) -> SweepFigure {
        self.sweep("fig13", |wi, bi| self.mokey[wi][bi].edp_ratio_over(&self.gobo[wi][bi]))
    }

    /// Fig. 14 — Tensor Cores speedup with Mokey compression (per mode).
    pub fn fig14(&self, mode: MemCompression) -> SweepFigure {
        let id = match mode {
            MemCompression::OffChip => "fig14_oc",
            MemCompression::OffChipOnChip => "fig14_oc_on",
            MemCompression::None => "fig14_none",
        };
        self.sweep(id, |wi, bi| self.memcomp_report(mode, wi, bi).speedup_over(&self.tc[wi][bi]))
    }

    /// Fig. 15 — relative energy with Mokey compression (compressed /
    /// baseline; lower is better, as in the paper).
    pub fn fig15(&self, mode: MemCompression) -> SweepFigure {
        let id = match mode {
            MemCompression::OffChip => "fig15_oc",
            MemCompression::OffChipOnChip => "fig15_oc_on",
            MemCompression::None => "fig15_none",
        };
        self.sweep(id, |wi, bi| {
            self.memcomp_report(mode, wi, bi).energy.total() / self.tc[wi][bi].energy.total()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_crossover_after_512() {
        let f = fig01();
        assert_eq!(f.rows.len(), 5);
        let pct_at = |seq: usize| f.rows.iter().find(|r| r.0 == seq).unwrap().3;
        assert!(pct_at(128) < 50.0);
        assert!(pct_at(2048) > 75.0);
    }

    #[test]
    fn fig03_constants_near_paper() {
        let f = fig03(&GoldenConfig { samples: 20_000, repeats: 3, ..Default::default() });
        assert!((f.a - f.paper_a).abs() < 0.08, "a {}", f.a);
        assert!((f.b - f.paper_b).abs() < 0.25, "b {}", f.b);
        assert_eq!(f.points.len(), 8);
    }

    #[test]
    fn sim_matrix_quick_figures_have_right_shapes() {
        let m = SimMatrix::run(Quality::Quick);
        let f10 = m.fig10();
        assert_eq!(f10.cells.len(), 2 * 3);
        // Mokey speedup over TC is > 1 everywhere and larger at 256 KB
        // than at 4 MB (geomean).
        assert!(f10.cells.iter().all(|c| c.value > 1.0));
        let g = &f10.geomean;
        assert!(g.first().unwrap().1 > g.last().unwrap().1);
        // Fig. 15: compression reduces energy (ratio < 1).
        let f15 = m.fig15(MemCompression::OffChip);
        assert!(f15.cells.iter().all(|c| c.value < 1.0));
    }
}
