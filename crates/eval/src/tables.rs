//! Table experiments (Tables I, II, III, IV).

use crate::scaled::{build_row, profile_inputs, table1_rows, Table1Row};
use crate::Quality;
use mokey_accel::arch::Accelerator;
use mokey_accel::sim::{simulate, SimConfig, SimReport};
use mokey_accel::workloads::paper_workloads;
use mokey_baselines::{compression_ratio, prepare_baseline, Baseline};
use mokey_pipeline::QuantSession;
use mokey_transformer::quantize::{infer_quantized_batch, QuantizeSpec, QuantizedModel};
use mokey_transformer::ModelConfig;
use serde::Serialize;

/// Table I — the full eight-row task-performance matrix.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Result {
    /// Evaluated rows.
    pub rows: Vec<Table1Row>,
}

/// Runs Table I.
pub fn table1(quality: Quality) -> Table1Result {
    let rows =
        table1_rows().iter().map(|spec| crate::scaled::evaluate_row(spec, quality)).collect();
    Table1Result { rows }
}

/// One Table II row: architecture, units, area, cycles, energy.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Architecture name.
    pub architecture: String,
    /// Compute units.
    pub units: u64,
    /// Compute area, mm².
    pub area_mm2: f64,
    /// Total cycles on BERT-Base at the 512 KB buffer.
    pub cycles: u64,
    /// Total energy, joules.
    pub energy_j: f64,
}

/// Table II — area/cycles/energy for BERT-Base at 512 KB.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Result {
    /// TC / GOBO / Mokey rows.
    pub rows: Vec<Table2Row>,
}

/// Runs Table II.
pub fn table2() -> Table2Result {
    let workload = &paper_workloads()[0]; // BERT-Base MNLI
    let gemms = workload.gemms();
    let buffer = 512 << 10;
    let rows = [Accelerator::tensor_cores(), Accelerator::gobo(), Accelerator::mokey()]
        .into_iter()
        .map(|accel| {
            let report =
                simulate(&gemms, &SimConfig::new(accel.clone(), buffer).with_rates(workload.rates));
            Table2Row {
                architecture: accel.kind.name().into(),
                units: accel.peak_macs,
                area_mm2: accel.compute_area_mm2,
                cycles: report.total_cycles,
                energy_j: report.energy.total(),
            }
        })
        .collect();
    Table2Result { rows }
}

/// Table III — the BERT-Large/SQuAD breakdown at 256 KB / 512 KB / 1 MB.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Result {
    /// (buffer bytes, Tensor Cores report, Mokey report).
    pub rows: Vec<(usize, SimReport, SimReport)>,
}

/// Runs Table III.
pub fn table3() -> Table3Result {
    let workload = paper_workloads()
        .into_iter()
        .find(|w| w.name == "BERT-Large SQuAD")
        .expect("workload exists");
    let gemms = workload.gemms();
    let rows = [256 << 10, 512 << 10, 1 << 20]
        .into_iter()
        .map(|buffer| {
            let tc = simulate(
                &gemms,
                &SimConfig::new(Accelerator::tensor_cores(), buffer).with_rates(workload.rates),
            );
            let mokey = simulate(
                &gemms,
                &SimConfig::new(Accelerator::mokey(), buffer).with_rates(workload.rates),
            );
            (buffer, tc, mokey)
        })
        .collect();
    Table3Result { rows }
}

/// One Table IV row.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    /// Method name.
    pub method: String,
    /// Parameter bits.
    pub param_bits: f64,
    /// Activation bits.
    pub act_bits: f64,
    /// Measured score on the synthetic BERT-Base MNLI task.
    pub score: f64,
    /// `fp_score − score`.
    pub err: f64,
    /// Fixed-point-only compute?
    pub int_compute: bool,
    /// Post-training (no fine-tuning)?
    pub post_training: bool,
    /// Total-footprint compression ratio vs FP32.
    pub compression: f64,
}

/// Table IV — method comparison on BERT-Base MNLI.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Result {
    /// FP32 reference score.
    pub fp_score: f64,
    /// One row per method.
    pub rows: Vec<Table4Row>,
}

/// Runs Table IV: every baseline plus Mokey through the identical
/// synthetic-task harness.
pub fn table4(quality: Quality) -> Table4Result {
    let spec = &table1_rows()[0]; // scaled BERT-Base MNLI
    let (model, task) = build_row(spec, quality);
    let profile = profile_inputs(&model, spec, quality);
    let full_config = ModelConfig::bert_base();

    let mut rows = Vec::new();
    for method in Baseline::table4() {
        let info = method.info();
        let score = if method == Baseline::Mokey {
            let session = QuantSession::with_defaults();
            let (qm, _) = QuantizedModel::prepare_with_session(
                &session,
                &model,
                QuantizeSpec::weights_and_activations(),
                &profile,
            )
            .expect("profiled activations are non-degenerate");
            let (outputs, _) = infer_quantized_batch(&qm, &task.inputs);
            task.score(&outputs)
        } else {
            let bm = prepare_baseline(&model, method, &profile);
            let outputs = bm.infer_batch(&task.inputs);
            task.score(&outputs)
        };
        rows.push(Table4Row {
            method: info.name.into(),
            param_bits: info.param_bits,
            act_bits: info.act_bits,
            score,
            err: task.fp_score - score,
            int_compute: info.int_compute,
            post_training: info.post_training,
            compression: compression_ratio(&info, &full_config, 128),
        });
    }
    Table4Result { fp_score: task.fp_score, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_orderings_match_paper() {
        let t = table2();
        assert_eq!(t.rows.len(), 3);
        // TC > GOBO > Mokey in both cycles and energy (Table II shape).
        assert!(t.rows[0].cycles > t.rows[1].cycles);
        assert!(t.rows[1].cycles > t.rows[2].cycles);
        assert!(t.rows[0].energy_j > t.rows[1].energy_j);
        assert!(t.rows[1].energy_j > t.rows[2].energy_j);
        assert_eq!(t.rows[2].units, 3072);
    }

    #[test]
    fn table3_shapes_match_paper() {
        let t = table3();
        assert_eq!(t.rows.len(), 3);
        for (buffer, tc, mokey) in &t.rows {
            assert!(mokey.total_cycles < tc.total_cycles, "buffer {buffer}");
            assert!(mokey.total_area_mm2() < tc.total_area_mm2(), "buffer {buffer}");
            assert!(mokey.energy.total() < tc.energy.total(), "buffer {buffer}");
            assert!(mokey.overlap_percent() > tc.overlap_percent(), "buffer {buffer}");
        }
        // Cycles fall with buffer size for both architectures.
        assert!(t.rows[0].1.total_cycles >= t.rows[2].1.total_cycles);
        assert!(t.rows[0].2.total_cycles >= t.rows[2].2.total_cycles);
    }

    #[test]
    fn table4_quick_has_all_methods() {
        let t = table4(Quality::Quick);
        assert_eq!(t.rows.len(), 6);
        let mokey = t.rows.iter().find(|r| r.method == "Mokey").unwrap();
        assert!(mokey.int_compute && mokey.post_training);
        assert!(mokey.compression > 6.0);
        // Mokey's accuracy delta stays small.
        assert!(mokey.err.abs() < 12.0, "mokey err {}", mokey.err);
        // TernaryBERT (2-bit, no distillation here) must lose more than
        // the 8-bit methods.
        let ternary = t.rows.iter().find(|r| r.method == "TernaryBERT").unwrap();
        let q8 = t.rows.iter().find(|r| r.method == "Q8BERT").unwrap();
        assert!(ternary.err >= q8.err - 1.0);
    }
}
