//! Human-readable tables and machine-readable result dumps.

use serde::Serialize;
use std::path::PathBuf;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use mokey_eval::report::Table;
///
/// let mut t = Table::new(vec!["model".into(), "score".into()]);
/// t.row(vec!["BERT-Base".into(), "84.44".into()]);
/// let text = t.render();
/// assert!(text.contains("BERT-Base"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Self { headers, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i] + 2));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum::<usize>().saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Directory where experiment JSON lands: `results/` at the workspace
/// root (found by walking up from the current directory to the first
/// `Cargo.toml` with a `[workspace]` table), or `./results` as a fallback.
pub fn results_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..4 {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                let results = dir.join("results");
                let _ = std::fs::create_dir_all(&results);
                return results;
            }
        }
        if !dir.pop() {
            break;
        }
    }
    let fallback = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&fallback);
    fallback
}

/// Serializes an experiment result to `results/<name>.json`. Failures are
/// reported but non-fatal (the printed table is the primary artifact).
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Formats a byte count as a short human string ("256 KB", "4 MB").
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{} MB", bytes >> 20)
    } else {
        format!("{} KB", bytes >> 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a".into(), "long header".into()]);
        t.row(vec!["xxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long header"));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(256 << 10), "256 KB");
        assert_eq!(fmt_bytes(4 << 20), "4 MB");
    }
}
