//! The scaled-model accuracy harness behind Table I, Fig. 8 and Table IV.
//!
//! The paper's accuracy numbers come from full-size pre-trained
//! checkpoints; this reproduction substitutes synthetic models (see
//! `DESIGN.md`). Numeric experiments run on width/depth-scaled versions of
//! each architecture (same 64-wide heads, same depth-to-width character)
//! so hundreds of quantized forwards finish in seconds, while footprint
//! and simulator experiments keep the full dimensions.

use crate::Quality;
use mokey_pipeline::QuantSession;
use mokey_transformer::model::{Head, Model};
use mokey_transformer::quantize::{infer_quantized_batch, QuantizeSpec, QuantizedModel};
use mokey_transformer::tasks::{CalibratedTask, TaskKind, TaskSpec};
use mokey_transformer::ModelConfig;
use serde::Serialize;

/// One Table I row specification.
#[derive(Debug, Clone)]
pub struct RowSpec {
    /// Display name ("BERT-Base", …).
    pub model_name: String,
    /// Scaled architecture used for numeric evaluation.
    pub config: ModelConfig,
    /// Task kind.
    pub task: TaskKind,
    /// Metric display name (Table I's "Metric" column).
    pub metric: &'static str,
    /// The paper's FP score (calibration target).
    pub fp_target: f64,
    /// Deterministic seed for this row.
    pub seed: u64,
}

/// The eight Table I rows with scaled configurations.
pub fn table1_rows() -> Vec<RowSpec> {
    let row = |model_name: &str,
               config: ModelConfig,
               task: TaskKind,
               metric: &'static str,
               fp: f64,
               seed: u64| RowSpec {
        model_name: model_name.into(),
        config,
        task,
        metric,
        fp_target: fp,
        seed,
    };
    vec![
        row(
            "BERT-Base",
            ModelConfig::bert_base().scaled(6, 4),
            TaskKind::Mnli,
            "Acc-m",
            84.44,
            101,
        ),
        row(
            "BERT-Large",
            ModelConfig::bert_large().scaled(8, 6),
            TaskKind::Mnli,
            "Acc-m",
            86.65,
            102,
        ),
        row(
            "BERT-Large",
            ModelConfig::bert_large().scaled(8, 6),
            TaskKind::StsB,
            "Spearman",
            90.25,
            103,
        ),
        row(
            "BERT-Large",
            ModelConfig::bert_large().scaled(8, 6),
            TaskKind::Squad,
            "F1",
            93.15,
            104,
        ),
        row(
            "RoBERTa-Large",
            ModelConfig::roberta_large().scaled(8, 6),
            TaskKind::Mnli,
            "Acc-m",
            90.58,
            105,
        ),
        row(
            "RoBERTa-Large",
            ModelConfig::roberta_large().scaled(8, 6),
            TaskKind::StsB,
            "Spearman",
            92.41,
            106,
        ),
        row(
            "RoBERTa-Large",
            ModelConfig::roberta_large().scaled(8, 6),
            TaskKind::Squad,
            "F1",
            93.56,
            107,
        ),
        row(
            "DeBERTa-XL",
            ModelConfig::deberta_xl().scaled(8, 8),
            TaskKind::Mnli,
            "Acc-m",
            91.75,
            108,
        ),
    ]
}

/// Scaled sequence length per task (64 for GLUE-style, 96 for SQuAD-style,
/// mirroring the paper's 128/384 ratio).
pub fn scaled_seq_len(task: TaskKind) -> usize {
    match task {
        TaskKind::Squad => 96,
        _ => 64,
    }
}

/// The head matching a task kind.
pub fn head_for(task: TaskKind) -> Head {
    match task {
        TaskKind::Mnli => Head::Classification { classes: 3 },
        TaskKind::StsB => Head::Regression,
        TaskKind::Squad => Head::Span,
    }
}

/// A fully evaluated Table I row.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Model display name.
    pub model: String,
    /// Task display name.
    pub task: String,
    /// Metric name.
    pub metric: String,
    /// Calibrated FP score (≈ the paper's FP Score).
    pub fp_score: f64,
    /// Weight outlier percentage.
    pub w_ot_pct: f64,
    /// Weight-only quantized score.
    pub w_score: f64,
    /// `fp_score − w_score` (paper's "Err"; negative = improved).
    pub w_err: f64,
    /// Activation outlier percentage (measured during W+A inference).
    pub a_ot_pct: f64,
    /// Weights+activations quantized score.
    pub wa_score: f64,
    /// `fp_score − wa_score`.
    pub wa_err: f64,
}

/// Builds the model + calibrated task for a row.
pub fn build_row(spec: &RowSpec, quality: Quality) -> (Model, CalibratedTask) {
    let model = Model::synthesize(&spec.config, head_for(spec.task), spec.seed);
    let task_spec = TaskSpec {
        kind: spec.task,
        seq_len: scaled_seq_len(spec.task),
        n_eval: quality.eval_samples(),
        fp_target: spec.fp_target,
        seed: spec.seed ^ 0xDA7A,
    };
    let task = CalibratedTask::build(&model, &task_spec);
    (model, task)
}

/// Profiling sequences for a model (the paper's single batch of 8 random
/// samples, disjoint from the evaluation set).
pub fn profile_inputs(model: &Model, spec: &RowSpec, quality: Quality) -> Vec<Vec<usize>> {
    (0..quality.profile_batch())
        .map(|i| {
            model.random_tokens(scaled_seq_len(spec.task), spec.seed ^ 0xBEEF ^ (i as u64) << 32)
        })
        .collect()
}

/// Evaluates one Table I row end to end: FP calibration, weight-only
/// quantization, weights+activations quantization.
///
/// Both quantization passes share one [`QuantSession`], so the W+A pass
/// reuses every weight dictionary the weight-only pass built.
pub fn evaluate_row(spec: &RowSpec, quality: Quality) -> Table1Row {
    let (model, task) = build_row(spec, quality);
    let profile = profile_inputs(&model, spec, quality);
    let session = QuantSession::with_defaults();

    // Weight-only.
    let (qm_w, report_w) =
        QuantizedModel::prepare_with_session(&session, &model, QuantizeSpec::weights_only(), &[])
            .expect("synthetic weights are non-degenerate");
    let (out_w, _) = infer_quantized_batch(&qm_w, &task.inputs);
    let w_score = task.score(&out_w);

    // Weights + activations.
    let (qm_wa, _) = QuantizedModel::prepare_with_session(
        &session,
        &model,
        QuantizeSpec::weights_and_activations(),
        &profile,
    )
    .expect("profiled activations are non-degenerate");
    let (out_wa, stats) = infer_quantized_batch(&qm_wa, &task.inputs);
    let wa_score = task.score(&out_wa);

    Table1Row {
        model: spec.model_name.clone(),
        task: task_name(spec.task).into(),
        metric: spec.metric.into(),
        fp_score: task.fp_score,
        w_ot_pct: report_w.weight_outlier_percent(),
        w_score,
        w_err: task.fp_score - w_score,
        a_ot_pct: 100.0 * stats.outlier_fraction(),
        wa_score,
        wa_err: task.fp_score - wa_score,
    }
}

/// Task display name.
pub fn task_name(task: TaskKind) -> &'static str {
    match task {
        TaskKind::Mnli => "MNLI",
        TaskKind::StsB => "STS-B",
        TaskKind::Squad => "SQuAD",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_the_paper_matrix() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows.iter().filter(|r| r.task == TaskKind::Mnli).count(), 4);
        assert_eq!(rows.iter().filter(|r| r.task == TaskKind::StsB).count(), 2);
        assert_eq!(rows.iter().filter(|r| r.task == TaskKind::Squad).count(), 2);
    }

    #[test]
    fn scaled_configs_keep_head_dim() {
        for row in table1_rows() {
            assert_eq!(row.config.head_dim(), 64, "{}", row.model_name);
        }
    }

    #[test]
    fn evaluate_row_produces_sane_numbers() {
        let rows = table1_rows();
        let row = evaluate_row(&rows[0], Quality::Quick);
        // FP calibration should land near the paper target.
        assert!((row.fp_score - 84.44).abs() < 8.0, "fp {}", row.fp_score);
        // Outlier percentages in plausible bands.
        assert!(row.w_ot_pct > 0.1 && row.w_ot_pct < 6.0, "w_ot {}", row.w_ot_pct);
        assert!(row.a_ot_pct > 0.1 && row.a_ot_pct < 15.0, "a_ot {}", row.a_ot_pct);
        // Quantized scores stay within a few points of FP.
        assert!(row.w_err.abs() < 10.0, "w_err {}", row.w_err);
        assert!(row.wa_err.abs() < 12.0, "wa_err {}", row.wa_err);
    }
}
