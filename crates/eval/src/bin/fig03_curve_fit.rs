//! Fig. 3 — fitting the exponential curve `a^i + b` to the Golden
//! Dictionary.

use mokey_core::curve::PAPER_B;
use mokey_core::golden::GoldenConfig;
use mokey_eval::figures::fig03;
use mokey_eval::report::{save_json, Table};

fn main() {
    println!("== Fig. 3: exponential fit to the Golden Dictionary ==\n");
    let result = fig03(&GoldenConfig::default());
    println!("fitted:  a = {:.4}, b = {:+.4}", result.a, result.b);
    println!("paper:   a = {:.4}, b = {:+.4}", result.paper_a, result.paper_b);
    println!("rms residual: {:.4}\n", result.rms);
    let mut table =
        Table::new(vec!["index".into(), "GD magnitude".into(), "a^i + b".into(), "error".into()]);
    for (i, (gd, curve)) in result.points.iter().enumerate() {
        table.row(vec![
            i.to_string(),
            format!("{gd:.4}"),
            format!("{curve:.4}"),
            format!("{:+.4}", curve - gd),
        ]);
    }
    table.print();
    println!(
        "\nNote: the paper's b = {PAPER_B} implies its GD draw had a zero-straddling\n\
         inner cluster; our symmetric fold lands the inner magnitude near 0.1,\n\
         which only shifts b (see EXPERIMENTS.md, Fig. 3 entry)."
    );
    save_json("fig03_curve_fit", &result);
}
