//! Fig. 2 — generating the Golden Dictionary from a random Gaussian
//! distribution via agglomerative clustering.

use mokey_core::golden::GoldenConfig;
use mokey_eval::figures::fig02;
use mokey_eval::report::save_json;

fn main() {
    println!("== Fig. 2: Golden Dictionary generation ==\n");
    let config = GoldenConfig::default();
    let result = fig02(&config);
    println!(
        "N(0,1) sample of {} values, Ward agglomerative clustering to 16 centroids,",
        config.samples
    );
    println!("averaged over {} draws (seed {:#x}).\n", config.repeats, config.seed);

    let max = result.histogram.iter().map(|(_, c)| *c).max().unwrap_or(1);
    for (start, count) in &result.histogram {
        let bar = "#".repeat(count * 50 / max);
        println!("{start:>6.2} | {bar}");
    }
    println!("\nGolden Dictionary centroids (16, symmetric):");
    for chunk in result.centroids.chunks(8) {
        println!("  {}", chunk.iter().map(|c| format!("{c:+.3}")).collect::<Vec<_>>().join("  "));
    }
    save_json("fig02_golden_dict", &result);
}
