//! Fig. 14 — Tensor Cores speedup with Mokey memory compression, for
//! off-chip-only (OC) and off- and on-chip (OC+ON) traffic.

use mokey_accel::arch::MemCompression;
use mokey_eval::figures::SimMatrix;
use mokey_eval::report::save_json;
use mokey_eval::Quality;

fn main() {
    println!("== Fig. 14: Tensor Cores speedup with Mokey memory compression ==\n");
    let matrix = SimMatrix::run(Quality::Full);
    let names = matrix.workload_names();
    let buffers = matrix.buffers().to_vec();
    for (label, mode) in
        [("OC (off-chip only)", MemCompression::OffChip), ("OC+ON", MemCompression::OffChipOnChip)]
    {
        let fig = matrix.fig14(mode);
        println!("--- {label} ---");
        fig.to_table(&names, &buffers, |v| format!("{v:.2}x"), true).print();
        println!();
        save_json(&fig.id.clone(), &fig);
    }
    println!("Paper: ~3.9x at 256 KB rising to ~4.3x at 4 MB for OC; OC+ON helps");
    println!("most at small buffers (capacity amplification).");
}
