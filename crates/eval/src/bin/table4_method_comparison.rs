//! Table IV — comparing quantization methods for BERT-Base on MNLI.

use mokey_eval::report::{save_json, Table};
use mokey_eval::tables::table4;
use mokey_eval::Quality;

fn main() {
    println!("== Table IV: quantization method comparison (BERT-Base MNLI, scaled) ==\n");
    let result = table4(Quality::Full);
    println!("FP32 baseline score: {:.2}\n", result.fp_score);
    let mut table = Table::new(vec![
        "Method".into(),
        "Params (bit)".into(),
        "Acts (bit)".into(),
        "Score".into(),
        "Err".into(),
        "INT Comp".into(),
        "Post-Training".into(),
        "Compression".into(),
    ]);
    for r in &result.rows {
        table.row(vec![
            r.method.clone(),
            format!("{:.1}", r.param_bits),
            format!("{:.1}", r.act_bits),
            format!("{:.2}", r.score),
            format!("{:+.2}", r.err),
            if r.int_compute { "yes" } else { "no" }.into(),
            if r.post_training { "yes" } else { "no" }.into(),
            format!("{:.1}x", r.compression),
        ]);
    }
    table.print();
    println!("\nNote: fine-tuned methods (Q8BERT/Q-BERT/TernaryBERT) are evaluated");
    println!("post-training here — without their fine-tuning they lose more than");
    println!("their published numbers, which is the paper's core argument.");
    save_json("table4_method_comparison", &result);
}
