//! Runs every experiment in sequence (Figs. 1–15, Tables I–IV) and writes
//! all JSON artifacts to `results/`.

use mokey_accel::arch::MemCompression;
use mokey_core::golden::GoldenConfig;
use mokey_eval::figures::{fig01, fig02, fig03, fig08, SimMatrix};
use mokey_eval::report::save_json;
use mokey_eval::tables::{table1, table2, table3, table4};
use mokey_eval::Quality;

fn main() {
    let t0 = std::time::Instant::now();
    println!("Running ALL Mokey reproduction experiments (this takes a few minutes)…\n");

    println!("[1/9] Fig. 1 footprint");
    save_json("fig01_footprint", &fig01());

    println!("[2/9] Fig. 2 golden dictionary");
    save_json("fig02_golden_dict", &fig02(&GoldenConfig::default()));

    println!("[3/9] Fig. 3 curve fit");
    save_json("fig03_curve_fit", &fig03(&GoldenConfig::default()));

    println!("[4/9] Table I task performance (8 rows × 3 passes)");
    save_json("table1_task_performance", &table1(Quality::Full));

    println!("[5/9] Fig. 8 profiling stability (17 trials)");
    save_json("fig08_profiling", &fig08(Quality::Full));

    println!("[6/9] simulator matrix (Figs. 9-15)");
    let matrix = SimMatrix::run(Quality::Full);
    save_json("fig09_baseline_cycles", &matrix.fig09());
    save_json("fig10_speedup_tc", &matrix.fig10());
    save_json("fig11_energy_tc", &matrix.fig11());
    save_json("fig12_speedup_gobo", &matrix.fig12());
    save_json("fig13_energy_gobo", &matrix.fig13());
    save_json("fig14_oc", &matrix.fig14(MemCompression::OffChip));
    save_json("fig14_oc_on", &matrix.fig14(MemCompression::OffChipOnChip));
    save_json("fig15_oc", &matrix.fig15(MemCompression::OffChip));
    save_json("fig15_oc_on", &matrix.fig15(MemCompression::OffChipOnChip));

    println!("[7/9] Table II");
    save_json("table2_area_cycles_energy", &table2());

    println!("[8/9] Table III");
    save_json("table3_breakdown", &table3());

    println!("[9/9] Table IV method comparison");
    save_json("table4_method_comparison", &table4(Quality::Full));

    println!("\nAll experiments complete in {:.1}s.", t0.elapsed().as_secs_f64());
    println!("Individual binaries (fig01_footprint, table1_task_performance, …) print");
    println!("the formatted tables; JSON artifacts are in results/.");
}
