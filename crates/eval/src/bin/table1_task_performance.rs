//! Table I — the effect of Mokey quantization on task performance.

use mokey_eval::report::{save_json, Table};
use mokey_eval::tables::table1;
use mokey_eval::Quality;

fn main() {
    println!("== Table I: Mokey quantization vs task performance (scaled models) ==\n");
    let result = table1(Quality::Full);
    let mut table = Table::new(vec![
        "Model".into(),
        "Task".into(),
        "Metric".into(),
        "FP Score".into(),
        "W OT%".into(),
        "W-only Score".into(),
        "Err".into(),
        "A OT%".into(),
        "W+A Score".into(),
        "Err".into(),
    ]);
    for r in &result.rows {
        table.row(vec![
            r.model.clone(),
            r.task.clone(),
            r.metric.clone(),
            format!("{:.2}", r.fp_score),
            format!("{:.2}", r.w_ot_pct),
            format!("{:.2}", r.w_score),
            format!("{:+.2}", r.w_err),
            format!("{:.2}", r.a_ot_pct),
            format!("{:.2}", r.wa_score),
            format!("{:+.2}", r.wa_err),
        ]);
    }
    table.print();
    println!("\nPaper: W-only errors within ±0.4, W+A errors below 1.0, weight");
    println!("outliers 1.2-1.6%, activation outliers 1.7-4.5%.");
    save_json("table1_task_performance", &result);
}
