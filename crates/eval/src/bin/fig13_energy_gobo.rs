//! Fig. 13 — Mokey energy efficiency over GOBO.

use mokey_eval::figures::SimMatrix;
use mokey_eval::report::{fmt_bytes, save_json, Table};
use mokey_eval::Quality;

fn main() {
    println!("== Fig. 13: Mokey energy efficiency over GOBO ==\n");
    let matrix = SimMatrix::run(Quality::Full);
    let fig = matrix.fig13();
    let buffers = matrix.buffers().to_vec();
    let mut table = Table::new(
        std::iter::once("workload".to_string())
            .chain(buffers.iter().map(|&b| fmt_bytes(b)))
            .collect(),
    );
    for name in matrix.workload_names() {
        let mut cells = vec![name.clone()];
        for &b in &buffers {
            let v = fig
                .cells
                .iter()
                .find(|c| c.workload == name && c.buffer_bytes == b)
                .map(|c| c.value)
                .unwrap_or(f64::NAN);
            cells.push(format!("{v:.1}x"));
        }
        table.row(cells);
    }
    let mut geo = vec!["GEOMEAN".to_string()];
    for (_, g) in &fig.geomean {
        geo.push(format!("{g:.1}x"));
    }
    table.row(geo);
    table.print();
    println!("\nPaper: 9x with small buffers, 2x at 4 MB (energy-delay scale).");
    save_json("fig13_energy_gobo", &fig);
}
