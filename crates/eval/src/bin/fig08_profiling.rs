//! Fig. 8 — the effect of the profiling batch on accuracy (stability
//! across trials).

use mokey_eval::figures::fig08;
use mokey_eval::report::{save_json, Table};
use mokey_eval::Quality;

fn main() {
    println!("== Fig. 8: profiling effect on accuracy (BERT-Base MNLI, scaled) ==\n");
    let result = fig08(Quality::Full);
    let mut table = Table::new(vec!["trial".into(), "W+A accuracy".into()]);
    for (i, score) in result.trial_scores.iter().enumerate() {
        table.row(vec![(i + 1).to_string(), format!("{score:.2}")]);
    }
    table.print();
    println!("\nFP score: {:.2}", result.fp_score);
    println!("mean: {:.2}, std: {:.3}", result.mean, result.std);
    println!("Paper: \"the result of profiling is almost identical each time\".");
    save_json("fig08_profiling", &result);
}
