//! Fig. 1 — BERT-Large weight vs. activation memory footprint over
//! sequence length.

use mokey_eval::figures::fig01;
use mokey_eval::report::{save_json, Table};

fn main() {
    println!("== Fig. 1: BERT-Large weight/activation footprint (FP16) ==\n");
    let result = fig01();
    let mut table = Table::new(vec![
        "seq len".into(),
        "weights (MB)".into(),
        "activations (MB)".into(),
        "total (MB)".into(),
        "activations %".into(),
    ]);
    for (seq, w, a, pct) in &result.rows {
        table.row(vec![
            seq.to_string(),
            format!("{w:.0}"),
            format!("{a:.0}"),
            format!("{:.0}", w + a),
            format!("{pct:.1}%"),
        ]);
    }
    table.print();
    println!("\nPaper: activations dominate total footprint beyond 512 tokens.");
    save_json("fig01_footprint", &result);
}
