//! Fig. 9 — baseline (Tensor Cores) inference cycle counts across
//! workloads and buffer capacities.

use mokey_eval::figures::SimMatrix;
use mokey_eval::report::{fmt_bytes, save_json, Table};
use mokey_eval::Quality;

fn main() {
    println!("== Fig. 9: baseline accelerator inference cycle counts ==\n");
    let matrix = SimMatrix::run(Quality::Full);
    let fig = matrix.fig09();
    let buffers = matrix.buffers().to_vec();
    let mut table = Table::new(
        std::iter::once("workload".to_string())
            .chain(buffers.iter().map(|&b| fmt_bytes(b)))
            .collect(),
    );
    for name in matrix.workload_names() {
        let mut cells = vec![name.clone()];
        for &b in &buffers {
            let v = fig
                .cells
                .iter()
                .find(|c| c.workload == name && c.buffer_bytes == b)
                .map(|c| c.value)
                .unwrap_or(f64::NAN);
            cells.push(format!("{:.1}M", v / 1e6));
        }
        table.row(cells);
    }
    table.print();
    println!("\nLarger buffers reduce cycles (more reuse, better overlap), as in the paper.");
    save_json("fig09_baseline_cycles", &fig);
}
