//! Fig. 15 — Tensor Cores relative energy with Mokey memory compression
//! (compressed / baseline; lower is better).

use mokey_accel::arch::MemCompression;
use mokey_eval::figures::SimMatrix;
use mokey_eval::report::save_json;
use mokey_eval::Quality;

fn main() {
    println!("== Fig. 15: Tensor Cores relative energy with Mokey compression ==\n");
    let matrix = SimMatrix::run(Quality::Full);
    let names = matrix.workload_names();
    let buffers = matrix.buffers().to_vec();
    for (label, mode) in
        [("OC (off-chip only)", MemCompression::OffChip), ("OC+ON", MemCompression::OffChipOnChip)]
    {
        let fig = matrix.fig15(mode);
        println!("--- {label} (fraction of baseline energy) ---");
        fig.to_table(&names, &buffers, |v| format!("{:.0}%", v * 100.0), false).print();
        println!();
        save_json(&fig.id.clone(), &fig);
    }
    println!("Paper: off-chip compression cuts DRAM energy ~4x; overall energy");
    println!("efficiency improves 11x at 256 KB and 7.8x at 4 MB (energy-delay scale).");
}
