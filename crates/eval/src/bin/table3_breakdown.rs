//! Table III — area, performance and energy breakdown for Tensor Cores
//! and Mokey on BERT-Large/SQuAD at 256 KB / 512 KB / 1 MB buffers.

use mokey_eval::report::{fmt_bytes, save_json, Table};
use mokey_eval::tables::table3;

fn main() {
    println!("== Table III: BERT-Large SQuAD breakdown ==\n");
    let result = table3();
    let mut headers = vec!["metric".to_string()];
    for (buffer, _, _) in &result.rows {
        headers.push(format!("TC {}", fmt_bytes(*buffer)));
        headers.push(format!("Mokey {}", fmt_bytes(*buffer)));
    }
    let mut table = Table::new(headers);
    let metric = |name: &str, f: &dyn Fn(&mokey_accel::sim::SimReport) -> String| {
        let mut row = vec![name.to_string()];
        for (_, tc, mokey) in &result.rows {
            row.push(f(tc));
            row.push(f(mokey));
        }
        row
    };
    table.row(metric("buffer area mm2", &|r| format!("{:.1}", r.buffer_area_mm2)));
    table.row(metric("compute area mm2", &|r| format!("{:.1}", r.compute_area_mm2)));
    table.row(metric("total area mm2", &|r| format!("{:.1}", r.total_area_mm2())));
    table.row(metric("memory cycles", &|r| format!("{:.1}M", r.memory_cycles as f64 / 1e6)));
    table.row(metric("compute cycles", &|r| format!("{:.1}M", r.compute_cycles as f64 / 1e6)));
    table.row(metric("total cycles", &|r| format!("{:.1}M", r.total_cycles as f64 / 1e6)));
    table.row(metric("overlap %", &|r| format!("{:.1}%", r.overlap_percent())));
    table.row(metric("DRAM GB", &|r| format!("{:.2}", r.dram_bytes as f64 / 1e9)));
    table.row(metric("off-chip J", &|r| format!("{:.3}", r.energy.dram_j)));
    table.row(metric("on-chip J", &|r| format!("{:.4}", r.energy.sram_j)));
    table.row(metric("compute J", &|r| format!("{:.3}", r.energy.compute_j)));
    table.row(metric("total J", &|r| format!("{:.3}", r.energy.total())));
    table.print();
    println!("\nPaper shape: Mokey smaller in area, far fewer memory cycles, higher");
    println!("overlap, lower energy at every capacity.");
    save_json("table3_breakdown", &result);
}
