//! Ablations of Mokey's design choices (DESIGN.md §5.3): dictionary
//! width, outlier policy, fitted-vs-published curve constants, and
//! profiling batch size.

use mokey_core::curve::{PAPER_A, PAPER_B};
use mokey_core::dict::{OutlierPolicy, TensorDict, TensorDictConfig};
use mokey_core::golden::GoldenConfig;
use mokey_core::metrics::sqnr_db;
use mokey_eval::report::{save_json, Table};
use mokey_eval::scaled::{build_row, table1_rows};
use mokey_eval::Quality;
use mokey_pipeline::{CurveSource, QuantSession};
use mokey_tensor::init::GaussianMixture;
use mokey_transformer::quantize::{infer_quantized_batch, QuantizeSpec, QuantizedModel};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct AblationResults {
    dictionary_bits: Vec<(u32, f64, f64)>,
    outlier_policy: Vec<(String, f64, f64)>,
    curve_source: Vec<(String, f64)>,
    profile_batch: Vec<(usize, f64)>,
}

fn fidelity(values: &[f32], dict: &TensorDict) -> (f64, f64) {
    let decoded: Vec<f32> =
        values.iter().map(|&v| dict.decode_code(dict.encode_value(v)) as f32).collect();
    let outliers = values.iter().filter(|&&v| dict.encode_value(v).is_outlier()).count() as f64;
    (sqnr_db(values, &decoded), 100.0 * outliers / values.len() as f64)
}

fn main() {
    let weights = GaussianMixture::weight_like(0.0, 0.05).sample_matrix(128, 256, 404);
    let mut results = AblationResults {
        dictionary_bits: Vec::new(),
        outlier_policy: Vec::new(),
        curve_source: Vec::new(),
        profile_batch: Vec::new(),
    };

    // --- 1. Dictionary width (paper: "the more entries … the better it
    // represents the original tensor distribution"). ---
    println!("== Ablation 1: dictionary width ==\n");
    let mut t = Table::new(vec!["bits".into(), "SQNR (dB)".into(), "outliers %".into()]);
    for bits in [2u32, 3, 4] {
        let config = GoldenConfig { bits, repeats: 4, ..Default::default() };
        let session = QuantSession::builder().curve_source(CurveSource::Fitted(config)).build();
        let dict = session.dict_for("ablation.width", weights.as_slice()).expect("non-degenerate");
        let (sqnr, ot) = fidelity(weights.as_slice(), &dict);
        t.row(vec![bits.to_string(), format!("{sqnr:.2}"), format!("{ot:.2}")]);
        results.dictionary_bits.push((bits, sqnr, ot));
    }
    t.print();
    println!("(The paper settles on 4 bits: '16-entry dictionaries prove sufficient'.)\n");

    // --- 2. Outlier policy. ---
    println!("== Ablation 2: outlier policy ==\n");
    let mut t = Table::new(vec!["policy".into(), "SQNR (dB)".into(), "outliers %".into()]);
    for (name, policy) in [
        ("G-only (disabled)", OutlierPolicy::Disabled),
        ("curve midpoint (default)", OutlierPolicy::CurveMidpoint),
        ("fraction 1%", OutlierPolicy::Fraction(0.01)),
        ("fraction 5%", OutlierPolicy::Fraction(0.05)),
        ("fraction 10%", OutlierPolicy::Fraction(0.10)),
    ] {
        let config = TensorDictConfig { policy, ..Default::default() };
        let session = QuantSession::builder().dict_config(config).build();
        let dict = session.dict_for("ablation.policy", weights.as_slice()).expect("non-degenerate");
        let (sqnr, ot) = fidelity(weights.as_slice(), &dict);
        t.row(vec![name.into(), format!("{sqnr:.2}"), format!("{ot:.2}")]);
        results.outlier_policy.push((name.into(), sqnr, ot));
    }
    t.print();
    println!("(Without the OT dictionary, rare wide values clamp to the G range\nand SQNR collapses — the paper's motivation for the dual dictionary.)\n");

    // --- 3. Fitted vs published curve constants. ---
    println!("== Ablation 3: curve source ==\n");
    let mut t = Table::new(vec!["curve".into(), "SQNR (dB)".into()]);
    for (name, source) in [
        ("fitted from our GD".to_string(), CurveSource::Fitted(GoldenConfig::default())),
        (format!("paper constants ({PAPER_A}, {PAPER_B})"), CurveSource::Paper),
    ] {
        let session = QuantSession::builder().curve_source(source).build();
        let dict = session.dict_for("ablation.curve", weights.as_slice()).expect("non-degenerate");
        let (sqnr, _) = fidelity(weights.as_slice(), &dict);
        t.row(vec![name.clone(), format!("{sqnr:.2}")]);
        results.curve_source.push((name, sqnr));
    }
    t.print();
    println!("(Both parameterizations quantize equally well — the fit constants\nare not load-bearing beyond the exponential form itself.)\n");

    // --- 4. Profiling batch size (paper: 'runs with even fewer input
    // samples proved enough'). ---
    println!("== Ablation 4: profiling batch size ==\n");
    let spec = &table1_rows()[0];
    let (model, task) = build_row(spec, Quality::Quick);
    let session = QuantSession::with_defaults();
    let mut t = Table::new(vec!["profile sequences".into(), "W+A score".into()]);
    for batch in [1usize, 2, 4, 8] {
        let profile: Vec<Vec<usize>> = (0..batch)
            .map(|i| model.random_tokens(64, spec.seed ^ 0xAB1E ^ (i as u64) << 24))
            .collect();
        let (qm, _) = QuantizedModel::prepare_with_session(
            &session,
            &model,
            QuantizeSpec::weights_and_activations(),
            &profile,
        )
        .expect("profiled activations are non-degenerate");
        let (outputs, _) = infer_quantized_batch(&qm, &task.inputs);
        let score = task.score(&outputs);
        t.row(vec![batch.to_string(), format!("{score:.2}")]);
        results.profile_batch.push((batch, score));
    }
    t.print();
    println!("(FP reference: {:.2}.)", task.fp_score);

    // --- 5. Baseline dataflow sensitivity (EXPERIMENTS.md divergence 1):
    // how much of the paper's larger speedups comes from its
    // weight-streaming baseline. ---
    println!("\n== Ablation 5: baseline dataflow sensitivity ==\n");
    use mokey_accel::arch::Accelerator;
    use mokey_accel::sim::{simulate, Dataflow, SimConfig};
    use mokey_accel::workloads::paper_workloads;
    let workload = paper_workloads()
        .into_iter()
        .find(|w| w.name == "BERT-Large SQuAD")
        .expect("workload exists");
    let gemms = workload.gemms();
    let mut t = Table::new(vec![
        "buffer".into(),
        "speedup vs min-traffic TC".into(),
        "speedup vs weight-streaming TC".into(),
    ]);
    let mut dataflow_rows = Vec::new();
    for buffer in [256usize << 10, 1 << 20, 4 << 20] {
        let mokey = simulate(
            &gemms,
            &SimConfig::new(Accelerator::mokey(), buffer).with_rates(workload.rates),
        );
        let tc_min = simulate(
            &gemms,
            &SimConfig::new(Accelerator::tensor_cores(), buffer).with_rates(workload.rates),
        );
        let tc_ws = simulate(
            &gemms,
            &SimConfig::new(Accelerator::tensor_cores(), buffer)
                .with_rates(workload.rates)
                .with_dataflow(Dataflow::WeightStreaming { array_rows: 32 }),
        );
        let s_min = mokey.speedup_over(&tc_min);
        let s_ws = mokey.speedup_over(&tc_ws);
        t.row(vec![format!("{} KB", buffer >> 10), format!("{s_min:.2}x"), format!("{s_ws:.2}x")]);
        dataflow_rows.push((buffer, s_min, s_ws));
    }
    t.print();
    println!("(Against a weight-streaming baseline — the reading of the paper's\nTensor Cores that matches its reported traffic — Mokey's speedups land\nin the paper's 4-15x band even at large buffers.)");

    save_json("ablations", &results);
    save_json("ablation_dataflow", &dataflow_rows);
}
