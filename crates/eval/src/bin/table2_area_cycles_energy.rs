//! Table II — area, cycle count and energy for BERT-Base at the 512 KB
//! buffer, across the three architectures.

use mokey_eval::report::{save_json, Table};
use mokey_eval::tables::table2;

fn main() {
    println!("== Table II: BERT-Base @ 512 KB buffer ==\n");
    let result = table2();
    let mut table = Table::new(vec![
        "Architecture".into(),
        "Compute Units".into(),
        "Area (mm2)".into(),
        "Cycle Count".into(),
        "Energy (J)".into(),
    ]);
    for r in &result.rows {
        table.row(vec![
            r.architecture.clone(),
            r.units.to_string(),
            format!("{:.1}", r.area_mm2),
            format!("{:.1}M", r.cycles as f64 / 1e6),
            format!("{:.4}", r.energy_j),
        ]);
    }
    table.print();
    println!("\nPaper (same order): 2048/16.1/167M/0.36J, 2560/15.9/52M/0.17J,");
    println!("3072/14.8/29M/0.09J — orderings reproduced; absolutes differ with");
    println!("the baseline dataflow (EXPERIMENTS.md).");
    save_json("table2_area_cycles_energy", &result);
}
