//! Experiment runners regenerating every table and figure of the Mokey
//! paper (see `DESIGN.md` for the experiment index and `EXPERIMENTS.md`
//! for paper-vs-measured results).
//!
//! Each experiment is a library function returning a serializable result
//! struct; the `src/bin/*` binaries are thin wrappers that run at full
//! quality, print the table, and drop JSON into `results/`. Integration
//! tests and Criterion benches call the same functions at
//! [`Quality::Quick`].

pub mod figures;
pub mod report;
pub mod scaled;
pub mod tables;

/// Evaluation effort knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Small sample counts — used by tests and benches.
    Quick,
    /// Paper-scale sample counts — used by the binaries.
    Full,
}

impl Quality {
    /// Evaluation samples per task.
    pub fn eval_samples(&self) -> usize {
        match self {
            Quality::Quick => 60,
            Quality::Full => 400,
        }
    }

    /// Profiling sequences (the paper uses a batch of 8).
    pub fn profile_batch(&self) -> usize {
        match self {
            Quality::Quick => 2,
            Quality::Full => 8,
        }
    }

    /// Profiling trials for Fig. 8 (the paper shows 17).
    pub fn profiling_trials(&self) -> usize {
        match self {
            Quality::Quick => 3,
            Quality::Full => 17,
        }
    }
}
