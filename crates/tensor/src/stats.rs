//! Per-tensor statistics.
//!
//! Mokey's per-tensor dictionary generation (paper Section II-C) is a linear
//! transform of the Golden Dictionary by the tensor's mean and standard
//! deviation, and its fixed-point conversion (Eq. 7) needs the value range.
//! [`Summary`] gathers all of that in one pass.

use serde::{Deserialize, Serialize};

/// One-pass summary statistics of a value collection (Welford online
/// algorithm, so summaries can also be [merged](Summary::merge) across
/// profiling batches).
///
/// # Example
///
/// ```
/// use mokey_tensor::stats::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0]);
/// assert!((s.mean() - 2.0).abs() < 1e-6);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary; fold samples in with [`Summary::push`].
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Summarizes a slice in one pass.
    pub fn of(values: &[f32]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(f64::from(v));
        }
        s
    }

    /// Folds one sample into the summary (Welford's online update).
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples folded in.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean (`0` when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (`0` when empty).
    pub fn std(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Smallest sample.
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of empty summary");
        self.min
    }

    /// Largest sample.
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of empty summary");
        self.max
    }

    /// Value range `max − min`, or `0` when empty.
    pub fn range(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max - self.min
        }
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_slice() {
        let s = Summary::of(&[5.0; 10]);
        assert_eq!(s.count(), 10);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!(s.std().abs() < 1e-12);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn summary_matches_two_pass_reference() {
        let vals: Vec<f32> = (0..1000).map(|i| ((i * 37) % 101) as f32 - 50.0).collect();
        let s = Summary::of(&vals);
        let mean: f64 = vals.iter().map(|&v| f64::from(v)).sum::<f64>() / vals.len() as f64;
        let var: f64 =
            vals.iter().map(|&v| (f64::from(v) - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.std() - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_single_pass() {
        let a: Vec<f32> = (0..500).map(|i| (i as f32).sin() * 3.0).collect();
        let b: Vec<f32> = (0..700).map(|i| (i as f32).cos() * 7.0 + 1.0).collect();
        let mut merged = Summary::of(&a);
        merged.merge(&Summary::of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let single = Summary::of(&all);
        assert_eq!(merged.count(), single.count());
        assert!((merged.mean() - single.mean()).abs() < 1e-9);
        assert!((merged.std() - single.std()).abs() < 1e-9);
        assert_eq!(merged.min(), single.min());
        assert_eq!(merged.max(), single.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let s = Summary::of(&[1.0, 2.0]);
        let mut merged = s;
        merged.merge(&Summary::new());
        assert_eq!(merged, s);
        let mut empty = Summary::new();
        empty.merge(&s);
        assert_eq!(empty, s);
    }

    #[test]
    fn from_iterator_collects() {
        let s: Summary = (0..10).map(f64::from).collect();
        assert_eq!(s.count(), 10);
        assert!((s.mean() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn range_of_empty_is_zero() {
        assert_eq!(Summary::new().range(), 0.0);
    }

    #[test]
    #[should_panic(expected = "min of empty summary")]
    fn min_of_empty_panics() {
        let _ = Summary::new().min();
    }
}
