//! Non-GEMM transformer operators: softmax, layer normalization, GELU.
//!
//! The paper notes (Section IV-A) that "transformer-based models have layer
//! normalization and softmax which limits the range of values" — a property
//! Mokey's activation profiling relies on — so these operators must be
//! numerically faithful, not stubs.

use crate::Matrix;

/// Fused linear layer: `x · w + bias` in one row pass.
///
/// The bias is pre-loaded into the GEMM accumulators
/// ([`Matrix::matmul_bias`]), so no separate broadcast pass or output
/// clone runs. Like every GEMM kernel, output row `i` depends only on
/// input row `i`, `w`, and `bias` — batches of sequences stacked into one
/// tall activation matrix reproduce their solo rows bit for bit.
///
/// # Panics
///
/// Panics if `x.cols() != w.rows()` or `bias.len() != w.cols()`.
///
/// # Example
///
/// ```
/// use mokey_tensor::{nn, Matrix};
///
/// let x = Matrix::from_rows(&[&[1.0, 2.0]]);
/// let w = Matrix::from_rows(&[&[1.0], &[1.0]]);
/// assert_eq!(nn::linear(&x, &w, &[0.5]).as_slice(), &[3.5]);
/// ```
pub fn linear(x: &Matrix, w: &Matrix, bias: &[f32]) -> Matrix {
    x.matmul_bias(w, bias)
}

/// Row-wise numerically-stable softmax, in place.
///
/// Each row is shifted by its maximum before exponentiation so large logits
/// cannot overflow, then normalized to sum to 1.
///
/// # Example
///
/// ```
/// use mokey_tensor::{nn, Matrix};
///
/// let mut m = Matrix::from_rows(&[&[0.0, 0.0, f32::ln(2.0)]]);
/// nn::softmax_rows(&mut m);
/// assert!((m[(0, 2)] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        debug_assert!(sum > 0.0, "softmax row of width {cols} summed to zero");
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

/// Row-wise layer normalization with learned scale (`gamma`) and shift
/// (`beta`): `y = gamma · (x − mean) / sqrt(var + eps) + beta`.
///
/// # Panics
///
/// Panics if `gamma` or `beta` width differs from `m.cols()`.
pub fn layer_norm(m: &mut Matrix, gamma: &[f32], beta: &[f32], eps: f32) {
    assert_eq!(gamma.len(), m.cols(), "gamma width mismatch");
    assert_eq!(beta.len(), m.cols(), "beta width mismatch");
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let n = row.len() as f32;
        let mean: f32 = row.iter().sum::<f32>() / n;
        let var: f32 = row.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n;
        let inv = (var + eps).sqrt().recip();
        for ((x, g), b) in row.iter_mut().zip(gamma).zip(beta) {
            *x = g * (*x - mean) * inv + b;
        }
    }
}

/// GELU activation (tanh approximation, as used by BERT):
/// `0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))`.
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Applies [`gelu`] to every element.
pub fn gelu_inplace(m: &mut Matrix) {
    m.map_inplace(gelu);
}

/// Hyperbolic-tangent pooler activation applied element-wise.
pub fn tanh_inplace(m: &mut Matrix) {
    m.map_inplace(f32::tanh);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_fn(4, 9, |r, c| (r as f32) - (c as f32) * 0.3);
        softmax_rows(&mut m);
        for r in 0..m.rows() {
            let sum: f32 = m.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
            assert!(m.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_overflow_safe() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let mut b = Matrix::from_rows(&[&[1001.0, 1002.0, 1003.0]]);
        softmax_rows(&mut a);
        softmax_rows(&mut b);
        assert!(a.max_abs_diff(&b) < 1e-6);
        assert!(b.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn layer_norm_zero_mean_unit_std() {
        let mut m = Matrix::from_fn(3, 64, |r, c| (r * 64 + c) as f32 * 0.1 - 2.0);
        let gamma = vec![1.0; 64];
        let beta = vec![0.0; 64];
        layer_norm(&mut m, &gamma, &beta, 1e-6);
        for r in 0..m.rows() {
            let mean: f32 = m.row(r).iter().sum::<f32>() / 64.0;
            let var: f32 = m.row(r).iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
    }

    #[test]
    fn layer_norm_applies_gamma_beta() {
        let mut m = Matrix::from_rows(&[&[0.0, 1.0]]);
        layer_norm(&mut m, &[2.0, 2.0], &[10.0, 10.0], 1e-9);
        // Normalized row is [-1, 1]; scaled/shifted: [8, 12].
        assert!((m[(0, 0)] - 8.0).abs() < 1e-3);
        assert!((m[(0, 1)] - 12.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_reference_points() {
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(1.0) - 0.841_192).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.158_808).abs() < 1e-3);
        // Asymptotes: identity for large x, zero for very negative x.
        assert!((gelu(6.0) - 6.0).abs() < 1e-3);
        assert!(gelu(-6.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "gamma width mismatch")]
    fn layer_norm_width_mismatch_panics() {
        let mut m = Matrix::zeros(1, 3);
        layer_norm(&mut m, &[1.0], &[0.0, 0.0, 0.0], 1e-6);
    }
}
