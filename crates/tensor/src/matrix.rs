//! Row-major dense `f32` matrix with parallel GEMM.

use serde::{Deserialize, Serialize};

/// Minimum number of scalar multiply-accumulates before [`Matrix::matmul`]
/// bothers to spawn worker threads. Below this the sequential kernel wins —
/// and callers that already parallelize across samples (the evaluation
/// harness) must not oversubscribe with nested thread spawns, so the bar
/// is deliberately high (~16 MFLOP, i.e. full-size transformer GEMMs).
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 24;

/// A dense, row-major `f32` matrix.
///
/// This is the lingua franca of the workspace: transformer layers, the
/// quantizer, and the baselines all exchange `Matrix` values. The layout is
/// guaranteed row-major and contiguous, so `data[r * cols + c]` addresses
/// element `(r, c)`; [`Matrix::row`] hands out contiguous row slices which
/// the quantization kernels consume directly.
///
/// # Example
///
/// ```
/// use mokey_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Example
    ///
    /// ```
    /// # use mokey_tensor::Matrix;
    /// let z = Matrix::zeros(2, 2);
    /// assert_eq!(z.as_slice(), &[0.0; 4]);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows: expected width {cols}");
            data.extend_from_slice(row);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The whole backing buffer in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing buffer in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col {c} out of bounds for {} cols", self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Dense GEMM: `self * other`, parallelized over row blocks once the
    /// problem is large enough to amortize thread spawn.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    ///
    /// # Example
    ///
    /// ```
    /// # use mokey_tensor::Matrix;
    /// let a = Matrix::from_rows(&[&[1.0, 2.0]]);
    /// let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
    /// assert_eq!(a.matmul(&b).as_slice(), &[11.0]);
    /// ```
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let flops = self.rows * self.cols * other.cols;
        if flops < PARALLEL_FLOP_THRESHOLD || self.rows < 2 {
            matmul_rows(&self.data, &other.data, &mut out.data, self.cols, other.cols);
            return out;
        }
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get()).min(self.rows);
        let rows_per = self.rows.div_ceil(threads);
        let k = self.cols;
        let n = other.cols;
        std::thread::scope(|scope| {
            let a_chunks = self.data.chunks(rows_per * k);
            let o_chunks = out.data.chunks_mut(rows_per * n);
            for (a_chunk, o_chunk) in a_chunks.zip(o_chunks) {
                let b = &other.data;
                scope.spawn(move || matmul_rows(a_chunk, b, o_chunk, k, n));
            }
        });
        out
    }

    /// GEMM against a transposed right-hand side: `self * other^T`.
    ///
    /// Attention layers compute `Q · K^T`; doing it directly on `K` avoids
    /// materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        Matrix::from_fn(self.rows, other.rows, |r, c| dot(self.row(r), other.row(c)))
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Adds a row vector to every row (broadcast bias add).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Matrix {
        assert_eq!(bias.len(), self.cols, "bias width mismatch");
        let mut out = self.clone();
        for row in out.data.chunks_exact_mut(self.cols) {
            for (x, b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
        out
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f32) -> Matrix {
        let data = self.data.iter().map(|x| x * k).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Applies `f` to every element, in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Returns a copy with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&x| f(x)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Horizontal slice: rows `[start, start + count)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the matrix.
    pub fn slice_rows(&self, start: usize, count: usize) -> Matrix {
        assert!(start + count <= self.rows, "row slice out of bounds");
        Matrix {
            rows: count,
            cols: self.cols,
            data: self.data[start * self.cols..(start + count) * self.cols].to_vec(),
        }
    }

    /// Vertical slice: columns `[start, start + count)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the matrix.
    pub fn slice_cols(&self, start: usize, count: usize) -> Matrix {
        assert!(start + count <= self.cols, "col slice out of bounds");
        Matrix::from_fn(self.rows, count, |r, c| self.data[r * self.cols + start + c])
    }

    /// Concatenates matrices left-to-right.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ or `parts` is empty.
    pub fn concat_cols(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "cannot concat zero matrices");
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "concat_cols row mismatch");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                out.row_mut(r)[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Largest absolute element difference against `other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        const SHOWN: usize = 6;
        for r in 0..self.rows.min(SHOWN) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(SHOWN) {
                write!(f, "{:9.4} ", self.data[r * self.cols + c])?;
            }
            if self.cols > SHOWN {
                write!(f, "…")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > SHOWN {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Sequential row-block GEMM kernel: `out[i][j] += a[i][k] * b[k][j]`.
///
/// `a` holds `m` rows of width `k`; `b` holds `k` rows of width `n`; `out`
/// holds `m` rows of width `n`. The i-k-j loop order keeps the inner loop
/// streaming over contiguous memory.
fn matmul_rows(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    let m = a.len() / k;
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (kk, &a_val) in a_row.iter().enumerate() {
            if a_val == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &b_val) in o_row.iter_mut().zip(b_row) {
                *o += a_val * b_val;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        Matrix::from_fn(a.rows(), b.cols(), |r, c| {
            (0..a.cols()).map(|k| a[(r, k)] * b[(k, c)]).sum()
        })
    }

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(a.matmul(&Matrix::identity(4)), a);
        assert_eq!(Matrix::identity(4).matmul(&a), a);
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = Matrix::from_fn(5, 7, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Matrix::from_fn(7, 3, |r, c| (r * c) as f32 * 0.25 - 1.0);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        // 128x128x128 = 2M flops, above the parallel threshold.
        let a = Matrix::from_fn(128, 128, |r, c| ((r * 31 + c * 17) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(128, 128, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.1);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-3);
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 6, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(5, 6, |r, c| (r as f32) - (c as f32));
        let direct = a.matmul_transposed(&b);
        let explicit = a.matmul(&b.transpose());
        assert!(direct.max_abs_diff(&explicit) < 1e-5);
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, -1.0]]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 1.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn add_row_broadcast_adds_bias_per_row() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let out = a.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(out.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn slicing_rows_and_cols() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let rows = m.slice_rows(1, 2);
        assert_eq!(rows.shape(), (2, 4));
        assert_eq!(rows.row(0), m.row(1));
        let cols = m.slice_cols(2, 2);
        assert_eq!(cols.shape(), (4, 2));
        assert_eq!(cols[(3, 1)], m[(3, 3)]);
    }

    #[test]
    fn concat_cols_roundtrips_slice_cols() {
        let m = Matrix::from_fn(3, 6, |r, c| (r * 6 + c) as f32);
        let left = m.slice_cols(0, 2);
        let right = m.slice_cols(2, 4);
        assert_eq!(Matrix::concat_cols(&[left, right]), m);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m:?}").is_empty());
    }
}
