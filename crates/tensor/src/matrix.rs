//! Row-major dense `f32` matrix with blocked, parallel GEMM kernels.
//!
//! # Bit-exact row independence
//!
//! Every GEMM kernel in this module computes output row `i` from input row
//! `i` and the right-hand side only, with a fixed per-element reduction:
//! the `matmul` family accumulates along `k` in ascending order with
//! exactly one addition per `k` (zero left-hand operands are skipped in
//! every path), while the `matmul_transposed` family evaluates each element
//! as the wide-lane [`dot_wide`], a pure function of the two operand rows.
//! Cache blocking, row micro-tiling, and the parallel row-chunk split never
//! reorder those per-element reductions, so the result for a row is
//! **bit-identical** no matter how many other rows are in the matrix or
//! which execution path ran. The transformer's packed batched inference
//! relies on this invariant: stacking several sequences into one tall GEMM
//! must reproduce each sequence's solo output exactly.
//! `gemm_rows_are_independent_of_batching` pins it.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default for [`gemm_parallel_threshold`]: 3 MFLOP. The serving engine's
/// packed batches stack several sequences into one tall GEMM — at the
/// serve-bench shapes (hidden 128, ff 512, batch 8 × ~24 tokens) that is a
/// 192×128×128 projection (≈ 3.1 MFLOP, right at the bar) and a
/// 192×128×512 FFN panel (≈ 12.6 MFLOP, well past it) — and those must
/// cross so multi-core hosts actually thread them. Every *solo* shape
/// stays below the bar (the widest, a 32-token FFN GEMM, is ≈ 2.1 MFLOP),
/// so the per-request loop never pays spawn overhead and tensor-level
/// batching keeps its parallel advantage.
pub const DEFAULT_GEMM_PARALLEL_THRESHOLD: usize = 3 << 20;

/// Minimum number of scalar multiply-accumulates before [`Matrix::matmul`]
/// bothers to spawn worker threads (below it the sequential kernel wins).
/// Configurable so callers that already parallelize across samples can
/// raise the bar instead of oversubscribing with nested spawns.
static PARALLEL_FLOP_THRESHOLD: AtomicUsize = AtomicUsize::new(DEFAULT_GEMM_PARALLEL_THRESHOLD);

/// The current GEMM parallel-spawn threshold, in scalar multiply-accumulates.
pub fn gemm_parallel_threshold() -> usize {
    PARALLEL_FLOP_THRESHOLD.load(Ordering::Relaxed)
}

/// Sets the GEMM parallel-spawn threshold (process-wide).
///
/// GEMMs with at least `flops = m·k·n` multiply-accumulates split into
/// per-thread row chunks; smaller problems run the sequential kernel. Both
/// paths are bit-identical (see the module docs), so this only trades
/// thread-spawn overhead against parallel speedup: lower it when tall
/// packed batches dominate, raise it (e.g. to `usize::MAX`, which disables
/// spawning entirely) to pin everything sequential. Callers that fan out
/// across GEMMs don't need to touch it — concurrent qualifying GEMMs
/// divide the host's cores among themselves instead of oversubscribing.
pub fn set_gemm_parallel_threshold(flops: usize) {
    PARALLEL_FLOP_THRESHOLD.store(flops, Ordering::Relaxed);
}

/// `k`-dimension block: one block of the right-hand panel (`KC × n` floats)
/// stays cache-resident while a stripe of output rows accumulates over it.
const KC: usize = 256;

/// Row micro-tile: four output rows share each loaded right-hand-side row,
/// quartering the `B`-panel traffic of the inner loop.
const MR: usize = 4;

/// Column tile for [`Matrix::matmul_transposed`]: a `JB × k` panel of the
/// (row-major) right-hand side stays hot while every left row sweeps it.
const JB: usize = 64;

/// A dense, row-major `f32` matrix.
///
/// This is the lingua franca of the workspace: transformer layers, the
/// quantizer, and the baselines all exchange `Matrix` values. The layout is
/// guaranteed row-major and contiguous, so `data[r * cols + c]` addresses
/// element `(r, c)`; [`Matrix::row`] hands out contiguous row slices which
/// the quantization kernels consume directly.
///
/// # Example
///
/// ```
/// use mokey_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Example
    ///
    /// ```
    /// # use mokey_tensor::Matrix;
    /// let z = Matrix::zeros(2, 2);
    /// assert_eq!(z.as_slice(), &[0.0; 4]);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows: expected width {cols}");
            data.extend_from_slice(row);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The whole backing buffer in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing buffer in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col {c} out of bounds for {} cols", self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Dense GEMM: `self * other`, parallelized over row blocks once the
    /// problem is large enough to amortize thread spawn.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    ///
    /// # Example
    ///
    /// ```
    /// # use mokey_tensor::Matrix;
    /// let a = Matrix::from_rows(&[&[1.0, 2.0]]);
    /// let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
    /// assert_eq!(a.matmul(&b).as_slice(), &[11.0]);
    /// ```
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.gemm_into(other, &mut out);
        out
    }

    /// Fused GEMM + broadcast bias: `self * other + bias`, with the bias
    /// pre-loaded into the accumulators so no separate bias pass (or output
    /// clone) runs. This is the `nn::linear` hot path.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()` or
    /// `bias.len() != other.cols()`.
    pub fn matmul_bias(&self, other: &Matrix, bias: &[f32]) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(bias.len(), other.cols, "bias width mismatch");
        let mut data = Vec::with_capacity(self.rows * other.cols);
        for _ in 0..self.rows {
            data.extend_from_slice(bias);
        }
        let mut out = Matrix { rows: self.rows, cols: other.cols, data };
        self.gemm_into(other, &mut out);
        out
    }

    /// Accumulating GEMM dispatch: `out += self * other`, parallelized over
    /// row chunks once the problem is large enough to amortize thread
    /// spawn. `out` must already hold the additive initial value (zeros or
    /// a broadcast bias).
    fn gemm_into(&self, other: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(out.shape(), (self.rows, other.cols));
        dispatch_rows(&self.data, &other.data, &mut out.data, self.cols, other.cols, matmul_rows);
    }

    /// GEMM against a transposed right-hand side: `self * other^T`.
    ///
    /// Attention layers compute `Q · K^T`; doing it directly on `K` avoids
    /// materializing the transpose. Runs the wide-lane [`dot_wide`] kernel
    /// over `JB`-row panels of `other`, and takes the same parallel
    /// row-chunk path as [`Matrix::matmul`] once the problem is large
    /// enough.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        dispatch_rows(
            &self.data,
            &other.data,
            &mut out.data,
            self.cols,
            other.rows,
            matmul_transposed_rows,
        );
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Adds a row vector to every row (broadcast bias add).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Matrix {
        assert_eq!(bias.len(), self.cols, "bias width mismatch");
        let mut out = self.clone();
        for row in out.data.chunks_exact_mut(self.cols) {
            for (x, b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
        out
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f32) -> Matrix {
        let data = self.data.iter().map(|x| x * k).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Applies `f` to every element, in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Returns a copy with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&x| f(x)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Horizontal slice: rows `[start, start + count)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the matrix.
    pub fn slice_rows(&self, start: usize, count: usize) -> Matrix {
        assert!(start + count <= self.rows, "row slice out of bounds");
        Matrix {
            rows: count,
            cols: self.cols,
            data: self.data[start * self.cols..(start + count) * self.cols].to_vec(),
        }
    }

    /// Vertical slice: columns `[start, start + count)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the matrix.
    pub fn slice_cols(&self, start: usize, count: usize) -> Matrix {
        assert!(start + count <= self.cols, "col slice out of bounds");
        Matrix::from_fn(self.rows, count, |r, c| self.data[r * self.cols + start + c])
    }

    /// Rectangular sub-matrix: rows `[row_start, row_start + rows)` ×
    /// columns `[col_start, col_start + cols)` in one copy (the packed
    /// attention path slices a head's columns out of one sequence's row
    /// block).
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix.
    pub fn slice_block(
        &self,
        row_start: usize,
        rows: usize,
        col_start: usize,
        cols: usize,
    ) -> Matrix {
        assert!(row_start + rows <= self.rows, "row block out of bounds");
        assert!(col_start + cols <= self.cols, "col block out of bounds");
        let mut data = Vec::with_capacity(rows * cols);
        for r in row_start..row_start + rows {
            let row = &self.data[r * self.cols + col_start..r * self.cols + col_start + cols];
            data.extend_from_slice(row);
        }
        Matrix { rows, cols, data }
    }

    /// Concatenates matrices left-to-right.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ or `parts` is empty.
    pub fn concat_cols(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "cannot concat zero matrices");
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "concat_cols row mismatch");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                out.row_mut(r)[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Largest absolute element difference against `other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        const SHOWN: usize = 6;
        for r in 0..self.rows.min(SHOWN) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(SHOWN) {
                write!(f, "{:9.4} ", self.data[r * self.cols + c])?;
            }
            if self.cols > SHOWN {
                write!(f, "…")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > SHOWN {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices, computed with four independent
/// accumulator lanes (lane `l` sums elements `i ≡ l mod 4` over the 4-wide
/// prefix) combined as `(s0 + s1) + (s2 + s3)`, then the up-to-3-element
/// remainder added sequentially. The lane structure is fixed — it depends
/// only on the slice length — so results are deterministic and pinned by
/// `dot_lane_reduction_order_is_pinned`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        s0 += xa[0] * xb[0];
        s1 += xa[1] * xb[1];
        s2 += xa[2] * xb[2];
        s3 += xa[3] * xb[3];
    }
    let mut acc = (s0 + s1) + (s2 + s3);
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += x * y;
    }
    acc
}

/// Wide-lane dot product used by the `A · B^T` GEMM paths: sixteen
/// accumulation lanes held in two `[f32; 8]` arrays (lane `l` of array `t`
/// sums elements `i ≡ 8t + l (mod 16)` over the 16-wide prefix), folded
/// lane-pairwise (`s0[l] + s1[l]`) and then in the fixed binary tree
/// `((t0+t1)+(t2+t3)) + ((t4+t5)+(t6+t7))`, with the up-to-15-element
/// remainder added sequentially.
///
/// This is deliberately a **different pinned reduction** from the public
/// [`dot`]: explicit 8-wide lane arrays are the shape the autovectorizer
/// reliably lowers to full-width SIMD FMAs, where `dot`'s four scalar
/// accumulators fill half a vector register. [`dot`] keeps its historical
/// order because callers pin it bit-exactly
/// (`dot_lane_reduction_order_is_pinned`); the `matmul_transposed` paths
/// pin *outputs* — row independence, parallel == sequential — not an
/// ordering, so they are free to take the wider kernel. Like `dot`, this
/// is a pure function of the two operand slices: every caller tiling
/// (blocked panels, parallel row chunks, the transformer's fused packed
/// attention) produces identical bits per element.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_wide(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    const W: usize = 8;
    let mut ca = a.chunks_exact(2 * W);
    let mut cb = b.chunks_exact(2 * W);
    let mut s0 = [0.0f32; W];
    let mut s1 = [0.0f32; W];
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for l in 0..W {
            s0[l] += xa[l] * xb[l];
            s1[l] += xa[W + l] * xb[W + l];
        }
    }
    let mut t = [0.0f32; W];
    for l in 0..W {
        t[l] = s0[l] + s1[l];
    }
    let mut acc = ((t[0] + t[1]) + (t[2] + t[3])) + ((t[4] + t[5]) + (t[6] + t[7]));
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += x * y;
    }
    acc
}

/// Count of parallel GEMMs currently in flight, process-wide. Callers
/// that already parallelize across GEMMs (the serving worker pool, the
/// eval harness) would oversubscribe the host if every qualifying GEMM
/// also spawned `available_parallelism` threads; instead the cores are
/// divided among the concurrent GEMMs, degrading gracefully to the
/// sequential kernel when the host is already saturated. Thread count
/// never affects results (see the module docs), only wall-clock time.
static PARALLEL_GEMMS_IN_FLIGHT: AtomicUsize = AtomicUsize::new(0);

/// Shared GEMM dispatch: runs `kernel(a, b, out, k, n)` sequentially, or
/// splits `a`/`out` into per-thread row chunks once the problem is large
/// enough to amortize thread spawn. Both kernels compute each output row
/// from its input row alone, so chunking never changes results.
fn dispatch_rows(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    n: usize,
    kernel: fn(&[f32], &[f32], &mut [f32], usize, usize),
) {
    let m = a.len().checked_div(k).unwrap_or(0);
    let flops = m * k * n;
    if flops < gemm_parallel_threshold() || m < 2 {
        kernel(a, b, out, k, n);
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, |t| t.get());
    // Share the cores among every parallel GEMM currently in flight:
    // a lone tall GEMM gets them all, while N concurrent callers get
    // ~cores/N each instead of N·cores threads fighting the scheduler.
    let concurrent = PARALLEL_GEMMS_IN_FLIGHT.fetch_add(1, Ordering::Relaxed) + 1;
    struct InFlightGuard;
    impl Drop for InFlightGuard {
        fn drop(&mut self) {
            PARALLEL_GEMMS_IN_FLIGHT.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let _guard = InFlightGuard;
    let threads = (cores / concurrent).min(m);
    // A single-core host, a saturated one, or a one-row problem gains
    // nothing from the scoped spawn; keep it on the calling thread.
    if threads < 2 {
        kernel(a, b, out, k, n);
        return;
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let a_chunks = a.chunks(rows_per * k);
        let o_chunks = out.chunks_mut(rows_per * n);
        for (a_chunk, o_chunk) in a_chunks.zip(o_chunks) {
            scope.spawn(move || kernel(a_chunk, b, o_chunk, k, n));
        }
    });
}

/// Adds `a · x` into `y` (the caller guarantees `a` is non-zero), walked
/// in explicit `[f32; 8]` column chunks so the autovectorizer sees one
/// full-register FMA stream per loaded `x` chunk. Each output element
/// receives exactly one addition per call, so the chunking never changes
/// the per-(i,j) ascending-`k` reduction order of [`matmul_rows`].
///
/// One stream per call deliberately: an experiment fusing all four
/// micro-tile rows into a single four-stream pass measured ~3× *slower*
/// here — the zipped mutable chunk iterators defeat vectorization —
/// while four sequential passes re-read a cache-hot `b` row and keep
/// each loop trivially vectorizable.
#[inline]
fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    const W: usize = 8;
    let y = &mut y[..x.len()];
    let mut yc = y.chunks_exact_mut(W);
    let mut xc = x.chunks_exact(W);
    for (yv, xv) in (&mut yc).zip(&mut xc) {
        for l in 0..W {
            yv[l] += a * xv[l];
        }
    }
    for (o, &v) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *o += a * v;
    }
}

/// Sequential blocked GEMM kernel: `out[i][j] += a[i][k] * b[k][j]`.
///
/// `a` holds `m` rows of width `k`; `b` holds `k` rows of width `n`; `out`
/// holds `m` rows of width `n` and is **accumulated into** (pre-seed it
/// with zeros or a bias). The `k` dimension is processed in `KC` blocks so
/// each `B` panel stays cache-resident, and rows are micro-tiled `MR` at a
/// time so one loaded `B` row feeds four accumulating output rows.
///
/// Per-(i,j) the accumulation order is ascending `k` with one addition per
/// `k`, and zero `a` values are skipped in every path — blocking and
/// tiling never change a row's bits (see the module docs).
fn matmul_rows(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    let m = a.len() / k;
    debug_assert_eq!(out.len(), m * n);
    for k0 in (0..k).step_by(KC) {
        let kb = KC.min(k - k0);
        let mut i = 0;
        while i + MR <= m {
            let (r0, rest) = out[i * n..(i + MR) * n].split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, r3) = rest.split_at_mut(n);
            for kk in k0..k0 + kb {
                let a0 = a[i * k + kk];
                let a1 = a[(i + 1) * k + kk];
                let a2 = a[(i + 2) * k + kk];
                let a3 = a[(i + 3) * k + kk];
                if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                // Per-row passes: zero lanes (masked attention rows) cost
                // nothing and every non-zero row keeps the same ascending-k
                // reduction; see `axpy` for why the four streams stay
                // separate.
                for (row, av) in [(&mut *r0, a0), (&mut *r1, a1), (&mut *r2, a2), (&mut *r3, a3)] {
                    if av != 0.0 {
                        axpy(row, av, b_row);
                    }
                }
            }
            i += MR;
        }
        while i < m {
            let a_row = &a[i * k + k0..i * k + k0 + kb];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (kk, &a_val) in a_row.iter().enumerate() {
                if a_val == 0.0 {
                    continue;
                }
                axpy(o_row, a_val, &b[(k0 + kk) * n..(k0 + kk + 1) * n]);
            }
            i += 1;
        }
    }
}

/// Sequential blocked kernel for `A · B^T`: `out[i][j] = dot(a_i, b_j)`.
///
/// `a` holds `m` rows of width `k`; `b` holds `bn` rows of width `k` (the
/// transposed operand in its natural row-major layout); `out` holds `m`
/// rows of width `bn`. `b` is swept in `JB`-row panels that stay
/// cache-resident across every `a` row; each element is one wide-lane
/// [`dot_wide`] — a pure function of the two operand rows — so results
/// are independent of the tiling.
fn matmul_transposed_rows(a: &[f32], b: &[f32], out: &mut [f32], k: usize, bn: usize) {
    let m = a.len() / k;
    debug_assert_eq!(out.len(), m * bn);
    for j0 in (0..bn).step_by(JB) {
        let jb = JB.min(bn - j0);
        let b_panel = &b[j0 * k..(j0 + jb) * k];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let o_slice = &mut out[i * bn + j0..i * bn + j0 + jb];
            for (o, b_row) in o_slice.iter_mut().zip(b_panel.chunks_exact(k)) {
                *o = dot_wide(a_row, b_row);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        Matrix::from_fn(a.rows(), b.cols(), |r, c| {
            (0..a.cols()).map(|k| a[(r, k)] * b[(k, c)]).sum()
        })
    }

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(a.matmul(&Matrix::identity(4)), a);
        assert_eq!(Matrix::identity(4).matmul(&a), a);
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = Matrix::from_fn(5, 7, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Matrix::from_fn(7, 3, |r, c| (r * c) as f32 * 0.25 - 1.0);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        // 128x128x128 = 2M flops, above the parallel threshold.
        let a = Matrix::from_fn(128, 128, |r, c| ((r * 31 + c * 17) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(128, 128, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.1);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-3);
    }

    /// Stacks two matrices vertically (test helper).
    fn vstack(top: &Matrix, bottom: &Matrix) -> Matrix {
        assert_eq!(top.cols(), bottom.cols());
        let mut data = top.as_slice().to_vec();
        data.extend_from_slice(bottom.as_slice());
        Matrix::from_vec(top.rows() + bottom.rows(), top.cols(), data)
    }

    #[test]
    fn gemm_rows_are_independent_of_batching() {
        // The packed-batching invariant: computing two stacked operands in
        // one tall GEMM must reproduce each operand's solo rows bit for
        // bit, for every kernel entry point.
        let a1 = Matrix::from_fn(5, 300, |r, c| ((r * 37 + c * 11) % 23) as f32 * 0.17 - 1.9);
        let a2 = Matrix::from_fn(9, 300, |r, c| ((r * 13 + c * 29) % 19) as f32 * 0.23 - 2.1);
        let stacked = vstack(&a1, &a2);
        let b = Matrix::from_fn(300, 40, |r, c| ((r * 7 + c * 3) % 31) as f32 * 0.09 - 1.3);
        let bias: Vec<f32> = (0..40).map(|j| j as f32 * 0.01 - 0.2).collect();
        let bt = Matrix::from_fn(21, 300, |r, c| ((r * 5 + c * 17) % 13) as f32 * 0.31 - 1.8);

        let whole = stacked.matmul(&b);
        assert_eq!(whole.slice_rows(0, 5), a1.matmul(&b));
        assert_eq!(whole.slice_rows(5, 9), a2.matmul(&b));

        let whole = stacked.matmul_bias(&b, &bias);
        assert_eq!(whole.slice_rows(0, 5), a1.matmul_bias(&b, &bias));
        assert_eq!(whole.slice_rows(5, 9), a2.matmul_bias(&b, &bias));

        let whole = stacked.matmul_transposed(&bt);
        assert_eq!(whole.slice_rows(0, 5), a1.matmul_transposed(&bt));
        assert_eq!(whole.slice_rows(5, 9), a2.matmul_transposed(&bt));
    }

    #[test]
    fn blocked_kernel_matches_unblocked_reference() {
        // k > KC exercises the k-block seam; m not divisible by MR
        // exercises the remainder rows. The blocked kernel must equal the
        // plain ascending-k i-k-j reduction exactly, not within tolerance.
        let a = Matrix::from_fn(7, 2 * KC + 3, |r, c| ((r * 31 + c * 17) % 13) as f32 * 0.21 - 1.2);
        let b = Matrix::from_fn(2 * KC + 3, 9, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.13 - 0.7);
        let reference = Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            let mut acc = 0.0f32;
            for kk in 0..a.cols() {
                if a[(i, kk)] != 0.0 {
                    acc += a[(i, kk)] * b[(kk, j)];
                }
            }
            acc
        });
        assert_eq!(a.matmul(&b), reference);
    }

    #[test]
    fn dot_lane_reduction_order_is_pinned() {
        // Lane semantics: s_l sums indices ≡ l (mod 4) over the 4-wide
        // prefix, combined as (s0+s1)+(s2+s3), remainder appended
        // sequentially. With these values the lane order is observable:
        // (1 + 1e8) + (-1e8 + 1) = 0.0 exactly, while a plain sequential
        // sum would give 1.0.
        let a = [1.0f32, 1e8, -1e8, 1.0];
        let ones = [1.0f32; 4];
        assert_eq!(dot(&a, &ones), 0.0);
        let sequential: f32 = a.iter().sum();
        assert_eq!(sequential, 1.0);
        // Remainder elements are added after the lane combine.
        let b = [1.0f32, 1e8, -1e8, 1.0, 0.25];
        assert_eq!(dot(&b, &[1.0; 5]), 0.25);
        // And the kernel is a real dot product on friendly values.
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    /// Serializes the tests that write the process-global threshold —
    /// libtest runs tests concurrently, and an interleaved writer would
    /// flake the readback assertions (concurrent *readers* are fine:
    /// both dispatch paths are bit-exact).
    static THRESHOLD_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn parallel_threshold_is_configurable_and_never_changes_results() {
        let _guard = THRESHOLD_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        // Results must be bit-identical whichever side of the threshold a
        // problem lands on — flip the bar around a mid-size GEMM and
        // compare, then restore the default so other tests keep their
        // intended paths.
        let a = Matrix::from_fn(96, 96, |r, c| ((r * 31 + c * 17) % 13) as f32 * 0.21 - 1.2);
        let b = Matrix::from_fn(96, 96, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.13 - 0.7);
        set_gemm_parallel_threshold(usize::MAX);
        assert_eq!(gemm_parallel_threshold(), usize::MAX);
        let sequential = a.matmul(&b);
        set_gemm_parallel_threshold(1);
        let parallel = a.matmul(&b);
        set_gemm_parallel_threshold(DEFAULT_GEMM_PARALLEL_THRESHOLD);
        assert_eq!(gemm_parallel_threshold(), DEFAULT_GEMM_PARALLEL_THRESHOLD);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn concurrent_parallel_gemms_stay_bit_identical_while_sharing_cores() {
        let _guard = THRESHOLD_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        // Many threads driving qualifying GEMMs at once exercises the
        // in-flight sharing (each call sees an elevated concurrent count
        // and spawns fewer or zero workers); every result must still be
        // bit-identical to the sequential kernel.
        let a = Matrix::from_fn(96, 96, |r, c| ((r * 31 + c * 17) % 13) as f32 * 0.21 - 1.2);
        let b = Matrix::from_fn(96, 96, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.13 - 0.7);
        set_gemm_parallel_threshold(1);
        let reference = {
            let mut out = Matrix::zeros(96, 96);
            matmul_rows(a.as_slice(), b.as_slice(), out.as_mut_slice(), 96, 96);
            out
        };
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let (a, b, reference) = (&a, &b, &reference);
                scope.spawn(move || {
                    for _ in 0..4 {
                        assert_eq!(&a.matmul(b), reference);
                    }
                });
            }
        });
        set_gemm_parallel_threshold(DEFAULT_GEMM_PARALLEL_THRESHOLD);
    }

    #[test]
    fn default_threshold_is_crossed_by_packed_serve_shapes() {
        // The serve bench packs ~8 × 24-token sequences against 128-wide
        // projections and 512-wide FFN panels; those tall GEMMs must
        // qualify for the parallel row-chunk path, while every solo
        // per-request shape (even the widest FFN one) must not.
        let packed_proj = 192 * 128 * 128; // (batch·seq) × hidden × hidden
        let packed_ffn = 192 * 128 * 512; // (batch·seq) × hidden × ff
        let solo_proj = 32 * 128 * 128;
        let solo_ffn = 32 * 128 * 512;
        assert!(packed_proj >= DEFAULT_GEMM_PARALLEL_THRESHOLD);
        assert!(packed_ffn >= DEFAULT_GEMM_PARALLEL_THRESHOLD);
        assert!(solo_proj < DEFAULT_GEMM_PARALLEL_THRESHOLD);
        assert!(solo_ffn < DEFAULT_GEMM_PARALLEL_THRESHOLD);
    }

    #[test]
    fn matmul_bias_matches_matmul_plus_broadcast() {
        let a = Matrix::from_fn(6, 10, |r, c| (r as f32 - c as f32) * 0.3);
        let b = Matrix::from_fn(10, 4, |r, c| (r * c) as f32 * 0.05 - 0.4);
        let bias = [0.5f32, -1.0, 0.25, 2.0];
        let fused = a.matmul_bias(&b, &bias);
        let unfused = a.matmul(&b).add_row_broadcast(&bias);
        assert!(fused.max_abs_diff(&unfused) < 1e-5);
    }

    #[test]
    fn matmul_transposed_parallel_path_matches_sequential() {
        // 300·300·200 = 18M flops, above the parallel threshold.
        let a = Matrix::from_fn(300, 200, |r, c| ((r * 31 + c * 17) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(300, 200, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.1);
        let parallel = a.matmul_transposed(&b);
        let mut sequential = Matrix::zeros(300, 300);
        matmul_transposed_rows(a.as_slice(), b.as_slice(), sequential.as_mut_slice(), 200, 300);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 6, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(5, 6, |r, c| (r as f32) - (c as f32));
        let direct = a.matmul_transposed(&b);
        let explicit = a.matmul(&b.transpose());
        assert!(direct.max_abs_diff(&explicit) < 1e-5);
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, -1.0]]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 1.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn add_row_broadcast_adds_bias_per_row() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let out = a.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(out.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn slicing_rows_and_cols() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let rows = m.slice_rows(1, 2);
        assert_eq!(rows.shape(), (2, 4));
        assert_eq!(rows.row(0), m.row(1));
        let cols = m.slice_cols(2, 2);
        assert_eq!(cols.shape(), (4, 2));
        assert_eq!(cols[(3, 1)], m[(3, 3)]);
    }

    #[test]
    fn slice_block_matches_row_then_col_slicing() {
        let m = Matrix::from_fn(6, 8, |r, c| (r * 8 + c) as f32);
        let block = m.slice_block(2, 3, 1, 4);
        assert_eq!(block, m.slice_rows(2, 3).slice_cols(1, 4));
    }

    #[test]
    fn concat_cols_roundtrips_slice_cols() {
        let m = Matrix::from_fn(3, 6, |r, c| (r * 6 + c) as f32);
        let left = m.slice_cols(0, 2);
        let right = m.slice_cols(2, 4);
        assert_eq!(Matrix::concat_cols(&[left, right]), m);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m:?}").is_empty());
    }
}
