//! Seeded random tensor initialization.
//!
//! The Mokey paper evaluates pre-trained FP16 checkpoints from the Hugging
//! Face hub. Those checkpoints are not reproducible inputs for this
//! repository, so — per the substitution table in `DESIGN.md` — we generate
//! synthetic tensors whose *distributional shape* matches what the paper
//! exploits: bell-shaped bulk with a small, wide outlier tail (Section II:
//! "most of values are densely populated around their mean … and a small
//! fraction of values (covering a wider range) are outliers").

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Recipe for a bell-shaped value distribution with a heavy tail.
///
/// `GaussianMixture { mean, std, outlier_fraction, outlier_scale }` draws
/// from `N(mean, std²)` with probability `1 − outlier_fraction` and from
/// `N(mean, (outlier_scale·std)²)` otherwise. With the defaults below, the
/// fraction of values falling outside Mokey's Gaussian-dictionary range
/// lands near the paper's reported outlier rates (~1.5% for weights).
///
/// # Example
///
/// ```
/// use mokey_tensor::init::GaussianMixture;
///
/// let m = GaussianMixture::weight_like(0.0, 0.02).sample_matrix(64, 64, 7);
/// assert_eq!(m.shape(), (64, 64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianMixture {
    /// Mean of both mixture components.
    pub mean: f64,
    /// Standard deviation of the bulk component.
    pub std: f64,
    /// Probability of drawing from the wide (outlier) component.
    pub outlier_fraction: f64,
    /// Width multiplier of the outlier component.
    pub outlier_scale: f64,
}

impl GaussianMixture {
    /// A pure Gaussian (no outlier component).
    pub fn pure(mean: f64, std: f64) -> Self {
        Self { mean, std, outlier_fraction: 0.0, outlier_scale: 1.0 }
    }

    /// Mixture calibrated to mimic *weight* tensors of pre-trained
    /// transformers: sharply peaked bulk, ~1.5% of values in a ~4× wider
    /// tail (paper Table I reports 1.2–1.6% weight outliers).
    pub fn weight_like(mean: f64, std: f64) -> Self {
        Self { mean, std, outlier_fraction: 0.012, outlier_scale: 4.0 }
    }

    /// Mixture calibrated to mimic *activation* tensors: wider tail and a
    /// larger tail mass (paper Table I reports 1.7–4.5% activation
    /// outliers; activations "exhibit a much larger range").
    pub fn activation_like(mean: f64, std: f64) -> Self {
        Self { mean, std, outlier_fraction: 0.035, outlier_scale: 6.0 }
    }

    /// Draws one sample.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or not finite.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let bulk = Normal::new(self.mean, self.std).expect("invalid bulk distribution");
        if self.outlier_fraction > 0.0 && rng.gen::<f64>() < self.outlier_fraction {
            let tail = Normal::new(self.mean, self.std * self.outlier_scale)
                .expect("invalid tail distribution");
            tail.sample(rng)
        } else {
            bulk.sample(rng)
        }
    }

    /// Fills a `rows × cols` matrix from a dedicated seeded RNG.
    pub fn sample_matrix(&self, rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        self.sample_matrix_with(rows, cols, &mut rng)
    }

    /// Fills a `rows × cols` matrix advancing the caller's RNG.
    pub fn sample_matrix_with(&self, rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
        let bulk = Normal::new(self.mean, self.std).expect("invalid bulk distribution");
        let tail = Normal::new(self.mean, self.std * self.outlier_scale.max(1.0))
            .expect("invalid tail distribution");
        let data = (0..rows * cols)
            .map(|_| {
                let x = if self.outlier_fraction > 0.0 && rng.gen::<f64>() < self.outlier_fraction {
                    tail.sample(rng)
                } else {
                    bulk.sample(rng)
                };
                x as f32
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Draws `n` scalar samples into a vector from a dedicated seeded RNG.
    pub fn sample_vec(&self, n: usize, seed: u64) -> Vec<f32> {
        self.sample_matrix(1, n, seed).into_vec()
    }
}

/// Samples a standard-normal `N(0, 1)` vector — the raw material of the
/// Golden Dictionary (paper Section II-B: "generate a random Gaussian
/// distribution with 50,000 samples with a mean of zero and a standard
/// deviation of one").
pub fn standard_normal_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let normal = Normal::new(0.0, 1.0).expect("N(0,1) is valid");
    (0..n).map(|_| normal.sample(&mut rng)).collect()
}

/// Uniform matrix in `[lo, hi)` from a dedicated seeded RNG.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform_matrix(rows: usize, cols: usize, lo: f32, hi: f32, seed: u64) -> Matrix {
    assert!(lo < hi, "uniform range must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    #[test]
    fn pure_gaussian_moments() {
        let m = GaussianMixture::pure(1.0, 0.5).sample_matrix(200, 200, 42);
        let s = Summary::of(m.as_slice());
        assert!((s.mean() - 1.0).abs() < 0.02, "mean {}", s.mean());
        assert!((s.std() - 0.5).abs() < 0.02, "std {}", s.std());
    }

    #[test]
    fn mixture_has_heavier_tail_than_pure() {
        let pure = GaussianMixture::pure(0.0, 1.0).sample_matrix(100, 1000, 1);
        let mixed = GaussianMixture {
            outlier_fraction: 0.05,
            outlier_scale: 6.0,
            ..GaussianMixture::pure(0.0, 1.0)
        }
        .sample_matrix(100, 1000, 1);
        let beyond = |m: &crate::Matrix| m.as_slice().iter().filter(|x| x.abs() > 4.0).count();
        assert!(beyond(&mixed) > beyond(&pure) * 5, "tail mass should grow");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = GaussianMixture::weight_like(0.0, 0.1).sample_matrix(8, 8, 99);
        let b = GaussianMixture::weight_like(0.0, 0.1).sample_matrix(8, 8, 99);
        let c = GaussianMixture::weight_like(0.0, 0.1).sample_matrix(8, 8, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn standard_normal_vec_moments() {
        let v = standard_normal_vec(50_000, 7);
        let s: Summary = v.into_iter().collect();
        assert!(s.mean().abs() < 0.02);
        assert!((s.std() - 1.0).abs() < 0.02);
    }

    #[test]
    fn uniform_matrix_in_range() {
        let m = uniform_matrix(10, 10, -2.0, 3.0, 5);
        assert!(m.as_slice().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "uniform range")]
    fn uniform_empty_range_panics() {
        let _ = uniform_matrix(1, 1, 1.0, 1.0, 0);
    }
}
