//! Dense `f32` matrix substrate for the Mokey reproduction.
//!
//! The Mokey paper (ISCA 2022) quantizes transformer weights and activations;
//! every other crate in this workspace consumes tensors. This crate provides
//! the minimal-but-complete dense linear algebra the reproduction needs:
//!
//! * [`Matrix`] — row-major dense `f32` matrix with parallel GEMM
//!   ([`Matrix::matmul`]) and the usual structural operations.
//! * [`stats`] — per-tensor statistics (mean, standard deviation, extrema)
//!   used by Mokey's per-tensor dictionary generation (paper Section II-C).
//! * [`init`] — seeded random initialization, including the bell-shaped
//!   mixture distributions that stand in for pre-trained checkpoints (see
//!   `DESIGN.md` substitution table).
//! * [`nn`] — softmax, layer normalization, GELU and friends, i.e. the
//!   non-GEMM operators of a transformer encoder.
//!
//! # Example
//!
//! ```
//! use mokey_tensor::Matrix;
//!
//! let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
//! let b = Matrix::identity(3);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

mod matrix;

pub mod init;
pub mod nn;
pub mod stats;

pub use matrix::{
    dot, dot_wide, gemm_parallel_threshold, set_gemm_parallel_threshold, Matrix,
    DEFAULT_GEMM_PARALLEL_THRESHOLD,
};
