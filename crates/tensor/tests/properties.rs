//! Property-based tests for the tensor substrate.

use mokey_tensor::stats::Summary;
use mokey_tensor::{nn, Matrix};
use proptest::prelude::*;

/// Strategy producing a matrix of bounded size with finite values.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #[test]
    fn transpose_involution(m in matrix_strategy(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_left_right(m in matrix_strategy(10)) {
        let left = Matrix::identity(m.rows()).matmul(&m);
        let right = m.matmul(&Matrix::identity(m.cols()));
        prop_assert!(left.max_abs_diff(&m) < 1e-4);
        prop_assert!(right.max_abs_diff(&m) < 1e-4);
    }

    #[test]
    fn matmul_distributes_over_add(
        (a, b, c) in (1usize..8, 1usize..8, 1usize..8).prop_flat_map(|(m, k, n)| {
            (
                prop::collection::vec(-10.0f32..10.0, m * k)
                    .prop_map(move |d| Matrix::from_vec(m, k, d)),
                prop::collection::vec(-10.0f32..10.0, k * n)
                    .prop_map(move |d| Matrix::from_vec(k, n, d)),
                prop::collection::vec(-10.0f32..10.0, k * n)
                    .prop_map(move |d| Matrix::from_vec(k, n, d)),
            )
        })
    ) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-2);
    }

    #[test]
    fn matmul_transposed_consistent(m in matrix_strategy(10), n in matrix_strategy(10)) {
        // Reshape n to share m's column count by transposing when needed.
        let b = Matrix::from_fn(7, m.cols(), |r, c| n.as_slice()[(r * 31 + c) % n.len()]);
        let direct = m.matmul_transposed(&b);
        let explicit = m.matmul(&b.transpose());
        // The transposed kernel reduces in 4-wide lanes while matmul
        // accumulates one k at a time, so agreement is to rounding at the
        // result's scale, not exact.
        let scale = direct.as_slice().iter().fold(1.0f32, |s, x| s.max(x.abs()));
        prop_assert!(direct.max_abs_diff(&explicit) < scale * 1e-5);
    }

    #[test]
    fn summary_bounds_contain_all_samples(vals in prop::collection::vec(-1e6f32..1e6, 1..500)) {
        let s = Summary::of(&vals);
        for &v in &vals {
            prop_assert!(f64::from(v) >= s.min() - 1e-9);
            prop_assert!(f64::from(v) <= s.max() + 1e-9);
        }
        prop_assert!(s.std() >= 0.0);
        prop_assert!(s.mean() >= s.min() - 1e-9 && s.mean() <= s.max() + 1e-9);
    }

    #[test]
    fn summary_merge_is_order_insensitive(
        a in prop::collection::vec(-1e3f32..1e3, 1..200),
        b in prop::collection::vec(-1e3f32..1e3, 1..200),
    ) {
        let mut ab = Summary::of(&a);
        ab.merge(&Summary::of(&b));
        let mut ba = Summary::of(&b);
        ba.merge(&Summary::of(&a));
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-6);
        prop_assert!((ab.std() - ba.std()).abs() < 1e-6);
        prop_assert_eq!(ab.count(), ba.count());
    }

    #[test]
    fn softmax_rows_are_probability_distributions(m in matrix_strategy(10)) {
        let mut sm = m.clone();
        nn::softmax_rows(&mut sm);
        for r in 0..sm.rows() {
            let sum: f32 = sm.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(sm.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn slice_concat_roundtrip(m in matrix_strategy(10), split in 0usize..10) {
        let split = split.min(m.cols().saturating_sub(1)).max(1).min(m.cols());
        if split < m.cols() {
            let left = m.slice_cols(0, split);
            let right = m.slice_cols(split, m.cols() - split);
            prop_assert_eq!(Matrix::concat_cols(&[left, right]), m);
        }
    }
}
