//! Scoped worker-pool fan-out with per-worker scratch arenas.
//!
//! All pipeline parallelism funnels through [`map_with_scratch`]: a
//! `std::thread::scope` pool pulls item indexes from a shared atomic
//! counter (cheap dynamic load balancing — tensor sizes vary by orders of
//! magnitude), and each worker owns one [`WorkerScratch`] that persists
//! across all the items it processes. Results are reassembled in input
//! order, so the output is **bit-identical** to a serial run regardless of
//! scheduling.

use mokey_core::dict::DictScratch;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Degree of parallelism for per-tensor fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One worker per available core, capped by the item count.
    #[default]
    Auto,
    /// Single-threaded execution (the reference path; produces the same
    /// bits as every other mode, just slower).
    Serial,
    /// Exactly this many workers (also capped by the item count).
    Threads(usize),
}

impl Parallelism {
    /// Concrete worker count for `items` work items.
    pub fn workers(self, items: usize) -> usize {
        let cap = items.max(1);
        match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => {
                std::thread::available_parallelism().map_or(1, |n| n.get()).min(cap)
            }
            Parallelism::Threads(n) => n.max(1).min(cap),
        }
    }
}

/// Per-worker reusable buffers for the quantization hot paths.
///
/// One arena lives for the whole lifetime of a worker thread, so the
/// dictionary fits for N tensors cost O(workers) transient allocations
/// instead of O(N).
#[derive(Debug, Default)]
pub struct WorkerScratch {
    /// Dictionary-construction buffers (z-magnitudes, sort, outliers).
    pub dict: DictScratch,
}

/// Order-preserving parallel map handing each worker a persistent
/// [`WorkerScratch`].
///
/// Workers claim items through an atomic cursor (dynamic load balancing)
/// and stash `(index, result)` pairs locally; the pairs are merged and
/// sorted back into input order at the end, so the result is identical to
/// `items.iter().map(...)` for any [`Parallelism`].
pub fn map_with_scratch<T, R, F>(items: &[T], par: Parallelism, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut WorkerScratch, usize, &T) -> R + Sync,
{
    let workers = par.workers(items.len());
    if workers <= 1 || items.len() <= 1 {
        let mut scratch = WorkerScratch::default();
        return items.iter().enumerate().map(|(i, item)| f(&mut scratch, i, item)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut scratch = WorkerScratch::default();
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&mut scratch, i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            indexed.extend(handle.join().expect("pipeline worker panicked"));
        }
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Order-preserving parallel map without scratch (for batch inference and
/// other fan-outs that carry their own state).
pub fn map<T, R, F>(items: &[T], par: Parallelism, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_with_scratch(items, par, |_, _, item| f(item))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_respect_mode_and_item_cap() {
        assert_eq!(Parallelism::Serial.workers(100), 1);
        assert_eq!(Parallelism::Threads(4).workers(100), 4);
        assert_eq!(Parallelism::Threads(4).workers(2), 2);
        assert_eq!(Parallelism::Threads(0).workers(5), 1);
        assert!(Parallelism::Auto.workers(1000) >= 1);
        assert_eq!(Parallelism::Auto.workers(1), 1);
    }

    #[test]
    fn map_preserves_order_for_all_modes() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for par in [Parallelism::Serial, Parallelism::Auto, Parallelism::Threads(3)] {
            assert_eq!(map(&items, par, |&x| x * x), expect, "{par:?}");
        }
    }

    #[test]
    fn scratch_persists_within_a_serial_worker() {
        let items = vec![1usize, 2, 3];
        let addrs = map_with_scratch(&items, Parallelism::Serial, |scratch, _, _| {
            std::ptr::from_ref::<WorkerScratch>(scratch) as usize
        });
        // Every item is handed the same arena, not a fresh one.
        assert!(addrs.windows(2).all(|w| w[0] == w[1]), "{addrs:?}");
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = map(&[] as &[u32], Parallelism::Auto, |&x| x);
        assert!(out.is_empty());
    }
}
