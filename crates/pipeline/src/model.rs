//! Model-level quantization: the paper's Section II-G flow (profile →
//! dictionaries → pre-encoded weights) behind one entry point,
//! [`QuantSession::quantize_model`].

use crate::error::PipelineError;
use crate::parallel::{self, WorkerScratch};
use crate::session::{CacheStats, QuantSession};
use mokey_core::dict::TensorDict;
use mokey_core::encode::QuantizedTensor;
use mokey_core::profile::{ActivationProfiler, TensorProfile};
use mokey_fixed::QFormat;
use mokey_tensor::Matrix;
use std::collections::BTreeMap;

/// Profiled GEMM-output tensors are recorded under `"<weight name>.out"`
/// and yield Eq. 7 fixed-point formats instead of dictionaries.
const OUT_SUFFIX: &str = ".out";

/// What to quantize (Table I evaluates both columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizeSpec {
    /// Quantize parameters and embeddings (offline, statically known).
    pub weights: bool,
    /// Quantize activations (profiled dictionaries, runtime encoding).
    pub activations: bool,
}

impl QuantizeSpec {
    /// Weights-only quantization (Table I, "Weight only Quant.").
    pub fn weights_only() -> Self {
        Self { weights: true, activations: false }
    }

    /// Weights + activations (Table I, "Weight + Activation Quant.").
    pub fn weights_and_activations() -> Self {
        Self { weights: true, activations: true }
    }

    /// Activations only (profiling workflows).
    pub fn activations_only() -> Self {
        Self { weights: false, activations: true }
    }
}

/// How a model plugs into the pipeline: it exposes its weight tensors and
/// knows how to run one profiling input through itself while feeding an
/// [`ActivationProfiler`].
///
/// `mokey-transformer` implements this for its `Model`; any future
/// backend (a different architecture, a loaded checkpoint) joins the
/// pipeline by implementing these two methods.
pub trait ModelAdapter {
    /// One profiling input (for transformers: a token sequence).
    type Input;

    /// The named weight tensors to pre-encode offline.
    fn named_weights(&self) -> Vec<(String, &Matrix)>;

    /// Runs one input through the model, observing every activation (and
    /// GEMM output, under `"<name>.out"`) into the profiler.
    fn run_profile(&self, profiler: &mut ActivationProfiler, input: &Self::Input);
}

/// Per-tensor and aggregate statistics from quantizing a model.
#[derive(Debug, Clone, Default)]
pub struct QuantizationReport {
    /// Outlier fraction per weight tensor.
    pub weight_outlier_fractions: BTreeMap<String, f64>,
    /// Total weight values encoded.
    pub weight_values: usize,
    /// Total weight values that hit the outlier dictionary.
    pub weight_outliers: usize,
    /// Number of activation tensors with dictionaries.
    pub activation_tensors: usize,
    /// Dictionary-cache hits/misses observed during *this* preparation —
    /// a second model with identical-stats tensors prepared through the
    /// same session reports hits here instead of rebuilding. Counts are
    /// exact under [`Parallelism::Serial`](crate::Parallelism::Serial);
    /// concurrent fan-out can double-count a racing build as two misses.
    pub dict_cache: CacheStats,
}

impl QuantizationReport {
    /// Aggregate weight outlier percentage (Table I's "W OT %").
    pub fn weight_outlier_percent(&self) -> f64 {
        if self.weight_values == 0 {
            0.0
        } else {
            100.0 * self.weight_outliers as f64 / self.weight_values as f64
        }
    }
}

/// Everything [`QuantSession::quantize_model`] produces: pre-encoded
/// weights, activation dictionaries, output fixed-point formats, and the
/// aggregate report.
#[derive(Debug, Clone)]
pub struct ModelQuantization {
    /// Pre-encoded weight tensors (empty unless
    /// [`QuantizeSpec::weights`]).
    pub weights: BTreeMap<String, QuantizedTensor>,
    /// Per-activation-tensor dictionaries (empty unless
    /// [`QuantizeSpec::activations`]).
    pub act_dicts: BTreeMap<String, TensorDict>,
    /// Per-GEMM-output 16-bit fixed-point formats (Eq. 7).
    pub out_formats: BTreeMap<String, QFormat>,
    /// Aggregate statistics.
    pub report: QuantizationReport,
}

impl ModelQuantization {
    /// Decodes every pre-encoded weight to its centroid matrix (the form
    /// quantized executors consume), fanning across the session's
    /// workers.
    pub fn decode_weights(&self, session: &QuantSession) -> BTreeMap<String, Matrix> {
        let entries: Vec<(&String, &QuantizedTensor)> = self.weights.iter().collect();
        let decoded = parallel::map(&entries, session.parallelism(), |(name, q)| {
            ((*name).clone(), q.decode())
        });
        decoded.into_iter().collect()
    }
}

impl QuantSession {
    /// Quantizes a model end to end — the one implementation of the
    /// paper's Section II-G flow:
    ///
    /// 1. **weights** (when requested): per-tensor dictionary fit + index
    ///    encoding, fanned across workers, dictionaries cached;
    /// 2. **activations** (when requested): a serial profiling pass over
    ///    `profile_inputs` (serial keeps the reservoir sampling
    ///    deterministic), then parallel dictionary construction; profiles
    ///    named `"<w>.out"` become Eq. 7 output formats instead.
    ///
    /// Parallel execution is bit-identical to serial: per-tensor work is
    /// deterministic and independent.
    ///
    /// # Errors
    ///
    /// [`PipelineError::NoProfileInputs`] when activations are requested
    /// without profiling inputs, or the first degenerate tensor's
    /// [`PipelineError::Tensor`].
    pub fn quantize_model<M: ModelAdapter>(
        &self,
        model: &M,
        spec: QuantizeSpec,
        profile_inputs: &[M::Input],
    ) -> Result<ModelQuantization, PipelineError> {
        let mut report = QuantizationReport::default();
        let cache_before = self.cache_stats();

        // Stage: pre-encode weights offline.
        let mut weights = BTreeMap::new();
        if spec.weights {
            let tensors = model.named_weights();
            for (name, q) in self.quantize_named(&tensors)? {
                report.weight_values += q.codes().len();
                report.weight_outliers += q.outlier_count();
                report.weight_outlier_fractions.insert(name.clone(), q.outlier_fraction());
                weights.insert(name, q);
            }
        }

        // Stage: profile activations, derive dictionaries and Eq. 7
        // output formats.
        let mut act_dicts = BTreeMap::new();
        let mut out_formats = BTreeMap::new();
        if spec.activations {
            if profile_inputs.is_empty() {
                return Err(PipelineError::NoProfileInputs);
            }
            let t0 = std::time::Instant::now();
            let mut profiler = ActivationProfiler::new(*self.profile_config());
            for input in profile_inputs {
                model.run_profile(&mut profiler, input);
            }
            self.note_profiling(t0.elapsed());
            let profiled: Vec<(String, &TensorProfile)> = profiler
                .tensor_names()
                .map(str::to_owned)
                .collect::<Vec<_>>()
                .into_iter()
                .map(|name| {
                    let profile = profiler.profile(&name).expect("profiled name");
                    (name, profile)
                })
                .collect();
            let built = parallel::map_with_scratch(
                &profiled,
                self.parallelism(),
                |scratch, _, (name, profile)| self.build_profiled(name, profile, scratch),
            );
            for result in built {
                match result? {
                    ProfiledTensor::OutFormat(weight_name, fmt) => {
                        out_formats.insert(weight_name, fmt);
                    }
                    ProfiledTensor::Dict(name, dict) => {
                        act_dicts.insert(name, dict);
                    }
                }
            }
            report.activation_tensors = act_dicts.len();
        }

        let cache_after = self.cache_stats();
        report.dict_cache = CacheStats {
            hits: cache_after.hits - cache_before.hits,
            misses: cache_after.misses - cache_before.misses,
        };
        Ok(ModelQuantization { weights, act_dicts, out_formats, report })
    }

    fn build_profiled(
        &self,
        name: &str,
        profile: &TensorProfile,
        scratch: &mut WorkerScratch,
    ) -> Result<ProfiledTensor, PipelineError> {
        if let Some(weight_name) = name.strip_suffix(OUT_SUFFIX) {
            let s = profile.summary();
            Ok(ProfiledTensor::OutFormat(
                weight_name.to_owned(),
                QFormat::for_range(16, s.min(), s.max()),
            ))
        } else {
            let t0 = std::time::Instant::now();
            let dict = profile
                .build_dict_scratch(self.curve(), self.dict_config(), &mut scratch.dict)
                .map_err(|source| PipelineError::Tensor { name: name.to_owned(), source })?;
            self.note_dict_built(t0.elapsed());
            Ok(ProfiledTensor::Dict(name.to_owned(), dict))
        }
    }
}

/// One profiled tensor's pipeline product.
enum ProfiledTensor {
    /// A GEMM-output format keyed by the producing weight's name.
    OutFormat(String, QFormat),
    /// An activation dictionary keyed by the tensor name.
    Dict(String, TensorDict),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::Parallelism;
    use mokey_tensor::init::GaussianMixture;

    /// A minimal synthetic "model": named weights plus one profiled
    /// activation tensor and one profiled GEMM output per input.
    struct ToyModel {
        weights: Vec<(String, Matrix)>,
    }

    impl ToyModel {
        fn new(n: usize) -> Self {
            let weights = (0..n)
                .map(|i| {
                    let m = GaussianMixture::weight_like(0.0, 0.05).sample_matrix(24, 24, i as u64);
                    (format!("w{i}"), m)
                })
                .collect();
            Self { weights }
        }
    }

    impl ModelAdapter for ToyModel {
        type Input = u64;

        fn named_weights(&self) -> Vec<(String, &Matrix)> {
            self.weights.iter().map(|(n, m)| (n.clone(), m)).collect()
        }

        fn run_profile(&self, profiler: &mut ActivationProfiler, input: &u64) {
            let acts = GaussianMixture::activation_like(0.1, 1.2).sample_matrix(8, 64, *input);
            profiler.observe("act.hidden", &acts);
            let outs = GaussianMixture::pure(0.0, 4.0).sample_matrix(8, 16, input ^ 0xF00D);
            profiler.observe("w0.out", &outs);
        }
    }

    #[test]
    fn quantize_model_covers_weights_acts_and_out_formats() {
        let model = ToyModel::new(5);
        let session = QuantSession::with_defaults();
        let mq = session
            .quantize_model(&model, QuantizeSpec::weights_and_activations(), &[1, 2, 3])
            .unwrap();
        assert_eq!(mq.weights.len(), 5);
        assert_eq!(mq.act_dicts.len(), 1);
        assert!(mq.act_dicts.contains_key("act.hidden"));
        assert_eq!(mq.out_formats.len(), 1);
        assert!(mq.out_formats.contains_key("w0"));
        assert_eq!(mq.report.weight_outlier_fractions.len(), 5);
        assert_eq!(mq.report.activation_tensors, 1);
        assert!(mq.report.weight_values > 0);
        let decoded = mq.decode_weights(&session);
        assert_eq!(decoded.len(), 5);
        assert_eq!(decoded["w0"], mq.weights["w0"].decode());
    }

    #[test]
    fn weights_only_skips_profiling_entirely() {
        let model = ToyModel::new(2);
        let session = QuantSession::with_defaults();
        let mq = session.quantize_model(&model, QuantizeSpec::weights_only(), &[]).unwrap();
        assert_eq!(mq.weights.len(), 2);
        assert!(mq.act_dicts.is_empty());
        assert!(mq.out_formats.is_empty());
    }

    #[test]
    fn activations_without_inputs_is_a_typed_error() {
        let model = ToyModel::new(1);
        let session = QuantSession::with_defaults();
        let err = session
            .quantize_model(&model, QuantizeSpec::weights_and_activations(), &[])
            .unwrap_err();
        assert_eq!(err, PipelineError::NoProfileInputs);
    }

    #[test]
    fn report_surfaces_per_prepare_dict_cache_stats() {
        let model = ToyModel::new(4);
        let session = QuantSession::builder().parallelism(Parallelism::Serial).build();
        let first =
            session.quantize_model(&model, QuantizeSpec::weights_only(), &[] as &[u64]).unwrap();
        assert_eq!(first.report.dict_cache, crate::CacheStats { hits: 0, misses: 4 });
        // A second model with identical-stats tensors (here: the same
        // model) reuses every cached dictionary; its report shows the
        // hits it got instead of the session-lifetime totals.
        let second =
            session.quantize_model(&model, QuantizeSpec::weights_only(), &[] as &[u64]).unwrap();
        assert_eq!(second.report.dict_cache, crate::CacheStats { hits: 4, misses: 0 });
        assert_eq!(session.cache_stats(), crate::CacheStats { hits: 4, misses: 4 });
    }

    #[test]
    fn serial_and_parallel_model_quantization_are_bit_identical() {
        let model = ToyModel::new(12);
        let serial = QuantSession::builder().parallelism(Parallelism::Serial).build();
        let parallel = QuantSession::builder().parallelism(Parallelism::Threads(4)).build();
        let spec = QuantizeSpec::weights_and_activations();
        let ms = serial.quantize_model(&model, spec, &[7, 8]).unwrap();
        let mp = parallel.quantize_model(&model, spec, &[7, 8]).unwrap();
        assert_eq!(ms.weights, mp.weights);
        assert_eq!(ms.act_dicts, mp.act_dicts);
        assert_eq!(
            ms.out_formats.keys().collect::<Vec<_>>(),
            mp.out_formats.keys().collect::<Vec<_>>()
        );
        assert_eq!(ms.report.weight_outliers, mp.report.weight_outliers);
    }
}
