//! Typed pipeline failures.

use mokey_core::dict::DictError;
use std::fmt;

/// Why a pipeline operation failed.
///
/// Dictionary-level failures ([`DictError`]) are wrapped with the tensor
/// name so a thousand-tensor fan-out reports *which* tensor was
/// degenerate, not just that one was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A named tensor could not be quantized.
    Tensor {
        /// The tensor's pipeline name (e.g. `"L3.ffn.w1"`).
        name: String,
        /// The underlying dictionary failure.
        source: DictError,
    },
    /// Activation quantization was requested with an empty profiling set.
    NoProfileInputs,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Tensor { name, source } => {
                write!(f, "cannot quantize tensor '{name}': {source}")
            }
            PipelineError::NoProfileInputs => {
                write!(f, "activation quantization requires at least one profiling sequence")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Tensor { source, .. } => Some(source),
            PipelineError::NoProfileInputs => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_tensor() {
        let e = PipelineError::Tensor { name: "L0.attn.wq".into(), source: DictError::Constant };
        let msg = e.to_string();
        assert!(msg.contains("L0.attn.wq"), "{msg}");
        assert!(msg.contains("constant"), "{msg}");
    }

    #[test]
    fn source_chains_to_the_dict_error() {
        let e = PipelineError::Tensor { name: "t".into(), source: DictError::Empty };
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&PipelineError::NoProfileInputs).is_none());
    }
}
