//! The [`QuantSession`]: one-time curve setup, dictionary cache, and
//! per-tensor quantization entry points.

use crate::error::PipelineError;
use crate::parallel::{self, Parallelism, WorkerScratch};
use mokey_core::curve::ExpCurve;
use mokey_core::dict::{TensorDict, TensorDictConfig};
use mokey_core::encode::QuantizedTensor;
use mokey_core::golden::{GoldenConfig, GoldenDictionary};
use mokey_core::lut::PairLut;
use mokey_core::profile::ProfileConfig;
use mokey_tensor::stats::Summary;
use mokey_tensor::Matrix;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where the session's exponential curve comes from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CurveSource {
    /// The paper's published constants
    /// ([`PAPER_A`](mokey_core::curve::PAPER_A) /
    /// [`PAPER_B`](mokey_core::curve::PAPER_B)). The default: generation
    /// is model-independent, so the published fit is a drop-in.
    Paper,
    /// Generate a Golden Dictionary with this configuration and fit the
    /// curve to it (the paper's full Fig. 2 + Fig. 3 one-time setup). The
    /// generated dictionary stays accessible via [`QuantSession::golden`].
    Fitted(GoldenConfig),
    /// An externally supplied curve (ablations, loaded checkpoints).
    Explicit(ExpCurve),
}

/// Configures and builds a [`QuantSession`].
#[derive(Debug, Clone)]
pub struct QuantSessionBuilder {
    curve_source: CurveSource,
    dict_config: TensorDictConfig,
    parallelism: Parallelism,
    profile_config: ProfileConfig,
    cache_dicts: bool,
}

impl Default for QuantSessionBuilder {
    fn default() -> Self {
        Self {
            curve_source: CurveSource::Paper,
            dict_config: TensorDictConfig::default(),
            parallelism: Parallelism::Auto,
            profile_config: ProfileConfig::default(),
            cache_dicts: true,
        }
    }
}

impl QuantSessionBuilder {
    /// Selects the curve source (default: the paper constants).
    pub fn curve_source(mut self, source: CurveSource) -> Self {
        self.curve_source = source;
        self
    }

    /// Sets the dictionary-construction parameters.
    pub fn dict_config(mut self, config: TensorDictConfig) -> Self {
        self.dict_config = config;
        self
    }

    /// Sets the fan-out mode for `quantize_*` calls (default:
    /// [`Parallelism::Auto`]).
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }

    /// Sets the activation-profiler parameters used by
    /// [`QuantSession::quantize_model`](crate::QuantSession::quantize_model).
    pub fn profile_config(mut self, config: ProfileConfig) -> Self {
        self.profile_config = config;
        self
    }

    /// Enables or disables the statistics-keyed dictionary cache
    /// (default: enabled).
    ///
    /// The cache key includes a full content hash of the tensor values,
    /// so sessions that quantize every tensor exactly once (one-shot
    /// compression, cold-flow benches) should disable it to skip the
    /// hashing pass.
    pub fn cache_dicts(mut self, enabled: bool) -> Self {
        self.cache_dicts = enabled;
        self
    }

    /// Runs the one-time setup (curve generation/fit if requested) and
    /// returns the session.
    pub fn build(self) -> QuantSession {
        let t0 = Instant::now();
        let (golden, curve) = match self.curve_source {
            CurveSource::Paper => (None, ExpCurve::paper()),
            CurveSource::Fitted(config) => {
                let gd = GoldenDictionary::generate(&config);
                let curve = ExpCurve::fit(&gd);
                (Some(gd), curve)
            }
            CurveSource::Explicit(curve) => (None, curve),
        };
        QuantSession {
            golden,
            curve,
            dict_config: self.dict_config,
            parallelism: self.parallelism,
            profile_config: self.profile_config,
            cache: self.cache_dicts.then(|| Mutex::new(HashMap::new())),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            pair_luts: Mutex::new(HashMap::new()),
            lut_hits: AtomicUsize::new(0),
            lut_misses: AtomicUsize::new(0),
            setup_nanos: duration_nanos(t0.elapsed()),
            profile_nanos: AtomicU64::new(0),
            dict_nanos: AtomicU64::new(0),
            encode_nanos: AtomicU64::new(0),
            tensors_quantized: AtomicUsize::new(0),
            values_quantized: AtomicUsize::new(0),
            dicts_built: AtomicUsize::new(0),
        }
    }
}

/// Saturating `Duration` → `u64` nanoseconds (a session never runs for
/// 584 years, but the conversion is total anyway).
fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Wall-clock time spent inside each pipeline stage (see
/// [`QuantSession::report`]).
///
/// Per-tensor stages (`dict_fit`, `encode`) are summed across workers, so
/// under parallel fan-out they report aggregate *CPU* time, which can
/// exceed the elapsed wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTimings {
    /// One-time builder setup: golden-dictionary generation + curve fit.
    pub setup: Duration,
    /// Serial activation-profiling passes
    /// ([`QuantSession::quantize_model`](crate::QuantSession::quantize_model)).
    pub profiling: Duration,
    /// Per-tensor dictionary construction (cache misses only).
    pub dict_fit: Duration,
    /// Index encoding of tensor values.
    pub encode: Duration,
}

/// Snapshot of everything a session has done so far: the first step of
/// the observability story the serving engine's metrics build on.
///
/// Produced by [`QuantSession::report`]; counters are cumulative over the
/// session's lifetime and the snapshot is internally consistent only when
/// no quantization is concurrently in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionReport {
    /// Tensors successfully quantized (dictionary fit + encode).
    pub tensors_quantized: usize,
    /// Total values encoded across those tensors.
    pub values_quantized: usize,
    /// Dictionaries actually constructed (cache misses plus every build
    /// when the cache is disabled, plus profiled activation dictionaries).
    pub dicts_built: usize,
    /// Dictionary-cache counters (zero when the cache is disabled).
    pub cache: CacheStats,
    /// Pair-LUT cache counters (index-domain product tables, keyed by
    /// dictionary content fingerprints so identical dictionaries — even
    /// across models — share one table).
    pub pair_luts: CacheStats,
    /// Per-stage elapsed time.
    pub stages: StageTimings,
}

impl fmt::Display for SessionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        writeln!(f, "quantization session report")?;
        writeln!(
            f,
            "  tensors quantized  : {} ({} values)",
            self.tensors_quantized, self.values_quantized
        )?;
        writeln!(
            f,
            "  dictionaries built : {} (cache: {} hits / {} misses)",
            self.dicts_built, self.cache.hits, self.cache.misses
        )?;
        writeln!(
            f,
            "  pair LUTs built    : {} (cache: {} hits / {} misses)",
            self.pair_luts.misses, self.pair_luts.hits, self.pair_luts.misses
        )?;
        writeln!(f, "  stage setup        : {:9.3} ms", ms(self.stages.setup))?;
        writeln!(f, "  stage profiling    : {:9.3} ms", ms(self.stages.profiling))?;
        writeln!(f, "  stage dict fit     : {:9.3} ms", ms(self.stages.dict_fit))?;
        write!(f, "  stage encode       : {:9.3} ms", ms(self.stages.encode))
    }
}

/// Dictionary-cache counters (see [`QuantSession::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Dictionaries served from the cache.
    pub hits: usize,
    /// Dictionaries built (and inserted).
    pub misses: usize,
}

/// Cache key: full summary statistics plus an FNV-1a hash of the raw value
/// bits. Two tensors share a key only if they have identical length,
/// identical running statistics, *and* identical content hash — for
/// practical purposes, only a tensor re-quantized through the same
/// session hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DictKey {
    len: usize,
    mean_bits: u64,
    std_bits: u64,
    min_bits: u64,
    max_bits: u64,
    content: u64,
}

impl DictKey {
    fn new(summary: &Summary, values: &[f32]) -> Self {
        let mut content: u64 = 0xcbf2_9ce4_8422_2325;
        for &v in values {
            content ^= u64::from(v.to_bits());
            content = content.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            len: values.len(),
            mean_bits: summary.mean().to_bits(),
            std_bits: summary.std().to_bits(),
            min_bits: summary.min().to_bits(),
            max_bits: summary.max().to_bits(),
            content,
        }
    }
}

/// A configured quantization session: the single owner of the golden
/// dictionary → curve → per-tensor dictionary → encode flow.
///
/// Sessions are cheap to build with [`CurveSource::Paper`] and are `Sync`,
/// so one session can serve many threads; the dictionary cache is shared
/// across everything quantized through it.
///
/// # Example
///
/// ```
/// use mokey_pipeline::{Parallelism, QuantSession};
/// use mokey_tensor::init::GaussianMixture;
///
/// let session = QuantSession::builder().parallelism(Parallelism::Auto).build();
/// let tensors: Vec<_> =
///     (0..8).map(|s| GaussianMixture::weight_like(0.0, 0.05).sample_matrix(32, 32, s)).collect();
/// let refs: Vec<&_> = tensors.iter().collect();
/// let quantized = session.quantize_batch(&refs).expect("non-degenerate tensors");
/// assert_eq!(quantized.len(), 8);
/// ```
#[derive(Debug)]
pub struct QuantSession {
    golden: Option<GoldenDictionary>,
    curve: ExpCurve,
    dict_config: TensorDictConfig,
    parallelism: Parallelism,
    profile_config: ProfileConfig,
    cache: Option<Mutex<HashMap<DictKey, TensorDict>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    pair_luts: Mutex<HashMap<(u64, u64), Arc<PairLut>>>,
    lut_hits: AtomicUsize,
    lut_misses: AtomicUsize,
    setup_nanos: u64,
    profile_nanos: AtomicU64,
    dict_nanos: AtomicU64,
    encode_nanos: AtomicU64,
    tensors_quantized: AtomicUsize,
    values_quantized: AtomicUsize,
    dicts_built: AtomicUsize,
}

impl QuantSession {
    /// A fresh builder.
    pub fn builder() -> QuantSessionBuilder {
        QuantSessionBuilder::default()
    }

    /// A session with all defaults: paper curve, default dictionary
    /// config, automatic parallelism, cache enabled.
    pub fn with_defaults() -> Self {
        Self::builder().build()
    }

    /// The session's exponential curve.
    pub fn curve(&self) -> &ExpCurve {
        &self.curve
    }

    /// The generated Golden Dictionary, when the session was built with
    /// [`CurveSource::Fitted`].
    pub fn golden(&self) -> Option<&GoldenDictionary> {
        self.golden.as_ref()
    }

    /// The dictionary-construction parameters.
    pub fn dict_config(&self) -> &TensorDictConfig {
        &self.dict_config
    }

    /// The fan-out mode.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The activation-profiler parameters.
    pub fn profile_config(&self) -> &ProfileConfig {
        &self.profile_config
    }

    /// Dictionary-cache counters. Counts are exact under
    /// [`Parallelism::Serial`]; under concurrent fan-out two workers may
    /// race to build the same dictionary (both count as misses), which
    /// never affects the resulting codes.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Pair-LUT cache counters (see [`QuantSession::pair_lut`]).
    pub fn pair_lut_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.lut_hits.load(Ordering::Relaxed),
            misses: self.lut_misses.load(Ordering::Relaxed),
        }
    }

    /// Builds (or fetches from cache) the dense product table for an
    /// (activation-dictionary, weight-dictionary) pair.
    ///
    /// The cache key is the pair of dictionary content
    /// [fingerprints](TensorDict::fingerprint), so any two dictionaries
    /// with identical parameters — including dictionaries belonging to
    /// different models prepared through the same session — share one
    /// table.
    pub fn pair_lut(&self, a_dict: &TensorDict, w_dict: &TensorDict) -> Arc<PairLut> {
        let key = (a_dict.fingerprint(), w_dict.fingerprint());
        let mut cache = self.pair_luts.lock().expect("pair-LUT cache lock");
        if let Some(lut) = cache.get(&key) {
            self.lut_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(lut);
        }
        let lut = Arc::new(PairLut::new(a_dict, w_dict));
        self.lut_misses.fetch_add(1, Ordering::Relaxed);
        cache.insert(key, Arc::clone(&lut));
        lut
    }

    /// Snapshot of what the session has done so far: tensors quantized,
    /// cache behaviour, and elapsed time per pipeline stage.
    pub fn report(&self) -> SessionReport {
        SessionReport {
            tensors_quantized: self.tensors_quantized.load(Ordering::Relaxed),
            values_quantized: self.values_quantized.load(Ordering::Relaxed),
            dicts_built: self.dicts_built.load(Ordering::Relaxed),
            cache: self.cache_stats(),
            pair_luts: self.pair_lut_stats(),
            stages: StageTimings {
                setup: Duration::from_nanos(self.setup_nanos),
                profiling: Duration::from_nanos(self.profile_nanos.load(Ordering::Relaxed)),
                dict_fit: Duration::from_nanos(self.dict_nanos.load(Ordering::Relaxed)),
                encode: Duration::from_nanos(self.encode_nanos.load(Ordering::Relaxed)),
            },
        }
    }

    /// Accounts one dictionary construction (the model-quantization path
    /// builds profiled-activation dictionaries outside [`Self::dict_for`]).
    pub(crate) fn note_dict_built(&self, elapsed: Duration) {
        self.dicts_built.fetch_add(1, Ordering::Relaxed);
        self.dict_nanos.fetch_add(duration_nanos(elapsed), Ordering::Relaxed);
    }

    /// Accounts one serial activation-profiling pass.
    pub(crate) fn note_profiling(&self, elapsed: Duration) {
        self.profile_nanos.fetch_add(duration_nanos(elapsed), Ordering::Relaxed);
    }

    /// Builds (or fetches from cache) the dictionary pair for a value set.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Tensor`] when the values are degenerate.
    pub fn dict_for(&self, name: &str, values: &[f32]) -> Result<TensorDict, PipelineError> {
        self.dict_for_scratch(name, values, &mut WorkerScratch::default())
    }

    /// [`QuantSession::dict_for`] with caller-owned scratch (the fan-out
    /// hot path).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Tensor`] when the values are degenerate.
    pub fn dict_for_scratch(
        &self,
        name: &str,
        values: &[f32],
        scratch: &mut WorkerScratch,
    ) -> Result<TensorDict, PipelineError> {
        let summary = Summary::of(values);
        let wrap = |source| PipelineError::Tensor { name: name.to_owned(), source };
        let Some(cache) = &self.cache else {
            let t0 = Instant::now();
            let dict = TensorDict::from_stats_scratch(
                &summary,
                values,
                &self.curve,
                &self.dict_config,
                &mut scratch.dict,
            )
            .map_err(wrap)?;
            self.note_dict_built(t0.elapsed());
            return Ok(dict);
        };
        let key = DictKey::new(&summary, values);
        if let Some(dict) = cache.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(dict.clone());
        }
        let t0 = Instant::now();
        let dict = TensorDict::from_stats_scratch(
            &summary,
            values,
            &self.curve,
            &self.dict_config,
            &mut scratch.dict,
        )
        .map_err(wrap)?;
        self.note_dict_built(t0.elapsed());
        self.misses.fetch_add(1, Ordering::Relaxed);
        cache.lock().expect("cache lock").insert(key, dict.clone());
        Ok(dict)
    }

    /// Quantizes one named tensor: dictionary fit (cached) + encode.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Tensor`] when the tensor is degenerate.
    pub fn quantize_tensor(
        &self,
        name: &str,
        matrix: &Matrix,
    ) -> Result<QuantizedTensor, PipelineError> {
        self.quantize_tensor_scratch(name, matrix, &mut WorkerScratch::default())
    }

    /// [`QuantSession::quantize_tensor`] with caller-owned scratch.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Tensor`] when the tensor is degenerate.
    pub fn quantize_tensor_scratch(
        &self,
        name: &str,
        matrix: &Matrix,
        scratch: &mut WorkerScratch,
    ) -> Result<QuantizedTensor, PipelineError> {
        let dict = self.dict_for_scratch(name, matrix.as_slice(), scratch)?;
        let t0 = Instant::now();
        let q = QuantizedTensor::encode(matrix, &dict);
        self.encode_nanos.fetch_add(duration_nanos(t0.elapsed()), Ordering::Relaxed);
        self.tensors_quantized.fetch_add(1, Ordering::Relaxed);
        self.values_quantized.fetch_add(q.codes().len(), Ordering::Relaxed);
        Ok(q)
    }

    /// Quantizes a batch of tensors, fanning the per-tensor work across
    /// the session's workers. Results are in input order and bit-identical
    /// to a serial run.
    ///
    /// # Errors
    ///
    /// The first (by input order) degenerate tensor's error; its name is
    /// the tensor's batch index.
    pub fn quantize_batch(
        &self,
        tensors: &[&Matrix],
    ) -> Result<Vec<QuantizedTensor>, PipelineError> {
        let results = parallel::map_with_scratch(tensors, self.parallelism, |scratch, i, m| {
            self.quantize_tensor_scratch(&i.to_string(), m, scratch)
        });
        results.into_iter().collect()
    }

    /// Quantizes named tensors (e.g. a model's weight map), fanning the
    /// per-tensor work across the session's workers. Results are in input
    /// order and bit-identical to a serial run.
    ///
    /// # Errors
    ///
    /// The first (by input order) degenerate tensor's error.
    pub fn quantize_named(
        &self,
        tensors: &[(String, &Matrix)],
    ) -> Result<Vec<(String, QuantizedTensor)>, PipelineError> {
        let results =
            parallel::map_with_scratch(tensors, self.parallelism, |scratch, _, (name, m)| {
                self.quantize_tensor_scratch(name, m, scratch).map(|q| (name.clone(), q))
            });
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mokey_core::dict::DictError;
    use mokey_tensor::init::GaussianMixture;

    fn weight(seed: u64) -> Matrix {
        GaussianMixture::weight_like(0.0, 0.05).sample_matrix(48, 48, seed)
    }

    #[test]
    fn session_matches_manual_construction() {
        let session = QuantSession::with_defaults();
        let w = weight(7);
        let q = session.quantize_tensor("w", &w).unwrap();
        let dict =
            TensorDict::for_values(w.as_slice(), &ExpCurve::paper(), &Default::default()).unwrap();
        let manual = QuantizedTensor::encode(&w, &dict);
        assert_eq!(q, manual);
    }

    #[test]
    fn fitted_source_retains_golden_dictionary() {
        let config = GoldenConfig { samples: 5_000, repeats: 1, ..Default::default() };
        let session = QuantSession::builder().curve_source(CurveSource::Fitted(config)).build();
        let gd = session.golden().expect("fitted source keeps the dictionary");
        assert_eq!(*session.curve(), ExpCurve::fit(gd));
        // Paper source carries no dictionary.
        assert!(QuantSession::with_defaults().golden().is_none());
    }

    #[test]
    fn cache_hits_on_requantization_and_returns_identical_dicts() {
        let session = QuantSession::builder().parallelism(Parallelism::Serial).build();
        let w = weight(11);
        let q1 = session.quantize_tensor("w", &w).unwrap();
        let q2 = session.quantize_tensor("w", &w).unwrap();
        assert_eq!(q1, q2);
        assert_eq!(session.cache_stats(), CacheStats { hits: 1, misses: 1 });
        // A different tensor misses.
        let _ = session.quantize_tensor("v", &weight(12)).unwrap();
        assert_eq!(session.cache_stats(), CacheStats { hits: 1, misses: 2 });
    }

    #[test]
    fn disabled_cache_never_counts() {
        let session =
            QuantSession::builder().cache_dicts(false).parallelism(Parallelism::Serial).build();
        let w = weight(13);
        let q1 = session.quantize_tensor("w", &w).unwrap();
        let q2 = session.quantize_tensor("w", &w).unwrap();
        assert_eq!(q1, q2);
        assert_eq!(session.cache_stats(), CacheStats::default());
    }

    #[test]
    fn parallel_batch_is_bit_identical_to_serial() {
        let tensors: Vec<Matrix> = (0..24)
            .map(|s| {
                GaussianMixture::weight_like(0.0, 0.03 + s as f64 * 0.01).sample_matrix(
                    16 + s,
                    24,
                    100 + s as u64,
                )
            })
            .collect();
        let refs: Vec<&Matrix> = tensors.iter().collect();
        let serial = QuantSession::builder().parallelism(Parallelism::Serial).build();
        let parallel4 = QuantSession::builder().parallelism(Parallelism::Threads(4)).build();
        let auto = QuantSession::builder().parallelism(Parallelism::Auto).build();
        let qs = serial.quantize_batch(&refs).unwrap();
        let qp = parallel4.quantize_batch(&refs).unwrap();
        let qa = auto.quantize_batch(&refs).unwrap();
        for ((s, p), a) in qs.iter().zip(&qp).zip(&qa) {
            assert_eq!(s.codes(), p.codes());
            assert_eq!(s.codes(), a.codes());
            assert_eq!(s.dict(), p.dict());
        }
    }

    #[test]
    fn degenerate_tensor_error_carries_the_name() {
        let session = QuantSession::with_defaults();
        let constant = Matrix::from_vec(4, 4, vec![2.5; 16]);
        let err = session.quantize_tensor("L9.bad", &constant).unwrap_err();
        assert_eq!(
            err,
            PipelineError::Tensor { name: "L9.bad".into(), source: DictError::Constant }
        );
        let ok = weight(5);
        let named = vec![("ok".to_string(), &ok), ("broken".to_string(), &constant)];
        let err = session.quantize_named(&named).unwrap_err();
        assert!(matches!(err, PipelineError::Tensor { ref name, .. } if name == "broken"));
    }

    #[test]
    fn report_counts_tensors_values_and_stage_time() {
        let session = QuantSession::builder().parallelism(Parallelism::Serial).build();
        let fresh = session.report();
        assert_eq!(fresh.tensors_quantized, 0);
        assert_eq!(fresh.dicts_built, 0);
        let w = weight(21);
        let v = weight(22);
        let _ = session.quantize_tensor("w", &w).unwrap();
        let _ = session.quantize_tensor("v", &v).unwrap();
        let _ = session.quantize_tensor("w", &w).unwrap(); // cache hit
        let report = session.report();
        assert_eq!(report.tensors_quantized, 3);
        assert_eq!(report.values_quantized, 3 * 48 * 48);
        assert_eq!(report.dicts_built, 2);
        assert_eq!(report.cache, CacheStats { hits: 1, misses: 2 });
        assert!(report.stages.dict_fit > Duration::ZERO);
        assert!(report.stages.encode > Duration::ZERO);
        assert_eq!(report.stages.profiling, Duration::ZERO);
    }

    #[test]
    fn report_display_names_every_stage() {
        let session = QuantSession::with_defaults();
        let _ = session.quantize_tensor("w", &weight(23)).unwrap();
        let text = session.report().to_string();
        for needle in ["tensors quantized", "dictionaries built", "profiling", "dict fit", "encode"]
        {
            assert!(text.contains(needle), "missing {needle:?} in {text}");
        }
    }

    #[test]
    fn pair_lut_cache_reuses_tables_across_identical_dicts() {
        let session = QuantSession::builder().parallelism(Parallelism::Serial).build();
        let a = weight(31);
        let w = weight(32);
        let qa = session.quantize_tensor("a", &a).unwrap();
        let qw = session.quantize_tensor("w", &w).unwrap();
        let lut1 = session.pair_lut(qa.dict(), qw.dict());
        assert_eq!(session.pair_lut_stats(), CacheStats { hits: 0, misses: 1 });
        // Same pair again: served from cache, same allocation.
        let lut2 = session.pair_lut(qa.dict(), qw.dict());
        assert!(Arc::ptr_eq(&lut1, &lut2));
        // A *content-identical* dictionary built separately (as a second
        // model sharing weights would produce) also hits.
        let qw2 = session.quantize_tensor("other-model.w", &w).unwrap();
        let lut3 = session.pair_lut(qa.dict(), qw2.dict());
        assert!(Arc::ptr_eq(&lut1, &lut3));
        assert_eq!(session.pair_lut_stats(), CacheStats { hits: 2, misses: 1 });
        // The reversed pair is a distinct table.
        let _ = session.pair_lut(qw.dict(), qa.dict());
        assert_eq!(session.pair_lut_stats(), CacheStats { hits: 2, misses: 2 });
        let report = session.report();
        assert_eq!(report.pair_luts, CacheStats { hits: 2, misses: 2 });
        assert!(report.to_string().contains("pair LUTs built"));
    }

    #[test]
    fn quantize_named_preserves_names_and_order() {
        let session = QuantSession::with_defaults();
        let a = weight(1);
        let b = weight(2);
        let named = vec![("first".to_string(), &a), ("second".to_string(), &b)];
        let out = session.quantize_named(&named).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, "first");
        assert_eq!(out[1].0, "second");
        assert_eq!(out[0].1, session.quantize_tensor("first", &a).unwrap());
    }
}
