//! The unified Mokey quantization pipeline.
//!
//! The paper describes **one** flow — golden dictionary → curve fit →
//! per-tensor dictionaries → index encoding → packed layout → index-domain
//! compute — but early versions of this workspace wired that flow ad-hoc
//! in four places (`mokey-transformer`, the eval figures and tables, the
//! examples, and the benches), each re-deriving dictionaries and buffers
//! its own way. This crate is the single implementation they all route
//! through.
//!
//! The entry point is [`QuantSession`]:
//!
//! * the **builder** owns the one-time setup (paper constants, a freshly
//!   fitted Golden Dictionary, or an explicit curve) plus the dictionary
//!   configuration and the degree of parallelism;
//! * a **dictionary cache** keyed by tensor statistics and content hash
//!   makes re-quantizing the same tensor (weight-only pass followed by a
//!   weights-plus-activations pass, repeated profiling trials, …) free;
//! * [`QuantSession::quantize_model`] and [`QuantSession::quantize_batch`]
//!   fan per-tensor dictionary-fit + encode work across
//!   `std::thread::scope` workers, each holding a reusable
//!   [`WorkerScratch`](parallel::WorkerScratch) arena so the dictionary-fit
//!   hot path allocates nothing per tensor (streaming decoders can reuse a
//!   buffer via `QuantizedTensor::decode_into`);
//! * degenerate tensors (empty, constant, non-finite) surface as typed
//!   [`PipelineError`]s carrying the tensor name instead of panicking
//!   mid-fan-out.
//!
//! Parallel execution is **bit-identical** to serial execution: per-tensor
//! work is deterministic and independent, so [`Parallelism`] only changes
//! wall-clock time, never a single code.
//!
//! # Quickstart
//!
//! ```
//! use mokey_pipeline::QuantSession;
//! use mokey_tensor::init::GaussianMixture;
//!
//! let session = QuantSession::with_defaults(); // paper curve constants
//! let w = GaussianMixture::weight_like(0.0, 0.05).sample_matrix(64, 64, 1);
//! let q = session.quantize_tensor("w", &w).expect("non-degenerate tensor");
//! assert!(w.max_abs_diff(&q.decode()) < 0.25);
//! ```

pub mod error;
pub mod model;
pub mod parallel;
pub mod session;

pub use error::PipelineError;
pub use model::{ModelAdapter, ModelQuantization, QuantizationReport, QuantizeSpec};
pub use parallel::Parallelism;
pub use session::{
    CacheStats, CurveSource, QuantSession, QuantSessionBuilder, SessionReport, StageTimings,
};

// The serving layer shares one session and its products across worker
// threads; pin the thread-safety contract at compile time so a future
// field (an `Rc`, a raw pointer) can't silently revoke it.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QuantSession>();
    assert_send_sync::<ModelQuantization>();
    assert_send_sync::<SessionReport>();
    assert_send_sync::<CacheStats>();
};
