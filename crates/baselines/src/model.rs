//! Whole-model quantization with a baseline method, mirroring the Mokey
//! pipeline in `mokey-transformer::quantize` so Table IV scores every
//! scheme through the identical harness.

use crate::methods::Baseline;
use crate::LinearQuant;
use mokey_core::profile::{ActivationProfiler, ProfileConfig};
use mokey_tensor::Matrix;
use mokey_transformer::exec::{Executor, ProfilingExecutor};
use mokey_transformer::model::{Model, TaskOutput};
use std::collections::BTreeMap;

/// A model prepared for inference under a baseline quantization scheme.
#[derive(Debug)]
pub struct BaselineModel<'m> {
    model: &'m Model,
    weights: BTreeMap<String, Matrix>,
    act_quants: BTreeMap<String, LinearQuant>,
}

/// Quantizes a model's weights with `method` and, when the method
/// quantizes activations, profiles the given sequences to calibrate the
/// per-tensor 8-bit ranges.
///
/// # Panics
///
/// Panics for [`Baseline::Mokey`] (use
/// [`mokey_transformer::QuantizedModel`] instead) and when activation
/// quantization is requested with no profiling inputs.
pub fn prepare_baseline<'m>(
    model: &'m Model,
    method: Baseline,
    profile_inputs: &[Vec<usize>],
) -> BaselineModel<'m> {
    assert!(method != Baseline::Mokey, "Mokey is prepared by mokey-transformer::QuantizedModel");
    let mut weights = BTreeMap::new();
    for (name, w) in model.weight_tensors() {
        weights.insert(name, method.quantize_weights(w));
    }

    let mut act_quants = BTreeMap::new();
    let needs_acts = {
        let probe = mokey_tensor::stats::Summary::of(&[1.0f32]);
        method.act_quantizer(&probe).is_some()
    };
    if needs_acts {
        assert!(
            !profile_inputs.is_empty(),
            "activation quantization requires at least one profiling sequence"
        );
        let mut profiler = ActivationProfiler::new(ProfileConfig::default());
        for tokens in profile_inputs {
            let mut exec = ProfilingExecutor::new(&mut profiler);
            let hidden = model.forward(&mut exec, tokens);
            let _ = model.apply_head(&mut exec, &hidden);
        }
        for name in profiler.tensor_names().map(str::to_owned).collect::<Vec<_>>() {
            if name.ends_with(".out") {
                continue;
            }
            let profile = profiler.profile(&name).expect("profiled");
            if let Some(q) = method.act_quantizer(profile.summary()) {
                act_quants.insert(name, q);
            }
        }
    }

    BaselineModel { model, weights, act_quants }
}

impl BaselineModel<'_> {
    /// Inference under the baseline scheme.
    pub fn infer(&self, tokens: &[usize]) -> TaskOutput {
        let mut exec = BaselineExecutor { ctx: self };
        let hidden = self.model.forward(&mut exec, tokens);
        self.model.apply_head(&mut exec, &hidden)
    }

    /// Batch inference (sequential; Table IV uses modest sample counts).
    pub fn infer_batch(&self, inputs: &[Vec<usize>]) -> Vec<TaskOutput> {
        inputs.iter().map(|tokens| self.infer(tokens)).collect()
    }

    /// Number of activation tensors with calibrated quantizers.
    pub fn act_tensor_count(&self) -> usize {
        self.act_quants.len()
    }
}

struct BaselineExecutor<'a, 'm> {
    ctx: &'a BaselineModel<'m>,
}

impl Executor for BaselineExecutor<'_, '_> {
    fn activation(&mut self, name: &str, m: Matrix) -> Matrix {
        let Some(q) = self.ctx.act_quants.get(name) else {
            return m;
        };
        m.map(|x| q.apply(x))
    }

    fn weight_override(&self, name: &str) -> Option<&Matrix> {
        self.ctx.weights.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mokey_core::metrics::cosine_similarity;
    use mokey_transformer::exec::FpExecutor;
    use mokey_transformer::model::Head;
    use mokey_transformer::ModelConfig;

    fn tiny_model() -> Model {
        let config = ModelConfig {
            name: "tiny".into(),
            layers: 2,
            hidden: 64,
            heads: 2,
            ff: 128,
            vocab: 300,
            max_seq: 32,
        };
        Model::synthesize(&config, Head::Classification { classes: 3 }, 31)
    }

    #[test]
    fn q8_outputs_track_fp_closely() {
        let model = tiny_model();
        let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(16, s)).collect();
        let bm = prepare_baseline(&model, Baseline::Q8Bert, &profile);
        assert!(bm.act_tensor_count() > 0);
        let tokens = model.random_tokens(16, 50);
        let TaskOutput::Logits(fp) = model.infer(&mut FpExecutor, &tokens) else { unreachable!() };
        let TaskOutput::Logits(q) = bm.infer(&tokens) else { unreachable!() };
        assert!(cosine_similarity(&fp, &q) > 0.95, "fp {fp:?} vs q8 {q:?}");
    }

    #[test]
    fn gobo_needs_no_profiling() {
        let model = tiny_model();
        let bm = prepare_baseline(&model, Baseline::Gobo, &[]);
        assert_eq!(bm.act_tensor_count(), 0);
        let tokens = model.random_tokens(16, 51);
        let TaskOutput::Logits(q) = bm.infer(&tokens) else { unreachable!() };
        assert!(q.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn coarser_methods_deviate_more() {
        let model = tiny_model();
        let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(16, s)).collect();
        let tokens = model.random_tokens(16, 52);
        let TaskOutput::Logits(fp) = model.infer(&mut FpExecutor, &tokens) else { unreachable!() };
        let deviation = |b: Baseline| -> f64 {
            let bm = prepare_baseline(&model, b, &profile);
            let TaskOutput::Logits(q) = bm.infer(&tokens) else { unreachable!() };
            1.0 - cosine_similarity(&fp, &q)
        };
        let d8 = deviation(Baseline::Q8Bert);
        let d2 = deviation(Baseline::TernaryBert);
        assert!(d2 > d8, "ternary ({d2}) should deviate more than 8-bit ({d8})");
    }

    #[test]
    #[should_panic(expected = "prepared by mokey-transformer")]
    fn mokey_is_rejected() {
        let model = tiny_model();
        let _ = prepare_baseline(&model, Baseline::Mokey, &[]);
    }
}
