//! The Table IV quantization methods.

use crate::linear::LinearQuant;
use mokey_clustering::{kmeans, KMeansConfig};
use mokey_tensor::stats::Summary;
use mokey_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A Table IV method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Baseline {
    /// Q8BERT-style: symmetric 8-bit weights and activations.
    Q8Bert,
    /// I-BERT-style: 8-bit weights/activations, integer-only kernels.
    IBert,
    /// Q-BERT-style: group-wise 4-bit uniform weights, 8-bit activations.
    QBert,
    /// GOBO: per-tensor 3-bit k-means dictionary for Gaussian weights,
    /// FP32 outliers, FP32 activations.
    Gobo,
    /// TernaryBERT-style: ternary weights (TWN thresholding), 8-bit
    /// activations.
    TernaryBert,
    /// Mokey itself (handled by `mokey-core`; listed here so Table IV can
    /// enumerate all rows uniformly).
    Mokey,
}

/// Static properties of a method (the non-accuracy Table IV columns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodInfo {
    /// Display name.
    pub name: &'static str,
    /// Effective parameter bits per value (including dictionary/scale
    /// metadata and outlier overheads).
    pub param_bits: f64,
    /// Effective activation bits per value.
    pub act_bits: f64,
    /// Whether all compute stays in the fixed-point domain.
    pub int_compute: bool,
    /// Whether the method works post-training (no fine-tuning).
    pub post_training: bool,
}

impl Baseline {
    /// All Table IV rows in the paper's order.
    pub fn table4() -> Vec<Baseline> {
        vec![
            Baseline::Q8Bert,
            Baseline::IBert,
            Baseline::QBert,
            Baseline::Gobo,
            Baseline::TernaryBert,
            Baseline::Mokey,
        ]
    }

    /// Static method properties.
    pub fn info(&self) -> MethodInfo {
        match self {
            Baseline::Q8Bert => MethodInfo {
                name: "Q8BERT",
                param_bits: 8.0,
                act_bits: 8.0,
                int_compute: false,
                post_training: false,
            },
            Baseline::IBert => MethodInfo {
                name: "I-BERT",
                param_bits: 8.0,
                act_bits: 8.0,
                int_compute: true,
                post_training: false,
            },
            Baseline::QBert => MethodInfo {
                name: "Q-BERT",
                // 4-bit values + one 16-bit scale per 128-value group.
                param_bits: 4.0 + 16.0 / 128.0,
                act_bits: 8.0,
                int_compute: false,
                post_training: false,
            },
            Baseline::Gobo => MethodInfo {
                name: "GOBO",
                // 3-bit indexes, ~0.5% FP32 outliers, 8-centroid FP32
                // dictionary per tensor (amortized to ~0).
                param_bits: 3.0 + 0.005 * 32.0,
                act_bits: 32.0,
                int_compute: false,
                post_training: true,
            },
            Baseline::TernaryBert => MethodInfo {
                name: "TernaryBERT",
                param_bits: 2.0,
                act_bits: 8.0,
                int_compute: false,
                post_training: false,
            },
            Baseline::Mokey => MethodInfo {
                name: "Mokey",
                // Fig. 5 container: 4b + 6/64 group + ~3% outlier pointers.
                param_bits: 4.27,
                act_bits: 4.27,
                int_compute: true,
                post_training: true,
            },
        }
    }

    /// Quantize-and-decode a weight matrix with this method.
    ///
    /// [`Baseline::Mokey`] is intentionally *not* handled here — the real
    /// implementation lives in `mokey-core`.
    ///
    /// # Panics
    ///
    /// Panics when called on [`Baseline::Mokey`].
    pub fn quantize_weights(&self, w: &Matrix) -> Matrix {
        match self {
            Baseline::Q8Bert | Baseline::IBert => {
                let q = LinearQuant::fit(w.as_slice(), 8);
                w.map(|x| q.apply(x))
            }
            Baseline::QBert => groupwise_4bit(w, 128),
            Baseline::Gobo => gobo_weights(w),
            Baseline::TernaryBert => ternary_weights(w),
            Baseline::Mokey => panic!("Mokey weights are quantized by mokey-core"),
        }
    }

    /// Activation quantizer for this method given a profiled summary
    /// (`None` when the method leaves activations in floating point).
    pub fn act_quantizer(&self, profile: &Summary) -> Option<LinearQuant> {
        let max_abs = profile.max().abs().max(profile.min().abs()).max(1e-9);
        match self {
            Baseline::Q8Bert | Baseline::IBert | Baseline::QBert | Baseline::TernaryBert => {
                Some(LinearQuant::symmetric(max_abs, 8))
            }
            Baseline::Gobo => None,
            Baseline::Mokey => None, // handled by mokey-core dictionaries
        }
    }
}

/// Q-BERT-style group-wise quantization: consecutive groups of
/// `group_size` output columns share a 4-bit symmetric quantizer.
fn groupwise_4bit(w: &Matrix, group_size: usize) -> Matrix {
    let mut out = w.clone();
    let cols = w.cols();
    for g_start in (0..cols).step_by(group_size) {
        let g_end = (g_start + group_size).min(cols);
        // Gather the group's values across all rows.
        let mut max_abs = 0.0f64;
        for r in 0..w.rows() {
            for c in g_start..g_end {
                max_abs = max_abs.max(f64::from(w[(r, c)].abs()));
            }
        }
        let q = LinearQuant::symmetric(max_abs.max(1e-12), 4);
        for r in 0..w.rows() {
            for c in g_start..g_end {
                out[(r, c)] = q.apply(w[(r, c)]);
            }
        }
    }
    out
}

/// GOBO weight quantization: split by |z| into the Gaussian group
/// (k-means-style 8-centroid dictionary) and outliers (kept exact).
fn gobo_weights(w: &Matrix) -> Matrix {
    let s = Summary::of(w.as_slice());
    let std = s.std().max(1e-12);
    let mean = s.mean();
    const OUTLIER_Z: f64 = 3.0;
    let gaussian: Vec<f64> = w
        .as_slice()
        .iter()
        .map(|&v| f64::from(v))
        .filter(|&v| ((v - mean) / std).abs() <= OUTLIER_Z)
        .collect();
    if gaussian.len() < 8 {
        return w.clone();
    }
    let clustering = kmeans(&gaussian, KMeansConfig { k: 8, max_iters: 60, seed: 0x90B0 });
    w.map(|v| {
        let z = ((f64::from(v)) - mean) / std;
        if z.abs() > OUTLIER_Z {
            v // outliers stay exact (FP32)
        } else {
            clustering.quantize(f64::from(v)) as f32
        }
    })
}

/// TWN-style ternarization: `delta = 0.7·E[|w|]`, scale = mean magnitude
/// above the threshold.
fn ternary_weights(w: &Matrix) -> Matrix {
    let mean_abs: f64 =
        w.as_slice().iter().map(|v| f64::from(v.abs())).sum::<f64>() / w.len().max(1) as f64;
    let delta = 0.7 * mean_abs;
    let above: Vec<f64> =
        w.as_slice().iter().map(|v| f64::from(v.abs())).filter(|&a| a > delta).collect();
    let scale =
        if above.is_empty() { mean_abs } else { above.iter().sum::<f64>() / above.len() as f64 };
    w.map(|v| {
        if f64::from(v.abs()) <= delta {
            0.0
        } else if v > 0.0 {
            scale as f32
        } else {
            -scale as f32
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mokey_core::metrics::rmse;
    use mokey_tensor::init::GaussianMixture;

    fn weights() -> Matrix {
        GaussianMixture::weight_like(0.0, 0.05).sample_matrix(96, 128, 77)
    }

    #[test]
    fn eight_bit_methods_are_nearly_lossless() {
        let w = weights();
        for b in [Baseline::Q8Bert, Baseline::IBert] {
            let q = b.quantize_weights(&w);
            let err = rmse(w.as_slice(), q.as_slice());
            assert!(err < 0.05 * 0.05, "{}: rmse {err}", b.info().name);
        }
    }

    #[test]
    fn groupwise_beats_per_tensor_at_4_bits() {
        let w = weights();
        let group = Baseline::QBert.quantize_weights(&w);
        let q4 = LinearQuant::fit(w.as_slice(), 4);
        let per_tensor = w.map(|x| q4.apply(x));
        assert!(
            rmse(w.as_slice(), group.as_slice()) <= rmse(w.as_slice(), per_tensor.as_slice()),
            "group-wise should not lose to per-tensor"
        );
    }

    #[test]
    fn gobo_preserves_outliers_exactly() {
        let w = weights();
        let q = Baseline::Gobo.quantize_weights(&w);
        let s = Summary::of(w.as_slice());
        let mut outliers = 0;
        for (a, b) in w.as_slice().iter().zip(q.as_slice()) {
            let z = (f64::from(*a) - s.mean()) / s.std();
            if z.abs() > 3.0 {
                assert_eq!(a, b, "outlier {a} was modified");
                outliers += 1;
            }
        }
        assert!(outliers > 0, "fixture should contain outliers");
    }

    #[test]
    fn gobo_uses_at_most_8_gaussian_levels() {
        let w = weights();
        let q = Baseline::Gobo.quantize_weights(&w);
        let s = Summary::of(w.as_slice());
        let mut levels: Vec<f32> = q
            .as_slice()
            .iter()
            .zip(w.as_slice())
            .filter(|(_, orig)| ((f64::from(**orig) - s.mean()) / s.std()).abs() <= 3.0)
            .map(|(v, _)| *v)
            .collect();
        levels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        levels.dedup();
        assert!(levels.len() <= 8, "{} distinct Gaussian levels", levels.len());
    }

    #[test]
    fn ternary_uses_three_levels() {
        let w = weights();
        let q = Baseline::TernaryBert.quantize_weights(&w);
        let mut levels: Vec<f32> = q.as_slice().to_vec();
        levels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        levels.dedup();
        assert!(levels.len() <= 3, "{} distinct ternary levels", levels.len());
        // Symmetric around zero.
        if levels.len() == 3 {
            assert!((levels[0] + levels[2]).abs() < 1e-6);
            assert_eq!(levels[1], 0.0);
        }
    }

    #[test]
    fn error_ordering_follows_bit_budget() {
        let w = weights();
        let e8 = rmse(w.as_slice(), Baseline::Q8Bert.quantize_weights(&w).as_slice());
        let e4 = rmse(w.as_slice(), Baseline::QBert.quantize_weights(&w).as_slice());
        let e2 = rmse(w.as_slice(), Baseline::TernaryBert.quantize_weights(&w).as_slice());
        assert!(e8 < e4 && e4 < e2, "e8={e8} e4={e4} e2={e2}");
    }

    #[test]
    fn act_quantizer_presence_matches_method() {
        let s = Summary::of(&[-1.0, 2.0, 0.5]);
        assert!(Baseline::Q8Bert.act_quantizer(&s).is_some());
        assert!(Baseline::Gobo.act_quantizer(&s).is_none());
        assert!(Baseline::Mokey.act_quantizer(&s).is_none());
    }

    #[test]
    fn table4_lists_six_methods() {
        assert_eq!(Baseline::table4().len(), 6);
    }

    #[test]
    #[should_panic(expected = "quantized by mokey-core")]
    fn mokey_weights_panic_here() {
        let _ = Baseline::Mokey.quantize_weights(&weights());
    }
}
