//! Quantization baselines for Table IV of the Mokey paper.
//!
//! The paper compares Mokey against five prior schemes on BERT-Base/MNLI:
//!
//! | method | params | acts | INT compute | post-training |
//! |---|---|---|---|---|
//! | Q8BERT | 8b | 8b | ✗ | ✗ |
//! | I-BERT | 8b | 8b | ✓ | ✗ |
//! | Q-BERT | 4b (group-wise dict) | 8b | ✗ | ✗ |
//! | GOBO | 3b dict + FP32 outliers | FP32 | ✗ | ✓ |
//! | TernaryBERT | 2b | 8b | ✗ | ✗ |
//!
//! Each baseline here implements the *quantizer* faithfully
//! (post-training; the fine-tuning/distillation steps of Q8BERT/Q-BERT/
//! TernaryBERT are not reproducible without their training sets, which is
//! exactly the paper's point about those methods — Table IV's accuracy
//! deltas for them are taken from their publications, while our harness
//! measures the *post-training* behaviour of every scheme on the same
//! synthetic task).

mod linear;
mod methods;
mod model;

pub use linear::LinearQuant;
pub use methods::{Baseline, MethodInfo};
pub use model::{prepare_baseline, BaselineModel};

use mokey_transformer::footprint::footprint;
use mokey_transformer::ModelConfig;

/// Total-footprint compression ratio of a method versus the FP32 baseline
/// (Table IV's "Compression Ratio"): weights and the per-inference
/// activation working set, weighted as the paper's Fig. 1 accounting does.
///
/// # Example
///
/// ```
/// use mokey_baselines::{compression_ratio, Baseline};
/// use mokey_transformer::ModelConfig;
///
/// let r = compression_ratio(&Baseline::TernaryBert.info(), &ModelConfig::bert_base(), 128);
/// // Table IV reports 10.8x for TernaryBERT.
/// assert!(r > 8.0 && r < 14.0);
/// ```
pub fn compression_ratio(info: &MethodInfo, config: &ModelConfig, seq: usize) -> f64 {
    // Value counts: parameters from the config, activations from the
    // Fig. 1 accounting at 1 byte/value.
    let params = config.param_count() as f64;
    let acts = footprint(config, seq, 1.0).activation_bytes as f64;
    let fp32 = (params + acts) * 32.0;
    let quantized = params * info.param_bits + acts * info.act_bits;
    fp32 / quantized
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_compression_ratios_are_reproduced() {
        // Paper Table IV: Q8BERT 4.0, I-BERT 4.0, Q-BERT 6.9, GOBO 4.1,
        // TernaryBERT 10.8, Mokey 7.9. Accept ±25% (the paper's activation
        // accounting details differ slightly).
        let config = ModelConfig::bert_base();
        let within = |b: Baseline, expect: f64| {
            let r = compression_ratio(&b.info(), &config, 128);
            assert!(
                (r / expect - 1.0).abs() < 0.25,
                "{}: ratio {r} vs paper {expect}",
                b.info().name
            );
        };
        within(Baseline::Q8Bert, 4.0);
        within(Baseline::IBert, 4.0);
        within(Baseline::QBert, 6.9);
        within(Baseline::Gobo, 4.1);
        within(Baseline::TernaryBert, 10.8);
        within(Baseline::Mokey, 7.9);
    }

    #[test]
    fn mokey_compresses_more_than_8bit_methods() {
        let config = ModelConfig::bert_base();
        let mokey = compression_ratio(&Baseline::Mokey.info(), &config, 128);
        let q8 = compression_ratio(&Baseline::Q8Bert.info(), &config, 128);
        assert!(mokey > 1.5 * q8);
    }
}
