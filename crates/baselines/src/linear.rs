//! Uniform (linear) quantization, the workhorse of the 8-bit baselines.

use serde::{Deserialize, Serialize};

/// A symmetric uniform quantizer: `q = clamp(round(x / scale))`,
/// `x̂ = q · scale`, with `2^(bits−1) − 1` positive levels.
///
/// # Example
///
/// ```
/// use mokey_baselines::LinearQuant;
///
/// let q = LinearQuant::symmetric(1.0, 8);
/// assert_eq!(q.apply(0.5), 0.5039370078740157_f64 as f32);
/// assert_eq!(q.apply(100.0), 1.0); // saturates at max_abs
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearQuant {
    scale: f64,
    levels: i64,
    bits: u32,
}

impl LinearQuant {
    /// Builds a symmetric quantizer covering `[-max_abs, max_abs]`.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2` or `max_abs` is not positive/finite.
    pub fn symmetric(max_abs: f64, bits: u32) -> Self {
        assert!(bits >= 2, "need at least 2 bits");
        assert!(max_abs.is_finite() && max_abs > 0.0, "max_abs must be positive");
        let levels = (1i64 << (bits - 1)) - 1;
        Self { scale: max_abs / levels as f64, levels, bits }
    }

    /// Builds the quantizer from observed values (max-abs calibration, as
    /// Q8BERT/I-BERT do).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn fit(values: &[f32], bits: u32) -> Self {
        assert!(!values.is_empty(), "cannot fit a quantizer to zero values");
        let max_abs = values.iter().map(|v| f64::from(v.abs())).fold(0.0, f64::max).max(1e-12);
        Self::symmetric(max_abs, bits)
    }

    /// Quantizes and dequantizes one value.
    pub fn apply(&self, x: f32) -> f32 {
        let q =
            (f64::from(x) / self.scale).round().clamp(-(self.levels as f64), self.levels as f64);
        (q * self.scale) as f32
    }

    /// The quantization step.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let q = LinearQuant::symmetric(2.0, 8);
        for i in -200..=200 {
            let x = i as f32 * 0.01;
            let err = (q.apply(x) - x).abs();
            assert!(f64::from(err) <= q.scale() / 2.0 + 1e-9, "x={x} err={err}");
        }
    }

    #[test]
    fn saturates_outside_range() {
        let q = LinearQuant::symmetric(1.0, 8);
        assert_eq!(q.apply(5.0), 1.0);
        assert_eq!(q.apply(-5.0), -1.0);
    }

    #[test]
    fn fit_covers_extremes() {
        let values = [-3.0f32, 0.1, 2.5];
        let q = LinearQuant::fit(&values, 8);
        assert_eq!(q.apply(-3.0), -3.0);
    }

    #[test]
    fn fewer_bits_mean_coarser_steps() {
        let q8 = LinearQuant::symmetric(1.0, 8);
        let q4 = LinearQuant::symmetric(1.0, 4);
        assert!(q4.scale() > q8.scale() * 10.0);
    }

    #[test]
    fn zero_maps_to_zero() {
        let q = LinearQuant::symmetric(1.0, 4);
        assert_eq!(q.apply(0.0), 0.0);
    }
}
