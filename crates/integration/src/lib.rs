//! Shim crate that attaches the workspace-root `tests/` directory as
//! integration-test targets (a virtual workspace cannot host tests
//! directly). See the `[[test]]` entries in `Cargo.toml`.
