//! Smoke tests over the workspace-root `examples/`: each example's `main`
//! is included as a module and executed, so an example that panics, hits
//! an assertion, or stops compiling fails `cargo test` instead of rotting
//! silently.
//!
//! The examples print to stdout; the test harness captures that output,
//! so a green run stays quiet.

mod quickstart_example {
    include!("../../../examples/quickstart.rs");

    #[test]
    fn quickstart_runs() {
        main();
    }
}

mod compress_model_example {
    include!("../../../examples/compress_model.rs");

    #[test]
    fn compress_model_runs() {
        main();
    }
}

mod profile_activations_example {
    include!("../../../examples/profile_activations.rs");

    #[test]
    fn profile_activations_runs() {
        main();
    }
}

mod memory_compression_example {
    include!("../../../examples/memory_compression.rs");

    #[test]
    fn memory_compression_runs() {
        main();
    }
}

mod accelerate_inference_example {
    include!("../../../examples/accelerate_inference.rs");

    #[test]
    fn accelerate_inference_runs() {
        main();
    }
}

mod serve_requests_example {
    include!("../../../examples/serve_requests.rs");

    #[test]
    fn serve_requests_runs() {
        main();
    }
}

mod serve_multi_model_example {
    include!("../../../examples/serve_multi_model.rs");

    #[test]
    fn serve_multi_model_runs() {
        main();
    }
}

mod serve_over_tcp_example {
    include!("../../../examples/serve_over_tcp.rs");

    #[test]
    fn serve_over_tcp_runs() {
        main();
    }
}

mod serve_generate_example {
    include!("../../../examples/serve_generate.rs");

    #[test]
    fn serve_generate_runs() {
        main();
    }
}
