//! Regression tests pinning the Mokey paper's published constants and the
//! reproducibility guarantees the rest of the workspace builds on.
//!
//! Paper: "Mokey: Enabling Narrow Fixed-Point Inference for Out-of-the-Box
//! Floating-Point Transformer Models" (ISCA 2022).

use mokey_core::curve::{ExpCurve, PAPER_A, PAPER_B};
use mokey_core::encode::QuantizedTensor;
use mokey_core::golden::{GoldenConfig, GoldenDictionary};
use mokey_core::metrics::{max_abs_err, rmse, sqnr_db};
use mokey_tensor::init::GaussianMixture;

/// Section II-D: "we fit the GD = a^int + b curve … where a = 1.179,
/// b = −0.977". `ExpCurve::paper()` must carry exactly these published
/// constants.
#[test]
fn paper_curve_constants_are_pinned() {
    let c = ExpCurve::paper();
    assert_eq!(c.a, PAPER_A);
    assert_eq!(c.b, PAPER_B);
    assert_eq!(c.half_len, 8);
    assert_eq!(PAPER_A, 1.179);
    assert_eq!(PAPER_B, -0.977);
    // Derived anchor points of the published curve: a^0 + b and a^7 + b.
    assert!((c.magnitude(0) - 0.023).abs() < 1e-3);
    assert!((c.magnitude(7) - 2.1898).abs() < 1e-3);
}

/// The fitter must *recover* the paper constants when pointed at the
/// paper's own curve: magnitudes generated from a = 1.179, b = −0.977 fit
/// back to those values within the golden-section search tolerance.
#[test]
fn fit_recovers_paper_constants_from_paper_curve() {
    let paper = ExpCurve::paper();
    let magnitudes: Vec<f64> = (0..8).map(|i| paper.magnitude(i)).collect();
    // Section II-D weighting: "a unit weight for the outer bin, and
    // doubles the weight for the bins as we move towards zero".
    let weights: Vec<f64> = (0..8).map(|i| ((7 - i) as f64).exp2()).collect();
    let fitted = ExpCurve::fit_weighted(&magnitudes, &weights);
    assert!((fitted.a - PAPER_A).abs() < 1e-6, "a drifted: {}", fitted.a);
    assert!((fitted.b - PAPER_B).abs() < 1e-6, "b drifted: {}", fitted.b);
}

/// Fitting a freshly generated Golden Dictionary lands in a band around
/// the paper constants. The band is wider than the recovery test above
/// because our N(0,1) draw folds the two zero-straddling inner centroids
/// into one magnitude near 0.125 (the paper's draw had an inner bin near
/// 0.023), which mostly shifts `b`; see the seed's Fig. 3 note.
#[test]
fn fit_of_generated_golden_dictionary_is_near_paper() {
    let gd = GoldenDictionary::generate(&GoldenConfig { repeats: 2, ..Default::default() });
    let fitted = ExpCurve::fit(&gd);
    assert!((1.15..=1.25).contains(&fitted.a), "a outside paper band: {}", fitted.a);
    assert!((-1.05..=-0.75).contains(&fitted.b), "b outside paper band: {}", fitted.b);
    // The fit must describe the dictionary well: worst per-bin residual
    // under 0.15 on magnitudes that reach ~2.8.
    let worst = gd
        .half()
        .iter()
        .enumerate()
        .map(|(i, &m)| (fitted.magnitude(i) - m).abs())
        .fold(0.0, f64::max);
    assert!(worst < 0.15, "worst fit residual {worst}");
}

/// Section II-B: the Golden Dictionary recipe is deterministic given a
/// seed — identical configs must produce bit-identical dictionaries, and
/// different seeds must not.
#[test]
fn golden_dictionary_is_deterministic_under_fixed_seed() {
    let config = GoldenConfig { samples: 10_000, repeats: 2, ..Default::default() };
    let a = GoldenDictionary::generate(&config);
    let b = GoldenDictionary::generate(&config);
    assert_eq!(a, b, "same seed must reproduce the same dictionary");

    let c = GoldenDictionary::generate(&GoldenConfig { seed: config.seed + 1, ..config });
    assert_ne!(a, c, "a different seed should perturb the dictionary");

    // Structural invariants from the paper: 2^(bits-1) = 8 ascending
    // positive magnitudes spanning the bulk of N(0,1).
    assert_eq!(a.half().len(), 8);
    assert!(a.half().windows(2).all(|w| w[0] < w[1]));
    assert!(a.half()[0] > 0.0 && a.half()[7] > 1.8 && a.half()[7] < 4.0);
}

/// Encode/decode round-trip error bounds on a weight-like tensor
/// (Section II-C / Table I operating point): 4-bit Mokey quantization of
/// transformer-like weights keeps SQNR near 20 dB and absolute errors
/// within the outlier-bin span.
#[test]
fn quantized_tensor_roundtrip_error_bounds() {
    let w = GaussianMixture::weight_like(0.0, 0.05).sample_matrix(128, 384, 0xBEEF);
    let q = QuantizedTensor::encode_with_own_dict(&w, &ExpCurve::paper(), &Default::default())
        .expect("non-degenerate tensor");
    let decoded = q.decode();
    assert_eq!(decoded.shape(), w.shape());

    let sqnr = sqnr_db(w.as_slice(), decoded.as_slice());
    assert!(sqnr > 18.0, "SQNR regressed: {sqnr:.2} dB");

    let rms = rmse(w.as_slice(), decoded.as_slice());
    assert!(rms < 0.02, "RMSE regressed: {rms}");

    // Bulk (non-outlier) error is bounded by half the largest centroid
    // gap; outliers are clamped to the outlier bins, so the global max
    // error stays within the tensor's own value range.
    let max_err = max_abs_err(w.as_slice(), decoded.as_slice());
    let span = w.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    assert!(max_err <= f64::from(span), "max error {max_err} exceeds value span {span}");

    // Paper key characteristic: ~1.5% weight outliers at this operating
    // point (Table I reports 1.2–1.6%).
    let frac = q.outlier_fraction();
    assert!((0.001..=0.03).contains(&frac), "outlier fraction drifted: {frac}");
}

/// Re-encoding an already decoded tensor with the same dictionary is
/// exact: decode ∘ encode is idempotent (grid values are fixed points).
#[test]
fn roundtrip_is_idempotent_on_grid_values() {
    let w = GaussianMixture::weight_like(0.0, 0.08).sample_matrix(32, 64, 42);
    let q = QuantizedTensor::encode_with_own_dict(&w, &ExpCurve::paper(), &Default::default())
        .expect("non-degenerate tensor");
    let once = q.decode();
    let q2 = QuantizedTensor::encode(&once, q.dict());
    let twice = q2.decode();
    assert!(once.max_abs_diff(&twice) < 1e-6, "decode∘encode not idempotent");
}
