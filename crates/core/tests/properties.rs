//! Property-based tests for the Mokey core: the index-domain decomposition
//! must be *exactly* the decoded dot product, for arbitrary code streams and
//! dictionary statistics — this is the paper's central algebraic claim
//! (Eq. 1–6).

use mokey_core::curve::ExpCurve;
use mokey_core::dict::{OutlierPolicy, TensorDict, TensorDictConfig};
use mokey_core::encode::{Code, QuantizedTensor};
use mokey_core::kernels;
use mokey_core::lut::{
    matmul_lut, matmul_lut_bias, matmul_lut_bias_counter, matmul_lut_counter, ColMajorCodes,
    PairLut, SKIP_CODE,
};
use mokey_core::quantizer::OutputQuantizer;
use mokey_tensor::Matrix;
use proptest::prelude::*;

/// Arbitrary tensors with varied mean/std and tail heaviness.
fn tensor_strategy() -> impl Strategy<Value = Vec<f32>> {
    (
        -2.0f64..2.0,                                    // mean
        0.01f64..3.0,                                    // std
        prop::collection::vec(-4.0f64..4.0, 32..256),    // z-scores
        prop::collection::vec(prop::bool::ANY, 32..256), // tail flags
    )
        .prop_map(|(mean, std, zs, tails)| {
            zs.iter()
                .zip(tails.iter().cycle())
                .map(|(&z, &tail)| {
                    let scale = if tail && z.abs() > 3.0 { 5.0 } else { 1.0 };
                    (mean + z * std * scale) as f32
                })
                .collect()
        })
}

fn dict_for(values: &[f32], policy: OutlierPolicy) -> TensorDict {
    let config = TensorDictConfig { policy, ..Default::default() };
    TensorDict::for_values(values, &ExpCurve::paper(), &config).expect("non-degenerate fixture")
}

proptest! {
    /// THE invariant: index-domain == decoded reference, exactly.
    #[test]
    fn indexed_dot_equals_decoded_dot(
        a_vals in tensor_strategy(),
        w_vals in tensor_strategy(),
    ) {
        let n = a_vals.len().min(w_vals.len());
        let a = Matrix::from_vec(1, n, a_vals[..n].to_vec());
        let w = Matrix::from_vec(1, n, w_vals[..n].to_vec());
        let qa = QuantizedTensor::encode(&a, &dict_for(a.as_slice(), OutlierPolicy::CurveMidpoint));
        let qw = QuantizedTensor::encode(&w, &dict_for(w.as_slice(), OutlierPolicy::CurveMidpoint));
        let indexed = kernels::dot_indexed(qa.codes(), qa.dict(), qw.codes(), qw.dict());
        let decoded = kernels::dot_decoded(qa.codes(), qa.dict(), qw.codes(), qw.dict());
        let tol = 1e-9 * decoded.abs().max(1.0);
        prop_assert!((indexed - decoded).abs() <= tol,
            "indexed {indexed} != decoded {decoded}");
    }

    /// Same invariant with the Gaussian-only policy (no outlier path at
    /// all — pure histogram arithmetic).
    #[test]
    fn indexed_dot_exact_without_outliers(
        a_vals in tensor_strategy(),
        w_vals in tensor_strategy(),
    ) {
        let n = a_vals.len().min(w_vals.len());
        let a = Matrix::from_vec(1, n, a_vals[..n].to_vec());
        let w = Matrix::from_vec(1, n, w_vals[..n].to_vec());
        let qa = QuantizedTensor::encode(&a, &dict_for(a.as_slice(), OutlierPolicy::Disabled));
        let qw = QuantizedTensor::encode(&w, &dict_for(w.as_slice(), OutlierPolicy::Disabled));
        let indexed = kernels::dot_indexed(qa.codes(), qa.dict(), qw.codes(), qw.dict());
        let decoded = kernels::dot_decoded(qa.codes(), qa.dict(), qw.codes(), qw.dict());
        prop_assert!((indexed - decoded).abs() <= 1e-9 * decoded.abs().max(1.0));
    }

    /// Encode/decode round-trip error for bulk (non-clamped) values is
    /// bounded by half the largest centroid gap.
    #[test]
    fn roundtrip_error_bounded(values in tensor_strategy()) {
        let dict = dict_for(&values, OutlierPolicy::CurveMidpoint);
        let centroids = dict.signed_centroids();
        let lo = centroids.first().unwrap().0;
        let hi = centroids.last().unwrap().0;
        let max_gap = centroids.windows(2).map(|w| w[1].0 - w[0].0).fold(0.0, f64::max);
        for &v in &values {
            let fv = f64::from(v);
            if fv > lo && fv < hi {
                let err = (dict.decode_code(dict.encode_value(v)) - fv).abs();
                prop_assert!(err <= max_gap / 2.0 + 1e-9);
            }
        }
    }

    /// Codes always round-trip through their packed bit forms, including
    /// the 4-bit memory form.
    #[test]
    fn code_bits_roundtrip(outlier in prop::bool::ANY, neg in prop::bool::ANY, idx in 0u8..8) {
        let c = Code::new(outlier, neg, idx);
        prop_assert_eq!(Code::from_bits(c.to_bits()), c);
        prop_assert_eq!(Code::from_bits4(c.to_bits4(), outlier), c);
    }

    /// The Fig. 7 hardware quantizer and the software encoder agree on
    /// every probe value.
    #[test]
    fn output_quantizer_matches_encoder(
        values in tensor_strategy(),
        probes in prop::collection::vec(-20.0f32..20.0, 1..64),
    ) {
        let dict = dict_for(&values, OutlierPolicy::CurveMidpoint);
        let engine = OutputQuantizer::new(dict.clone());
        for &p in &probes {
            prop_assert_eq!(engine.quantize(p), dict.encode_value(p));
        }
    }

    /// Histogram mass conservation: every pair lands in exactly one place.
    #[test]
    fn breakdown_mass_conserved(
        a_vals in tensor_strategy(),
        w_vals in tensor_strategy(),
    ) {
        let n = a_vals.len().min(w_vals.len());
        let a = Matrix::from_vec(1, n, a_vals[..n].to_vec());
        let w = Matrix::from_vec(1, n, w_vals[..n].to_vec());
        let qa = QuantizedTensor::encode(&a, &dict_for(a.as_slice(), OutlierPolicy::CurveMidpoint));
        let qw = QuantizedTensor::encode(&w, &dict_for(w.as_slice(), OutlierPolicy::CurveMidpoint));
        let bd = kernels::dot_breakdown(qa.codes(), qa.dict(), qw.codes(), qw.dict());
        prop_assert_eq!(bd.gaussian_pairs + bd.outlier_pairs, n as i64);
        prop_assert_eq!(bd.soi.iter().sum::<i64>(), bd.pom1);
        prop_assert_eq!(bd.soa1.iter().sum::<i64>(), bd.pom1);
        prop_assert_eq!(bd.sow1.iter().sum::<i64>(), bd.pom1);
        prop_assert_eq!(bd.soa2.iter().sum::<i64>(), bd.pom2);
        prop_assert_eq!(bd.sow2.iter().sum::<i64>(), bd.pom3);
    }

    /// The LUT GEMM is bit-identical to `dot_decoded` **per output
    /// scalar**, for arbitrary shapes (including ragged remainders around
    /// the 4-lane structure and empty activations) and for outlier-heavy
    /// dictionaries — the `Fraction(0.2)` policy forces ~20% of codes
    /// through the OT table, so the table's outlier rows are exercised.
    #[test]
    fn matmul_lut_equals_dot_decoded_per_scalar(
        a_vals in tensor_strategy(),
        w_vals in tensor_strategy(),
        m in 0usize..5,
        n in 1usize..7,
        outlier_heavy in prop::bool::ANY,
    ) {
        let k = (a_vals.len() / m.max(1)).min(w_vals.len() / n).max(1);
        prop_assume!(a_vals.len() >= m * k && w_vals.len() >= k * n);
        let policy = if outlier_heavy {
            OutlierPolicy::Fraction(0.2)
        } else {
            OutlierPolicy::CurveMidpoint
        };
        let a = Matrix::from_vec(m, k, a_vals[..m * k].to_vec());
        let w = Matrix::from_vec(k, n, w_vals[..k * n].to_vec());
        let qa = QuantizedTensor::encode(&a, &dict_for(&a_vals, policy));
        let qw = QuantizedTensor::encode(&w, &dict_for(&w_vals, policy));
        let lut = PairLut::new(qa.dict(), qw.dict());
        let cols = ColMajorCodes::from_tensor(&qw);
        let out = matmul_lut(&qa, &cols, &lut);
        prop_assert_eq!(out.shape(), (m, n));
        for i in 0..m {
            for j in 0..n {
                let reference =
                    kernels::dot_decoded(qa.row_codes(i), qa.dict(), cols.col(j), qw.dict()) as f32;
                prop_assert_eq!(out[(i, j)].to_bits(), reference.to_bits(),
                    "scalar ({},{}) diverged", i, j);
            }
        }
    }

    /// The serving LUT kernel is bit-identical to the dense float GEMM on
    /// decoded operands, row for row — including packed layouts where some
    /// rows are never-encoded padding (the skip sentinel) and must emit the
    /// bias without disturbing their neighbours.
    #[test]
    fn matmul_lut_bias_equals_dense_gemm_with_padding_rows(
        a_vals in tensor_strategy(),
        w_vals in tensor_strategy(),
        m in 1usize..6,
        n in 1usize..7,
        skip_mask in prop::collection::vec(prop::bool::ANY, 6),
        outlier_heavy in prop::bool::ANY,
    ) {
        let k = (a_vals.len() / m).min(w_vals.len() / n).max(1);
        prop_assume!(a_vals.len() >= m * k && w_vals.len() >= k * n);
        let policy = if outlier_heavy {
            OutlierPolicy::Fraction(0.2)
        } else {
            OutlierPolicy::CurveMidpoint
        };
        let a = Matrix::from_vec(m, k, a_vals[..m * k].to_vec());
        let w = Matrix::from_vec(k, n, w_vals[..k * n].to_vec());
        let qa = QuantizedTensor::encode(&a, &dict_for(&a_vals, policy));
        let qw = QuantizedTensor::encode(&w, &dict_for(&w_vals, policy));
        let lut = PairLut::new(qa.dict(), qw.dict());
        let bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.05 - 0.1).collect();
        let mut a_bits: Vec<u8> = qa.codes().iter().map(|c| c.to_bits()).collect();
        for r in 0..m {
            if skip_mask[r] {
                for b in &mut a_bits[r * k..(r + 1) * k] {
                    *b = SKIP_CODE;
                }
            }
        }
        let fast = matmul_lut_bias(&a_bits, m, k, &qw, &bias, &lut);
        let reference = qa.decode().matmul_bias(&qw.decode(), &bias);
        for (r, &skipped) in skip_mask.iter().enumerate().take(m) {
            if skipped {
                prop_assert_eq!(fast.row(r), bias.as_slice());
            } else {
                for (x, y) in fast.row(r).iter().zip(reference.row(r)) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "row {} diverged", r);
                }
            }
        }
    }

    /// The counter-array GEMM is bit-identical to both `matmul_lut` and
    /// `dot_decoded` **per output scalar**, across shapes that cross the
    /// row-panel boundary (full 16-row panels plus ragged remainders) and
    /// the 4-code lane remainder, with outlier-heavy dictionaries forcing
    /// codes through the OT table.
    #[test]
    fn matmul_lut_counter_equals_dot_decoded_per_scalar(
        a_vals in tensor_strategy(),
        w_vals in tensor_strategy(),
        m in 0usize..20,
        n in 1usize..7,
        outlier_heavy in prop::bool::ANY,
    ) {
        let k = (a_vals.len() / m.max(1)).min(w_vals.len() / n).max(1);
        prop_assume!(a_vals.len() >= m * k && w_vals.len() >= k * n);
        let policy = if outlier_heavy {
            OutlierPolicy::Fraction(0.2)
        } else {
            OutlierPolicy::CurveMidpoint
        };
        let a = Matrix::from_vec(m, k, a_vals[..m * k].to_vec());
        let w = Matrix::from_vec(k, n, w_vals[..k * n].to_vec());
        let qa = QuantizedTensor::encode(&a, &dict_for(&a_vals, policy));
        let qw = QuantizedTensor::encode(&w, &dict_for(&w_vals, policy));
        let lut = PairLut::new(qa.dict(), qw.dict());
        let cols = ColMajorCodes::from_tensor(&qw);
        let counter = matmul_lut_counter(&qa, &cols, &lut);
        let row_kernel = matmul_lut(&qa, &cols, &lut);
        prop_assert_eq!(counter.shape(), (m, n));
        for i in 0..m {
            for j in 0..n {
                prop_assert_eq!(counter[(i, j)].to_bits(), row_kernel[(i, j)].to_bits(),
                    "counter vs matmul_lut diverged at ({},{})", i, j);
                let reference =
                    kernels::dot_decoded(qa.row_codes(i), qa.dict(), cols.col(j), qw.dict()) as f32;
                prop_assert_eq!(counter[(i, j)].to_bits(), reference.to_bits(),
                    "counter vs dot_decoded diverged at ({},{})", i, j);
            }
        }
    }

    /// The serving counter-array kernel is bit-identical to
    /// `matmul_lut_bias` and to the dense float GEMM on decoded operands,
    /// row for row — including `SKIP_CODE` padding rows landing anywhere
    /// inside or across its 4-row quads.
    #[test]
    fn matmul_lut_bias_counter_equals_dense_gemm_with_padding_rows(
        a_vals in tensor_strategy(),
        w_vals in tensor_strategy(),
        m in 1usize..10,
        n in 1usize..7,
        skip_mask in prop::collection::vec(prop::bool::ANY, 10),
        outlier_heavy in prop::bool::ANY,
    ) {
        let k = (a_vals.len() / m).min(w_vals.len() / n).max(1);
        prop_assume!(a_vals.len() >= m * k && w_vals.len() >= k * n);
        let policy = if outlier_heavy {
            OutlierPolicy::Fraction(0.2)
        } else {
            OutlierPolicy::CurveMidpoint
        };
        let a = Matrix::from_vec(m, k, a_vals[..m * k].to_vec());
        let w = Matrix::from_vec(k, n, w_vals[..k * n].to_vec());
        let qa = QuantizedTensor::encode(&a, &dict_for(&a_vals, policy));
        let qw = QuantizedTensor::encode(&w, &dict_for(&w_vals, policy));
        let lut = PairLut::new(qa.dict(), qw.dict());
        let bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.05 - 0.1).collect();
        let mut a_bits: Vec<u8> = qa.codes().iter().map(|c| c.to_bits()).collect();
        for r in 0..m {
            if skip_mask[r] {
                for b in &mut a_bits[r * k..(r + 1) * k] {
                    *b = SKIP_CODE;
                }
            }
        }
        let counter = matmul_lut_bias_counter(&a_bits, m, k, &qw, &bias, &lut);
        let row_kernel = matmul_lut_bias(&a_bits, m, k, &qw, &bias, &lut);
        let reference = qa.decode().matmul_bias(&qw.decode(), &bias);
        for (r, &skipped) in skip_mask.iter().enumerate().take(m) {
            for (x, y) in counter.row(r).iter().zip(row_kernel.row(r)) {
                prop_assert_eq!(x.to_bits(), y.to_bits(),
                    "counter vs row kernel diverged at row {}", r);
            }
            if skipped {
                prop_assert_eq!(counter.row(r), bias.as_slice());
            } else {
                for (x, y) in counter.row(r).iter().zip(reference.row(r)) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "row {} diverged", r);
                }
            }
        }
    }

    /// Quantizing twice is idempotent: decode∘encode∘decode∘encode =
    /// decode∘encode.
    #[test]
    fn quantization_idempotent(values in tensor_strategy()) {
        let dict = dict_for(&values, OutlierPolicy::CurveMidpoint);
        let m = Matrix::from_vec(1, values.len(), values.clone());
        let once = QuantizedTensor::encode(&m, &dict).decode();
        let twice = QuantizedTensor::encode(&once, &dict).decode();
        prop_assert!(once.max_abs_diff(&twice) < 1e-5);
    }
}
