//! Index-domain LUT GEMMs: the software analogue of the paper's
//! counter/LUT datapath.
//!
//! A [`Code`] occupies 5 bits, so an (activation-dictionary, weight-
//! dictionary) pair admits a **dense product table** over all 32 × 32 code
//! bit-patterns — outliers included — of ~12 KB, comfortably L1-resident.
//! With that [`PairLut`] in hand, a GEMM on quantized operands never
//! decodes: the inner loop is a table gather indexed by code bits, exactly
//! the arithmetic-on-indices execution the paper's accelerator performs in
//! hardware (Section II-D), minus the histogram factorization that
//! [`crate::kernels::dot_indexed`] models faithfully-but-slowly.
//!
//! Two kernels share one table, each mirroring the reduction order of the
//! float path it replaces so outputs are **bit-identical by construction**:
//!
//! * [`matmul_lut`] — f64 products, the same fixed 4-lane reduction as
//!   [`crate::kernels::dot_decoded`] (lane `l` sums pairs `i ≡ l mod 4`,
//!   combined `(s0+s1)+(s2+s3)`, remainder sequential). Per output scalar
//!   it equals `dot_decoded` to the bit.
//! * [`matmul_lut_bias`] — f32 products, the same bias-preloaded,
//!   ascending-`k`, one-add-per-`k`, zero-skipping reduction as
//!   `mokey_tensor::Matrix::matmul_bias` (the `nn::linear` hot path). Per
//!   output row it equals `matmul_bias` on the decoded operands to the
//!   bit, which is what lets index-domain serving return byte-identical
//!   responses to decoded-path serving.

use crate::dict::TensorDict;
use crate::encode::{Code, QuantizedTensor};
use mokey_tensor::Matrix;

/// Number of distinct 5-bit code patterns, and the stride of one LUT row.
pub const CODE_PATTERNS: usize = 32;

/// Sentinel byte in an activation code buffer marking a row that was never
/// encoded (a packed batch's padding rows). [`matmul_lut_bias`] emits the
/// bias for such a row and skips its dot products entirely; nothing
/// downstream reads padding rows, and valid rows are unaffected because
/// every kernel computes each output row independently.
pub const SKIP_CODE: u8 = 0xFF;

/// Mask that keeps a code byte inside the 32-pattern table.
const PATTERN_MASK: usize = CODE_PATTERNS - 1;

/// Decoded centroid value of every valid 5-bit pattern of one dictionary:
/// f64 exact values, their f32 casts, and validity flags.
///
/// Bit patterns whose magnitude index exceeds the dictionary's G or OT
/// table decode to `0.0` and are flagged invalid; [`TensorDict::encode_value`]
/// never produces them, so real code streams never read those entries.
fn decode_table(dict: &TensorDict) -> ([f64; CODE_PATTERNS], [bool; CODE_PATTERNS]) {
    let mut vals = [0.0f64; CODE_PATTERNS];
    let mut valid = [false; CODE_PATTERNS];
    for bits in 0..CODE_PATTERNS as u8 {
        let code = Code::from_bits(bits);
        let table = if code.is_outlier() { dict.ot_magnitudes() } else { dict.g_magnitudes() };
        if (code.index() as usize) < table.len() {
            vals[bits as usize] = dict.decode_code(code);
            valid[bits as usize] = true;
        }
    }
    (vals, valid)
}

/// A 32-entry decode table for one dictionary: code bits → `f32` centroid.
///
/// Entry `bits` holds exactly `dict.decode_code(code) as f32`, so routing
/// the executors' per-layer activation decodes through one shared table
/// (built once at preparation) is bit-identical to calling
/// [`TensorDict::decode_code`] per value — it just skips the per-value
/// table-select branch and `f64` arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeLut {
    vals: [f32; CODE_PATTERNS],
}

impl DecodeLut {
    /// Builds the table for a dictionary.
    pub fn new(dict: &TensorDict) -> Self {
        let (f64s, _) = decode_table(dict);
        let mut vals = [0.0f32; CODE_PATTERNS];
        for (v, &d) in vals.iter_mut().zip(&f64s) {
            *v = d as f32;
        }
        Self { vals }
    }

    /// The `f32` centroid of a code (identical bits to
    /// `dict.decode_code(code) as f32`).
    #[inline]
    pub fn value(&self, code: Code) -> f32 {
        self.vals[code.to_bits() as usize & PATTERN_MASK]
    }
}

/// The dense `decode(ca) · decode(cw)` product table of one
/// (activation-dict, weight-dict) pair, over all 32 × 32 code bit-patterns
/// — outliers included.
///
/// Holds both precision variants (~12 KB total, L1-resident):
///
/// * `f64` products — `decode_a(ca) * decode_w(cw)` in exact f64, feeding
///   the [`matmul_lut`] / [`dot_decoded`](crate::kernels::dot_decoded)
///   reduction;
/// * `f32` products — `(decode_a(ca) as f32) * (decode_w(cw) as f32)`,
///   the exact multiply the dense float GEMM performs on decoded
///   operands, feeding [`matmul_lut_bias`];
/// * per-activation-code zero flags mirroring the float kernel's
///   zero-operand skip (`a == 0.0` never contributes an addition there,
///   so the LUT kernel must skip the same codes to keep identical bits).
#[derive(Clone, PartialEq)]
pub struct PairLut {
    prod_f64: Vec<f64>,
    prod_f32: Vec<f32>,
    /// Weight-major transpose of `prod_f64`: entry `cw * 32 + ca` holds the
    /// same `decode_a(ca) * decode_w(cw)` product. One weight code selects a
    /// contiguous 32-entry row — the counter-array kernel's per-weight-code
    /// partial-sum table, fetched once per row panel instead of recomputing
    /// the two-sided index per MAC.
    prod_f64_w: Vec<f64>,
    a_zero: [bool; CODE_PATTERNS],
}

impl PairLut {
    /// Builds the product tables for a dictionary pair. Patterns invalid
    /// for either dictionary hold `0.0` (never indexed by real streams).
    pub fn new(a_dict: &TensorDict, w_dict: &TensorDict) -> Self {
        let (a_vals, a_valid) = decode_table(a_dict);
        let (w_vals, _) = decode_table(w_dict);
        let mut prod_f64 = vec![0.0f64; CODE_PATTERNS * CODE_PATTERNS];
        let mut prod_f32 = vec![0.0f32; CODE_PATTERNS * CODE_PATTERNS];
        let mut prod_f64_w = vec![0.0f64; CODE_PATTERNS * CODE_PATTERNS];
        let mut a_zero = [false; CODE_PATTERNS];
        for ca in 0..CODE_PATTERNS {
            a_zero[ca] = a_valid[ca] && (a_vals[ca] as f32) == 0.0;
            for cw in 0..CODE_PATTERNS {
                prod_f64[ca * CODE_PATTERNS + cw] = a_vals[ca] * w_vals[cw];
                prod_f32[ca * CODE_PATTERNS + cw] = (a_vals[ca] as f32) * (w_vals[cw] as f32);
                prod_f64_w[cw * CODE_PATTERNS + ca] = a_vals[ca] * w_vals[cw];
            }
        }
        Self { prod_f64, prod_f32, prod_f64_w, a_zero }
    }

    /// The exact-f64 product `decode_a(ca) · decode_w(cw)`.
    #[inline]
    pub fn product_f64(&self, ca: Code, cw: Code) -> f64 {
        self.prod_f64[(ca.to_bits() as usize & PATTERN_MASK) * CODE_PATTERNS
            + (cw.to_bits() as usize & PATTERN_MASK)]
    }

    /// The f32 product `(decode_a(ca) as f32) * (decode_w(cw) as f32)`.
    #[inline]
    pub fn product_f32(&self, ca: Code, cw: Code) -> f32 {
        self.prod_f32[(ca.to_bits() as usize & PATTERN_MASK) * CODE_PATTERNS
            + (cw.to_bits() as usize & PATTERN_MASK)]
    }

    /// One activation code's f32 product row (32 entries, indexed by
    /// weight-code bits).
    #[inline]
    fn f32_row(&self, ca_bits: u8) -> &[f32] {
        let base = (ca_bits as usize & PATTERN_MASK) * CODE_PATTERNS;
        &self.prod_f32[base..base + CODE_PATTERNS]
    }

    /// One weight code's f64 product row (32 entries, indexed by
    /// activation-code bits) — the counter-array kernel's partial-sum
    /// table. Entry `ca` holds the same f64 product as
    /// [`product_f64`](Self::product_f64)`(ca, cw)`.
    #[inline]
    fn f64_wrow(&self, cw_bits: u8) -> &[f64] {
        let base = (cw_bits as usize & PATTERN_MASK) * CODE_PATTERNS;
        &self.prod_f64_w[base..base + CODE_PATTERNS]
    }

    /// `true` when the activation code decodes to `0.0f32` — the float
    /// GEMM's zero-skip would drop every product with it.
    #[inline]
    pub fn activation_is_zero(&self, ca_bits: u8) -> bool {
        self.a_zero[ca_bits as usize & PATTERN_MASK]
    }

    /// Approximate heap footprint, for cache accounting.
    pub fn bytes(&self) -> usize {
        self.prod_f64.len() * 8
            + self.prod_f32.len() * 4
            + self.prod_f64_w.len() * 8
            + self.a_zero.len()
    }
}

impl std::fmt::Debug for PairLut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PairLut({}x{}, {} bytes)", CODE_PATTERNS, CODE_PATTERNS, self.bytes())
    }
}

/// A quantized matrix's codes gathered into one flat **column-major**
/// buffer — a single allocation holding every column contiguously, shared
/// by [`matmul_lut`] and [`crate::kernels::matmul_indexed`] as their
/// weight-side layout (both sweep whole columns per output scalar).
#[derive(Debug, Clone, PartialEq)]
pub struct ColMajorCodes {
    rows: usize,
    cols: usize,
    codes: Vec<Code>,
}

impl ColMajorCodes {
    /// Transposes a quantized tensor's row-major codes into the flat
    /// column-major buffer (one allocation total).
    pub fn from_tensor(w: &QuantizedTensor) -> Self {
        let (rows, cols) = w.shape();
        let src = w.codes();
        let mut codes = vec![Code::from_bits(0); rows * cols];
        for r in 0..rows {
            let row = &src[r * cols..(r + 1) * cols];
            for (j, &c) in row.iter().enumerate() {
                codes[j * rows + r] = c;
            }
        }
        Self { rows, cols, codes }
    }

    /// Rows of the original (row-major) tensor — the GEMM's `K` dimension.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the original tensor — the GEMM's `N` dimension.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Column `j` as a contiguous code slice of length `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn col(&self, j: usize) -> &[Code] {
        assert!(j < self.cols, "column {j} out of bounds");
        &self.codes[j * self.rows..(j + 1) * self.rows]
    }
}

/// One LUT dot product with the pinned
/// [`dot_decoded`](crate::kernels::dot_decoded) lane structure: lane `l`
/// accumulates pairs `i ≡ l (mod 4)` over the 4-wide prefix, lanes combine
/// as `(s0 + s1) + (s2 + s3)`, the remainder is added sequentially. Each
/// term is the table's exact f64 product, so the result is bit-identical
/// to `dot_decoded` on the same code streams.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_lut(a_codes: &[Code], w_codes: &[Code], lut: &PairLut) -> f64 {
    assert_eq!(a_codes.len(), w_codes.len(), "dot length mismatch");
    let mut ca = a_codes.chunks_exact(4);
    let mut cw = w_codes.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (xa, xw) in (&mut ca).zip(&mut cw) {
        s0 += lut.product_f64(xa[0], xw[0]);
        s1 += lut.product_f64(xa[1], xw[1]);
        s2 += lut.product_f64(xa[2], xw[2]);
        s3 += lut.product_f64(xa[3], xw[3]);
    }
    let mut acc = (s0 + s1) + (s2 + s3);
    for (&x, &y) in ca.remainder().iter().zip(cw.remainder()) {
        acc += lut.product_f64(x, y);
    }
    acc
}

/// Column panel for [`matmul_lut`]: a `CJB`-column stripe of the
/// column-major weight codes stays cache-resident while every activation
/// row sweeps it (panel order never changes any scalar's reduction — each
/// output is one independent [`dot_lut`]).
const CJB: usize = 64;

/// Index-domain GEMM through the pair LUT: `A (M×K) · W (K×N)` where both
/// operands stay as codes and every product is one table gather.
///
/// Each output scalar is computed by [`dot_lut`] and is therefore
/// **bit-identical** to [`crate::kernels::dot_decoded`] over the same row
/// and column codes — the property tests pin this per scalar.
///
/// # Panics
///
/// Panics if inner dimensions differ.
pub fn matmul_lut(a: &QuantizedTensor, w_cols: &ColMajorCodes, lut: &PairLut) -> Matrix {
    assert_eq!(a.cols(), w_cols.rows(), "matmul_lut inner dimension mismatch");
    let (m, n) = (a.rows(), w_cols.cols());
    let mut out = Matrix::zeros(m, n);
    for j0 in (0..n).step_by(CJB) {
        let jb = CJB.min(n - j0);
        for i in 0..m {
            let a_row = a.row_codes(i);
            let o_row = &mut out.row_mut(i)[j0..j0 + jb];
            for (o, j) in o_row.iter_mut().zip(j0..) {
                *o = dot_lut(a_row, w_cols.col(j), lut) as f32;
            }
        }
    }
    out
}

/// Index-domain fused GEMM + bias mirroring
/// `mokey_tensor::Matrix::matmul_bias` bit for bit: the bias is pre-loaded
/// into each output row, `k` is swept in ascending order with exactly one
/// f32 addition per contributing element, and activation codes decoding to
/// `0.0f32` are skipped — the float kernel's zero-operand skip, applied in
/// the code domain. Because each added term is the table's
/// `(decode_a as f32) * (decode_w as f32)` product (the exact multiply the
/// float kernel performs), every output row equals
/// `decoded_a.matmul_bias(&decoded_w, bias)` to the bit.
///
/// `a_bits` holds `m × k` activation code bytes row-major. A row whose
/// first byte is [`SKIP_CODE`] was never encoded (packed padding): it gets
/// the bias and no dot products. `w` is the row-major quantized weight
/// (`k × n`).
///
/// # Panics
///
/// Panics if `a_bits` is not `m × k`, `w` is not `k × n`, or the bias is
/// not `n` wide.
pub fn matmul_lut_bias(
    a_bits: &[u8],
    m: usize,
    k: usize,
    w: &QuantizedTensor,
    bias: &[f32],
    lut: &PairLut,
) -> Matrix {
    assert_eq!(a_bits.len(), m * k, "activation code buffer is not {m}x{k}");
    assert_eq!(w.rows(), k, "matmul_lut_bias inner dimension mismatch");
    let n = w.cols();
    assert_eq!(bias.len(), n, "bias width mismatch");
    let mut data = Vec::with_capacity(m * n);
    for _ in 0..m {
        data.extend_from_slice(bias);
    }
    let w_codes = w.codes();
    for i in 0..m {
        let a_row = &a_bits[i * k..(i + 1) * k];
        if a_row.first() == Some(&SKIP_CODE) {
            continue;
        }
        let o_row = &mut data[i * n..(i + 1) * n];
        for (kk, &ca) in a_row.iter().enumerate() {
            debug_assert!(ca != SKIP_CODE, "skip sentinel inside an encoded row");
            if lut.activation_is_zero(ca) {
                continue;
            }
            let prod_row = lut.f32_row(ca);
            let w_row = &w_codes[kk * n..(kk + 1) * n];
            for (o, &cw) in o_row.iter_mut().zip(w_row) {
                *o += prod_row[cw.to_bits() as usize & PATTERN_MASK];
            }
        }
    }
    Matrix::from_vec(m, n, data)
}

/// Activation-row panel height for the counter-array kernels: one weight
/// column's codes (and their 32-entry product rows) are walked **once per
/// panel** of `PANEL_ROWS` activation rows instead of once per row, which
/// is where the counter-array formulation pays — the per-weight-code
/// gather is amortized `PANEL_ROWS`-fold while every scalar keeps its own
/// pinned reduction. Sixteen rows keep the four fetched product rows hot
/// across 64 accumulation chains per chunk — measured the steadiest win
/// over 8 on the reference host — while the panel scratch stays ~2 KB.
const PANEL_ROWS: usize = 16;

/// Counter-array index-domain GEMM: the paper's per-weight-code reduction
/// (Section II-D), generalized from counts to **partial sums** so outlier
/// activations work, expressed as a row-panel kernel.
///
/// The paper's PE counts how often each weight code meets each activation
/// magnitude and multiplies once per *code* instead of once per MAC. In
/// software the equivalent factorization is the weight-major product table:
/// each weight code `cw` selects one 32-entry row of pre-multiplied
/// `decode_a(·) · decode_w(cw)` partial sums, so the inner loop is a
/// single byte-indexed gather — the two-sided `(ca, cw)` index arithmetic
/// of [`matmul_lut`] collapses to one table-row fetch per weight code per
/// panel.
///
/// Bit-identity: each output scalar keeps **exactly**
/// [`dot_decoded`](crate::kernels::dot_decoded)'s pinned reduction — lane
/// `l` sums `k ≡ l (mod 4)` over the 4-wide prefix, lanes combine
/// `(s0 + s1) + (s2 + s3)`, remainder sequential — and every gathered term
/// is the same f64 product, so outputs equal [`matmul_lut`] (and therefore
/// `dot_decoded`) to the bit; only the amount of index arithmetic per MAC
/// changes, never any scalar's add order.
///
/// # Panics
///
/// Panics if inner dimensions differ.
pub fn matmul_lut_counter(a: &QuantizedTensor, w_cols: &ColMajorCodes, lut: &PairLut) -> Matrix {
    assert_eq!(a.cols(), w_cols.rows(), "matmul_lut inner dimension mismatch");
    let (m, n) = (a.rows(), w_cols.cols());
    let k = a.cols();
    let mut out = Matrix::zeros(m, n);
    let kc = k - (k % 4);
    // The panel's activation codes, masked to table indexes once per panel
    // (reused across all `n` columns) and stored chunk-major — 4 bytes of
    // row 0, 4 bytes of row 1, … — so the inner loop walks one sequential
    // slab per 4-wide `k` chunk.
    let mut panel = vec![0u8; PANEL_ROWS * kc];
    for i0 in (0..m).step_by(PANEL_ROWS) {
        let rb = PANEL_ROWS.min(m - i0);
        if rb == PANEL_ROWS {
            for (r, row) in (i0..i0 + rb).map(|i| a.row_codes(i)).enumerate() {
                for c in 0..kc / 4 {
                    for p in 0..4 {
                        panel[(c * PANEL_ROWS + r) * 4 + p] =
                            row[c * 4 + p].to_bits() & PATTERN_MASK as u8;
                    }
                }
            }
            for j in 0..n {
                let col = w_cols.col(j);
                // Full panel: constant row count so the accumulator array
                // unrolls completely.
                let mut acc = [[0.0f64; 4]; PANEL_ROWS];
                counter_panel_columns::<PANEL_ROWS>(&panel, col, lut, &mut acc);
                for (r, s) in acc.iter().enumerate() {
                    out[(i0 + r, j)] = counter_finish(s, a.row_codes(i0 + r), col, lut);
                }
            }
        } else {
            for r in 0..rb {
                let row = a.row_codes(i0 + r);
                for (dst, c) in panel[..kc].iter_mut().zip(row) {
                    *dst = c.to_bits() & PATTERN_MASK as u8;
                }
                for j in 0..n {
                    let col = w_cols.col(j);
                    let mut acc = [[0.0f64; 4]; 1];
                    counter_panel_columns::<1>(&panel[..kc], col, lut, &mut acc);
                    out[(i0 + r, j)] = counter_finish(&acc[0], row, col, lut);
                }
            }
        }
    }
    out
}

/// Lane-accumulation core of [`matmul_lut_counter`] over one weight column
/// and `R` pre-masked, chunk-major activation rows: per 4-wide `k` chunk,
/// the four weight-code product rows are fetched **once** and every
/// activation row gathers from them, each row keeping its own pinned
/// `dot_decoded` lanes (`acc[r][l]` sums `k ≡ l mod 4`).
#[inline]
fn counter_panel_columns<const R: usize>(
    panel: &[u8],
    col: &[Code],
    lut: &PairLut,
    acc: &mut [[f64; 4]; R],
) {
    let chunks = panel.len() / (R * 4);
    for (c, cw4) in col.chunks_exact(4).enumerate().take(chunks) {
        let w0 = lut.f64_wrow(cw4[0].to_bits());
        let w1 = lut.f64_wrow(cw4[1].to_bits());
        let w2 = lut.f64_wrow(cw4[2].to_bits());
        let w3 = lut.f64_wrow(cw4[3].to_bits());
        let slab = &panel[c * R * 4..(c + 1) * R * 4];
        for (s, ar) in acc.iter_mut().zip(slab.chunks_exact(4)) {
            s[0] += w0[(ar[0] & PATTERN_MASK as u8) as usize];
            s[1] += w1[(ar[1] & PATTERN_MASK as u8) as usize];
            s[2] += w2[(ar[2] & PATTERN_MASK as u8) as usize];
            s[3] += w3[(ar[3] & PATTERN_MASK as u8) as usize];
        }
    }
}

/// Folds one row's counter lanes exactly as `dot_decoded` does —
/// `(s0 + s1) + (s2 + s3)` then the sub-lane remainder sequentially — and
/// casts to the output f32.
#[inline]
fn counter_finish(s: &[f64; 4], a_row: &[Code], col: &[Code], lut: &PairLut) -> f32 {
    let k = a_row.len();
    let kc = k - (k % 4);
    let mut v = (s[0] + s[1]) + (s[2] + s[3]);
    for kk in kc..k {
        let wrow = lut.f64_wrow(col[kk].to_bits());
        v += wrow[(a_row[kk].to_bits() & PATTERN_MASK as u8) as usize];
    }
    v as f32
}

/// Counter-array variant of [`matmul_lut_bias`]: identical contract and
/// identical bits (bias pre-load, ascending-`k`, one f32 add per
/// contributing element, code-domain zero skip, [`SKIP_CODE`] rows →
/// bias), but the `k`/`j` loops are interchanged over a `PANEL_ROWS`-row
/// panel so each weight row's code bytes are loaded and masked **once per
/// panel** instead of once per activation row.
///
/// Per output element the adds still happen in ascending `k` with the same
/// skip conditions — within one `k` every element receives at most one add
/// — so the reduction order of every scalar is unchanged from
/// [`matmul_lut_bias`], which is what keeps it mirroring
/// `Matrix::matmul_bias` bit for bit.
///
/// # Panics
///
/// Panics if `a_bits` is not `m × k`, `w` is not `k × n`, or the bias is
/// not `n` wide.
pub fn matmul_lut_bias_counter(
    a_bits: &[u8],
    m: usize,
    k: usize,
    w: &QuantizedTensor,
    bias: &[f32],
    lut: &PairLut,
) -> Matrix {
    assert_eq!(a_bits.len(), m * k, "activation code buffer is not {m}x{k}");
    assert_eq!(w.rows(), k, "matmul_lut_bias inner dimension mismatch");
    let n = w.cols();
    assert_eq!(bias.len(), n, "bias width mismatch");
    let mut data = Vec::with_capacity(m * n);
    for _ in 0..m {
        data.extend_from_slice(bias);
    }
    if n == 0 {
        return Matrix::from_vec(m, n, data);
    }
    let w_codes = w.codes();
    for (pi, chunk) in data.chunks_mut(4 * n).enumerate() {
        let i0 = pi * 4;
        let rb = chunk.len() / n;
        let full_quad = rb == 4 && (0..4).all(|t| a_bits.get((i0 + t) * k) != Some(&SKIP_CODE));
        if full_quad {
            let (r0, rest) = chunk.split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, r3) = rest.split_at_mut(n);
            for kk in 0..k {
                let ca = [
                    a_bits[i0 * k + kk],
                    a_bits[(i0 + 1) * k + kk],
                    a_bits[(i0 + 2) * k + kk],
                    a_bits[(i0 + 3) * k + kk],
                ];
                let live = [
                    !lut.activation_is_zero(ca[0]),
                    !lut.activation_is_zero(ca[1]),
                    !lut.activation_is_zero(ca[2]),
                    !lut.activation_is_zero(ca[3]),
                ];
                let w_row = &w_codes[kk * n..(kk + 1) * n];
                if live == [true; 4] {
                    // All four rows contribute at this k: the weight row's
                    // codes are loaded and masked once for the whole quad.
                    let p0 = lut.f32_row(ca[0]);
                    let p1 = lut.f32_row(ca[1]);
                    let p2 = lut.f32_row(ca[2]);
                    let p3 = lut.f32_row(ca[3]);
                    let quad =
                        r0.iter_mut().zip(r1.iter_mut()).zip(r2.iter_mut()).zip(r3.iter_mut());
                    for ((((o0, o1), o2), o3), &cw) in quad.zip(w_row) {
                        let ci = cw.to_bits() as usize & PATTERN_MASK;
                        *o0 += p0[ci];
                        *o1 += p1[ci];
                        *o2 += p2[ci];
                        *o3 += p3[ci];
                    }
                } else {
                    // A zero-skip in the quad: fall back to per-row adds for
                    // this k only. Each element still sees at most one add
                    // per k, in ascending k — the reduction order of every
                    // scalar is unchanged.
                    for (t, o_row) in
                        [&mut *r0, &mut *r1, &mut *r2, &mut *r3].into_iter().enumerate()
                    {
                        if !live[t] {
                            continue;
                        }
                        let prod_row = lut.f32_row(ca[t]);
                        for (o, &cw) in o_row.iter_mut().zip(w_row) {
                            *o += prod_row[cw.to_bits() as usize & PATTERN_MASK];
                        }
                    }
                }
            }
        } else {
            // Ragged tail quad, or a quad containing SKIP_CODE padding
            // rows: the plain row kernel body.
            for (r, o_row) in chunk.chunks_mut(n).enumerate().take(rb) {
                let i = i0 + r;
                let a_row = &a_bits[i * k..(i + 1) * k];
                if a_row.first() == Some(&SKIP_CODE) {
                    continue;
                }
                for (kk, &ca) in a_row.iter().enumerate() {
                    debug_assert!(ca != SKIP_CODE, "skip sentinel inside an encoded row");
                    if lut.activation_is_zero(ca) {
                        continue;
                    }
                    let prod_row = lut.f32_row(ca);
                    let w_row = &w_codes[kk * n..(kk + 1) * n];
                    for (o, &cw) in o_row.iter_mut().zip(w_row) {
                        *o += prod_row[cw.to_bits() as usize & PATTERN_MASK];
                    }
                }
            }
        }
    }
    Matrix::from_vec(m, n, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::ExpCurve;
    use crate::dict::{OutlierPolicy, TensorDictConfig};
    use crate::kernels::{dot_decoded, matmul_indexed};
    use mokey_tensor::init::GaussianMixture;

    fn quantized_pair(
        m: usize,
        k: usize,
        n: usize,
        seed: u64,
    ) -> (QuantizedTensor, QuantizedTensor) {
        let curve = ExpCurve::paper();
        let a = GaussianMixture::activation_like(0.3, 1.2).sample_matrix(m, k, seed);
        let w = GaussianMixture::weight_like(-0.01, 0.06).sample_matrix(k, n, seed + 1000);
        (
            QuantizedTensor::encode_with_own_dict(&a, &curve, &Default::default()).unwrap(),
            QuantizedTensor::encode_with_own_dict(&w, &curve, &Default::default()).unwrap(),
        )
    }

    #[test]
    fn decode_lut_matches_decode_code_for_every_valid_pattern() {
        let (qa, qw) = quantized_pair(4, 64, 4, 3);
        for dict in [qa.dict(), qw.dict()] {
            let lut = DecodeLut::new(dict);
            for bits in 0..32u8 {
                let code = Code::from_bits(bits);
                let table =
                    if code.is_outlier() { dict.ot_magnitudes() } else { dict.g_magnitudes() };
                if (code.index() as usize) < table.len() {
                    assert_eq!(
                        lut.value(code).to_bits(),
                        (dict.decode_code(code) as f32).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn pair_lut_products_match_decoded_products() {
        let (qa, qw) = quantized_pair(4, 64, 4, 7);
        let lut = PairLut::new(qa.dict(), qw.dict());
        for &ca in qa.codes() {
            for &cw in qw.codes() {
                let expect = qa.dict().decode_code(ca) * qw.dict().decode_code(cw);
                assert_eq!(lut.product_f64(ca, cw).to_bits(), expect.to_bits());
                let expect32 =
                    (qa.dict().decode_code(ca) as f32) * (qw.dict().decode_code(cw) as f32);
                assert_eq!(lut.product_f32(ca, cw).to_bits(), expect32.to_bits());
            }
        }
    }

    #[test]
    fn pair_lut_handles_short_and_empty_outlier_tables() {
        // Disabled outlier policy → empty OT table; every OT bit-pattern is
        // invalid and must build (as 0.0) without panicking.
        let curve = ExpCurve::paper();
        let vals = GaussianMixture::weight_like(0.0, 0.05).sample_matrix(32, 32, 5);
        let config = TensorDictConfig { policy: OutlierPolicy::Disabled, ..Default::default() };
        let no_ot = TensorDict::for_values(vals.as_slice(), &curve, &config).unwrap();
        assert!(no_ot.ot_magnitudes().is_empty());
        let with_ot = TensorDict::for_values(vals.as_slice(), &curve, &Default::default()).unwrap();
        let lut = PairLut::new(&no_ot, &with_ot);
        // An outlier activation pattern is invalid for the G-only dict.
        let ot_code = Code::new(true, false, 0);
        let g_code = Code::new(false, false, 3);
        assert_eq!(lut.product_f64(ot_code, g_code), 0.0);
        assert!(!lut.activation_is_zero(ot_code.to_bits()));
    }

    #[test]
    fn col_major_codes_match_per_column_gather() {
        let (_, qw) = quantized_pair(2, 48, 7, 11);
        let cols = ColMajorCodes::from_tensor(&qw);
        assert_eq!((cols.rows(), cols.cols()), qw.shape());
        for j in 0..qw.cols() {
            let expect: Vec<Code> = (0..qw.rows()).map(|r| qw.row_codes(r)[j]).collect();
            assert_eq!(cols.col(j), expect.as_slice());
        }
    }

    #[test]
    fn dot_lut_is_bit_identical_to_dot_decoded() {
        // One wide pair; prefixes exercise empty, sub-lane, and remainder
        // lengths against the same dictionaries.
        let (qa, qw) = quantized_pair(1, 513, 1, 17);
        let lut = PairLut::new(qa.dict(), qw.dict());
        for len in [0usize, 1, 3, 4, 7, 128, 513] {
            let fast = dot_lut(&qa.codes()[..len], &qw.codes()[..len], &lut);
            let reference =
                dot_decoded(&qa.codes()[..len], qa.dict(), &qw.codes()[..len], qw.dict());
            assert_eq!(fast.to_bits(), reference.to_bits(), "len {len}");
        }
    }

    #[test]
    fn matmul_lut_is_bit_identical_to_per_scalar_dot_decoded() {
        let (qa, qw) = quantized_pair(6, 130, 70, 23);
        let cols = ColMajorCodes::from_tensor(&qw);
        let lut = PairLut::new(qa.dict(), qw.dict());
        let out = matmul_lut(&qa, &cols, &lut);
        assert_eq!(out.shape(), (6, 70));
        for i in 0..6 {
            for j in 0..70 {
                let expect = dot_decoded(qa.row_codes(i), qa.dict(), cols.col(j), qw.dict()) as f32;
                assert_eq!(out[(i, j)].to_bits(), expect.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn matmul_lut_tracks_matmul_indexed_numerically() {
        let (qa, qw) = quantized_pair(5, 96, 9, 31);
        let cols = ColMajorCodes::from_tensor(&qw);
        let lut = PairLut::new(qa.dict(), qw.dict());
        let fast = matmul_lut(&qa, &cols, &lut);
        let slow = matmul_indexed(&qa, &qw);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn matmul_lut_bias_is_bit_identical_to_dense_matmul_bias() {
        let (qa, qw) = quantized_pair(9, 300, 33, 41);
        let lut = PairLut::new(qa.dict(), qw.dict());
        let bias: Vec<f32> = (0..33).map(|j| j as f32 * 0.01 - 0.15).collect();
        let a_bits: Vec<u8> = qa.codes().iter().map(|c| c.to_bits()).collect();
        let fast = matmul_lut_bias(&a_bits, 9, 300, &qw, &bias, &lut);
        let reference = qa.decode().matmul_bias(&qw.decode(), &bias);
        assert_eq!(fast.shape(), reference.shape());
        for (a, b) in fast.as_slice().iter().zip(reference.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn matmul_lut_bias_skip_rows_emit_bias_and_leave_others_identical() {
        let (qa, qw) = quantized_pair(5, 64, 8, 47);
        let lut = PairLut::new(qa.dict(), qw.dict());
        let bias = [0.5f32, -1.0, 0.25, 2.0, 0.0, 1.5, -0.75, 0.125];
        let mut a_bits: Vec<u8> = qa.codes().iter().map(|c| c.to_bits()).collect();
        // Mark rows 1 and 4 as never-encoded padding.
        for r in [1usize, 4] {
            for b in &mut a_bits[r * 64..(r + 1) * 64] {
                *b = SKIP_CODE;
            }
        }
        let out = matmul_lut_bias(&a_bits, 5, 64, &qw, &bias, &lut);
        for r in [1usize, 4] {
            assert_eq!(out.row(r), &bias);
        }
        // Valid rows are bit-identical to the dense reference (row
        // independence: padding rows never influence neighbours).
        let reference = qa.decode().matmul_bias(&qw.decode(), &bias);
        for r in [0usize, 2, 3] {
            for (a, b) in out.row(r).iter().zip(reference.row(r)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn matmul_lut_bias_zero_centroid_skip_matches_float_zero_skip() {
        // A dictionary whose shift/scale land a centroid exactly on 0.0f32
        // exercises the zero-skip parity: the float kernel skips a == 0.0,
        // the LUT kernel must skip the same codes.
        let (qa, qw) = quantized_pair(4, 128, 6, 53);
        let lut = PairLut::new(qa.dict(), qw.dict());
        let any_zero = (0..32u8).any(|b| lut.activation_is_zero(b));
        // With Gaussian-mixture activations a zero centroid is unlikely;
        // the invariant itself (flag ⇔ decoded f32 is 0.0) always holds.
        let decode = DecodeLut::new(qa.dict());
        for bits in 0..32u8 {
            let code = Code::from_bits(bits);
            let table = if code.is_outlier() {
                qa.dict().ot_magnitudes()
            } else {
                qa.dict().g_magnitudes()
            };
            if (code.index() as usize) < table.len() {
                assert_eq!(lut.activation_is_zero(bits), decode.value(code) == 0.0);
            }
        }
        let _ = any_zero;
    }

    #[test]
    fn matmul_lut_counter_is_bit_identical_to_matmul_lut_and_dot_decoded() {
        // 13 rows: one full 8-row panel plus a 5-row remainder panel; 130
        // columns of K leave a 2-wide lane remainder.
        let (qa, qw) = quantized_pair(13, 130, 70, 79);
        let cols = ColMajorCodes::from_tensor(&qw);
        let lut = PairLut::new(qa.dict(), qw.dict());
        let fast = matmul_lut_counter(&qa, &cols, &lut);
        let reference = matmul_lut(&qa, &cols, &lut);
        assert_eq!(fast.shape(), reference.shape());
        for (a, b) in fast.as_slice().iter().zip(reference.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for i in 0..13 {
            for j in 0..70 {
                let expect = dot_decoded(qa.row_codes(i), qa.dict(), cols.col(j), qw.dict()) as f32;
                assert_eq!(fast[(i, j)].to_bits(), expect.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn matmul_lut_bias_counter_is_bit_identical_to_row_kernel() {
        // 11 rows split across two panels; k = 300 exercises a long
        // ascending reduction.
        let (qa, qw) = quantized_pair(11, 300, 33, 83);
        let lut = PairLut::new(qa.dict(), qw.dict());
        let bias: Vec<f32> = (0..33).map(|j| j as f32 * 0.01 - 0.15).collect();
        let a_bits: Vec<u8> = qa.codes().iter().map(|c| c.to_bits()).collect();
        let fast = matmul_lut_bias_counter(&a_bits, 11, 300, &qw, &bias, &lut);
        let row_kernel = matmul_lut_bias(&a_bits, 11, 300, &qw, &bias, &lut);
        let dense = qa.decode().matmul_bias(&qw.decode(), &bias);
        for ((a, b), c) in fast.as_slice().iter().zip(row_kernel.as_slice()).zip(dense.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn matmul_lut_bias_counter_skip_rows_emit_bias_within_a_panel() {
        // Skip rows scattered inside and across panel boundaries (rows 1,
        // 7, 8 with PANEL_ROWS = 8) must emit the bias while their panel
        // neighbours stay bit-identical to the row kernel.
        let (qa, qw) = quantized_pair(10, 64, 8, 89);
        let lut = PairLut::new(qa.dict(), qw.dict());
        let bias = [0.5f32, -1.0, 0.25, 2.0, 0.0, 1.5, -0.75, 0.125];
        let mut a_bits: Vec<u8> = qa.codes().iter().map(|c| c.to_bits()).collect();
        for r in [1usize, 7, 8] {
            for b in &mut a_bits[r * 64..(r + 1) * 64] {
                *b = SKIP_CODE;
            }
        }
        let fast = matmul_lut_bias_counter(&a_bits, 10, 64, &qw, &bias, &lut);
        let reference = matmul_lut_bias(&a_bits, 10, 64, &qw, &bias, &lut);
        for r in [1usize, 7, 8] {
            assert_eq!(fast.row(r), &bias);
        }
        for (a, b) in fast.as_slice().iter().zip(reference.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn counter_kernels_handle_empty_shapes() {
        let (qa, qw) = quantized_pair(1, 8, 3, 97);
        let lut = PairLut::new(qa.dict(), qw.dict());
        let out = matmul_lut_bias_counter(&[], 0, 8, &qw, &[0.0; 3], &lut);
        assert_eq!(out.shape(), (0, 3));
        let cols = ColMajorCodes::from_tensor(&qw);
        let empty_a = QuantizedTensor::encode(&Matrix::zeros(0, 8), qa.dict());
        let out = matmul_lut_counter(&empty_a, &cols, &lut);
        assert_eq!(out.shape(), (0, 3));
    }

    #[test]
    fn empty_and_degenerate_shapes_are_handled() {
        let (qa, qw) = quantized_pair(1, 8, 3, 61);
        let lut = PairLut::new(qa.dict(), qw.dict());
        let cols = ColMajorCodes::from_tensor(&qw);
        // Zero-row activation: empty output.
        let out = matmul_lut_bias(&[], 0, 8, &qw, &[0.0; 3], &lut);
        assert_eq!(out.shape(), (0, 3));
        let empty = dot_lut(&[], &[], &lut);
        assert_eq!(empty, 0.0);
        let _ = cols;
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_lut_shape_mismatch_panics() {
        let (qa, qw) = quantized_pair(2, 8, 2, 71);
        let (qa2, _) = quantized_pair(2, 16, 2, 73);
        let lut = PairLut::new(qa.dict(), qw.dict());
        let cols = ColMajorCodes::from_tensor(&qw);
        let _ = matmul_lut(&qa2, &cols, &lut);
    }
}
