//! Golden Dictionary generation (paper Section II-B, Fig. 2).
//!
//! "First, generate a random Gaussian distribution with 50,000 samples with
//! a mean of zero and a standard deviation of one. Then apply AC method on
//! this distribution to produce the quantization dictionary. To create the
//! Golden Dictionary, we repeat this process and compute an average over
//! quantization dictionaries."

use mokey_clustering::ward_agglomerative;
use mokey_tensor::init::standard_normal_vec;
use serde::{Deserialize, Serialize};

/// Parameters of Golden Dictionary generation.
///
/// The defaults replicate the paper: 50,000 `N(0,1)` samples clustered to
/// `2^bits` centroids, averaged over several independent draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenConfig {
    /// Samples per draw (paper: 50,000).
    pub samples: usize,
    /// Independent draws averaged together (paper: "repeat this process").
    pub repeats: usize,
    /// Quantization width in bits; the dictionary has `2^bits` entries of
    /// which `2^(bits−1)` magnitudes are stored (paper: 4).
    pub bits: u32,
    /// Base RNG seed; draw `r` uses `seed + r`.
    pub seed: u64,
}

impl Default for GoldenConfig {
    fn default() -> Self {
        Self { samples: 50_000, repeats: 8, bits: 4, seed: 0x6D6F_6B65 }
    }
}

/// The model-independent Golden Dictionary: `2^(bits−1)` positive centroid
/// magnitudes of a clustered standard normal, mirrored around zero.
///
/// "The Golden Dictionary is symmetric around zero requiring only half of
/// the entries to be stored" (paper key characteristic #7).
///
/// # Example
///
/// ```
/// use mokey_core::golden::{GoldenConfig, GoldenDictionary};
///
/// let gd = GoldenDictionary::generate(&GoldenConfig { repeats: 2, ..Default::default() });
/// assert_eq!(gd.half().len(), 8);
/// // Magnitudes ascend and span the bulk of N(0,1).
/// assert!(gd.half()[0] < 0.2 && gd.half()[7] > 1.8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenDictionary {
    half: Vec<f64>,
    bits: u32,
}

impl GoldenDictionary {
    /// Generates the dictionary per the paper's recipe.
    ///
    /// Each draw clusters fresh `N(0,1)` samples into `2^bits` clusters with
    /// Ward-linkage agglomerative clustering, folds the signed centroids
    /// into magnitudes (the distribution is symmetric, so positive and
    /// mirrored-negative centroids are averaged), then averages across
    /// draws.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2` (at least two magnitudes are required) or
    /// `samples`/`repeats` is zero.
    pub fn generate(config: &GoldenConfig) -> Self {
        assert!(config.bits >= 2, "need at least 2 bits, got {}", config.bits);
        assert!(config.samples > 0 && config.repeats > 0, "samples and repeats must be positive");
        let k = 1usize << config.bits;
        let half_len = k / 2;
        let mut acc = vec![0.0f64; half_len];
        for r in 0..config.repeats {
            let samples = standard_normal_vec(config.samples, config.seed + r as u64);
            let clustering = ward_agglomerative(&samples, k);
            let half = fold_symmetric(clustering.centroids(), half_len);
            for (a, h) in acc.iter_mut().zip(&half) {
                *a += h;
            }
        }
        for a in &mut acc {
            *a /= config.repeats as f64;
        }
        Self { half: acc, bits: config.bits }
    }

    /// Builds a dictionary from explicit magnitudes (for tests and for
    /// loading a published dictionary).
    ///
    /// # Panics
    ///
    /// Panics if `half` is empty, unsorted, or contains non-positive values.
    pub fn from_half(half: Vec<f64>) -> Self {
        assert!(!half.is_empty(), "dictionary half cannot be empty");
        assert!(half.windows(2).all(|w| w[0] < w[1]), "magnitudes must be strictly ascending");
        assert!(half.iter().all(|&m| m > 0.0), "magnitudes must be positive");
        let bits = (half.len() * 2).ilog2();
        Self { half, bits }
    }

    /// The stored positive magnitudes, ascending.
    pub fn half(&self) -> &[f64] {
        &self.half
    }

    /// Quantization width in bits (4 in the paper).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The full symmetric dictionary: `[-mₕ…-m₀, m₀…mₕ]`, ascending.
    pub fn full(&self) -> Vec<f64> {
        let mut out: Vec<f64> = self.half.iter().rev().map(|&m| -m).collect();
        out.extend_from_slice(&self.half);
        out
    }
}

/// Folds `2h` signed centroids of a (nearly) symmetric clustering into `h`
/// averaged positive magnitudes.
///
/// Centroid `i` from the negative side pairs with centroid `2h−1−i` from
/// the positive side. When the clustering is slightly asymmetric (finite
/// sample), averaging restores the symmetry the paper requires.
fn fold_symmetric(centroids: &[f64], half_len: usize) -> Vec<f64> {
    debug_assert!(centroids.len() >= 2 * half_len || centroids.len() >= half_len);
    let n = centroids.len();
    let mut half = Vec::with_capacity(half_len);
    if n >= 2 * half_len {
        for i in 0..half_len {
            let pos = centroids[n - half_len + i];
            let neg = centroids[half_len - 1 - i];
            half.push((pos - neg) / 2.0);
        }
    } else {
        // Degenerate draw (duplicate collapse): take positive magnitudes.
        for &c in centroids.iter().filter(|&&c| c > 0.0).take(half_len) {
            half.push(c);
        }
        while half.len() < half_len {
            let last = half.last().copied().unwrap_or(1.0);
            half.push(last * 1.5);
        }
    }
    // Guard strict monotonicity against pathological draws.
    for i in 1..half.len() {
        if half[i] <= half[i - 1] {
            half[i] = half[i - 1] * (1.0 + 1e-9);
        }
    }
    half
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> GoldenConfig {
        GoldenConfig { samples: 20_000, repeats: 3, bits: 4, seed: 1 }
    }

    #[test]
    fn generates_eight_ascending_magnitudes() {
        let gd = GoldenDictionary::generate(&small_config());
        assert_eq!(gd.half().len(), 8);
        assert!(gd.half().windows(2).all(|w| w[0] < w[1]));
        assert!(gd.half().iter().all(|&m| m > 0.0));
    }

    #[test]
    fn magnitudes_match_expected_normal_clustering() {
        // For N(0,1) cut into 16 Ward clusters, the extreme magnitude sits
        // near 2.2σ and the innermost near 0.1σ (cf. paper Fig. 3 where the
        // fitted curve spans ~0.02 to ~2.2).
        let gd = GoldenDictionary::generate(&GoldenConfig::default());
        let h = gd.half();
        assert!(h[0] > 0.01 && h[0] < 0.25, "inner magnitude {}", h[0]);
        assert!(h[7] > 1.8 && h[7] < 2.8, "outer magnitude {}", h[7]);
    }

    #[test]
    fn full_dictionary_is_symmetric_and_sorted() {
        let gd = GoldenDictionary::generate(&small_config());
        let full = gd.full();
        assert_eq!(full.len(), 16);
        for i in 0..8 {
            assert!((full[i] + full[15 - i]).abs() < 1e-12, "not symmetric at {i}");
        }
        assert!(full.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = GoldenDictionary::generate(&small_config());
        let b = GoldenDictionary::generate(&small_config());
        assert_eq!(a, b);
        let c = GoldenDictionary::generate(&GoldenConfig { seed: 2, ..small_config() });
        assert_ne!(a, c);
    }

    #[test]
    fn repeats_reduce_draw_variance() {
        // The averaged dictionary should sit between individual draws:
        // check that two different single draws differ more from each other
        // than each differs from the 8-repeat average.
        let single1 = GoldenDictionary::generate(&GoldenConfig {
            repeats: 1,
            seed: 10,
            ..Default::default()
        });
        let single2 = GoldenDictionary::generate(&GoldenConfig {
            repeats: 1,
            seed: 11,
            ..Default::default()
        });
        let avg = GoldenDictionary::generate(&GoldenConfig {
            repeats: 8,
            seed: 10,
            ..Default::default()
        });
        let dist = |a: &GoldenDictionary, b: &GoldenDictionary| -> f64 {
            a.half().iter().zip(b.half()).map(|(x, y)| (x - y).abs()).sum()
        };
        assert!(dist(&single1, &avg) <= dist(&single1, &single2) + 1e-6);
    }

    #[test]
    fn three_bit_dictionary_has_four_magnitudes() {
        let gd = GoldenDictionary::generate(&GoldenConfig { bits: 3, ..small_config() });
        assert_eq!(gd.half().len(), 4);
        assert_eq!(gd.full().len(), 8);
    }

    #[test]
    fn from_half_roundtrips() {
        let gd = GoldenDictionary::from_half(vec![0.1, 0.5, 1.0, 2.0]);
        assert_eq!(gd.bits(), 3);
        assert_eq!(gd.full(), vec![-2.0, -1.0, -0.5, -0.1, 0.1, 0.5, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_half_rejects_unsorted() {
        let _ = GoldenDictionary::from_half(vec![1.0, 0.5]);
    }
}
