//! Mokey quantization — the primary contribution of the ISCA 2022 paper
//! *"Mokey: Enabling Narrow Fixed-Point Inference for Out-of-the-Box
//! Floating-Point Transformer Models"*.
//!
//! Mokey quantizes **all** weights and activations of a transformer to 4-bit
//! indexes into 16-entry dictionaries of 16-bit fixed-point centroids,
//! without fine-tuning, and — its most innovative aspect — performs the bulk
//! of multiply-accumulate work **directly on the indexes** because the
//! centroids are constrained to an exponential curve `±(a^i + b)·s + m`.
//!
//! The pipeline, module by module (paper Section II):
//!
//! 1. [`golden`] — generate the model-independent **Golden Dictionary** by
//!    agglomerative clustering of a random `N(0,1)` sample (Fig. 2).
//! 2. [`curve`] — fit the exponential `a^i + b` to the dictionary half
//!    (Fig. 3; paper reports `a = 1.179`, `b = −0.977`).
//! 3. [`dict`] — derive a per-tensor dictionary pair (Gaussian + Outlier) by
//!    the linear transform `GD·s + m` plus outlier clustering (Section II-C,
//!    II-E).
//! 4. [`encode`] — map tensors to 5-bit codes `(dict, sign, index)` and back
//!    (Section III-A stores these as 4b + pointer metadata off-chip; the
//!    [`mokey-memlayout`](https://docs.rs) crate implements that container).
//! 5. [`profile`] — the one-batch activation profiling run that supplies
//!    mean/std/outlier statistics for runtime tensors (Section II, Step 2).
//! 6. [`kernels`] — the index-domain dot product and GEMM: histogram
//!    counting of exponent sums (`SoI`, `SoA1`, `SoW1`, `PoM1`) plus
//!    precomputed constants, in both exact-`f64` and emulated 16-bit
//!    fixed-point datapaths (Section II-D, Eq. 1–6).
//!    [`lut`] — the fast production variant: dense 32×32 per-dictionary-
//!    pair product tables so GEMMs gather precomputed products instead of
//!    decoding, bit-identical to the decoded reference by construction.
//! 7. [`quantizer`] — the output-activation quantization engine of Fig. 7.
//! 8. [`metrics`] — quantization-error metrics shared by the evaluation.
//!
//! # Quickstart
//!
//! ```
//! use mokey_core::{golden::GoldenDictionary, curve::ExpCurve, dict::TensorDict};
//! use mokey_core::encode::QuantizedTensor;
//! use mokey_tensor::init::GaussianMixture;
//!
//! // One-time, model-independent setup.
//! let gd = GoldenDictionary::generate(&Default::default());
//! let curve = ExpCurve::fit(&gd);
//!
//! // Quantize a weight-like tensor.
//! let w = GaussianMixture::weight_like(0.0, 0.05).sample_matrix(64, 64, 1);
//! let dict = TensorDict::for_values(w.as_slice(), &curve, &Default::default())
//!     .expect("non-degenerate tensor");
//! let q = QuantizedTensor::encode(&w, &dict);
//! let restored = q.decode();
//! assert!(w.max_abs_diff(&restored) < 0.25); // bounded by outlier bins
//! ```

pub mod curve;
pub mod dict;
pub mod encode;
pub mod golden;
pub mod kernels;
pub mod lut;
pub mod metrics;
pub mod profile;
pub mod quantizer;

pub use curve::{ExpCurve, PAPER_A, PAPER_B};
pub use dict::{DictError, DictScratch, OutlierPolicy, TensorDict, TensorDictConfig};
pub use encode::{Code, QuantizedTensor};
pub use golden::{GoldenConfig, GoldenDictionary};
pub use lut::{ColMajorCodes, DecodeLut, PairLut, SKIP_CODE};
pub use profile::{ActivationProfiler, ProfileConfig};
