//! Index-domain compute kernels (paper Section II-D, Eq. 1–6).
//!
//! Because every Gaussian centroid has the form `θ(a^i + b)·s + m`, the dot
//! product of two quantized vectors decomposes into four histogram-counted
//! terms plus constants:
//!
//! ```text
//! Σ A·W = s_A·s_W·[SoI + b·SoA1 + b·SoW1 + b²·PoM1]
//!       + s_A·m_W·[SoA2 + b·PoM2]
//!       + s_W·m_A·[SoW2 + b·PoM3]
//!       + n_G·m_A·m_W
//!       + Σ_outlier-pairs decode(A)·decode(W)
//! ```
//!
//! where, over the Gaussian-pair subset,
//! `SoI = Σ θ_Aθ_W a^(i_A+i_W)` (15-entry histogram of exponent sums),
//! `SoA1 = Σ θ_Aθ_W a^(i_A)`, `SoA2 = Σ θ_A a^(i_A)` (8-entry histograms),
//! symmetrically for `SoW1`/`SoW2`, and `PoM1..3` are signed counts. Pairs
//! containing an outlier operand bypass the decomposition and are
//! multiply-accumulated on their looked-up centroids, exactly as the OPP
//! unit does in hardware.
//!
//! The decomposition is **algebraically exact**: [`dot_indexed`] equals
//! [`dot_decoded`] to f64 rounding, which the property tests enforce. The
//! fixed-point variant [`dot_indexed_fixed`] additionally snaps every
//! constant and the post-processing arithmetic to 16-bit grids, emulating
//! the paper's integer datapath (Section II-F).

use crate::dict::TensorDict;
use crate::encode::{Code, QuantizedTensor};
use mokey_fixed::{snap_to_grid, QFormat};
use mokey_tensor::Matrix;

/// The histogram state accumulated while streaming one dot product —
/// functionally, the contents of one GPE's Counter Register Files plus the
/// OPP's outlier accumulator.
///
/// Field names follow the paper. Counters are wide (`i64`) here; the
/// hardware model in `mokey-accel` accounts for the narrow 8-bit CRFs and
/// their drain cadence.
#[derive(Debug, Clone, PartialEq)]
pub struct DotBreakdown {
    /// `SoI` histogram: signed count per exponent sum `i_A + i_W ∈ [0, 14]`.
    pub soi: Vec<i64>,
    /// `SoA1` histogram: signed (`θ_Aθ_W`) count per activation index.
    pub soa1: Vec<i64>,
    /// `SoA2` histogram: activation-sign (`θ_A`) count per activation index.
    pub soa2: Vec<i64>,
    /// `SoW1` histogram: signed (`θ_Aθ_W`) count per weight index.
    pub sow1: Vec<i64>,
    /// `SoW2` histogram: weight-sign (`θ_W`) count per weight index.
    pub sow2: Vec<i64>,
    /// `PoM1 = Σ θ_Aθ_W` over Gaussian pairs.
    pub pom1: i64,
    /// `PoM2 = Σ θ_A` over Gaussian pairs.
    pub pom2: i64,
    /// `PoM3 = Σ θ_W` over Gaussian pairs.
    pub pom3: i64,
    /// Number of Gaussian pairs (the `n` of `n·m_A·m_W`).
    pub gaussian_pairs: i64,
    /// Number of pairs routed to the outlier path.
    pub outlier_pairs: i64,
    /// Direct multiply-accumulate of outlier pairs on decoded centroids.
    pub outlier_acc: f64,
}

impl DotBreakdown {
    /// Empty breakdown for a curve with `half_len` magnitudes.
    pub fn new(half_len: usize) -> Self {
        Self {
            soi: vec![0; 2 * half_len - 1],
            soa1: vec![0; half_len],
            soa2: vec![0; half_len],
            sow1: vec![0; half_len],
            sow2: vec![0; half_len],
            pom1: 0,
            pom2: 0,
            pom3: 0,
            gaussian_pairs: 0,
            outlier_pairs: 0,
            outlier_acc: 0.0,
        }
    }

    /// Streams one `(activation, weight)` code pair into the histograms —
    /// one GPE lane-cycle.
    pub fn accumulate(&mut self, ca: Code, cw: Code, a_dict: &TensorDict, w_dict: &TensorDict) {
        if ca.is_outlier() || cw.is_outlier() {
            self.outlier_pairs += 1;
            self.outlier_acc += a_dict.decode_code(ca) * w_dict.decode_code(cw);
            return;
        }
        let sa = ca.sign();
        let sw = cw.sign();
        let s = sa * sw;
        self.soi[(ca.index() + cw.index()) as usize] += s;
        self.soa1[ca.index() as usize] += s;
        self.soa2[ca.index() as usize] += sa;
        self.sow1[cw.index() as usize] += s;
        self.sow2[cw.index() as usize] += sw;
        self.pom1 += s;
        self.pom2 += sa;
        self.pom3 += sw;
        self.gaussian_pairs += 1;
    }

    /// Post-processing: reduces the histograms to the scalar dot product
    /// (the OPP's weighted-reduction pass), in exact `f64`.
    pub fn reduce(&self, a_dict: &TensorDict, w_dict: &TensorDict) -> f64 {
        let curve = a_dict.curve();
        debug_assert_eq!(curve.a, w_dict.curve().a, "tensors must share the fitted curve");
        let a = curve.a;
        let b = curve.b;
        let (sa, ma) = (a_dict.scale(), a_dict.shift());
        let (sw, mw) = (w_dict.scale(), w_dict.shift());

        let soi_v: f64 =
            self.soi.iter().enumerate().map(|(e, &c)| c as f64 * a.powi(e as i32)).sum();
        let weigh = |hist: &[i64]| -> f64 {
            hist.iter().enumerate().map(|(i, &c)| c as f64 * a.powi(i as i32)).sum()
        };
        let soa1_v = weigh(&self.soa1);
        let soa2_v = weigh(&self.soa2);
        let sow1_v = weigh(&self.sow1);
        let sow2_v = weigh(&self.sow2);

        sa * sw * (soi_v + b * soa1_v + b * sow1_v + b * b * self.pom1 as f64)
            + sa * mw * (soa2_v + b * self.pom2 as f64)
            + sw * ma * (sow2_v + b * self.pom3 as f64)
            + self.gaussian_pairs as f64 * ma * mw
            + self.outlier_acc
    }

    /// Fixed-point post-processing: every LUT base, coefficient, and
    /// intermediate accumulation is snapped to the stated grids before use,
    /// emulating the 16-bit datapath of Section II-F. Histogram counts stay
    /// exact integers (they are counters in hardware).
    pub fn reduce_fixed(&self, a_dict: &TensorDict, w_dict: &TensorDict, out: QFormat) -> f64 {
        let curve = a_dict.curve();
        let a = curve.a;
        let b = curve.b;
        let (sa, ma) = (a_dict.scale(), a_dict.shift());
        let (sw, mw) = (w_dict.scale(), w_dict.shift());

        // G-LUT bases a^e stored as 16-bit fixed point (Eq. 7 applied to the
        // base range [1, a^max]).
        let max_e = self.soi.len() - 1;
        let base_fmt = QFormat::for_range(16, 0.0, a.powi(max_e as i32));
        let lut = |e: usize| snap_to_grid(a.powi(e as i32), base_fmt.frac_bits());

        // Counter × base products accumulate in a 32-bit register; model the
        // grid of that accumulator.
        let acc_frac = base_fmt.frac_bits();
        let reduce_hist = |hist: &[i64]| -> f64 {
            let mut acc = 0.0;
            for (e, &c) in hist.iter().enumerate() {
                acc = snap_to_grid(acc + c as f64 * lut(e), acc_frac);
            }
            acc
        };
        let soi_v = reduce_hist(&self.soi);
        let soa1_v = reduce_hist(&self.soa1);
        let soa2_v = reduce_hist(&self.soa2);
        let sow1_v = reduce_hist(&self.sow1);
        let sow2_v = reduce_hist(&self.sow2);

        // Per-layer constants are quantized to 16-bit fixed point during
        // profiling (Section II-F); pick each constant's own Eq. 7 format.
        let k16 = |v: f64| -> f64 {
            if v == 0.0 {
                return 0.0;
            }
            let fmt = QFormat::for_range(16, -v.abs(), v.abs());
            snap_to_grid(v, fmt.frac_bits())
        };
        let b_fx = k16(b);
        let b2_fx = k16(b * b);
        let sasw = k16(sa * sw);
        let samw = k16(sa * mw);
        let swma = k16(sw * ma);
        let mamw = k16(ma * mw);

        let term_g = snap_to_grid(
            soi_v + b_fx * soa1_v + b_fx * sow1_v + b2_fx * self.pom1 as f64,
            acc_frac,
        );
        let term_a = snap_to_grid(soa2_v + b_fx * self.pom2 as f64, acc_frac);
        let term_w = snap_to_grid(sow2_v + b_fx * self.pom3 as f64, acc_frac);

        let result = sasw * term_g
            + samw * term_a
            + swma * term_w
            + mamw * self.gaussian_pairs as f64
            + self.outlier_acc;
        snap_to_grid(result, out.frac_bits())
    }
}

/// Index-domain dot product of two quantized vectors — the paper's
/// histogram method, exact in `f64`.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Example
///
/// ```
/// use mokey_core::{curve::ExpCurve, dict::TensorDict, encode::QuantizedTensor, kernels};
/// use mokey_tensor::init::GaussianMixture;
///
/// let a = GaussianMixture::activation_like(0.1, 1.0).sample_matrix(1, 256, 1);
/// let w = GaussianMixture::weight_like(0.0, 0.05).sample_matrix(1, 256, 2);
/// let curve = ExpCurve::paper();
/// let qa = QuantizedTensor::encode_with_own_dict(&a, &curve, &Default::default()).unwrap();
/// let qw = QuantizedTensor::encode_with_own_dict(&w, &curve, &Default::default()).unwrap();
/// let indexed = kernels::dot_indexed(qa.codes(), qa.dict(), qw.codes(), qw.dict());
/// let reference = kernels::dot_decoded(qa.codes(), qa.dict(), qw.codes(), qw.dict());
/// assert!((indexed - reference).abs() < 1e-9 * reference.abs().max(1.0));
/// ```
pub fn dot_indexed(
    a_codes: &[Code],
    a_dict: &TensorDict,
    w_codes: &[Code],
    w_dict: &TensorDict,
) -> f64 {
    dot_breakdown(a_codes, a_dict, w_codes, w_dict).reduce(a_dict, w_dict)
}

/// Builds the full histogram breakdown for one dot product (exposed for the
/// hardware simulator and the tests).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_breakdown(
    a_codes: &[Code],
    a_dict: &TensorDict,
    w_codes: &[Code],
    w_dict: &TensorDict,
) -> DotBreakdown {
    assert_eq!(a_codes.len(), w_codes.len(), "dot length mismatch");
    let mut bd = DotBreakdown::new(a_dict.curve().half_len);
    for (&ca, &cw) in a_codes.iter().zip(w_codes) {
        bd.accumulate(ca, cw, a_dict, w_dict);
    }
    bd
}

/// Reference dot product on decoded centroids (what a conventional MAC array
/// would compute after dictionary lookup).
///
/// Accumulates in four independent lanes (lane `l` sums pairs `i ≡ l mod 4`
/// over the 4-wide prefix) combined as `(s0 + s1) + (s2 + s3)` with the
/// remainder added sequentially — the same fixed reduction structure as
/// `mokey_tensor::dot`, so results are deterministic across runs and
/// independent of how callers block the surrounding GEMM. The order is
/// pinned by `dot_decoded_lane_reduction_order_is_pinned`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_decoded(
    a_codes: &[Code],
    a_dict: &TensorDict,
    w_codes: &[Code],
    w_dict: &TensorDict,
) -> f64 {
    assert_eq!(a_codes.len(), w_codes.len(), "dot length mismatch");
    let mut ca = a_codes.chunks_exact(4);
    let mut cw = w_codes.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (xa, xw) in (&mut ca).zip(&mut cw) {
        s0 += a_dict.decode_code(xa[0]) * w_dict.decode_code(xw[0]);
        s1 += a_dict.decode_code(xa[1]) * w_dict.decode_code(xw[1]);
        s2 += a_dict.decode_code(xa[2]) * w_dict.decode_code(xw[2]);
        s3 += a_dict.decode_code(xa[3]) * w_dict.decode_code(xw[3]);
    }
    let mut acc = (s0 + s1) + (s2 + s3);
    for (&x, &y) in ca.remainder().iter().zip(cw.remainder()) {
        acc += a_dict.decode_code(x) * w_dict.decode_code(y);
    }
    acc
}

/// Index-domain dot product with the fixed-point post-processing datapath
/// (16-bit LUTs and constants, output snapped to `out`).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_indexed_fixed(
    a_codes: &[Code],
    a_dict: &TensorDict,
    w_codes: &[Code],
    w_dict: &TensorDict,
    out: QFormat,
) -> f64 {
    dot_breakdown(a_codes, a_dict, w_codes, w_dict).reduce_fixed(a_dict, w_dict, out)
}

/// Index-domain GEMM: `A (M×K) · W (K×N)` entirely through the histogram
/// kernels. `W` is stored row-major `K×N` as usual.
///
/// This is the bit-faithful-but-slow path; [`matmul_decoded`] computes the
/// numerically identical result through a dense GEMM on decoded centroids
/// (equivalence is property-tested), which the transformer-scale
/// experiments use.
///
/// # Panics
///
/// Panics if inner dimensions differ.
pub fn matmul_indexed(a: &QuantizedTensor, w: &QuantizedTensor) -> Matrix {
    assert_eq!(a.cols(), w.rows(), "matmul_indexed inner dimension mismatch");
    let (m, n) = (a.rows(), w.cols());
    let mut out = Matrix::zeros(m, n);
    // Gather W into one flat column-major buffer (a single allocation) so
    // the inner loop sweeps contiguous columns — the same weight layout
    // the LUT kernel (`mokey_core::lut::matmul_lut`) consumes.
    let w_cols = crate::lut::ColMajorCodes::from_tensor(w);
    for i in 0..m {
        let a_row = a.row_codes(i);
        for j in 0..n {
            out[(i, j)] = dot_indexed(a_row, a.dict(), w_cols.col(j), w.dict()) as f32;
        }
    }
    out
}

/// GEMM on decoded centroids — numerically identical to [`matmul_indexed`]
/// (up to f32 accumulation order) but runs at dense-GEMM speed.
pub fn matmul_decoded(a: &QuantizedTensor, w: &QuantizedTensor) -> Matrix {
    a.decode().matmul(&w.decode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::ExpCurve;
    use mokey_tensor::init::GaussianMixture;

    fn quantized_pair(n: usize, seed: u64) -> (QuantizedTensor, QuantizedTensor) {
        let curve = ExpCurve::paper();
        let a = GaussianMixture::activation_like(0.3, 1.2).sample_matrix(1, n, seed);
        let w = GaussianMixture::weight_like(-0.01, 0.06).sample_matrix(1, n, seed + 1000);
        (
            QuantizedTensor::encode_with_own_dict(&a, &curve, &Default::default()).unwrap(),
            QuantizedTensor::encode_with_own_dict(&w, &curve, &Default::default()).unwrap(),
        )
    }

    #[test]
    fn indexed_equals_decoded_reference() {
        for seed in 0..5 {
            let (qa, qw) = quantized_pair(512, seed);
            let indexed = dot_indexed(qa.codes(), qa.dict(), qw.codes(), qw.dict());
            let reference = dot_decoded(qa.codes(), qa.dict(), qw.codes(), qw.dict());
            assert!(
                (indexed - reference).abs() <= 1e-9 * reference.abs().max(1.0),
                "seed {seed}: indexed {indexed} vs reference {reference}"
            );
        }
    }

    #[test]
    fn breakdown_counts_are_consistent() {
        let (qa, qw) = quantized_pair(1000, 7);
        let bd = dot_breakdown(qa.codes(), qa.dict(), qw.codes(), qw.dict());
        assert_eq!(bd.gaussian_pairs + bd.outlier_pairs, 1000);
        // |PoM1| cannot exceed the Gaussian pair count.
        assert!(bd.pom1.abs() <= bd.gaussian_pairs);
        // Histogram mass: Σ|soa1| ≤ gaussian pairs, and the unsigned totals
        // of SoA1 and SoA2 agree (same events, different signs).
        let mass = |h: &[i64]| h.iter().map(|c| c.abs()).sum::<i64>();
        assert!(mass(&bd.soa1) <= bd.gaussian_pairs);
        assert_eq!(bd.soa1.iter().sum::<i64>(), bd.pom1);
        assert_eq!(bd.soa2.iter().sum::<i64>(), bd.pom2);
        assert_eq!(bd.sow1.iter().sum::<i64>(), bd.pom1);
        assert_eq!(bd.sow2.iter().sum::<i64>(), bd.pom3);
        // SoI mass equals gaussian pairs in the unsigned sense only when no
        // cancellation occurred inside a bin, but the signed sum must match
        // PoM1 (every pair contributes its sign exactly once).
        assert_eq!(bd.soi.iter().sum::<i64>(), bd.pom1);
    }

    #[test]
    fn outlier_pairs_bypass_histograms() {
        let (qa, qw) = quantized_pair(2000, 3);
        let bd = dot_breakdown(qa.codes(), qa.dict(), qw.codes(), qw.dict());
        assert!(bd.outlier_pairs > 0, "fixture should contain outliers");
        // Paper: "less than 4% of the multiplications in BERT" involve an
        // outlier; our mixtures should stay in single digits.
        let frac = bd.outlier_pairs as f64 / 2000.0;
        assert!(frac < 0.12, "outlier pair fraction {frac}");
    }

    #[test]
    fn fixed_point_path_tracks_float_path() {
        let (qa, qw) = quantized_pair(768, 11);
        let float = dot_indexed(qa.codes(), qa.dict(), qw.codes(), qw.dict());
        // Output format sized for the observed magnitude.
        let out = QFormat::for_range(16, -float.abs() * 2.0 - 1.0, float.abs() * 2.0 + 1.0);
        let fixed = dot_indexed_fixed(qa.codes(), qa.dict(), qw.codes(), qw.dict(), out);
        let tol = float.abs().max(1.0) * 0.02 + out.resolution();
        assert!((fixed - float).abs() < tol, "fixed {fixed} vs float {float} (tol {tol})");
    }

    #[test]
    fn matmul_indexed_matches_decoded_gemm() {
        let curve = ExpCurve::paper();
        let a = GaussianMixture::activation_like(0.0, 1.0).sample_matrix(6, 64, 21);
        let w = GaussianMixture::weight_like(0.0, 0.05).sample_matrix(64, 5, 22);
        let qa = QuantizedTensor::encode_with_own_dict(&a, &curve, &Default::default()).unwrap();
        let qw = QuantizedTensor::encode_with_own_dict(&w, &curve, &Default::default()).unwrap();
        let indexed = matmul_indexed(&qa, &qw);
        let decoded = matmul_decoded(&qa, &qw);
        assert_eq!(indexed.shape(), (6, 5));
        assert!(indexed.max_abs_diff(&decoded) < 1e-3);
    }

    #[test]
    fn dot_decoded_lane_reduction_order_is_pinned() {
        // The lane structure must stay fixed: lane l sums pairs i ≡ l
        // (mod 4), combined as (s0+s1)+(s2+s3), remainder sequential.
        // Reproduce it by hand on real quantized data and demand exact
        // equality — a reordered reduction would drift in the last ulps.
        let (qa, qw) = quantized_pair(1003, 13);
        let decode =
            |i: usize| qa.dict().decode_code(qa.codes()[i]) * qw.dict().decode_code(qw.codes()[i]);
        let n4 = qa.codes().len() / 4 * 4;
        let mut lanes = [0.0f64; 4];
        for i in 0..n4 {
            lanes[i % 4] += decode(i);
        }
        let mut expected = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        for i in n4..qa.codes().len() {
            expected += decode(i);
        }
        let actual = dot_decoded(qa.codes(), qa.dict(), qw.codes(), qw.dict());
        assert!(
            actual.to_bits() == expected.to_bits(),
            "reduction order changed: {actual} vs {expected}"
        );
    }

    #[test]
    fn empty_dot_is_zero() {
        let (qa, qw) = quantized_pair(4, 0);
        let zero = dot_indexed(&[], qa.dict(), &[], qw.dict());
        assert_eq!(zero, 0.0);
    }

    #[test]
    fn quantized_dot_approximates_fp_dot() {
        // End-to-end sanity: the quantized dot product tracks the original
        // floating-point dot product with small relative error.
        let curve = ExpCurve::paper();
        let a = GaussianMixture::activation_like(0.2, 1.0).sample_matrix(1, 4096, 5);
        let w = GaussianMixture::weight_like(0.0, 0.04).sample_matrix(1, 4096, 6);
        let fp: f64 =
            a.as_slice().iter().zip(w.as_slice()).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum();
        let qa = QuantizedTensor::encode_with_own_dict(&a, &curve, &Default::default()).unwrap();
        let qw = QuantizedTensor::encode_with_own_dict(&w, &curve, &Default::default()).unwrap();
        let q = dot_indexed(qa.codes(), qa.dict(), qw.codes(), qw.dict());
        // 4-bit quantization of both operands: expect a few percent of the
        // vector norm. Scale tolerance by ||a||·||w||/sqrt(n).
        let na: f64 = a.as_slice().iter().map(|&x| f64::from(x).powi(2)).sum::<f64>().sqrt();
        let nw: f64 = w.as_slice().iter().map(|&x| f64::from(x).powi(2)).sum::<f64>().sqrt();
        let tol = 0.05 * na * nw / (4096f64).sqrt();
        assert!((q - fp).abs() < tol, "quantized {q} vs fp {fp}, tol {tol}");
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn mismatched_lengths_panic() {
        let (qa, qw) = quantized_pair(8, 1);
        let _ = dot_indexed(&qa.codes()[..4], qa.dict(), qw.codes(), qw.dict());
    }
}
