//! Quantization-error metrics shared across the evaluation.

use mokey_tensor::Matrix;

/// Mean squared error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse length mismatch");
    assert!(!a.is_empty(), "mse of empty slices");
    a.iter().zip(b).map(|(&x, &y)| (f64::from(x) - f64::from(y)).powi(2)).sum::<f64>()
        / a.len() as f64
}

/// Root mean squared error.
///
/// # Panics
///
/// Same contract as [`mse`].
pub fn rmse(a: &[f32], b: &[f32]) -> f64 {
    mse(a, b).sqrt()
}

/// Largest absolute element difference.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn max_abs_err(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_err length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (f64::from(x) - f64::from(y)).abs()).fold(0.0, f64::max)
}

/// Signal-to-quantization-noise ratio in dB: `10·log10(Σ s² / Σ (s−q)²)`.
/// Returns `f64::INFINITY` for a perfect reconstruction.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn sqnr_db(signal: &[f32], quantized: &[f32]) -> f64 {
    assert_eq!(signal.len(), quantized.len(), "sqnr length mismatch");
    assert!(!signal.is_empty(), "sqnr of empty slices");
    let power: f64 = signal.iter().map(|&x| f64::from(x).powi(2)).sum();
    let noise: f64 =
        signal.iter().zip(quantized).map(|(&x, &y)| (f64::from(x) - f64::from(y)).powi(2)).sum();
    if noise == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (power / noise).log10()
    }
}

/// Cosine similarity of two vectors (1.0 = identical direction). Returns
/// `0.0` when either vector is all zeros.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine length mismatch");
    let dot: f64 = a.iter().zip(b).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum();
    let na: f64 = a.iter().map(|&x| f64::from(x).powi(2)).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|&x| f64::from(x).powi(2)).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Convenience: [`rmse`] over whole matrices.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn matrix_rmse(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "matrix_rmse shape mismatch");
    rmse(a.as_slice(), b.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known_value() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert_eq!(rmse(&[0.0, 0.0], &[3.0, 4.0]), (12.5f64).sqrt());
    }

    #[test]
    fn max_abs_err_picks_worst() {
        assert_eq!(max_abs_err(&[1.0, 5.0, -2.0], &[1.1, 5.0, -4.0]), 2.0);
    }

    #[test]
    fn sqnr_infinite_for_identity() {
        assert_eq!(sqnr_db(&[1.0, 2.0], &[1.0, 2.0]), f64::INFINITY);
    }

    #[test]
    fn sqnr_known_value() {
        // signal power 1, noise power 0.01 -> 20 dB (f32 rounding of 0.1
        // perturbs the last digits).
        let s = vec![1.0f32];
        let q = vec![0.9f32];
        assert!((sqnr_db(&s, &q) - 20.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        assert!((cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }
}
