//! Exponential curve fit to the Golden Dictionary (paper Section II-D,
//! Fig. 3).
//!
//! "We fit the `GD = a^int + b` curve on these 8 positive values where
//! `a = 1.179`, `b = −0.977`, where `int` is an integer in range of `[0, 7]`
//! and the fitting weights are in `[2^7, 2^0]` range."
//!
//! The exponential form is what unlocks index-domain computation:
//! `a^i · a^j = a^(i+j)`, so products of centroids reduce to sums of
//! indexes.

use crate::golden::GoldenDictionary;
use serde::{Deserialize, Serialize};

/// The paper's published exponential base `a` (Section II-D, Fig. 3).
///
/// Exported so every consumer (figures, ablations, benches, regression
/// tests) references one definition instead of re-typing the literal.
pub const PAPER_A: f64 = 1.179;

/// The paper's published additive offset `b` (Section II-D, Fig. 3).
pub const PAPER_B: f64 = -0.977;

/// The fitted exponential `magnitude(i) = a^i + b`.
///
/// # Example
///
/// ```
/// use mokey_core::curve::ExpCurve;
///
/// let c = ExpCurve::paper();
/// assert!((c.magnitude(0) - 0.023).abs() < 1e-3);
/// assert!((c.magnitude(7) - 2.186).abs() < 1e-2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpCurve {
    /// Exponential base (paper: 1.179).
    pub a: f64,
    /// Additive offset (paper: −0.977).
    pub b: f64,
    /// Number of index values, i.e. half the dictionary size (paper: 8).
    pub half_len: usize,
}

impl ExpCurve {
    /// The constants published in the paper ([`PAPER_A`], [`PAPER_B`]),
    /// for cross-checks and as a drop-in when regeneration is not desired.
    pub fn paper() -> Self {
        Self { a: PAPER_A, b: PAPER_B, half_len: 8 }
    }

    /// Fits `a^i + b` to a Golden Dictionary with the paper's weighting
    /// scheme: "a unit weight for the outer bin, and doubles the weight for
    /// the bins as we move towards zero."
    ///
    /// For a fixed base `a` the optimal offset `b` is the weighted mean
    /// residual (the model is linear in `b`), so the fit reduces to a 1-D
    /// golden-section search over `a`.
    pub fn fit(gd: &GoldenDictionary) -> Self {
        let half = gd.half();
        let weights: Vec<f64> =
            (0..half.len()).map(|i| ((half.len() - 1 - i) as f64).exp2()).collect();
        Self::fit_weighted(half, &weights)
    }

    /// Fits `a^i + b` to arbitrary ascending magnitudes with explicit
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or lengths differ.
    pub fn fit_weighted(magnitudes: &[f64], weights: &[f64]) -> Self {
        assert!(!magnitudes.is_empty(), "cannot fit zero points");
        assert_eq!(magnitudes.len(), weights.len(), "weight length mismatch");
        let objective = |a: f64| -> (f64, f64) {
            // Closed-form optimal b for this a, then weighted SSE.
            let wsum: f64 = weights.iter().sum();
            let b = magnitudes
                .iter()
                .enumerate()
                .zip(weights)
                .map(|((i, &m), &w)| w * (m - a.powi(i as i32)))
                .sum::<f64>()
                / wsum;
            let sse = magnitudes
                .iter()
                .enumerate()
                .zip(weights)
                .map(|((i, &m), &w)| {
                    let r = a.powi(i as i32) + b - m;
                    w * r * r
                })
                .sum::<f64>();
            (sse, b)
        };

        // Golden-section search over a ∈ (1, 3].
        let phi = (5f64.sqrt() - 1.0) / 2.0;
        let (mut lo, mut hi) = (1.000_1f64, 3.0f64);
        let mut x1 = hi - phi * (hi - lo);
        let mut x2 = lo + phi * (hi - lo);
        let (mut f1, _) = objective(x1);
        let (mut f2, _) = objective(x2);
        for _ in 0..200 {
            if f1 < f2 {
                hi = x2;
                x2 = x1;
                f2 = f1;
                x1 = hi - phi * (hi - lo);
                f1 = objective(x1).0;
            } else {
                lo = x1;
                x1 = x2;
                f1 = f2;
                x2 = lo + phi * (hi - lo);
                f2 = objective(x2).0;
            }
            if hi - lo < 1e-12 {
                break;
            }
        }
        let a = (lo + hi) / 2.0;
        let (_, b) = objective(a);
        Self { a, b, half_len: magnitudes.len() }
    }

    /// The curve magnitude at index `i`: `a^i + b`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= half_len` — indexes are 3-bit in the paper's 4-bit
    /// scheme.
    pub fn magnitude(&self, i: usize) -> f64 {
        assert!(i < self.half_len, "index {i} out of range for half_len {}", self.half_len);
        self.a.powi(i as i32) + self.b
    }

    /// All `half_len` magnitudes, ascending.
    pub fn magnitudes(&self) -> Vec<f64> {
        (0..self.half_len).map(|i| self.magnitude(i)).collect()
    }

    /// The power `a^e` for exponent sums (`e` up to `2·(half_len−1)` occurs
    /// in the `SoI` term; up to 45 in outlier handling).
    pub fn power(&self, e: usize) -> f64 {
        self.a.powi(e as i32)
    }

    /// Weighted root-mean-square fit residual against a dictionary, for
    /// reporting Fig. 3.
    pub fn rms_error(&self, magnitudes: &[f64]) -> f64 {
        let sse: f64 = magnitudes
            .iter()
            .enumerate()
            .map(|(i, &m)| (self.a.powi(i as i32) + self.b - m).powi(2))
            .sum();
        (sse / magnitudes.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::GoldenConfig;

    #[test]
    fn fit_recovers_exact_exponential() {
        let truth = ExpCurve { a: 1.3, b: -0.9, half_len: 8 };
        let mags = truth.magnitudes();
        let weights = vec![1.0; 8];
        let fitted = ExpCurve::fit_weighted(&mags, &weights);
        assert!((fitted.a - 1.3).abs() < 1e-6, "a = {}", fitted.a);
        assert!((fitted.b + 0.9).abs() < 1e-6, "b = {}", fitted.b);
    }

    #[test]
    fn fit_to_generated_gd_matches_paper_constants() {
        // The paper reports a = 1.179, b = -0.977 for its generated GD. A
        // single Ward draw over N(0,1) is asymmetric (one side hugs zero),
        // and the published b implies the paper's draw had its innermost
        // magnitude near 0.02. Our mirror-averaged symmetric fold lands the
        // innermost magnitude near 0.1, so `a` must match closely while `b`
        // gets a wider band (see EXPERIMENTS.md, Fig. 3 entry).
        let gd = GoldenDictionary::generate(&GoldenConfig::default());
        let c = ExpCurve::fit(&gd);
        assert!((c.a - PAPER_A).abs() < 0.06, "a = {} vs paper {PAPER_A}", c.a);
        assert!((c.b - PAPER_B).abs() < 0.2, "b = {} vs paper {PAPER_B}", c.b);
    }

    #[test]
    fn weighting_prioritizes_inner_bins() {
        // Perturb the outermost magnitude: with the paper's 2^7..2^0
        // weights the inner fit should barely move.
        let gd = GoldenDictionary::generate(&GoldenConfig {
            samples: 20_000,
            repeats: 2,
            ..Default::default()
        });
        let base = ExpCurve::fit(&gd);
        let mut perturbed = gd.half().to_vec();
        perturbed[7] += 0.3;
        let weights: Vec<f64> = (0..8).map(|i| ((7 - i) as f64).exp2()).collect();
        let moved = ExpCurve::fit_weighted(&perturbed, &weights);
        let inner_shift = (moved.magnitude(0) - base.magnitude(0)).abs();
        assert!(inner_shift < 0.02, "inner magnitude shifted by {inner_shift}");
    }

    #[test]
    fn magnitudes_are_ascending() {
        let c = ExpCurve::paper();
        let mags = c.magnitudes();
        assert!(mags.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn power_law_identity_holds() {
        let c = ExpCurve::paper();
        for i in 0..8usize {
            for j in 0..8usize {
                let prod = c.power(i) * c.power(j);
                assert!((prod - c.power(i + j)).abs() < 1e-9 * prod.abs().max(1.0));
            }
        }
    }

    #[test]
    fn rms_error_of_perfect_fit_is_zero() {
        let c = ExpCurve { a: 1.2, b: -0.5, half_len: 4 };
        assert!(c.rms_error(&c.magnitudes()) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn magnitude_out_of_range_panics() {
        let _ = ExpCurve::paper().magnitude(8);
    }
}
