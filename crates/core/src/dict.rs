//! Per-tensor dictionary generation (paper Sections II-C and II-E).
//!
//! "Mokey fits the Golden Dictionary (GD) to each tensor by first
//! determining the mean (m) and the standard deviation (s) of the tensor's
//! values … A simple linear transformation of GD is all that is needed:
//! `GD × s + m`." Each tensor carries **two** dictionaries: a Gaussian (G)
//! dictionary — the fitted exponential curve — for the bulk, and an Outlier
//! (OT) dictionary for the rare wide-range values.

use crate::curve::ExpCurve;
use crate::encode::Code;
use mokey_clustering::ward_agglomerative;
use mokey_tensor::stats::Summary;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a per-tensor dictionary could not be built.
///
/// Degenerate tensors used to panic (empty) or silently produce a
/// unit-scale dictionary (constant); both now surface as typed errors so
/// pipeline consumers can attach the tensor name and fail cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DictError {
    /// The tensor had no values.
    Empty,
    /// Every value is (numerically) identical: the standard deviation is
    /// zero, so the `GD·s + m` transform collapses and no meaningful
    /// dictionary exists.
    Constant,
    /// The tensor contained NaN or infinite values.
    NonFinite,
}

impl fmt::Display for DictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DictError::Empty => write!(f, "cannot build a dictionary for zero values"),
            DictError::Constant => {
                write!(f, "tensor is constant (zero variance); no dictionary transform exists")
            }
            DictError::NonFinite => write!(f, "tensor contains NaN or infinite values"),
        }
    }
}

impl std::error::Error for DictError {}

/// Reusable buffers for dictionary construction.
///
/// Building a [`TensorDict`] needs three transient `Vec`s (normalized
/// magnitudes, a sorted copy for the [`OutlierPolicy::Fraction`] cut, and
/// the outlier subset). A pipeline quantizing thousands of tensors hands
/// each worker one `DictScratch` so those buffers are allocated once per
/// worker instead of three times per tensor.
#[derive(Debug, Default)]
pub struct DictScratch {
    zmags: Vec<f64>,
    sorted: Vec<f64>,
    outliers: Vec<f64>,
}

impl DictScratch {
    /// A scratch arena with empty buffers (they grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// How the Gaussian/outlier boundary is chosen during dictionary
/// construction.
///
/// The paper widens the exponent range to `int = 45` to cover outliers and
/// gives them a dedicated 16-entry dictionary; the precise cut is a design
/// parameter, so we expose the obvious policies (and use them in the
/// ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OutlierPolicy {
    /// Cut halfway between the outermost Gaussian magnitude `a^(h−1)+b` and
    /// the next exponential step `a^h+b`. This is the natural reading of
    /// the paper's scheme and the default.
    CurveMidpoint,
    /// Explicit cut in normalized (`z = (x−m)/s`) space.
    Threshold(f64),
    /// Choose the cut so that the given fraction of observed values falls
    /// in the outlier set.
    Fraction(f64),
    /// No outlier dictionary: everything quantizes to the Gaussian curve
    /// (values beyond its range clamp to the outermost bin). Used by the
    /// G-only ablation.
    Disabled,
}

/// Construction parameters for [`TensorDict`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TensorDictConfig {
    /// Outlier split policy.
    pub policy: OutlierPolicy,
    /// Maximum OT dictionary magnitudes (paper: 16 entries = 8 magnitudes +
    /// sign).
    pub max_outlier_magnitudes: usize,
    /// Exponent cap for outlier coverage (paper: "we need to widen the
    /// index range to int = 45"). Normalized values beyond `a^cap + b`
    /// clamp.
    pub max_exponent: u32,
}

impl Default for TensorDictConfig {
    fn default() -> Self {
        Self { policy: OutlierPolicy::CurveMidpoint, max_outlier_magnitudes: 8, max_exponent: 45 }
    }
}

/// A per-tensor dictionary pair: the scaled/shifted exponential curve (G)
/// plus a clustered outlier dictionary (OT).
///
/// A stored [`Code`] decodes as `θ · magnitude[idx] · s + m`, where the
/// magnitude comes from the G curve or the OT table according to the code's
/// dictionary bit (paper Eq. 1/2).
///
/// # Example
///
/// ```
/// use mokey_core::{curve::ExpCurve, dict::TensorDict};
///
/// let values: Vec<f32> = (0..1000).map(|i| ((i as f32) * 0.618).sin() * 0.1).collect();
/// let dict = TensorDict::for_values(&values, &ExpCurve::paper(), &Default::default())
///     .expect("non-degenerate tensor");
/// let code = dict.encode_value(0.05);
/// let back = dict.decode_code(code);
/// assert!((back - 0.05).abs() < 0.03);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorDict {
    curve: ExpCurve,
    scale: f64,
    shift: f64,
    /// Cached Gaussian magnitudes `a^i + b` (z-space), ascending.
    g_magnitudes: Vec<f64>,
    /// Outlier magnitudes (z-space), ascending; may be empty.
    ot_magnitudes: Vec<f64>,
    /// z-space boundary used when the dictionary was *built* (encoding uses
    /// nearest-centroid-overall, matching the Fig. 7 hardware).
    cutoff: f64,
}

impl TensorDict {
    /// Builds the dictionary pair for a concrete value set (weights, or
    /// profiled activation samples).
    ///
    /// # Errors
    ///
    /// Returns a [`DictError`] when the tensor is empty, constant, or
    /// contains non-finite values.
    pub fn for_values(
        values: &[f32],
        curve: &ExpCurve,
        config: &TensorDictConfig,
    ) -> Result<Self, DictError> {
        let summary = Summary::of(values);
        Self::from_stats(&summary, values, curve, config)
    }

    /// Builds the dictionary pair from precomputed statistics plus a sample
    /// of values (the profiler's reservoir) used for outlier clustering.
    ///
    /// # Errors
    ///
    /// Returns a [`DictError`] when the summary describes an empty,
    /// constant, or non-finite tensor.
    pub fn from_stats(
        summary: &Summary,
        samples: &[f32],
        curve: &ExpCurve,
        config: &TensorDictConfig,
    ) -> Result<Self, DictError> {
        Self::from_stats_scratch(summary, samples, curve, config, &mut DictScratch::new())
    }

    /// [`TensorDict::from_stats`] with caller-owned scratch buffers — the
    /// hot path for pipelines that build thousands of dictionaries, where
    /// per-tensor `Vec` churn would dominate.
    ///
    /// # Errors
    ///
    /// Returns a [`DictError`] when the summary describes an empty,
    /// constant, or non-finite tensor.
    pub fn from_stats_scratch(
        summary: &Summary,
        samples: &[f32],
        curve: &ExpCurve,
        config: &TensorDictConfig,
        scratch: &mut DictScratch,
    ) -> Result<Self, DictError> {
        if summary.count() == 0 {
            return Err(DictError::Empty);
        }
        let shift = summary.mean();
        let scale = summary.std();
        if !shift.is_finite() || !scale.is_finite() || !summary.min().is_finite() {
            return Err(DictError::NonFinite);
        }
        if scale <= 1e-30 {
            return Err(DictError::Constant);
        }
        let g_magnitudes = curve.magnitudes();
        let g_max = *g_magnitudes.last().expect("curve has at least one magnitude");

        let z_cap = curve.power(config.max_exponent as usize) + curve.b;
        scratch.zmags.clear();
        scratch
            .zmags
            .extend(samples.iter().map(|&v| ((f64::from(v) - shift) / scale).abs().min(z_cap)));

        let cutoff = match config.policy {
            OutlierPolicy::Disabled => f64::INFINITY,
            OutlierPolicy::CurveMidpoint => (g_max + curve.power(curve.half_len) + curve.b) / 2.0,
            OutlierPolicy::Threshold(t) => t,
            OutlierPolicy::Fraction(f) => {
                let f = f.clamp(0.0, 1.0);
                scratch.sorted.clear();
                scratch.sorted.extend_from_slice(&scratch.zmags);
                scratch.sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite z"));
                let idx = ((scratch.sorted.len() as f64) * (1.0 - f)) as usize;
                scratch.sorted.get(idx).copied().unwrap_or(f64::INFINITY)
            }
        };

        scratch.outliers.clear();
        scratch.outliers.extend(scratch.zmags.iter().copied().filter(|&z| z > cutoff));
        let ot_magnitudes =
            if scratch.outliers.is_empty() || config.policy == OutlierPolicy::Disabled {
                Vec::new()
            } else {
                let k = config.max_outlier_magnitudes.min(scratch.outliers.len()).max(1);
                let clustering = ward_agglomerative(&scratch.outliers, k);
                clustering.centroids().to_vec()
            };

        Ok(Self { curve: *curve, scale, shift, g_magnitudes, ot_magnitudes, cutoff })
    }

    /// Reconstructs a dictionary from its stored parts (the wire format of
    /// `mokey-memlayout`'s archive): the Gaussian magnitudes are recomputed
    /// from the curve, everything else is explicit.
    ///
    /// # Panics
    ///
    /// Panics if `ot_magnitudes` is unsorted or `scale` is not positive.
    pub fn from_parts(
        curve: ExpCurve,
        scale: f64,
        shift: f64,
        ot_magnitudes: Vec<f64>,
        cutoff: f64,
    ) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        assert!(
            ot_magnitudes.windows(2).all(|w| w[0] <= w[1]),
            "outlier magnitudes must be sorted"
        );
        let g_magnitudes = curve.magnitudes();
        Self { curve, scale, shift, g_magnitudes, ot_magnitudes, cutoff }
    }

    /// The shared exponential curve.
    pub fn curve(&self) -> &ExpCurve {
        &self.curve
    }

    /// Per-tensor scale `s` (the standard deviation).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Per-tensor shift `m` (the mean).
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Gaussian magnitudes in z-space (`a^i + b`), ascending.
    pub fn g_magnitudes(&self) -> &[f64] {
        &self.g_magnitudes
    }

    /// Outlier magnitudes in z-space, ascending (empty when the tensor had
    /// no outliers or the policy disabled them).
    pub fn ot_magnitudes(&self) -> &[f64] {
        &self.ot_magnitudes
    }

    /// The z-space boundary used at construction time.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Encodes one value to its nearest centroid across **both**
    /// dictionaries (ties prefer Gaussian), exactly as the Fig. 7 output
    /// quantization engine does in hardware.
    pub fn encode_value(&self, value: f32) -> Code {
        let z = (f64::from(value) - self.shift) / self.scale;
        let negative = z < 0.0;
        let az = z.abs();
        let (gi, gd) = nearest(&self.g_magnitudes, az);
        if self.ot_magnitudes.is_empty() {
            return Code::new(false, negative, gi as u8);
        }
        let (oi, od) = nearest(&self.ot_magnitudes, az);
        if gd <= od {
            Code::new(false, negative, gi as u8)
        } else {
            Code::new(true, negative, oi as u8)
        }
    }

    /// Decodes a code back to a floating-point value:
    /// `θ · magnitude · s + m`.
    ///
    /// # Panics
    ///
    /// Panics if an outlier code arrives while the OT dictionary is empty,
    /// or the index exceeds the dictionary.
    pub fn decode_code(&self, code: Code) -> f64 {
        let table = if code.is_outlier() { &self.ot_magnitudes } else { &self.g_magnitudes };
        let mag = *table
            .get(code.index() as usize)
            .unwrap_or_else(|| panic!("code {code:?} indexes outside the dictionary"));
        let signed = if code.is_negative() { -mag } else { mag };
        signed * self.scale + self.shift
    }

    /// The full signed centroid list (value space), ascending, paired with
    /// the code that produces each — the comparator inputs of the Fig. 7
    /// engine.
    pub fn signed_centroids(&self) -> Vec<(f64, Code)> {
        let mut out = Vec::with_capacity(2 * (self.g_magnitudes.len() + self.ot_magnitudes.len()));
        for (table, is_ot) in [(&self.g_magnitudes, false), (&self.ot_magnitudes, true)] {
            for (i, &m) in table.iter().enumerate() {
                out.push((m * self.scale + self.shift, Code::new(is_ot, false, i as u8)));
                out.push((-m * self.scale + self.shift, Code::new(is_ot, true, i as u8)));
            }
        }
        out.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite centroids"));
        out
    }

    /// A 64-bit content fingerprint (FNV-1a over every field that affects
    /// decoding: curve constants, scale/shift, both magnitude tables, and
    /// the cutoff). Two dictionaries with equal fingerprints decode every
    /// code identically, so the fingerprint pair keys the session-level
    /// [`PairLut`](crate::lut::PairLut) cache across models.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = FNV_OFFSET;
        let mut eat = |bits: u64| {
            for byte in bits.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.curve.a.to_bits());
        eat(self.curve.b.to_bits());
        eat(self.curve.half_len as u64);
        eat(self.scale.to_bits());
        eat(self.shift.to_bits());
        eat(self.g_magnitudes.len() as u64);
        for &m in &self.g_magnitudes {
            eat(m.to_bits());
        }
        eat(self.ot_magnitudes.len() as u64);
        for &m in &self.ot_magnitudes {
            eat(m.to_bits());
        }
        eat(self.cutoff.to_bits());
        h
    }

    /// Metadata footprint in bits: G dictionary (half × 16b), OT dictionary
    /// (half × 16b), plus scale/shift constants (2 × 16b). Paper Section
    /// II-G: "the space needed for this metadata pales in comparison with
    /// the size of the respective tensors."
    pub fn metadata_bits(&self) -> usize {
        (self.g_magnitudes.len() + self.ot_magnitudes.len() + 2) * 16
    }
}

/// Index and distance of the nearest entry in an ascending table.
fn nearest(table: &[f64], value: f64) -> (usize, f64) {
    debug_assert!(!table.is_empty());
    match table.binary_search_by(|m| m.partial_cmp(&value).expect("finite magnitudes")) {
        Ok(i) => (i, 0.0),
        Err(i) => {
            if i == 0 {
                (0, (table[0] - value).abs())
            } else if i == table.len() {
                (table.len() - 1, (value - table[table.len() - 1]).abs())
            } else {
                let lo = (value - table[i - 1]).abs();
                let hi = (table[i] - value).abs();
                if lo <= hi {
                    (i - 1, lo)
                } else {
                    (i, hi)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mokey_tensor::init::GaussianMixture;

    fn weight_values() -> Vec<f32> {
        GaussianMixture::weight_like(0.01, 0.05).sample_matrix(100, 100, 42).into_vec()
    }

    #[test]
    fn linear_transform_matches_paper_form() {
        let values = weight_values();
        let curve = ExpCurve::paper();
        let dict = TensorDict::for_values(&values, &curve, &Default::default()).unwrap();
        // Decoded G centroid i must equal ±(a^i + b)·s + m exactly.
        for i in 0..8u8 {
            let pos = dict.decode_code(Code::new(false, false, i));
            let expect = (curve.a.powi(i32::from(i)) + curve.b) * dict.scale() + dict.shift();
            assert!((pos - expect).abs() < 1e-12);
            let neg = dict.decode_code(Code::new(false, true, i));
            let expect_neg = -(curve.a.powi(i32::from(i)) + curve.b) * dict.scale() + dict.shift();
            assert!((neg - expect_neg).abs() < 1e-12);
        }
    }

    #[test]
    fn encode_decode_error_bounded_for_bulk_values() {
        let values = weight_values();
        let dict =
            TensorDict::for_values(&values, &ExpCurve::paper(), &Default::default()).unwrap();
        // For in-range values the error is at most half the largest gap
        // between adjacent signed centroids.
        let centroids = dict.signed_centroids();
        let max_gap = centroids.windows(2).map(|w| w[1].0 - w[0].0).fold(0.0, f64::max);
        let lo = centroids.first().unwrap().0;
        let hi = centroids.last().unwrap().0;
        for &v in values.iter().filter(|&&v| f64::from(v) > lo && f64::from(v) < hi) {
            let err = (dict.decode_code(dict.encode_value(v)) - f64::from(v)).abs();
            assert!(err <= max_gap / 2.0 + 1e-9, "error {err} exceeds half max gap {max_gap}");
        }
    }

    #[test]
    fn outlier_fraction_matches_paper_ballpark_for_weights() {
        let values = weight_values();
        let dict =
            TensorDict::for_values(&values, &ExpCurve::paper(), &Default::default()).unwrap();
        let outliers = values.iter().filter(|&&v| dict.encode_value(v).is_outlier()).count() as f64;
        let frac = outliers / values.len() as f64;
        // Paper Table I: 1.2%–1.6% for weights. Allow a generous band.
        assert!(frac > 0.001 && frac < 0.05, "weight outlier fraction {frac}");
    }

    #[test]
    fn ot_magnitudes_sit_beyond_g_range() {
        let values = weight_values();
        let dict =
            TensorDict::for_values(&values, &ExpCurve::paper(), &Default::default()).unwrap();
        let g_max = *dict.g_magnitudes().last().unwrap();
        assert!(!dict.ot_magnitudes().is_empty());
        for &m in dict.ot_magnitudes() {
            assert!(m > g_max, "OT magnitude {m} inside G range (max {g_max})");
        }
    }

    #[test]
    fn disabled_policy_has_no_outliers() {
        let values = weight_values();
        let config = TensorDictConfig { policy: OutlierPolicy::Disabled, ..Default::default() };
        let dict = TensorDict::for_values(&values, &ExpCurve::paper(), &config).unwrap();
        assert!(dict.ot_magnitudes().is_empty());
        assert!(values.iter().all(|&v| !dict.encode_value(v).is_outlier()));
    }

    #[test]
    fn fraction_policy_hits_requested_rate() {
        let values = weight_values();
        let config =
            TensorDictConfig { policy: OutlierPolicy::Fraction(0.05), ..Default::default() };
        let dict = TensorDict::for_values(&values, &ExpCurve::paper(), &config).unwrap();
        let frac = values.iter().filter(|&&v| dict.encode_value(v).is_outlier()).count() as f64
            / values.len() as f64;
        assert!((frac - 0.05).abs() < 0.02, "fraction {frac} vs requested 0.05");
    }

    #[test]
    fn degenerate_tensors_are_rejected_with_typed_errors() {
        let curve = ExpCurve::paper();
        let config = TensorDictConfig::default();
        assert_eq!(TensorDict::for_values(&[], &curve, &config), Err(DictError::Empty));
        assert_eq!(
            TensorDict::for_values(&[3.0f32; 100], &curve, &config),
            Err(DictError::Constant)
        );
        assert_eq!(
            TensorDict::for_values(&[0.1, f32::NAN, 0.2], &curve, &config),
            Err(DictError::NonFinite)
        );
        assert_eq!(
            TensorDict::for_values(&[0.1, f32::INFINITY], &curve, &config),
            Err(DictError::NonFinite)
        );
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_buffers() {
        let values = weight_values();
        let curve = ExpCurve::paper();
        let mut scratch = DictScratch::new();
        for policy in
            [OutlierPolicy::CurveMidpoint, OutlierPolicy::Fraction(0.03), OutlierPolicy::Disabled]
        {
            let config = TensorDictConfig { policy, ..Default::default() };
            let summary = Summary::of(&values);
            let fresh = TensorDict::from_stats(&summary, &values, &curve, &config).unwrap();
            let reused =
                TensorDict::from_stats_scratch(&summary, &values, &curve, &config, &mut scratch)
                    .unwrap();
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn extreme_values_clamp_to_outermost_bin() {
        let values = weight_values();
        let dict =
            TensorDict::for_values(&values, &ExpCurve::paper(), &Default::default()).unwrap();
        let code = dict.encode_value(1e6);
        assert!(code.is_outlier());
        assert_eq!(code.index() as usize, dict.ot_magnitudes().len() - 1);
    }

    #[test]
    fn signed_centroids_sorted_and_complete() {
        let values = weight_values();
        let dict =
            TensorDict::for_values(&values, &ExpCurve::paper(), &Default::default()).unwrap();
        let c = dict.signed_centroids();
        assert_eq!(c.len(), 2 * (8 + dict.ot_magnitudes().len()));
        assert!(c.windows(2).all(|w| w[0].0 <= w[1].0));
        // Every centroid decodes to itself.
        for (v, code) in &c {
            assert!((dict.decode_code(*code) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn fingerprint_tracks_content_not_identity() {
        let values = weight_values();
        let curve = ExpCurve::paper();
        let d1 = TensorDict::for_values(&values, &curve, &Default::default()).unwrap();
        let d2 = TensorDict::for_values(&values, &curve, &Default::default()).unwrap();
        assert_eq!(d1.fingerprint(), d2.fingerprint());
        // A different tensor (different stats) must fingerprint differently.
        let other: Vec<f32> = values.iter().map(|v| v * 1.5 + 0.01).collect();
        let d3 = TensorDict::for_values(&other, &curve, &Default::default()).unwrap();
        assert_ne!(d1.fingerprint(), d3.fingerprint());
        // And so must a policy change that empties the OT table.
        let config = TensorDictConfig { policy: OutlierPolicy::Disabled, ..Default::default() };
        let d4 = TensorDict::for_values(&values, &curve, &config).unwrap();
        assert_ne!(d1.fingerprint(), d4.fingerprint());
    }

    #[test]
    fn metadata_is_small() {
        let values = weight_values();
        let dict =
            TensorDict::for_values(&values, &ExpCurve::paper(), &Default::default()).unwrap();
        assert!(dict.metadata_bits() <= (8 + 8 + 2) * 16);
    }
}
