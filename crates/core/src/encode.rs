//! Tensor encoding: values → 5-bit codes and back (paper Sections II-A and
//! III-A).
//!
//! Off-chip, Mokey stores 4-bit indexes plus a compact outlier-pointer
//! stream (the `mokey-memlayout` crate implements that container). On-chip
//! "the values can be expanded to 5b (dictionary selection/1b, sign/1b,
//! centroid index/3b) indexes" — [`Code`] is that 5-bit form.

use crate::dict::{DictError, TensorDict};
use mokey_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A 5-bit Mokey code: dictionary-select bit, sign bit, 3-bit index.
///
/// Packed as `0b000D_SIII` in a byte: `D` selects Gaussian (0) or Outlier
/// (1), `S` is the sign (1 = negative, matching the paper's
/// "0: positive, 1: negative"), `III` the magnitude index.
///
/// # Example
///
/// ```
/// use mokey_core::encode::Code;
///
/// // The paper's example: 0b1011 (4-bit form) = negative, index 3.
/// let c = Code::new(false, true, 3);
/// assert!(c.is_negative());
/// assert_eq!(c.index(), 3);
/// assert_eq!(c.to_bits(), 0b01011);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Code(u8);

impl Code {
    const SIGN_BIT: u8 = 0b0000_1000;
    const DICT_BIT: u8 = 0b0001_0000;
    const INDEX_MASK: u8 = 0b0000_0111;

    /// Builds a code from its three fields.
    ///
    /// # Panics
    ///
    /// Panics if `index > 7` — indexes are 3 bits.
    pub fn new(outlier: bool, negative: bool, index: u8) -> Self {
        assert!(index <= Self::INDEX_MASK, "index {index} does not fit in 3 bits");
        let mut bits = index;
        if negative {
            bits |= Self::SIGN_BIT;
        }
        if outlier {
            bits |= Self::DICT_BIT;
        }
        Self(bits)
    }

    /// Reconstructs a code from its packed 5-bit form.
    ///
    /// # Panics
    ///
    /// Panics if bits above the low 5 are set.
    pub fn from_bits(bits: u8) -> Self {
        assert!(bits < 32, "code bits {bits:#b} exceed 5 bits");
        Self(bits)
    }

    /// The packed 5-bit representation.
    pub fn to_bits(self) -> u8 {
        self.0
    }

    /// `true` when the code indexes the outlier dictionary.
    pub fn is_outlier(self) -> bool {
        self.0 & Self::DICT_BIT != 0
    }

    /// `true` for negative values (sign bit set).
    pub fn is_negative(self) -> bool {
        self.0 & Self::SIGN_BIT != 0
    }

    /// The sign as ±1, convenient for the histogram kernels.
    pub fn sign(self) -> i64 {
        if self.is_negative() {
            -1
        } else {
            1
        }
    }

    /// The 3-bit magnitude index.
    pub fn index(self) -> u8 {
        self.0 & Self::INDEX_MASK
    }

    /// The 4-bit memory form (sign + index), used by the off-chip container
    /// where the dictionary-select bit lives in the pointer stream instead.
    pub fn to_bits4(self) -> u8 {
        self.0 & (Self::SIGN_BIT | Self::INDEX_MASK)
    }

    /// Rebuilds the 5-bit code from the 4-bit memory form plus the
    /// outlier flag recovered from the pointer stream.
    ///
    /// # Panics
    ///
    /// Panics if bits above the low 4 are set.
    pub fn from_bits4(bits: u8, outlier: bool) -> Self {
        assert!(bits < 16, "4-bit form {bits:#b} exceeds 4 bits");
        Self::new(outlier, bits & Self::SIGN_BIT != 0, bits & Self::INDEX_MASK)
    }
}

/// A quantized tensor: shape, per-value [`Code`]s, and the [`TensorDict`]
/// that decodes them.
///
/// # Example
///
/// ```
/// use mokey_core::{curve::ExpCurve, dict::TensorDict, encode::QuantizedTensor};
/// use mokey_tensor::init::GaussianMixture;
///
/// let w = GaussianMixture::weight_like(0.0, 0.1).sample_matrix(16, 16, 3);
/// let dict = TensorDict::for_values(w.as_slice(), &ExpCurve::paper(), &Default::default())
///     .expect("non-degenerate tensor");
/// let q = QuantizedTensor::encode(&w, &dict);
/// assert_eq!(q.shape(), (16, 16));
/// assert!(q.outlier_fraction() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    rows: usize,
    cols: usize,
    codes: Vec<Code>,
    dict: TensorDict,
}

impl QuantizedTensor {
    /// Encodes a matrix with the given dictionary.
    pub fn encode(matrix: &Matrix, dict: &TensorDict) -> Self {
        let codes = matrix.as_slice().iter().map(|&v| dict.encode_value(v)).collect();
        Self { rows: matrix.rows(), cols: matrix.cols(), codes, dict: dict.clone() }
    }

    /// Convenience: builds the dictionary from the matrix itself, then
    /// encodes (the weight-quantization path, where values are statically
    /// known).
    ///
    /// # Errors
    ///
    /// Returns a [`DictError`] when the matrix is a degenerate tensor
    /// (empty, constant, or non-finite).
    pub fn encode_with_own_dict(
        matrix: &Matrix,
        curve: &crate::curve::ExpCurve,
        config: &crate::dict::TensorDictConfig,
    ) -> Result<Self, DictError> {
        let dict = TensorDict::for_values(matrix.as_slice(), curve, config)?;
        Ok(Self::encode(matrix, &dict))
    }

    /// Decodes back to a dense matrix of centroid values.
    pub fn decode(&self) -> Matrix {
        let data = self.codes.iter().map(|&c| self.dict.decode_code(c) as f32).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Decodes into a caller-owned buffer (cleared first), avoiding the
    /// per-tensor output allocation of [`QuantizedTensor::decode`] when a
    /// pipeline streams many tensors through one scratch buffer.
    pub fn decode_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.codes.len());
        out.extend(self.codes.iter().map(|&c| self.dict.decode_code(c) as f32));
    }

    /// Shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// All codes, row-major.
    pub fn codes(&self) -> &[Code] {
        &self.codes
    }

    /// Codes of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_codes(&self, r: usize) -> &[Code] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.codes[r * self.cols..(r + 1) * self.cols]
    }

    /// The dictionary pair used for decoding.
    pub fn dict(&self) -> &TensorDict {
        &self.dict
    }

    /// Number of values encoded as outliers.
    pub fn outlier_count(&self) -> usize {
        self.codes.iter().filter(|c| c.is_outlier()).count()
    }

    /// Fraction of values encoded as outliers (paper Table I's "OT %").
    pub fn outlier_fraction(&self) -> f64 {
        if self.codes.is_empty() {
            0.0
        } else {
            self.outlier_count() as f64 / self.codes.len() as f64
        }
    }

    /// Payload bits in the off-chip container form: 4 bits per value plus
    /// the outlier-pointer stream (6-bit count + 6 bits per outlier per
    /// group of 64; see `mokey-memlayout` for the exact packing this
    /// estimate mirrors).
    pub fn payload_bits(&self) -> usize {
        let groups = self.codes.len().div_ceil(64);
        self.codes.len() * 4 + groups * 6 + self.outlier_count() * 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::ExpCurve;
    use mokey_tensor::init::GaussianMixture;

    fn sample_tensor() -> (Matrix, TensorDict) {
        let m = GaussianMixture::weight_like(0.02, 0.08).sample_matrix(32, 48, 9);
        let dict =
            TensorDict::for_values(m.as_slice(), &ExpCurve::paper(), &Default::default()).unwrap();
        (m, dict)
    }

    #[test]
    fn code_bit_packing_roundtrips() {
        for outlier in [false, true] {
            for negative in [false, true] {
                for index in 0..8u8 {
                    let c = Code::new(outlier, negative, index);
                    assert_eq!(Code::from_bits(c.to_bits()), c);
                    assert_eq!(c.is_outlier(), outlier);
                    assert_eq!(c.is_negative(), negative);
                    assert_eq!(c.index(), index);
                    assert_eq!(Code::from_bits4(c.to_bits4(), outlier), c);
                }
            }
        }
    }

    #[test]
    fn sign_helper_matches_paper_convention() {
        assert_eq!(Code::new(false, false, 0).sign(), 1);
        assert_eq!(Code::new(false, true, 0).sign(), -1);
    }

    #[test]
    fn encode_decode_preserves_shape_and_bounds_error() {
        let (m, dict) = sample_tensor();
        let q = QuantizedTensor::encode(&m, &dict);
        let d = q.decode();
        assert_eq!(d.shape(), m.shape());
        // RMS error must be far below the tensor's std.
        let rms = {
            let se: f64 = m
                .as_slice()
                .iter()
                .zip(d.as_slice())
                .map(|(&a, &b)| (f64::from(a) - f64::from(b)).powi(2))
                .sum();
            (se / m.len() as f64).sqrt()
        };
        assert!(rms < 0.08 * 0.5, "rms {rms} too large");
    }

    #[test]
    fn decode_into_matches_decode_and_reuses_buffer() {
        let (m, dict) = sample_tensor();
        let q = QuantizedTensor::encode(&m, &dict);
        let mut buf = vec![9.0f32; 10_000]; // pre-filled and oversized on purpose
        q.decode_into(&mut buf);
        assert_eq!(buf.as_slice(), q.decode().as_slice());
    }

    #[test]
    fn decode_values_are_dictionary_centroids() {
        let (m, dict) = sample_tensor();
        let q = QuantizedTensor::encode(&m, &dict);
        let centroids: Vec<f64> = dict.signed_centroids().iter().map(|(v, _)| *v).collect();
        for &v in q.decode().as_slice() {
            let nearest =
                centroids.iter().map(|&c| (c - f64::from(v)).abs()).fold(f64::INFINITY, f64::min);
            assert!(nearest < 1e-5, "decoded value {v} is not a centroid");
        }
    }

    #[test]
    fn row_codes_match_flat_codes() {
        let (m, dict) = sample_tensor();
        let q = QuantizedTensor::encode(&m, &dict);
        assert_eq!(q.row_codes(3), &q.codes()[3 * 48..4 * 48]);
    }

    #[test]
    fn payload_bits_reflect_compression() {
        let (m, dict) = sample_tensor();
        let q = QuantizedTensor::encode(&m, &dict);
        let fp16_bits = m.len() * 16;
        // ~4.2 bits/value vs 16 -> compression near 3.8x.
        let ratio = fp16_bits as f64 / q.payload_bits() as f64;
        assert!(ratio > 3.0, "compression ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "does not fit in 3 bits")]
    fn code_index_overflow_panics() {
        let _ = Code::new(false, false, 8);
    }

    #[test]
    #[should_panic(expected = "exceed 5 bits")]
    fn code_from_bits_overflow_panics() {
        let _ = Code::from_bits(32);
    }
}
