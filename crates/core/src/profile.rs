//! Activation profiling (paper Section II, Step 2 and Section IV-A,
//! Fig. 8).
//!
//! "Mokey performs a profiling run of the model collecting samples of the
//! activation tensors … proﬁling runs use a single randomly selected batch
//! containing 8 input samples (however, runs with even fewer input samples
//! proved enough)."
//!
//! The profiler keeps, per named tensor, a [`Summary`] (mean/std/range for
//! the dictionary transform and the Eq. 7 fixed-point format) plus a
//! bounded reservoir sample (for outlier-dictionary clustering).

use crate::curve::ExpCurve;
use crate::dict::{DictError, DictScratch, TensorDict, TensorDictConfig};
use mokey_tensor::stats::Summary;
use mokey_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Profiler parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Reservoir capacity per tensor. 16K samples comfortably resolves
    /// sub-percent outlier tails.
    pub reservoir: usize,
    /// RNG seed for reservoir replacement decisions.
    pub seed: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        Self { reservoir: 16_384, seed: 0xACC0 }
    }
}

/// Per-tensor profile: running statistics plus a uniform reservoir sample.
#[derive(Debug, Clone)]
pub struct TensorProfile {
    summary: Summary,
    reservoir: Vec<f32>,
    seen: usize,
    capacity: usize,
    rng: StdRng,
}

impl TensorProfile {
    fn new(config: &ProfileConfig, salt: u64) -> Self {
        Self {
            summary: Summary::new(),
            reservoir: Vec::with_capacity(config.reservoir),
            seen: 0,
            capacity: config.reservoir.max(1),
            rng: StdRng::seed_from_u64(config.seed ^ salt),
        }
    }

    /// Folds a batch of values in (Vitter's algorithm R reservoir update).
    pub fn observe(&mut self, values: &[f32]) {
        for &v in values {
            self.summary.push(f64::from(v));
            self.seen += 1;
            if self.reservoir.len() < self.capacity {
                self.reservoir.push(v);
            } else {
                let j = self.rng.gen_range(0..self.seen);
                if j < self.capacity {
                    self.reservoir[j] = v;
                }
            }
        }
    }

    /// Running statistics over everything observed.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// The current reservoir sample.
    pub fn samples(&self) -> &[f32] {
        &self.reservoir
    }

    /// Total values observed (≥ reservoir size).
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Builds the tensor's dictionary pair from the profile.
    ///
    /// # Errors
    ///
    /// Returns a [`DictError`] when the profiled tensor is degenerate
    /// (nothing observed, constant, or non-finite).
    pub fn build_dict(
        &self,
        curve: &ExpCurve,
        config: &TensorDictConfig,
    ) -> Result<TensorDict, DictError> {
        TensorDict::from_stats(&self.summary, &self.reservoir, curve, config)
    }

    /// [`TensorProfile::build_dict`] with caller-owned scratch buffers (the
    /// parallel-pipeline hot path).
    ///
    /// # Errors
    ///
    /// Returns a [`DictError`] when the profiled tensor is degenerate.
    pub fn build_dict_scratch(
        &self,
        curve: &ExpCurve,
        config: &TensorDictConfig,
        scratch: &mut DictScratch,
    ) -> Result<TensorDict, DictError> {
        TensorDict::from_stats_scratch(&self.summary, &self.reservoir, curve, config, scratch)
    }
}

/// Collects activation profiles across a model, keyed by tensor name.
///
/// # Example
///
/// ```
/// use mokey_core::{curve::ExpCurve, profile::ActivationProfiler};
/// use mokey_tensor::init::GaussianMixture;
///
/// let mut profiler = ActivationProfiler::new(Default::default());
/// for batch in 0..4 {
///     let acts = GaussianMixture::activation_like(0.5, 2.0).sample_matrix(8, 128, batch);
///     profiler.observe("encoder0.ffn.input", &acts);
/// }
/// let dicts = profiler.build_dicts(&ExpCurve::paper(), &Default::default()).unwrap();
/// assert!(dicts.contains_key("encoder0.ffn.input"));
/// ```
#[derive(Debug)]
pub struct ActivationProfiler {
    config: ProfileConfig,
    profiles: BTreeMap<String, TensorProfile>,
}

impl ActivationProfiler {
    /// Creates an empty profiler.
    pub fn new(config: ProfileConfig) -> Self {
        Self { config, profiles: BTreeMap::new() }
    }

    /// Folds a matrix of activations into the named tensor's profile.
    pub fn observe(&mut self, name: &str, activations: &Matrix) {
        self.observe_slice(name, activations.as_slice());
    }

    /// Folds raw values into the named tensor's profile.
    pub fn observe_slice(&mut self, name: &str, values: &[f32]) {
        let salt = name.bytes().fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(u64::from(b)));
        self.profiles
            .entry(name.to_owned())
            .or_insert_with(|| TensorProfile::new(&self.config, salt))
            .observe(values);
    }

    /// The profile of one tensor, if observed.
    pub fn profile(&self, name: &str) -> Option<&TensorProfile> {
        self.profiles.get(name)
    }

    /// Names of all observed tensors (sorted).
    pub fn tensor_names(&self) -> impl Iterator<Item = &str> {
        self.profiles.keys().map(String::as_str)
    }

    /// Builds dictionaries for every observed tensor.
    ///
    /// # Errors
    ///
    /// Returns the offending tensor's name alongside its [`DictError`]
    /// when any profiled tensor is degenerate.
    pub fn build_dicts(
        &self,
        curve: &ExpCurve,
        config: &TensorDictConfig,
    ) -> Result<BTreeMap<String, TensorDict>, (String, DictError)> {
        let mut scratch = DictScratch::new();
        self.profiles
            .iter()
            .map(|(name, p)| {
                p.build_dict_scratch(curve, config, &mut scratch)
                    .map(|d| (name.clone(), d))
                    .map_err(|e| (name.clone(), e))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mokey_tensor::init::GaussianMixture;

    #[test]
    fn reservoir_respects_capacity() {
        let config = ProfileConfig { reservoir: 100, seed: 1 };
        let mut p = TensorProfile::new(&config, 0);
        let values: Vec<f32> = (0..10_000).map(|i| i as f32).collect();
        p.observe(&values);
        assert_eq!(p.samples().len(), 100);
        assert_eq!(p.seen(), 10_000);
        assert_eq!(p.summary().count(), 10_000);
    }

    #[test]
    fn reservoir_is_representative() {
        // Uniform input: the reservoir mean should approximate the stream
        // mean within a few standard errors.
        let config = ProfileConfig { reservoir: 2_000, seed: 7 };
        let mut p = TensorProfile::new(&config, 0);
        let values: Vec<f32> = (0..100_000).map(|i| (i % 1000) as f32).collect();
        p.observe(&values);
        let mean: f64 =
            p.samples().iter().map(|&v| f64::from(v)).sum::<f64>() / p.samples().len() as f64;
        assert!((mean - 499.5).abs() < 30.0, "reservoir mean {mean}");
    }

    #[test]
    fn profiler_dicts_match_direct_construction_statistics() {
        let acts = GaussianMixture::activation_like(1.0, 3.0).sample_matrix(64, 256, 5);
        let mut profiler = ActivationProfiler::new(ProfileConfig::default());
        profiler.observe("t", &acts);
        let dicts = profiler.build_dicts(&ExpCurve::paper(), &Default::default()).unwrap();
        let dict = &dicts["t"];
        // Mean/std come from the full stream, so they match exactly.
        let direct =
            TensorDict::for_values(acts.as_slice(), &ExpCurve::paper(), &Default::default())
                .unwrap();
        assert!((dict.scale() - direct.scale()).abs() < 1e-9);
        assert!((dict.shift() - direct.shift()).abs() < 1e-9);
    }

    #[test]
    fn multiple_batches_accumulate() {
        let mut profiler = ActivationProfiler::new(ProfileConfig::default());
        for batch in 0..8 {
            let acts = GaussianMixture::pure(0.0, 1.0).sample_matrix(8, 64, batch);
            profiler.observe("x", &acts);
        }
        assert_eq!(profiler.profile("x").unwrap().seen(), 8 * 8 * 64);
        assert_eq!(profiler.tensor_names().count(), 1);
    }

    #[test]
    fn profiling_is_stable_across_disjoint_batches() {
        // The Fig. 8 property: dictionaries built from different random
        // batches are nearly identical because the per-layer distribution is
        // stable.
        let dist = GaussianMixture::activation_like(0.5, 2.0);
        let build = |seed: u64| {
            let mut profiler = ActivationProfiler::new(ProfileConfig::default());
            profiler.observe("x", &dist.sample_matrix(8, 4096, seed));
            profiler
                .build_dicts(&ExpCurve::paper(), &Default::default())
                .unwrap()
                .remove("x")
                .unwrap()
        };
        let d1 = build(100);
        let d2 = build(200);
        // The heavy 6x tail makes the std estimator noisy; the paper's
        // Fig. 8 point is that the *accuracy* is stable, which the
        // transformer-level test covers. Here we bound the raw statistics.
        assert!((d1.scale() - d2.scale()).abs() / d1.scale() < 0.12);
        assert!((d1.shift() - d2.shift()).abs() < 0.1 * d1.scale());
    }

    #[test]
    fn empty_profile_cannot_build_dict() {
        let p = TensorProfile::new(&ProfileConfig::default(), 0);
        let err = p.build_dict(&ExpCurve::paper(), &Default::default()).unwrap_err();
        assert_eq!(err, DictError::Empty);
    }
}
