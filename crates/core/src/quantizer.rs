//! The output-activation quantization engine (paper Fig. 7).
//!
//! "An output activation OA is compared with every centroid from both the G
//! and the OT dictionaries. Since the dictionary values are sorted … a
//! leading-one detector drives two 32-to-1 multiplexers … selecting the two
//! corresponding 16b centroids CL and CH … OA is subtracted from each … to
//! find the smaller of the two. The relative position of this centroid is
//! then encoded as a 5b index."
//!
//! [`OutputQuantizer`] models that engine functionally (sorted comparator
//! array → CL/CH select → nearest) and verifies against the software
//! encoder; it also counts comparator work for the energy model.

use crate::dict::TensorDict;
use crate::encode::{Code, QuantizedTensor};
use mokey_tensor::Matrix;

/// Hardware-faithful output quantizer for one tensor's dictionary pair.
///
/// # Example
///
/// ```
/// use mokey_core::{curve::ExpCurve, dict::TensorDict, quantizer::OutputQuantizer};
///
/// let values: Vec<f32> = (0..512).map(|i| ((i as f32) * 0.37).sin()).collect();
/// let dict = TensorDict::for_values(&values, &ExpCurve::paper(), &Default::default()).unwrap();
/// let engine = OutputQuantizer::new(dict.clone());
/// let code = engine.quantize(0.4);
/// assert_eq!(code, dict.encode_value(0.4));
/// ```
#[derive(Debug, Clone)]
pub struct OutputQuantizer {
    dict: TensorDict,
    /// Sorted signed centroids with their codes — the comparator ladder.
    ladder: Vec<(f64, Code)>,
}

impl OutputQuantizer {
    /// Builds the comparator ladder for a dictionary pair.
    pub fn new(dict: TensorDict) -> Self {
        let ladder = dict.signed_centroids();
        Self { dict, ladder }
    }

    /// The dictionary this engine encodes into.
    pub fn dict(&self) -> &TensorDict {
        &self.dict
    }

    /// Number of comparators in the ladder (32 in the paper's 16+16-entry
    /// configuration).
    pub fn comparator_count(&self) -> usize {
        self.ladder.len()
    }

    /// Quantizes one output activation, mirroring the Fig. 7 datapath:
    /// the comparator ladder yields the leading-one position, CL/CH are the
    /// straddling centroids, and the closer one wins.
    pub fn quantize(&self, oa: f32) -> Code {
        let oa = f64::from(oa);
        // Comparator outputs: centroid < OA. The leading-one position is
        // the count of centroids below OA — a binary search here.
        let pos = self.ladder.partition_point(|(c, _)| *c < oa);
        let (cl, ch) = if pos == 0 {
            (0, 0)
        } else if pos == self.ladder.len() {
            (self.ladder.len() - 1, self.ladder.len() - 1)
        } else {
            (pos - 1, pos)
        };
        let dl = (oa - self.ladder[cl].0).abs();
        let dh = (self.ladder[ch].0 - oa).abs();
        if dl <= dh {
            self.ladder[cl].1
        } else {
            self.ladder[ch].1
        }
    }

    /// Quantizes a whole output-activation matrix.
    pub fn quantize_matrix(&self, m: &Matrix) -> QuantizedTensor {
        // The engine must agree with the software encoder; delegate so the
        // result carries the dictionary, then the equivalence test below
        // keeps the two honest.
        QuantizedTensor::encode(m, &self.dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::ExpCurve;
    use mokey_tensor::init::GaussianMixture;

    fn engine() -> OutputQuantizer {
        let vals = GaussianMixture::activation_like(0.2, 1.5).sample_matrix(64, 64, 77);
        let dict = TensorDict::for_values(vals.as_slice(), &ExpCurve::paper(), &Default::default())
            .unwrap();
        OutputQuantizer::new(dict)
    }

    #[test]
    fn hardware_path_matches_software_encoder() {
        let e = engine();
        let probe = GaussianMixture::activation_like(0.2, 1.5).sample_matrix(32, 32, 78);
        for &v in probe.as_slice() {
            assert_eq!(e.quantize(v), e.dict().encode_value(v), "divergence at value {v}");
        }
    }

    #[test]
    fn extreme_values_clamp_to_ladder_ends() {
        let e = engine();
        let lo = e.quantize(-1e9);
        let hi = e.quantize(1e9);
        assert!(lo.is_negative());
        assert!(!hi.is_negative());
        assert!(lo.is_outlier() && hi.is_outlier());
    }

    #[test]
    fn ladder_is_sorted_and_sized() {
        let e = engine();
        assert!(e.comparator_count() <= 32);
        assert!(e.comparator_count() >= 16);
    }

    #[test]
    fn quantize_matrix_equals_encode() {
        let e = engine();
        let m = GaussianMixture::activation_like(0.2, 1.5).sample_matrix(8, 8, 79);
        let via_engine = e.quantize_matrix(&m);
        let via_encode = QuantizedTensor::encode(&m, e.dict());
        assert_eq!(via_engine, via_encode);
    }

    #[test]
    fn quantize_centroid_is_identity() {
        let e = engine();
        for (value, code) in e.dict().signed_centroids() {
            assert_eq!(e.quantize(value as f32), code, "centroid {value} did not map to itself");
        }
    }
}
