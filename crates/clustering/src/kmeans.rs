//! Lloyd's k-means with k-means++ seeding, for the GOBO baseline.
//!
//! GOBO (MICRO 2020) selects its weight-dictionary centroids with an
//! iterative method "similar to k-means"; Table IV of the Mokey paper
//! compares against it, so the baseline crate needs a faithful k-means.

use crate::Clustering;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of centroids.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self { k: 8, max_iters: 50, seed: 0 }
    }
}

/// 1-D k-means clustering with k-means++ seeding.
///
/// Values are sorted once; assignment uses the sorted-centroid midpoints, so
/// each Lloyd iteration is `O(n)` after an `O(n log n)` setup.
///
/// # Panics
///
/// Panics if `config.k == 0`, `values` is empty, `config.k > values.len()`,
/// or any value is NaN.
///
/// # Example
///
/// ```
/// use mokey_clustering::{kmeans, KMeansConfig};
///
/// let c = kmeans(&[0.0, 0.1, 7.0, 7.1], KMeansConfig { k: 2, ..Default::default() });
/// assert!((c.centroids()[0] - 0.05).abs() < 1e-9);
/// assert!((c.centroids()[1] - 7.05).abs() < 1e-9);
/// ```
pub fn kmeans(values: &[f64], config: KMeansConfig) -> Clustering {
    assert!(config.k > 0, "k must be positive");
    assert!(!values.is_empty(), "cannot cluster zero values");
    assert!(config.k <= values.len(), "k = {} exceeds sample count {}", config.k, values.len());
    assert!(values.iter().all(|v| !v.is_nan()), "NaN values cannot be clustered");

    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN checked above"));

    let mut centroids = plus_plus_seed(&sorted, config.k, config.seed);
    centroids.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    let mut sizes = vec![0usize; centroids.len()];
    for _ in 0..config.max_iters {
        // Assignment boundaries are midpoints of adjacent centroids.
        let mut sums = vec![0.0f64; centroids.len()];
        sizes.iter_mut().for_each(|s| *s = 0);
        let mut ci = 0;
        for &v in &sorted {
            while ci + 1 < centroids.len() && v > (centroids[ci] + centroids[ci + 1]) / 2.0 {
                ci += 1;
            }
            sums[ci] += v;
            sizes[ci] += 1;
        }
        let mut moved = 0.0f64;
        for i in 0..centroids.len() {
            if sizes[i] > 0 {
                let next = sums[i] / sizes[i] as f64;
                moved += (next - centroids[i]).abs();
                centroids[i] = next;
            }
        }
        // Reset cursor effect: centroids stay sorted because assignment
        // regions are ordered; drop empty clusters at convergence below.
        if moved < 1e-12 {
            break;
        }
    }

    // Remove empty clusters (possible when duplicates dominate).
    let mut final_centroids = Vec::with_capacity(centroids.len());
    let mut final_sizes = Vec::with_capacity(centroids.len());
    for (c, s) in centroids.into_iter().zip(sizes) {
        if s > 0 {
            final_centroids.push(c);
            final_sizes.push(s);
        }
    }
    Clustering::new(final_centroids, final_sizes)
}

/// k-means++ seeding: first centroid uniform, subsequent ones sampled with
/// probability proportional to squared distance from the nearest chosen one.
fn plus_plus_seed(sorted: &[f64], k: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids = Vec::with_capacity(k);
    centroids.push(sorted[rng.gen_range(0..sorted.len())]);
    let mut d2: Vec<f64> =
        sorted.iter().map(|&v| (v - centroids[0]) * (v - centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining distances zero (duplicates); pick any unseen
            // value to avoid dividing by zero.
            sorted[rng.gen_range(0..sorted.len())]
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = sorted[sorted.len() - 1];
            for (i, &v) in sorted.iter().enumerate() {
                target -= d2[i];
                if target <= 0.0 {
                    chosen = v;
                    break;
                }
            }
            chosen
        };
        centroids.push(next);
        for (i, &v) in sorted.iter().enumerate() {
            let d = (v - next) * (v - next);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rand_distr::{Distribution, Normal};

    #[test]
    fn recovers_well_separated_clusters() {
        let values = [0.0, 0.1, 0.2, 50.0, 50.1, 50.2];
        let c = kmeans(&values, KMeansConfig { k: 2, max_iters: 100, seed: 1 });
        assert_eq!(c.len(), 2);
        assert!((c.centroids()[0] - 0.1).abs() < 1e-9);
        assert!((c.centroids()[1] - 50.1).abs() < 1e-9);
    }

    #[test]
    fn sse_not_worse_than_uniform_grid() {
        let mut rng = StdRng::seed_from_u64(5);
        let normal = Normal::new(0.0, 1.0).unwrap();
        let values: Vec<f64> = (0..4000).map(|_| normal.sample(&mut rng)).collect();
        let c = kmeans(&values, KMeansConfig { k: 16, max_iters: 100, seed: 2 });
        // A uniform 16-point grid over the sample range as a weak baseline.
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let grid: Vec<f64> = (0..16).map(|i| lo + (hi - lo) * (i as f64 + 0.5) / 16.0).collect();
        let grid_c = Clustering::new(grid, vec![1; 16]);
        assert!(c.sse(&values) < grid_c.sse(&values));
    }

    #[test]
    fn deterministic_per_seed() {
        let values: Vec<f64> = (0..100).map(|i| ((i * 37) % 101) as f64).collect();
        let a = kmeans(&values, KMeansConfig { k: 5, max_iters: 50, seed: 9 });
        let b = kmeans(&values, KMeansConfig { k: 5, max_iters: 50, seed: 9 });
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_heavy_input_does_not_crash() {
        let values = vec![1.0; 50];
        let c = kmeans(&values, KMeansConfig { k: 3, max_iters: 10, seed: 0 });
        assert!(!c.is_empty());
        assert_eq!(c.quantize(1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "exceeds sample count")]
    fn k_larger_than_n_panics() {
        let _ = kmeans(&[1.0], KMeansConfig { k: 2, ..Default::default() });
    }
}
