//! Ward-linkage agglomerative clustering.
//!
//! The paper (Section II-B): "The core of Mokey's dictionary generation
//! method is Agglomerative Clustering (AC), a bottom-up approach which
//! initially considers each value as a separate cluster and that proceeds to
//! iteratively merge the closest clusters … In contrast to K-means … is not
//! affected by the initial cluster selection and results in higher accuracy
//! in the quantized model."
//!
//! Ward's criterion merges the pair whose union least increases the total
//! within-cluster sum of squares; for clusters `(n₁, μ₁)` and `(n₂, μ₂)` the
//! increase is `n₁·n₂/(n₁+n₂) · (μ₁−μ₂)²`.

use crate::Clustering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One active cluster in the contiguous merge list.
#[derive(Debug, Clone, Copy)]
struct Node {
    count: f64,
    mean: f64,
    /// Index of the previous active cluster, or `usize::MAX`.
    prev: usize,
    /// Index of the next active cluster, or `usize::MAX`.
    next: usize,
    /// Bumped on every merge so stale heap entries can be discarded.
    generation: u64,
    alive: bool,
}

/// Ward's merge cost between two clusters.
fn ward_cost(a: &Node, b: &Node) -> f64 {
    let d = a.mean - b.mean;
    a.count * b.count / (a.count + b.count) * d * d
}

/// A heap entry proposing to merge cluster `left` with its successor.
#[derive(Debug, PartialEq)]
struct Candidate {
    cost: f64,
    left: usize,
    left_gen: u64,
    right: usize,
    right_gen: u64,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cost.partial_cmp(&other.cost).expect("NaN merge cost").then(self.left.cmp(&other.left))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Ward-linkage agglomerative clustering of scalar values down to `k`
/// clusters, `O(n log n)` via sorted contiguity.
///
/// In one dimension Ward clusters form contiguous intervals of the sorted
/// input, so only adjacent merges need be considered; a lazy binary heap
/// orders them by Ward cost. This reproduces scikit-learn's result on the
/// bell-shaped inputs the Golden Dictionary uses (see the cross-check test
/// against [`naive_agglomerative`]).
///
/// # Panics
///
/// Panics if `k == 0`, `values` is empty, `k > values.len()`, or any value
/// is NaN.
///
/// # Example
///
/// ```
/// use mokey_clustering::ward_agglomerative;
///
/// let c = ward_agglomerative(&[1.0, 1.1, 4.0, 4.1, 9.0], 3);
/// assert_eq!(c.sizes(), &[2, 2, 1]);
/// ```
pub fn ward_agglomerative(values: &[f64], k: usize) -> Clustering {
    assert!(k > 0, "k must be positive");
    assert!(!values.is_empty(), "cannot cluster zero values");
    assert!(k <= values.len(), "k = {k} exceeds sample count {}", values.len());
    assert!(values.iter().all(|v| !v.is_nan()), "NaN values cannot be clustered");

    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN checked above"));

    // Pre-aggregate exact duplicates so the node list stays small on
    // heavily quantized inputs.
    let mut nodes: Vec<Node> = Vec::with_capacity(sorted.len());
    for &v in &sorted {
        match nodes.last_mut() {
            Some(last) if last.mean == v => last.count += 1.0,
            _ => nodes.push(Node {
                count: 1.0,
                mean: v,
                prev: usize::MAX,
                next: usize::MAX,
                generation: 0,
                alive: true,
            }),
        }
    }
    let distinct = nodes.len();
    for (i, node) in nodes.iter_mut().enumerate() {
        node.prev = if i == 0 { usize::MAX } else { i - 1 };
        node.next = if i + 1 == distinct { usize::MAX } else { i + 1 };
    }

    let mut active = distinct;
    let mut heap: BinaryHeap<Reverse<Candidate>> = BinaryHeap::new();
    for i in 0..distinct.saturating_sub(1) {
        heap.push(Reverse(Candidate {
            cost: ward_cost(&nodes[i], &nodes[i + 1]),
            left: i,
            left_gen: 0,
            right: i + 1,
            right_gen: 0,
        }));
    }

    while active > k.min(distinct) {
        let Reverse(cand) = heap.pop().expect("heap exhausted before reaching k clusters");
        let (l, r) = (cand.left, cand.right);
        if !nodes[l].alive
            || !nodes[r].alive
            || nodes[l].generation != cand.left_gen
            || nodes[r].generation != cand.right_gen
            || nodes[l].next != r
        {
            continue; // stale entry
        }
        // Merge r into l.
        let total = nodes[l].count + nodes[r].count;
        nodes[l].mean = (nodes[l].mean * nodes[l].count + nodes[r].mean * nodes[r].count) / total;
        nodes[l].count = total;
        nodes[l].generation += 1;
        nodes[r].alive = false;
        let rn = nodes[r].next;
        nodes[l].next = rn;
        if rn != usize::MAX {
            nodes[rn].prev = l;
        }
        active -= 1;

        // Refresh candidates with both neighbours.
        let lp = nodes[l].prev;
        if lp != usize::MAX {
            heap.push(Reverse(Candidate {
                cost: ward_cost(&nodes[lp], &nodes[l]),
                left: lp,
                left_gen: nodes[lp].generation,
                right: l,
                right_gen: nodes[l].generation,
            }));
        }
        if rn != usize::MAX {
            heap.push(Reverse(Candidate {
                cost: ward_cost(&nodes[l], &nodes[rn]),
                left: l,
                left_gen: nodes[l].generation,
                right: rn,
                right_gen: nodes[rn].generation,
            }));
        }
    }

    let mut centroids = Vec::with_capacity(active);
    let mut sizes = Vec::with_capacity(active);
    let mut cursor = (0..distinct).find(|&i| nodes[i].alive && nodes[i].prev == usize::MAX);
    // After merges the first alive node is the one with prev == MAX; walk
    // the list. (Fallback scan keeps us safe if duplicates collapsed.)
    if cursor.is_none() {
        cursor = (0..distinct).find(|&i| nodes[i].alive);
    }
    let mut at = cursor.expect("at least one cluster must survive");
    loop {
        centroids.push(nodes[at].mean);
        sizes.push(nodes[at].count as usize);
        if nodes[at].next == usize::MAX {
            break;
        }
        at = nodes[at].next;
    }
    Clustering::new(centroids, sizes)
}

/// Textbook unconstrained agglomerative clustering (Ward linkage), `O(n³)`.
///
/// Kept as the reference oracle: the paper itself notes AC "requires `O(n²)`
/// memory and `O(n³)` runtime", which is exactly why Mokey runs it once on a
/// representative distribution instead of per tensor.
///
/// # Panics
///
/// Same contract as [`ward_agglomerative`].
pub fn naive_agglomerative(values: &[f64], k: usize) -> Clustering {
    assert!(k > 0, "k must be positive");
    assert!(!values.is_empty(), "cannot cluster zero values");
    assert!(k <= values.len(), "k = {k} exceeds sample count {}", values.len());
    assert!(values.iter().all(|v| !v.is_nan()), "NaN values cannot be clustered");

    #[derive(Clone)]
    struct C {
        count: f64,
        mean: f64,
    }
    let mut clusters: Vec<C> = values.iter().map(|&v| C { count: 1.0, mean: v }).collect();
    while clusters.len() > k {
        let mut best = (f64::INFINITY, 0, 1);
        for i in 0..clusters.len() {
            for j in i + 1..clusters.len() {
                let d = clusters[i].mean - clusters[j].mean;
                let cost = clusters[i].count * clusters[j].count
                    / (clusters[i].count + clusters[j].count)
                    * d
                    * d;
                if cost < best.0 {
                    best = (cost, i, j);
                }
            }
        }
        let (_, i, j) = best;
        let total = clusters[i].count + clusters[j].count;
        clusters[i].mean =
            (clusters[i].mean * clusters[i].count + clusters[j].mean * clusters[j].count) / total;
        clusters[i].count = total;
        clusters.remove(j);
    }
    clusters.sort_by(|a, b| a.mean.partial_cmp(&b.mean).expect("NaN mean"));
    Clustering::new(
        clusters.iter().map(|c| c.mean).collect(),
        clusters.iter().map(|c| c.count as usize).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rand_distr::{Distribution, Normal};

    #[test]
    fn separates_obvious_groups() {
        let values = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2, 20.0];
        let c = ward_agglomerative(&values, 3);
        assert_eq!(c.sizes(), &[3, 3, 1]);
        assert!((c.centroids()[0] - 0.1).abs() < 1e-9);
        assert!((c.centroids()[1] - 10.1).abs() < 1e-9);
        assert_eq!(c.centroids()[2], 20.0);
    }

    #[test]
    fn k_equals_n_returns_singletons() {
        let values = [3.0, 1.0, 2.0];
        let c = ward_agglomerative(&values, 3);
        assert_eq!(c.centroids(), &[1.0, 2.0, 3.0]);
        assert_eq!(c.sizes(), &[1, 1, 1]);
    }

    #[test]
    fn k_one_returns_global_mean() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let c = ward_agglomerative(&values, 1);
        assert_eq!(c.len(), 1);
        assert!((c.centroids()[0] - 2.5).abs() < 1e-12);
        assert_eq!(c.sizes(), &[4]);
    }

    #[test]
    fn duplicates_are_preaggregated_correctly() {
        let values = [1.0, 1.0, 1.0, 5.0, 5.0];
        let c = ward_agglomerative(&values, 2);
        assert_eq!(c.centroids(), &[1.0, 5.0]);
        assert_eq!(c.sizes(), &[3, 2]);
        assert_eq!(c.total_size(), 5);
    }

    #[test]
    fn fewer_distinct_values_than_k_collapses() {
        // 2 distinct values but k = 4: we can only produce 2 clusters.
        let values = [1.0, 1.0, 2.0, 2.0];
        let c = ward_agglomerative(&values, 4);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn matches_naive_on_random_gaussians() {
        let mut rng = StdRng::seed_from_u64(11);
        let normal = Normal::new(0.0, 1.0).unwrap();
        for trial in 0..5 {
            let values: Vec<f64> = (0..120).map(|_| normal.sample(&mut rng)).collect();
            let fast = ward_agglomerative(&values, 8);
            let slow = naive_agglomerative(&values, 8);
            assert_eq!(fast.len(), slow.len(), "trial {trial}");
            for (f, s) in fast.centroids().iter().zip(slow.centroids()) {
                assert!(
                    (f - s).abs() < 1e-6,
                    "trial {trial}: centroid mismatch {f} vs {s} (fast {:?} slow {:?})",
                    fast.centroids(),
                    slow.centroids()
                );
            }
            assert_eq!(fast.sizes(), slow.sizes(), "trial {trial}");
        }
    }

    #[test]
    fn mass_is_preserved() {
        let mut rng = StdRng::seed_from_u64(3);
        let normal = Normal::new(2.0, 3.0).unwrap();
        let values: Vec<f64> = (0..5000).map(|_| normal.sample(&mut rng)).collect();
        let c = ward_agglomerative(&values, 16);
        assert_eq!(c.total_size(), values.len());
        // Weighted centroid mean equals the sample mean.
        let weighted: f64 =
            c.centroids().iter().zip(c.sizes()).map(|(&m, &n)| m * n as f64).sum::<f64>()
                / values.len() as f64;
        let sample_mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((weighted - sample_mean).abs() < 1e-9);
    }

    #[test]
    fn handles_large_inputs_quickly() {
        let mut rng = StdRng::seed_from_u64(42);
        let normal = Normal::new(0.0, 1.0).unwrap();
        let values: Vec<f64> = (0..50_000).map(|_| normal.sample(&mut rng)).collect();
        let c = ward_agglomerative(&values, 16);
        assert_eq!(c.len(), 16);
        // Centroids of a symmetric distribution should straddle zero.
        assert!(c.centroids()[0] < 0.0 && c.centroids()[15] > 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = ward_agglomerative(&[1.0], 0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_values_panic() {
        let _ = ward_agglomerative(&[1.0, f64::NAN], 1);
    }
}
