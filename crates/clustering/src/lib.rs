//! 1-D clustering for dictionary-based quantization.
//!
//! The Mokey paper builds its Golden Dictionary by running **agglomerative
//! clustering** (Ward linkage, as in scikit-learn's default) over 50,000
//! samples of `N(0,1)` (Section II-B). It explicitly contrasts this with the
//! **k-means**-style iterative centroid selection used by GOBO and Deep
//! Compression, which this crate also provides for the baseline comparisons
//! of Table IV.
//!
//! All data here is one-dimensional (scalar tensor values). That makes two
//! implementations practical:
//!
//! * [`ward_agglomerative`] — heap-based, contiguity-constrained Ward
//!   merging over sorted values, `O(n log n)`. In 1-D, Ward clusters are
//!   contiguous intervals, so this matches the unconstrained algorithm on
//!   the distributions the paper uses (cross-checked in tests against
//!   [`naive_agglomerative`]).
//! * [`naive_agglomerative`] — the textbook `O(n³)` unconstrained algorithm,
//!   kept as a reference oracle for tests and tiny inputs.
//! * [`kmeans`] — Lloyd's algorithm with k-means++ seeding.
//!
//! # Example
//!
//! ```
//! use mokey_clustering::ward_agglomerative;
//!
//! let values = [0.0, 0.1, 0.2, 5.0, 5.1, 5.2];
//! let c = ward_agglomerative(&values, 2);
//! assert_eq!(c.len(), 2);
//! assert!((c.centroids()[0] - 0.1).abs() < 1e-9);
//! assert!((c.centroids()[1] - 5.1).abs() < 1e-9);
//! ```

mod agglomerative;
mod kmeans;

pub use agglomerative::{naive_agglomerative, ward_agglomerative};
pub use kmeans::{kmeans, KMeansConfig};

use serde::{Deserialize, Serialize};

/// The result of clustering scalar values: sorted centroids with the member
/// count of each cluster.
///
/// # Example
///
/// ```
/// use mokey_clustering::ward_agglomerative;
///
/// let c = ward_agglomerative(&[1.0, 2.0, 10.0], 2);
/// assert_eq!(c.sizes(), &[2, 1]);
/// assert_eq!(c.assign(9.0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    centroids: Vec<f64>,
    sizes: Vec<usize>,
}

impl Clustering {
    /// Builds a clustering from parallel centroid/size arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays differ in length, are empty, or the centroids
    /// are not sorted ascending.
    pub fn new(centroids: Vec<f64>, sizes: Vec<usize>) -> Self {
        assert_eq!(centroids.len(), sizes.len(), "centroid/size length mismatch");
        assert!(!centroids.is_empty(), "clustering must have at least one cluster");
        assert!(centroids.windows(2).all(|w| w[0] <= w[1]), "centroids must be sorted ascending");
        Self { centroids, sizes }
    }

    /// Cluster centroids, sorted ascending.
    pub fn centroids(&self) -> &[f64] {
        &self.centroids
    }

    /// Member count per cluster, parallel to [`Clustering::centroids`].
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.centroids.len()
    }

    /// `true` when there are no clusters (never constructed by this crate's
    /// algorithms, but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.centroids.is_empty()
    }

    /// Index of the nearest centroid (ties resolve to the lower index).
    pub fn assign(&self, value: f64) -> usize {
        // Binary search over sorted centroids, then compare neighbours.
        match self.centroids.binary_search_by(|c| c.partial_cmp(&value).expect("NaN centroid")) {
            Ok(i) => i,
            Err(i) => {
                if i == 0 {
                    0
                } else if i == self.centroids.len() {
                    self.centroids.len() - 1
                } else if (value - self.centroids[i - 1]) <= (self.centroids[i] - value) {
                    i - 1
                } else {
                    i
                }
            }
        }
    }

    /// Quantizes a value to its nearest centroid.
    pub fn quantize(&self, value: f64) -> f64 {
        self.centroids[self.assign(value)]
    }

    /// Sum of squared distances from each value to its assigned centroid.
    pub fn sse(&self, values: &[f64]) -> f64 {
        values.iter().map(|&v| (v - self.quantize(v)).powi(2)).sum()
    }

    /// Total member count across clusters.
    pub fn total_size(&self) -> usize {
        self.sizes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_picks_nearest_with_lower_tie() {
        let c = Clustering::new(vec![0.0, 1.0, 4.0], vec![1, 1, 1]);
        assert_eq!(c.assign(-5.0), 0);
        assert_eq!(c.assign(0.4), 0);
        assert_eq!(c.assign(0.5), 0); // tie -> lower index
        assert_eq!(c.assign(0.6), 1);
        assert_eq!(c.assign(3.0), 2);
        assert_eq!(c.assign(100.0), 2);
    }

    #[test]
    fn quantize_returns_centroid_values() {
        let c = Clustering::new(vec![-1.0, 2.0], vec![3, 4]);
        assert_eq!(c.quantize(-0.1), -1.0);
        assert_eq!(c.quantize(1.9), 2.0);
        assert_eq!(c.total_size(), 7);
    }

    #[test]
    fn sse_zero_when_values_on_centroids() {
        let c = Clustering::new(vec![1.0, 5.0], vec![1, 1]);
        assert_eq!(c.sse(&[1.0, 5.0, 5.0]), 0.0);
        assert!(c.sse(&[1.5]) > 0.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_centroids_panic() {
        let _ = Clustering::new(vec![2.0, 1.0], vec![1, 1]);
    }
}
