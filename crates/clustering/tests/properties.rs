//! Property-based tests for the clustering substrate.

use mokey_clustering::{kmeans, naive_agglomerative, ward_agglomerative, KMeansConfig};
use proptest::prelude::*;

fn values_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 2..max_len)
}

proptest! {
    /// Structural invariants of Ward clustering.
    #[test]
    fn ward_invariants(values in values_strategy(300), k in 1usize..12) {
        let k = k.min(values.len());
        let c = ward_agglomerative(&values, k);
        // No more clusters than requested; every member accounted for.
        prop_assert!(c.len() <= k);
        prop_assert_eq!(c.total_size(), values.len());
        // Centroids sorted and inside the data range.
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for w in c.centroids().windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        for &m in c.centroids() {
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
        // Mass-weighted centroid mean equals sample mean.
        let weighted: f64 = c.centroids().iter().zip(c.sizes())
            .map(|(&m, &n)| m * n as f64).sum::<f64>() / values.len() as f64;
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((weighted - mean).abs() < 1e-6);
    }

    /// More clusters never increase quantization SSE.
    #[test]
    fn ward_sse_monotone_in_k(values in values_strategy(200)) {
        let k_max = 8usize.min(values.len());
        let mut last = f64::INFINITY;
        for k in 1..=k_max {
            let sse = ward_agglomerative(&values, k).sse(&values);
            prop_assert!(sse <= last + 1e-6, "sse grew from {last} to {sse} at k={k}");
            last = sse;
        }
    }

    /// Heap-based contiguous Ward matches the textbook O(n^3) algorithm on
    /// small inputs.
    #[test]
    fn ward_matches_naive(values in values_strategy(60), k in 1usize..6) {
        let k = k.min(values.len());
        let fast = ward_agglomerative(&values, k);
        let slow = naive_agglomerative(&values, k);
        // The two may legitimately differ when a non-adjacent merge ties an
        // adjacent one; compare quantization quality instead of structure.
        let fast_sse = fast.sse(&values);
        let slow_sse = slow.sse(&values);
        prop_assert!(
            fast_sse <= slow_sse * 1.05 + 1e-9,
            "contiguous Ward lost badly: {fast_sse} vs naive {slow_sse}"
        );
    }

    /// K-means invariants.
    #[test]
    fn kmeans_invariants(values in values_strategy(300), k in 1usize..12, seed in 0u64..5) {
        let k = k.min(values.len());
        let c = kmeans(&values, KMeansConfig { k, max_iters: 60, seed });
        prop_assert!(c.len() <= k);
        prop_assert_eq!(c.total_size(), values.len());
        for w in c.centroids().windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// Assignment is consistent: a value quantizes to the centroid it is
    /// nearest to.
    #[test]
    fn assignment_is_nearest(values in values_strategy(150), probe in -150.0f64..150.0) {
        let c = ward_agglomerative(&values, 4.min(values.len()));
        let assigned = c.quantize(probe);
        for &m in c.centroids() {
            prop_assert!((probe - assigned).abs() <= (probe - m).abs() + 1e-9);
        }
    }
}
