//! Transformer-encoder inference substrate for the Mokey reproduction.
//!
//! The paper evaluates Mokey on pre-trained Hugging Face checkpoints
//! (BERT-Base/Large, RoBERTa-Large, DeBERTa-XL) over GLUE/SQuAD tasks.
//! Neither the checkpoints nor the datasets are reproducible inputs for
//! this repository, so — per the `DESIGN.md` substitution table — this
//! crate provides:
//!
//! * [`config`] — the model zoo *shapes* (faithful layer/hidden/head/FFN
//!   dimensions; these drive the footprint and accelerator experiments).
//! * [`model`] — a complete encoder-stack inference engine (multi-head
//!   attention, GELU FFN, layer norm, pooler/task heads) over synthetic
//!   seeded weights whose distributions match what Mokey exploits.
//! * [`exec`] — execution hooks: FP32 reference, activation profiling, and
//!   fully quantized execution (weights decoded to centroids, activations
//!   quantized at every GEMM input, outputs snapped to the per-tensor
//!   16-bit fixed-point grid of paper Eq. 7/8).
//! * [`quantize`] — the end-to-end Mokey pipeline: profile → build
//!   dictionaries → quantize → run.
//! * [`decode`] / [`kv`] — autoregressive greedy decode: prefill through
//!   the shared forward pass, then per-token incremental attention over a
//!   quantized KV-cache ([`kv::KvCache`]) that stores K/V rows as 5-bit
//!   codes and rematerializes them bit-exactly at attention time.
//! * [`tasks`] — synthetic MNLI/STS-B/SQuAD-style tasks whose FP operating
//!   point is calibrated to the paper's reported scores, plus the metrics
//!   (accuracy, Spearman, span-F1) used by Table I.
//! * [`footprint`] — the Fig. 1 weight/activation memory accounting.
//! * [`workload`] — GEMM shape extraction for the accelerator simulator.

pub mod config;
pub mod decode;
pub mod exec;
pub mod footprint;
pub mod kv;
pub mod model;
pub mod packed;
pub mod quantize;
pub mod tasks;
pub mod workload;

pub use config::ModelConfig;
pub use decode::{generate, generate_reference, DecodeSession, GenerateResult};
pub use exec::{BatchRun, ExecMode, LutLinear, QuantizedContext, QuantizedExecutor};
pub use kv::KvCache;
pub use model::{Head, Model, TaskOutput};
pub use packed::{PackedBatch, PackedLayout};
pub use quantize::{QuantizeSpec, QuantizedModel};
