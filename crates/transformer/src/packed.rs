//! Packing a batch of sequences into one tall activation matrix.
//!
//! Tensor-level batching stacks `B` sequences (padded to the longest
//! length `S`) into a single `(B·S) × hidden` matrix so every projection
//! and FFN GEMM in an encoder layer runs **once per batch** instead of
//! once per sequence. Three facts make the packed forward pass
//! bit-identical to solo execution:
//!
//! 1. every GEMM kernel computes output row `i` from input row `i` alone
//!    (`mokey_tensor` pins this), and every non-GEMM operator
//!    (layer norm, GELU, softmax, bias) is row-wise;
//! 2. attention is isolated per sequence: scores are computed on each
//!    sequence's row block, padded **key** positions are driven to `−∞`
//!    before `softmax_rows` (masked probabilities come out exactly
//!    `0.0`, and the GEMM kernels skip zero coefficients, so padded
//!    value rows contribute nothing);
//! 3. executor hooks receive a [`PackedLayout`] mapping each matrix
//!    region to its request, so quantized activation encoding touches
//!    exactly the elements a solo run would touch — padded rows are
//!    passed through raw and per-request counters stay exact.
//!
//! Padded *query* rows do flow through the arithmetic (they attend over
//! real keys and produce well-defined garbage), but nothing reads them:
//! they are skipped at unpack, never encoded, and never feed a real row.

use mokey_tensor::{dot_wide, Matrix};

/// Shape bookkeeping for one packed batch: per-request true lengths plus
/// the common padded length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedBatch {
    lens: Vec<usize>,
    seq: usize,
}

impl PackedBatch {
    /// Plans the packing of `batch` (padded to the longest sequence).
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or contains an empty sequence —
    /// callers route degenerate requests through the solo path.
    pub fn new<T: AsRef<[usize]>>(batch: &[T]) -> Self {
        assert!(!batch.is_empty(), "cannot pack an empty batch");
        let lens: Vec<usize> = batch.iter().map(|t| t.as_ref().len()).collect();
        assert!(lens.iter().all(|&l| l > 0), "cannot pack an empty sequence");
        let seq = lens.iter().copied().max().unwrap_or(0);
        Self { lens, seq }
    }

    /// Number of requests in the pack.
    pub fn requests(&self) -> usize {
        self.lens.len()
    }

    /// The padded per-sequence length (longest request).
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// True token length of request `i`.
    pub fn len_of(&self, i: usize) -> usize {
        self.lens[i]
    }

    /// Row offset of request `i` inside a packed `(B·S) × _` matrix.
    pub fn row_of(&self, i: usize) -> usize {
        i * self.seq
    }

    /// Total rows of a packed activation matrix (`B · S`).
    pub fn total_rows(&self) -> usize {
        self.lens.len() * self.seq
    }

    /// Rows carrying real tokens (`Σ lens`).
    pub fn valid_rows(&self) -> usize {
        self.lens.iter().sum()
    }

    /// Padding rows (`total − valid`) — the waste the serving metrics
    /// report.
    pub fn pad_rows(&self) -> usize {
        self.total_rows() - self.valid_rows()
    }

    /// `true` when every request has the padded length (no waste).
    pub fn is_uniform(&self) -> bool {
        self.lens.iter().all(|&l| l == self.seq)
    }

    /// Layout of a standard packed activation matrix (`(B·S) × width`):
    /// request `i` owns the valid prefix of its row block, full width.
    pub fn rows_layout(&self) -> PackedLayout {
        PackedLayout {
            regions: self
                .lens
                .iter()
                .enumerate()
                .map(|(i, &len)| Region { row_blocks: vec![(i * self.seq, len)], cols: None })
                .collect(),
        }
    }

    /// Layout of the packed attention-probability matrix
    /// (`(B·heads·S) × S`, request-major then head-major): request `i`
    /// owns `heads` blocks of its true length, and only its first
    /// `len` columns are real probabilities (the rest are masked zeros,
    /// which must stay exactly `0.0`).
    pub fn probs_layout(&self, heads: usize) -> PackedLayout {
        PackedLayout {
            regions: self
                .lens
                .iter()
                .enumerate()
                .map(|(i, &len)| Region {
                    row_blocks: (0..heads).map(|hd| ((i * heads + hd) * self.seq, len)).collect(),
                    cols: Some(len),
                })
                .collect(),
        }
    }

    /// Layout of a per-request-row matrix (`B × width`), e.g. the gathered
    /// CLS rows feeding the classification head.
    pub fn cls_layout(&self) -> PackedLayout {
        PackedLayout {
            regions: (0..self.lens.len())
                .map(|i| Region { row_blocks: vec![(i, 1)], cols: None })
                .collect(),
        }
    }
}

/// Maps the regions of one packed matrix to the requests that own them,
/// so executor hooks can attribute work per request and skip padding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedLayout {
    /// One region per request, in batch order.
    pub regions: Vec<Region>,
}

/// The part of a packed matrix owned by one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// `(start_row, row_count)` blocks — already trimmed to valid rows.
    pub row_blocks: Vec<(usize, usize)>,
    /// Valid column prefix, or `None` for the full width.
    pub cols: Option<usize>,
}

/// Fused block-diagonal `Q·K^T` over a packed batch: one region-strided
/// pass producing the scaled, padding-masked score matrix
/// (`(B·heads·S) × S`, request-major then head-major) directly from the
/// packed `(B·S) × hidden` query/key buffers.
///
/// Each element is `dot_wide(q_slice, k_slice) * scale` on the exact head
/// slices a per-sequence `slice_block` + `matmul_transposed` + `scale`
/// would feed it — [`dot_wide`] is a pure function of its operand slices,
/// so the fused pass is bit-identical to the per-sequence path while
/// skipping every intermediate copy. Padded key columns (`c ≥ len`) are
/// written as `−∞` so the caller's softmax turns them into exact `0.0`;
/// padded *query* rows are still computed (deterministic garbage nothing
/// reads back), matching the per-sequence path.
pub fn fused_attention_scores(
    q: &Matrix,
    k: &Matrix,
    pack: &PackedBatch,
    heads: usize,
    dh: usize,
    scale: f32,
) -> Matrix {
    let s = pack.seq();
    let nb = pack.requests();
    let mut scores = Matrix::zeros(nb * heads * s, s);
    for bi in 0..nb {
        let len = pack.len_of(bi);
        let base = pack.row_of(bi);
        for hd in 0..heads {
            let c0 = hd * dh;
            let probs_base = (bi * heads + hd) * s;
            for r in 0..s {
                let q_slice = &q.row(base + r)[c0..c0 + dh];
                let out_row = scores.row_mut(probs_base + r);
                for (c, o) in out_row[..len].iter_mut().enumerate() {
                    *o = dot_wide(q_slice, &k.row(base + c)[c0..c0 + dh]) * scale;
                }
                for o in &mut out_row[len..] {
                    *o = f32::NEG_INFINITY;
                }
            }
        }
    }
    scores
}

/// Fused block-diagonal `P·V` over a packed batch: one region-strided
/// pass accumulating every head's context slice straight into the packed
/// `(B·S) × hidden` output, from the post-softmax probability matrix laid
/// out by [`PackedBatch::probs_layout`].
///
/// Per output element the accumulation is ascending over the key
/// positions with exactly one addition per non-zero probability — the
/// same per-element reduction as the per-sequence `matmul` against a
/// `slice_block` copy of `V`, so outputs are bit-identical. Masked
/// probabilities are exactly `0.0` and are skipped, so padded value rows
/// contribute nothing, exactly as the zero-skipping GEMM kernels behave.
pub fn fused_attention_context(
    probs: &Matrix,
    v: &Matrix,
    pack: &PackedBatch,
    heads: usize,
    dh: usize,
    hidden: usize,
) -> Matrix {
    let s = pack.seq();
    let nb = pack.requests();
    let mut context = Matrix::zeros(nb * s, hidden);
    for bi in 0..nb {
        let base = pack.row_of(bi);
        for hd in 0..heads {
            let c0 = hd * dh;
            let probs_base = (bi * heads + hd) * s;
            for r in 0..s {
                let out = &mut context.row_mut(base + r)[c0..c0 + dh];
                for kk in 0..s {
                    let pv = probs[(probs_base + r, kk)];
                    if pv == 0.0 {
                        continue;
                    }
                    let v_slice = &v.row(base + kk)[c0..c0 + dh];
                    for (o, &vv) in out.iter_mut().zip(v_slice) {
                        *o += pv * vv;
                    }
                }
            }
        }
    }
    context
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_shape_accounting() {
        let pack = PackedBatch::new(&[vec![0usize; 5], vec![0; 3], vec![0; 5]]);
        assert_eq!(pack.requests(), 3);
        assert_eq!(pack.seq(), 5);
        assert_eq!(pack.total_rows(), 15);
        assert_eq!(pack.valid_rows(), 13);
        assert_eq!(pack.pad_rows(), 2);
        assert!(!pack.is_uniform());
        assert_eq!(pack.row_of(2), 10);
        assert!(PackedBatch::new(&[vec![0usize; 4], vec![0; 4]]).is_uniform());
    }

    #[test]
    fn rows_layout_covers_valid_prefixes() {
        let pack = PackedBatch::new(&[vec![0usize; 4], vec![0; 2]]);
        let layout = pack.rows_layout();
        assert_eq!(layout.regions.len(), 2);
        assert_eq!(layout.regions[0].row_blocks, vec![(0, 4)]);
        assert_eq!(layout.regions[1].row_blocks, vec![(4, 2)]);
        assert_eq!(layout.regions[1].cols, None);
    }

    #[test]
    fn probs_layout_is_per_head_and_column_trimmed() {
        let pack = PackedBatch::new(&[vec![0usize; 4], vec![0; 2]]);
        let layout = pack.probs_layout(2);
        // Request 1 (len 2): head blocks start after request 0's 2 heads
        // of 4 padded rows each.
        assert_eq!(layout.regions[1].row_blocks, vec![(8, 2), (12, 2)]);
        assert_eq!(layout.regions[1].cols, Some(2));
        assert_eq!(layout.regions[0].cols, Some(4));
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let _ = PackedBatch::new(&[vec![0usize; 3], vec![]]);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let _ = PackedBatch::new(&Vec::<Vec<usize>>::new());
    }
}
