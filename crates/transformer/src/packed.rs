//! Packing a batch of sequences into one tall activation matrix.
//!
//! Tensor-level batching stacks `B` sequences (padded to the longest
//! length `S`) into a single `(B·S) × hidden` matrix so every projection
//! and FFN GEMM in an encoder layer runs **once per batch** instead of
//! once per sequence. Three facts make the packed forward pass
//! bit-identical to solo execution:
//!
//! 1. every GEMM kernel computes output row `i` from input row `i` alone
//!    (`mokey_tensor` pins this), and every non-GEMM operator
//!    (layer norm, GELU, softmax, bias) is row-wise;
//! 2. attention is isolated per sequence: scores are computed on each
//!    sequence's row block, padded **key** positions are driven to `−∞`
//!    before `softmax_rows` (masked probabilities come out exactly
//!    `0.0`, and the GEMM kernels skip zero coefficients, so padded
//!    value rows contribute nothing);
//! 3. executor hooks receive a [`PackedLayout`] mapping each matrix
//!    region to its request, so quantized activation encoding touches
//!    exactly the elements a solo run would touch — padded rows are
//!    passed through raw and per-request counters stay exact.
//!
//! Padded *query* rows do flow through the arithmetic (they attend over
//! real keys and produce well-defined garbage), but nothing reads them:
//! they are skipped at unpack, never encoded, and never feed a real row.

/// Shape bookkeeping for one packed batch: per-request true lengths plus
/// the common padded length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedBatch {
    lens: Vec<usize>,
    seq: usize,
}

impl PackedBatch {
    /// Plans the packing of `batch` (padded to the longest sequence).
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or contains an empty sequence —
    /// callers route degenerate requests through the solo path.
    pub fn new<T: AsRef<[usize]>>(batch: &[T]) -> Self {
        assert!(!batch.is_empty(), "cannot pack an empty batch");
        let lens: Vec<usize> = batch.iter().map(|t| t.as_ref().len()).collect();
        assert!(lens.iter().all(|&l| l > 0), "cannot pack an empty sequence");
        let seq = lens.iter().copied().max().unwrap_or(0);
        Self { lens, seq }
    }

    /// Number of requests in the pack.
    pub fn requests(&self) -> usize {
        self.lens.len()
    }

    /// The padded per-sequence length (longest request).
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// True token length of request `i`.
    pub fn len_of(&self, i: usize) -> usize {
        self.lens[i]
    }

    /// Row offset of request `i` inside a packed `(B·S) × _` matrix.
    pub fn row_of(&self, i: usize) -> usize {
        i * self.seq
    }

    /// Total rows of a packed activation matrix (`B · S`).
    pub fn total_rows(&self) -> usize {
        self.lens.len() * self.seq
    }

    /// Rows carrying real tokens (`Σ lens`).
    pub fn valid_rows(&self) -> usize {
        self.lens.iter().sum()
    }

    /// Padding rows (`total − valid`) — the waste the serving metrics
    /// report.
    pub fn pad_rows(&self) -> usize {
        self.total_rows() - self.valid_rows()
    }

    /// `true` when every request has the padded length (no waste).
    pub fn is_uniform(&self) -> bool {
        self.lens.iter().all(|&l| l == self.seq)
    }

    /// Layout of a standard packed activation matrix (`(B·S) × width`):
    /// request `i` owns the valid prefix of its row block, full width.
    pub fn rows_layout(&self) -> PackedLayout {
        PackedLayout {
            regions: self
                .lens
                .iter()
                .enumerate()
                .map(|(i, &len)| Region { row_blocks: vec![(i * self.seq, len)], cols: None })
                .collect(),
        }
    }

    /// Layout of the packed attention-probability matrix
    /// (`(B·heads·S) × S`, request-major then head-major): request `i`
    /// owns `heads` blocks of its true length, and only its first
    /// `len` columns are real probabilities (the rest are masked zeros,
    /// which must stay exactly `0.0`).
    pub fn probs_layout(&self, heads: usize) -> PackedLayout {
        PackedLayout {
            regions: self
                .lens
                .iter()
                .enumerate()
                .map(|(i, &len)| Region {
                    row_blocks: (0..heads).map(|hd| ((i * heads + hd) * self.seq, len)).collect(),
                    cols: Some(len),
                })
                .collect(),
        }
    }

    /// Layout of a per-request-row matrix (`B × width`), e.g. the gathered
    /// CLS rows feeding the classification head.
    pub fn cls_layout(&self) -> PackedLayout {
        PackedLayout {
            regions: (0..self.lens.len())
                .map(|i| Region { row_blocks: vec![(i, 1)], cols: None })
                .collect(),
        }
    }
}

/// Maps the regions of one packed matrix to the requests that own them,
/// so executor hooks can attribute work per request and skip padding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedLayout {
    /// One region per request, in batch order.
    pub regions: Vec<Region>,
}

/// The part of a packed matrix owned by one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// `(start_row, row_count)` blocks — already trimmed to valid rows.
    pub row_blocks: Vec<(usize, usize)>,
    /// Valid column prefix, or `None` for the full width.
    pub cols: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_shape_accounting() {
        let pack = PackedBatch::new(&[vec![0usize; 5], vec![0; 3], vec![0; 5]]);
        assert_eq!(pack.requests(), 3);
        assert_eq!(pack.seq(), 5);
        assert_eq!(pack.total_rows(), 15);
        assert_eq!(pack.valid_rows(), 13);
        assert_eq!(pack.pad_rows(), 2);
        assert!(!pack.is_uniform());
        assert_eq!(pack.row_of(2), 10);
        assert!(PackedBatch::new(&[vec![0usize; 4], vec![0; 4]]).is_uniform());
    }

    #[test]
    fn rows_layout_covers_valid_prefixes() {
        let pack = PackedBatch::new(&[vec![0usize; 4], vec![0; 2]]);
        let layout = pack.rows_layout();
        assert_eq!(layout.regions.len(), 2);
        assert_eq!(layout.regions[0].row_blocks, vec![(0, 4)]);
        assert_eq!(layout.regions[1].row_blocks, vec![(4, 2)]);
        assert_eq!(layout.regions[1].cols, None);
    }

    #[test]
    fn probs_layout_is_per_head_and_column_trimmed() {
        let pack = PackedBatch::new(&[vec![0usize; 4], vec![0; 2]]);
        let layout = pack.probs_layout(2);
        // Request 1 (len 2): head blocks start after request 0's 2 heads
        // of 4 padded rows each.
        assert_eq!(layout.regions[1].row_blocks, vec![(8, 2), (12, 2)]);
        assert_eq!(layout.regions[1].cols, Some(2));
        assert_eq!(layout.regions[0].cols, Some(4));
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let _ = PackedBatch::new(&[vec![0usize; 3], vec![]]);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let _ = PackedBatch::new(&Vec::<Vec<usize>>::new());
    }
}
