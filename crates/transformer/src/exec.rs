//! Execution hooks: one forward-pass implementation, three behaviours.
//!
//! [`Model::forward`](crate::Model::forward) routes every activation
//! tensor, weight lookup, and GEMM output through an [`Executor`]:
//!
//! * [`FpExecutor`] — identity hooks: the FP32 reference path.
//! * [`ProfilingExecutor`] — observes activations and GEMM output ranges
//!   into an [`ActivationProfiler`] (the paper's one-batch profiling run).
//! * [`QuantizedExecutor`] — Mokey inference: activations are quantized to
//!   codes and decoded to centroids at every GEMM input, weights are
//!   replaced by their decoded centroid matrices, and GEMM outputs snap to
//!   the per-tensor 16-bit fixed-point grid (paper Eq. 7/8). Numerically,
//!   this is exactly the index-domain datapath — the equivalence is
//!   property-tested in `mokey-core::kernels`.

use crate::model::{Model, TaskOutput};
use crate::packed::{PackedBatch, PackedLayout};
use mokey_core::dict::TensorDict;
use mokey_core::encode::QuantizedTensor;
use mokey_core::lut::{matmul_lut_bias, matmul_lut_bias_counter, DecodeLut, PairLut, SKIP_CODE};
use mokey_core::profile::ActivationProfiler;
use mokey_fixed::{snap_to_grid, QFormat};
use mokey_tensor::Matrix;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Hooks invoked by the shared forward-pass implementation.
///
/// All methods default to the identity, so the FP path costs nothing.
/// The `*_packed` variants receive a [`PackedLayout`] mapping matrix
/// regions to requests; they default to the un-packed hooks, which is
/// correct for any executor that neither skips padding nor attributes
/// work per request (identity and profiling executors).
pub trait Executor {
    /// Observes/transforms a named activation tensor before it feeds a
    /// GEMM.
    fn activation(&mut self, _name: &str, m: Matrix) -> Matrix {
        m
    }

    /// Returns a replacement for a named weight tensor, if this executor
    /// substitutes weights (quantized execution).
    fn weight_override(&self, _name: &str) -> Option<&Matrix> {
        None
    }

    /// Observes/transforms a named GEMM output (bias already added).
    fn gemm_output(&mut self, _name: &str, m: Matrix) -> Matrix {
        m
    }

    /// Packed-batch variant of [`Executor::activation`].
    fn activation_packed(&mut self, name: &str, m: Matrix, _layout: &PackedLayout) -> Matrix {
        self.activation(name, m)
    }

    /// Packed-batch variant of [`Executor::gemm_output`].
    fn gemm_output_packed(&mut self, name: &str, m: Matrix, _layout: &PackedLayout) -> Matrix {
        self.gemm_output(name, m)
    }

    /// Optionally computes a fused GEMM + bias itself, replacing the
    /// float `x·W + b` entirely (the index-domain LUT path). Returning
    /// `None` keeps the default float GEMM; either way the result is
    /// still routed through [`Executor::gemm_output`].
    fn linear(
        &mut self,
        _weight_name: &str,
        _x: &Matrix,
        _w: &Matrix,
        _b: &[f32],
    ) -> Option<Matrix> {
        None
    }

    /// Packed-batch variant of [`Executor::linear`].
    fn linear_packed(
        &mut self,
        weight_name: &str,
        x: &Matrix,
        w: &Matrix,
        b: &[f32],
        _layout: &PackedLayout,
    ) -> Option<Matrix> {
        self.linear(weight_name, x, w, b)
    }
}

/// How a [`QuantizedExecutor`] evaluates the projection/FFN GEMMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Decode codes to centroid floats and run the dense float GEMM
    /// (the reference path).
    #[default]
    Decoded,
    /// Keep activations as codes and gather precomputed centroid
    /// products from per-dictionary-pair tables
    /// ([`mokey_core::lut::PairLut`]) — bit-identical to
    /// [`ExecMode::Decoded`] by construction, falling back to it for any
    /// GEMM without retained weight codes.
    IndexDomain,
}

/// The FP32 reference path: every hook is the identity.
#[derive(Debug, Clone, Copy, Default)]
pub struct FpExecutor;

impl Executor for FpExecutor {}

/// Records every activation and GEMM-output distribution into an
/// [`ActivationProfiler`] — the paper's profiling run over a single batch.
///
/// GEMM outputs are recorded under `"<weight name>.out"`; their ranges
/// later define the Eq. 7 output fixed-point formats.
#[derive(Debug)]
pub struct ProfilingExecutor<'a> {
    profiler: &'a mut ActivationProfiler,
}

impl<'a> ProfilingExecutor<'a> {
    /// Wraps a profiler for one or more forward passes.
    pub fn new(profiler: &'a mut ActivationProfiler) -> Self {
        Self { profiler }
    }
}

impl Executor for ProfilingExecutor<'_> {
    fn activation(&mut self, name: &str, m: Matrix) -> Matrix {
        self.profiler.observe(name, &m);
        m
    }

    fn gemm_output(&mut self, name: &str, m: Matrix) -> Matrix {
        self.profiler.observe(&format!("{name}.out"), &m);
        m
    }
}

/// Everything the index-domain path retains for one projection/FFN GEMM:
/// the weight's codes, the product table for its (activation, weight)
/// dictionary pair, and which activation tensor feeds it.
#[derive(Debug, Clone)]
pub struct LutLinear {
    /// Name of the activation tensor this weight multiplies.
    pub act_name: String,
    /// The weight's codes (row-major, `k × n` like the decoded matrix).
    pub codes: QuantizedTensor,
    /// Dense product table over the (activation-dict, weight-dict) pair.
    pub lut: Arc<PairLut>,
}

/// Everything the quantized path needs, shared read-only across worker
/// threads. Build with [`QuantizedContext::new`]; optionally attach
/// index-domain LUT state with [`QuantizedContext::set_index_domain`].
#[derive(Debug, Clone)]
pub struct QuantizedContext {
    /// Decoded centroid weight matrices (present when weights are
    /// quantized).
    pub weights: BTreeMap<String, Matrix>,
    /// Per-activation-tensor dictionaries (present when activations are
    /// quantized).
    pub act_dicts: BTreeMap<String, TensorDict>,
    /// Per-GEMM-output 16-bit fixed-point formats (Eq. 7 from profiled
    /// ranges).
    pub out_formats: BTreeMap<String, QFormat>,
    /// Per-activation-dictionary decode tables (mirrors `act_dicts`):
    /// replaces the branchy per-value `decode_code` in the hot encoding
    /// hooks with one table gather, bit-identically.
    pub(crate) act_decode: BTreeMap<String, DecodeLut>,
    /// Index-domain state, keyed by weight name (empty until
    /// [`QuantizedContext::set_index_domain`]).
    pub(crate) luts: BTreeMap<String, LutLinear>,
    /// Activation tensors whose codes the index-domain executor must
    /// retain (the `act_name`s of `luts`).
    pub(crate) encoded_acts: BTreeSet<String>,
}

/// Names of the activation tensors that can feed a weight's GEMM, in
/// lookup order (only `head.proj` has two candidates — the head variant
/// decides which one exists).
pub(crate) fn feeding_activations(weight_name: &str) -> Vec<String> {
    if let Some(pre) = weight_name
        .strip_suffix(".attn.wq")
        .or_else(|| weight_name.strip_suffix(".attn.wk"))
        .or_else(|| weight_name.strip_suffix(".attn.wv"))
    {
        vec![format!("{pre}.attn.input")]
    } else if let Some(pre) = weight_name.strip_suffix(".attn.wo") {
        vec![format!("{pre}.attn.context")]
    } else if let Some(pre) = weight_name.strip_suffix(".ffn.w1") {
        vec![format!("{pre}.ffn.input")]
    } else if let Some(pre) = weight_name.strip_suffix(".ffn.w2") {
        vec![format!("{pre}.ffn.mid")]
    } else if weight_name == "head.pooler" {
        vec!["head.cls".to_string()]
    } else if weight_name == "head.proj" {
        vec!["head.pooled".to_string(), "head.span_input".to_string()]
    } else {
        Vec::new()
    }
}

/// Largest fraction of a pack's rows that may be padding before a shorter
/// request is excluded from it. Zero pad waste is always achieved for
/// same-length groups; the budget lets near-length requests (as the
/// serving batcher's length buckets produce) share one pack instead of
/// fragmenting into singletons.
const PACK_WASTE_LIMIT: f64 = 0.25;

/// How a batch was executed: packed tensor-level groups vs the solo loop,
/// plus the padding the packs carried.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackStats {
    /// Packed groups executed (each is one tall GEMM per projection).
    pub packed_batches: usize,
    /// Requests served inside packed groups.
    pub packed_requests: usize,
    /// Requests that fell back to the per-request loop (singletons and
    /// degenerate sequences).
    pub solo_requests: usize,
    /// Padding rows carried by the packs.
    pub pad_rows: usize,
    /// Total rows (valid + padding) of all packs.
    pub packed_rows: usize,
}

impl PackStats {
    /// Merges counters from another batch.
    pub fn merge(&mut self, other: &PackStats) {
        self.packed_batches += other.packed_batches;
        self.packed_requests += other.packed_requests;
        self.solo_requests += other.solo_requests;
        self.pad_rows += other.pad_rows;
        self.packed_rows += other.packed_rows;
    }

    /// Fraction of packed rows that were padding (0 when nothing packed).
    pub fn pad_waste_fraction(&self) -> f64 {
        if self.packed_rows == 0 {
            0.0
        } else {
            self.pad_rows as f64 / self.packed_rows as f64
        }
    }
}

/// The result of one batched execution: per-request outputs and counters,
/// merged batch counters, and how the batch was packed.
#[derive(Debug, Clone)]
pub struct BatchRun {
    /// Per-request `(output, stats)` pairs, in submission order.
    pub results: Vec<(TaskOutput, QuantizedStats)>,
    /// Merged activation-encoding counters for the whole batch.
    pub total: QuantizedStats,
    /// Packed-execution accounting.
    pub packing: PackStats,
}

impl QuantizedContext {
    /// Builds a context from the session products, deriving the
    /// per-dictionary decode tables.
    pub fn new(
        weights: BTreeMap<String, Matrix>,
        act_dicts: BTreeMap<String, TensorDict>,
        out_formats: BTreeMap<String, QFormat>,
    ) -> Self {
        let act_decode =
            act_dicts.iter().map(|(name, dict)| (name.clone(), DecodeLut::new(dict))).collect();
        Self {
            weights,
            act_dicts,
            out_formats,
            act_decode,
            luts: BTreeMap::new(),
            encoded_acts: BTreeSet::new(),
        }
    }

    /// Attaches index-domain state: per-weight codes and pair-LUTs.
    /// [`ExecMode::IndexDomain`] execution serves every listed weight's
    /// GEMM from its table and falls back to the decoded float GEMM for
    /// the rest.
    pub fn set_index_domain(&mut self, luts: BTreeMap<String, LutLinear>) {
        self.encoded_acts = luts.values().map(|l| l.act_name.clone()).collect();
        self.luts = luts;
    }

    /// Whether any GEMM has index-domain state attached.
    pub fn has_index_domain(&self) -> bool {
        !self.luts.is_empty()
    }

    /// Index-domain state of a named weight, if retained.
    pub fn lut_linear(&self, weight_name: &str) -> Option<&LutLinear> {
        self.luts.get(weight_name)
    }

    /// Runs a coalesced batch of requests — the serving engine's batched
    /// path. Requests are grouped by sequence length (shorter requests
    /// may join a longer group while padding stays within
    /// `PACK_WASTE_LIMIT` (25% per request); each group of two or more runs through the
    /// packed tensor-level forward pass ([`Model::infer_packed`]), so
    /// every projection/FFN GEMM executes once per group instead of once
    /// per sequence. Singletons fall back to the per-request loop.
    ///
    /// Outputs **and per-request counters** are bit-identical to running
    /// each request alone, regardless of grouping — the layout-aware
    /// executor hooks encode exactly the elements a solo run would.
    pub fn infer_batch(&self, model: &Model, batch: &[Vec<usize>]) -> BatchRun {
        self.infer_batch_mode(model, batch, ExecMode::Decoded)
    }

    /// [`QuantizedContext::infer_batch`] with an explicit execution mode.
    /// [`ExecMode::IndexDomain`] results are bit-identical to
    /// [`ExecMode::Decoded`] (outputs and counters) — the LUT kernel
    /// reproduces the float GEMM's reduction exactly.
    pub fn infer_batch_mode(
        &self,
        model: &Model,
        batch: &[Vec<usize>],
        mode: ExecMode,
    ) -> BatchRun {
        let mut order: Vec<usize> = (0..batch.len()).collect();
        // Longest first; stable, so equal lengths keep submission order.
        order.sort_by_key(|&i| std::cmp::Reverse(batch[i].len()));
        let mut results: Vec<Option<(TaskOutput, QuantizedStats)>> =
            batch.iter().map(|_| None).collect();
        let mut total = QuantizedStats::default();
        let mut packing = PackStats::default();
        let mut start = 0;
        while start < order.len() {
            let max_len = batch[order[start]].len();
            let mut end = start + 1;
            while end < order.len() {
                let pad = max_len - batch[order[end]].len();
                if batch[order[end]].is_empty() || pad as f64 > PACK_WASTE_LIMIT * max_len as f64 {
                    break;
                }
                end += 1;
            }
            let group = &order[start..end];
            if group.len() >= 2 && max_len > 0 {
                let refs: Vec<&[usize]> = group.iter().map(|&i| batch[i].as_slice()).collect();
                // The accounted plan IS the executed plan: one
                // `PackedBatch` drives both the metrics and the forward
                // pass.
                let pack = PackedBatch::new(&refs);
                packing.packed_batches += 1;
                packing.packed_requests += pack.requests();
                packing.packed_rows += pack.total_rows();
                packing.pad_rows += pack.pad_rows();
                let (outs, exec_stats) = self.infer_packed_planned(model, &pack, &refs, mode);
                // The executor's own counters carry the kernel attribution
                // the per-request entries don't (their activation counters
                // sum to the same values).
                total.merge(&exec_stats);
                for (&i, pair) in group.iter().zip(outs) {
                    results[i] = Some(pair);
                }
            } else {
                for &i in group {
                    let mut exec = QuantizedExecutor::with_mode(self, mode);
                    let out = model.infer(&mut exec, &batch[i]);
                    let stats = exec.stats();
                    total.merge(&stats);
                    packing.solo_requests += 1;
                    results[i] = Some((out, stats));
                }
            }
            start = end;
        }
        BatchRun {
            results: results.into_iter().map(|r| r.expect("every request executed")).collect(),
            total,
            packing,
        }
    }

    /// Runs one packed group through a fresh executor, returning each
    /// request's output with its own activation-encoding counters.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or contains an empty sequence.
    pub fn infer_packed(
        &self,
        model: &Model,
        batch: &[&[usize]],
    ) -> Vec<(TaskOutput, QuantizedStats)> {
        self.infer_packed_planned(model, &PackedBatch::new(batch), batch, ExecMode::Decoded).0
    }

    /// [`QuantizedContext::infer_packed`] with an already-built pack plan
    /// (so `infer_batch` executes exactly the plan it accounted). Also
    /// returns the executor's merged counters, which — unlike the
    /// per-request entries — carry the kernel attribution.
    fn infer_packed_planned(
        &self,
        model: &Model,
        pack: &PackedBatch,
        batch: &[&[usize]],
        mode: ExecMode,
    ) -> (Vec<(TaskOutput, QuantizedStats)>, QuantizedStats) {
        let mut exec = QuantizedExecutor::with_mode(self, mode);
        let hidden = model.forward_packed(&mut exec, pack, batch);
        let outputs = model.apply_head_packed(&mut exec, &hidden, pack);
        let exec_stats = exec.stats();
        let mut per_request = exec.take_per_request();
        per_request.resize(batch.len(), QuantizedStats::default());
        (outputs.into_iter().zip(per_request).collect(), exec_stats)
    }
}

/// Counters describing one quantized forward pass.
///
/// Equality compares only the activation-encoding counters (`act_values`,
/// `act_outliers`): those describe *what* was computed and are pinned
/// bit-identical across execution modes, batching, and kernel choices.
/// The kernel-attribution counters record *how* index-domain GEMMs were
/// served — they legitimately differ between [`ExecMode`]s and shapes, so
/// they stay out of the equality the mode/batching equivalence tests
/// assert.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuantizedStats {
    /// Activation values encoded.
    pub act_values: usize,
    /// Of those, how many hit the outlier dictionary (Table I's "A OT %").
    pub act_outliers: usize,
    /// Index-domain GEMMs served by the pair-LUT row kernel
    /// ([`matmul_lut_bias`]).
    pub pair_lut_gemms: usize,
    /// Index-domain GEMMs served by the counter-array panel kernel
    /// ([`matmul_lut_bias_counter`]).
    pub counter_array_gemms: usize,
}

impl PartialEq for QuantizedStats {
    fn eq(&self, other: &Self) -> bool {
        self.act_values == other.act_values && self.act_outliers == other.act_outliers
    }
}

impl Eq for QuantizedStats {}

impl QuantizedStats {
    /// Merges counters from another pass.
    pub fn merge(&mut self, other: &QuantizedStats) {
        self.act_values += other.act_values;
        self.act_outliers += other.act_outliers;
        self.pair_lut_gemms += other.pair_lut_gemms;
        self.counter_array_gemms += other.counter_array_gemms;
    }

    /// Counters accumulated since an earlier snapshot (`earlier` must be
    /// a prefix of this accumulation, as in the batched execution loop).
    pub fn diff(&self, earlier: &QuantizedStats) -> QuantizedStats {
        QuantizedStats {
            act_values: self.act_values - earlier.act_values,
            act_outliers: self.act_outliers - earlier.act_outliers,
            pair_lut_gemms: self.pair_lut_gemms - earlier.pair_lut_gemms,
            counter_array_gemms: self.counter_array_gemms - earlier.counter_array_gemms,
        }
    }

    /// Outlier fraction (0 when nothing was encoded).
    pub fn outlier_fraction(&self) -> f64 {
        if self.act_values == 0 {
            0.0
        } else {
            self.act_outliers as f64 / self.act_values as f64
        }
    }
}

/// The code form of one encoded activation tensor, retained by the
/// index-domain executor so the following GEMM can run on codes. Packed
/// padding rows (never encoded) are filled with
/// [`SKIP_CODE`](mokey_core::lut::SKIP_CODE).
#[derive(Debug, Clone)]
struct ActCodes {
    bits: Vec<u8>,
    rows: usize,
    cols: usize,
}

/// The codes of one activation tensor harvested through
/// [`QuantizedExecutor::capture`] — exactly the codes the encoding hook
/// produced, so decoding them through the tensor's
/// [`DecodeLut`] reproduces the hook's float
/// output bit-exactly. This is how the decode KV-cache stores K/V rows.
#[derive(Debug, Clone)]
pub struct CapturedCodes {
    /// Row-major 5-bit code patterns (`rows × cols`).
    pub bits: Vec<u8>,
    /// Rows of the captured tensor.
    pub rows: usize,
    /// Columns of the captured tensor.
    pub cols: usize,
}

/// Which index-domain kernel serves a GEMM shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LutKernel {
    /// Row-at-a-time pair-LUT gather ([`matmul_lut_bias`]).
    PairLut,
    /// Counter-array panel kernel ([`matmul_lut_bias_counter`]): walks
    /// each weight column's codes once per activation-row panel.
    CounterArray,
}

/// Minimum activation rows before the counter-array kernel's row panels
/// amortize the per-code product-row fetch. Below this (notably the
/// decode path's one-row GEMMs) the row kernel's single pass wins.
const COUNTER_MIN_ROWS: usize = 4;

/// Mokey quantized inference.
#[derive(Debug)]
pub struct QuantizedExecutor<'a> {
    ctx: &'a QuantizedContext,
    stats: QuantizedStats,
    /// Per-request counters, filled by the packed hooks (empty until a
    /// packed forward pass runs).
    per_request: Vec<QuantizedStats>,
    mode: ExecMode,
    /// Retained activation codes, by activation name (index mode only;
    /// only names in the context's `encoded_acts` are kept).
    act_codes: BTreeMap<String, ActCodes>,
    /// Activation names whose codes the caller asked to harvest
    /// (mode-independent, unlike `act_codes`).
    capture_names: BTreeSet<String>,
    /// Harvested codes, drained via [`QuantizedExecutor::take_captured`].
    captured: BTreeMap<String, CapturedCodes>,
    /// GEMMs actually served from a pair-LUT (diagnostics/tests).
    lut_gemms: usize,
    /// Cached kernel choice per GEMM shape `(m, k, n)`: the heuristic is
    /// decided once per shape per executor instead of re-derived on every
    /// call (the executor's `mode` is fixed, so shape alone keys it).
    kernel_choice: BTreeMap<(usize, usize, usize), LutKernel>,
}

impl<'a> QuantizedExecutor<'a> {
    /// Creates an executor over a shared context (decoded mode).
    pub fn new(ctx: &'a QuantizedContext) -> Self {
        Self::with_mode(ctx, ExecMode::Decoded)
    }

    /// Creates an executor with an explicit execution mode.
    pub fn with_mode(ctx: &'a QuantizedContext, mode: ExecMode) -> Self {
        Self {
            ctx,
            stats: QuantizedStats::default(),
            per_request: Vec::new(),
            mode,
            act_codes: BTreeMap::new(),
            capture_names: BTreeSet::new(),
            captured: BTreeMap::new(),
            lut_gemms: 0,
            kernel_choice: BTreeMap::new(),
        }
    }

    /// Asks the encoding hook to harvest the codes of the named
    /// activation tensors (in either [`ExecMode`]). Each forward pass
    /// overwrites a name's previous capture; drain with
    /// [`QuantizedExecutor::take_captured`]. Names without an activation
    /// dictionary are never captured (the hook doesn't encode them).
    pub fn capture(&mut self, names: impl IntoIterator<Item = String>) {
        self.capture_names.extend(names);
    }

    /// Drains the harvested codes of one captured activation tensor
    /// (`None` if the name was not captured since the last drain).
    pub fn take_captured(&mut self, name: &str) -> Option<CapturedCodes> {
        self.captured.remove(name)
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> QuantizedStats {
        self.stats
    }

    /// How many GEMMs this executor served from pair-LUTs (always zero
    /// in decoded mode).
    pub fn lut_gemms(&self) -> usize {
        self.lut_gemms
    }

    /// Whether this activation's codes must be retained for a following
    /// index-domain GEMM.
    fn retains(&self, name: &str) -> bool {
        self.mode == ExecMode::IndexDomain && self.ctx.encoded_acts.contains(name)
    }

    /// Drains the per-request counters a packed forward pass accumulated
    /// (one entry per request that encoded at least one value).
    pub fn take_per_request(&mut self) -> Vec<QuantizedStats> {
        std::mem::take(&mut self.per_request)
    }

    fn request_stats(&mut self, count: usize) -> &mut [QuantizedStats] {
        if self.per_request.len() < count {
            self.per_request.resize(count, QuantizedStats::default());
        }
        &mut self.per_request
    }
}

impl Executor for QuantizedExecutor<'_> {
    fn activation(&mut self, name: &str, m: Matrix) -> Matrix {
        let Some(dict) = self.ctx.act_dicts.get(name) else {
            return m;
        };
        let decode = self.ctx.act_decode.get(name).copied().unwrap_or_else(|| DecodeLut::new(dict));
        let retain = self.retains(name);
        let capture = self.capture_names.contains(name);
        let keep = retain || capture;
        let (rows, cols) = (m.rows(), m.cols());
        let mut bits = if keep { Vec::with_capacity(rows * cols) } else { Vec::new() };
        let mut out = m;
        for v in out.as_mut_slice() {
            let code = dict.encode_value(*v);
            self.stats.act_values += 1;
            if code.is_outlier() {
                self.stats.act_outliers += 1;
            }
            if keep {
                bits.push(code.to_bits());
            }
            *v = decode.value(code);
        }
        if capture {
            let harvest = if retain { bits.clone() } else { std::mem::take(&mut bits) };
            self.captured.insert(name.to_string(), CapturedCodes { bits: harvest, rows, cols });
        }
        if retain {
            self.act_codes.insert(name.to_string(), ActCodes { bits, rows, cols });
        }
        out
    }

    fn weight_override(&self, name: &str) -> Option<&Matrix> {
        self.ctx.weights.get(name)
    }

    fn gemm_output(&mut self, name: &str, m: Matrix) -> Matrix {
        let Some(fmt) = self.ctx.out_formats.get(name) else {
            return m;
        };
        let frac = fmt.frac_bits();
        let mut out = m;
        for v in out.as_mut_slice() {
            *v = snap_to_grid(f64::from(*v), frac) as f32;
        }
        out
    }

    /// Layout-aware activation encoding: only each request's valid region
    /// is encoded (padding rows pass through raw, and the masked zero
    /// probabilities beyond a request's true length stay exactly `0.0` so
    /// the zero-skipping GEMM kernels drop them), and counters are
    /// attributed to the owning request. Per-element results are exactly
    /// what [`Executor::activation`] produces in a solo run.
    fn activation_packed(&mut self, name: &str, m: Matrix, layout: &PackedLayout) -> Matrix {
        let Some(dict) = self.ctx.act_dicts.get(name) else {
            return m;
        };
        let decode = self.ctx.act_decode.get(name).copied().unwrap_or_else(|| DecodeLut::new(dict));
        let retain = self.retains(name);
        let (rows, width) = (m.rows(), m.cols());
        // Padding rows are never encoded; the skip sentinel tells the LUT
        // kernel to emit their bias rows without decoding anything.
        let mut bits = if retain { vec![SKIP_CODE; rows * width] } else { Vec::new() };
        let mut out = m;
        let mut deltas = vec![QuantizedStats::default(); layout.regions.len()];
        for (region, delta) in layout.regions.iter().zip(&mut deltas) {
            let cols = region.cols.unwrap_or(width);
            for &(start, count) in &region.row_blocks {
                for r in start..start + count {
                    let row_base = r * width;
                    for (ci, v) in out.row_mut(r)[..cols].iter_mut().enumerate() {
                        let code = dict.encode_value(*v);
                        delta.act_values += 1;
                        if code.is_outlier() {
                            delta.act_outliers += 1;
                        }
                        if retain {
                            bits[row_base + ci] = code.to_bits();
                        }
                        *v = decode.value(code);
                    }
                }
            }
        }
        for (slot, delta) in self.request_stats(deltas.len()).iter_mut().zip(&deltas) {
            slot.merge(delta);
        }
        for delta in &deltas {
            self.stats.merge(delta);
        }
        if retain {
            self.act_codes.insert(name.to_string(), ActCodes { bits, rows, cols: width });
        }
        out
    }

    /// Layout-aware output snapping: valid regions snap to the Eq. 7
    /// grid exactly as in solo execution; padding rows are left raw
    /// (nothing reads them).
    fn gemm_output_packed(&mut self, name: &str, m: Matrix, layout: &PackedLayout) -> Matrix {
        let Some(fmt) = self.ctx.out_formats.get(name) else {
            return m;
        };
        let frac = fmt.frac_bits();
        let width = m.cols();
        let mut out = m;
        for region in &layout.regions {
            let cols = region.cols.unwrap_or(width);
            for &(start, count) in &region.row_blocks {
                for r in start..start + count {
                    for v in &mut out.row_mut(r)[..cols] {
                        *v = snap_to_grid(f64::from(*v), frac) as f32;
                    }
                }
            }
        }
        out
    }

    /// Index-domain GEMM: gathers precomputed centroid products for the
    /// retained activation codes instead of multiplying decoded floats.
    /// Bit-identical to the float `x·W + b` on this executor's decoded
    /// operands — both [`matmul_lut_bias`] and [`matmul_lut_bias_counter`]
    /// reproduce `matmul_bias`'s exact reduction (ascending-`k`, one add
    /// per element, identical zero-skip). Which kernel serves the GEMM is
    /// a per-shape choice cached in `kernel_choice` and surfaced through
    /// [`QuantizedStats`]; it never affects the output bits. Returns
    /// `None` (float fallback) whenever the weight has no retained codes
    /// or the retained activation doesn't match.
    fn linear(&mut self, weight_name: &str, x: &Matrix, _w: &Matrix, b: &[f32]) -> Option<Matrix> {
        if self.mode != ExecMode::IndexDomain {
            return None;
        }
        let entry = self.ctx.luts.get(weight_name)?;
        let stored = self.act_codes.get(&entry.act_name)?;
        let (k, n) = entry.codes.shape();
        if stored.rows != x.rows() || stored.cols != x.cols() || k != x.cols() || b.len() != n {
            return None;
        }
        self.lut_gemms += 1;
        let kernel = *self.kernel_choice.entry((stored.rows, k, n)).or_insert(
            if stored.rows >= COUNTER_MIN_ROWS {
                LutKernel::CounterArray
            } else {
                LutKernel::PairLut
            },
        );
        Some(match kernel {
            LutKernel::CounterArray => {
                self.stats.counter_array_gemms += 1;
                matmul_lut_bias_counter(
                    &stored.bits,
                    stored.rows,
                    stored.cols,
                    &entry.codes,
                    b,
                    &entry.lut,
                )
            }
            LutKernel::PairLut => {
                self.stats.pair_lut_gemms += 1;
                matmul_lut_bias(&stored.bits, stored.rows, stored.cols, &entry.codes, b, &entry.lut)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mokey_core::curve::ExpCurve;
    use mokey_core::profile::ProfileConfig;
    use mokey_tensor::init::GaussianMixture;

    #[test]
    fn fp_executor_is_identity() {
        let m = GaussianMixture::pure(0.0, 1.0).sample_matrix(4, 4, 1);
        let mut e = FpExecutor;
        assert_eq!(e.activation("x", m.clone()), m);
        assert_eq!(e.gemm_output("x", m.clone()), m);
        assert!(e.weight_override("x").is_none());
    }

    #[test]
    fn profiling_executor_records_everything() {
        let mut profiler = ActivationProfiler::new(ProfileConfig::default());
        let m = GaussianMixture::pure(0.5, 2.0).sample_matrix(8, 8, 2);
        {
            let mut e = ProfilingExecutor::new(&mut profiler);
            let _ = e.activation("a", m.clone());
            let _ = e.gemm_output("w", m.clone());
        }
        assert_eq!(profiler.profile("a").unwrap().seen(), 64);
        assert_eq!(profiler.profile("w.out").unwrap().seen(), 64);
    }

    #[test]
    fn quantized_executor_decodes_to_centroids_and_counts() {
        let m = GaussianMixture::activation_like(0.0, 1.0).sample_matrix(16, 16, 3);
        let dict =
            TensorDict::for_values(m.as_slice(), &ExpCurve::paper(), &Default::default()).unwrap();
        let mut act_dicts = BTreeMap::new();
        act_dicts.insert("a".to_string(), dict.clone());
        let ctx = QuantizedContext::new(BTreeMap::new(), act_dicts, BTreeMap::new());
        let mut e = QuantizedExecutor::new(&ctx);
        let out = e.activation("a", m.clone());
        assert_eq!(e.stats().act_values, 256);
        // Every output value must be a signed centroid.
        let centroids: Vec<f64> = dict.signed_centroids().iter().map(|(v, _)| *v).collect();
        for &v in out.as_slice() {
            let d =
                centroids.iter().map(|&c| (c - f64::from(v)).abs()).fold(f64::INFINITY, f64::min);
            assert!(d < 1e-5, "{v} is not a centroid");
        }
        // Unknown tensors pass through untouched.
        let untouched = e.activation("unknown", m.clone());
        assert_eq!(untouched, m);
    }

    #[test]
    fn batched_execution_is_bit_identical_to_per_request() {
        use crate::config::ModelConfig;
        use crate::model::Head;
        use crate::quantize::QuantizedModel;
        use crate::QuantizeSpec;

        let config = ModelConfig {
            name: "exec-batch".into(),
            layers: 1,
            hidden: 32,
            heads: 2,
            ff: 64,
            vocab: 200,
            max_seq: 16,
        };
        let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 3);
        let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(12, 50 + s)).collect();
        let (qm, _) =
            QuantizedModel::prepare(&model, QuantizeSpec::weights_and_activations(), &profile);
        let batch: Vec<Vec<usize>> = (0..5).map(|s| model.random_tokens(10, 400 + s)).collect();
        let run = qm.context().infer_batch(&model, &batch);
        assert_eq!(run.results.len(), 5);
        // Five same-length requests form one packed group, zero padding.
        assert_eq!(run.packing.packed_batches, 1);
        assert_eq!(run.packing.packed_requests, 5);
        assert_eq!(run.packing.solo_requests, 0);
        assert_eq!(run.packing.pad_rows, 0);
        let mut merged = QuantizedStats::default();
        for (tokens, (out, stats)) in batch.iter().zip(&run.results) {
            // Per-request outputs and counters match a solo run exactly.
            let (solo_out, solo_stats) = qm.infer(tokens);
            assert_eq!(out, &solo_out);
            assert_eq!(stats, &solo_stats);
            merged.merge(stats);
        }
        assert_eq!(run.total, merged);
    }

    #[test]
    fn ragged_batches_pack_with_bounded_padding() {
        use crate::config::ModelConfig;
        use crate::model::Head;
        use crate::quantize::QuantizedModel;
        use crate::QuantizeSpec;

        let config = ModelConfig {
            name: "exec-ragged".into(),
            layers: 1,
            hidden: 32,
            heads: 2,
            ff: 64,
            vocab: 200,
            max_seq: 16,
        };
        let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 3);
        let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(12, 50 + s)).collect();
        let (qm, _) =
            QuantizedModel::prepare(&model, QuantizeSpec::weights_and_activations(), &profile);
        // Lengths 16/14/13 pack together (waste ≤ 25% of 16 per request);
        // length 4 is too short and runs solo.
        let batch: Vec<Vec<usize>> = [16usize, 14, 13, 4]
            .iter()
            .enumerate()
            .map(|(i, &len)| model.random_tokens(len, 700 + i as u64))
            .collect();
        let run = qm.context().infer_batch(&model, &batch);
        assert_eq!(run.packing.packed_batches, 1);
        assert_eq!(run.packing.packed_requests, 3);
        assert_eq!(run.packing.solo_requests, 1);
        assert_eq!(run.packing.pad_rows, (16 - 14) + (16 - 13));
        assert_eq!(run.packing.packed_rows, 3 * 16);
        // Masked packing must still be bit-identical, counters included.
        for (tokens, (out, stats)) in batch.iter().zip(&run.results) {
            let (solo_out, solo_stats) = qm.infer(tokens);
            assert_eq!(out, &solo_out, "ragged pack diverged for len {}", tokens.len());
            assert_eq!(stats, &solo_stats);
        }
    }

    #[test]
    fn index_domain_solo_is_bit_identical_and_actually_uses_luts() {
        use crate::config::ModelConfig;
        use crate::model::Head;
        use crate::quantize::QuantizedModel;
        use crate::QuantizeSpec;

        let config = ModelConfig {
            name: "exec-lut".into(),
            layers: 2,
            hidden: 32,
            heads: 2,
            ff: 64,
            vocab: 200,
            max_seq: 16,
        };
        let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 9);
        let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(12, 60 + s)).collect();
        let (qm, _) =
            QuantizedModel::prepare(&model, QuantizeSpec::weights_and_activations(), &profile);
        // Every projection/FFN weight plus both head weights is retained.
        assert_eq!(qm.context().luts.len(), 2 * 6 + 2);
        let tokens = model.random_tokens(11, 901);
        let mut exec = QuantizedExecutor::with_mode(qm.context(), ExecMode::IndexDomain);
        let hidden = model.forward(&mut exec, &tokens);
        let out = model.apply_head(&mut exec, &hidden);
        // Every retained GEMM ran on codes — nothing fell back.
        assert_eq!(exec.lut_gemms(), 2 * 6 + 2);
        // Kernel attribution: the 11-row layer GEMMs take the counter-array
        // panel kernel, the one-row head GEMMs take the pair-LUT row
        // kernel, and together they account for every LUT GEMM.
        let stats = exec.stats();
        assert_eq!(stats.counter_array_gemms, 2 * 6);
        assert_eq!(stats.pair_lut_gemms, 2);
        assert_eq!(stats.counter_array_gemms + stats.pair_lut_gemms, exec.lut_gemms());
        let (decoded_out, decoded_stats) = qm.infer(&tokens);
        assert_eq!(out, decoded_out);
        assert_eq!(exec.stats(), decoded_stats);
        // Decoded mode served nothing from LUT kernels.
        assert_eq!(decoded_stats.counter_array_gemms, 0);
        assert_eq!(decoded_stats.pair_lut_gemms, 0);
    }

    #[test]
    fn index_domain_batch_is_bit_identical_to_decoded_batch() {
        use crate::config::ModelConfig;
        use crate::model::Head;
        use crate::quantize::QuantizedModel;
        use crate::QuantizeSpec;

        let config = ModelConfig {
            name: "exec-lut-batch".into(),
            layers: 1,
            hidden: 32,
            heads: 2,
            ff: 64,
            vocab: 200,
            max_seq: 16,
        };
        // Span head: exercises the `head.span_input` feeding path too.
        let model = Model::synthesize(&config, Head::Span, 5);
        let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(12, 70 + s)).collect();
        let (qm, _) =
            QuantizedModel::prepare(&model, QuantizeSpec::weights_and_activations(), &profile);
        // Ragged lengths: a packed group with padding rows plus a solo.
        let batch: Vec<Vec<usize>> = [16usize, 14, 13, 4]
            .iter()
            .enumerate()
            .map(|(i, &len)| model.random_tokens(len, 800 + i as u64))
            .collect();
        let decoded = qm.context().infer_batch_mode(&model, &batch, ExecMode::Decoded);
        let indexed = qm.context().infer_batch_mode(&model, &batch, ExecMode::IndexDomain);
        assert_eq!(decoded.packing, indexed.packing);
        assert_eq!(decoded.total, indexed.total);
        for ((d_out, d_stats), (i_out, i_stats)) in decoded.results.iter().zip(&indexed.results) {
            assert_eq!(d_out, i_out);
            assert_eq!(d_stats, i_stats);
        }
    }

    #[test]
    fn index_domain_without_retained_codes_falls_back_to_decoded() {
        use crate::config::ModelConfig;
        use crate::model::Head;
        use crate::quantize::QuantizedModel;
        use crate::QuantizeSpec;

        let config = ModelConfig {
            name: "exec-lut-fallback".into(),
            layers: 1,
            hidden: 32,
            heads: 2,
            ff: 64,
            vocab: 200,
            max_seq: 16,
        };
        let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 4);
        // Weights-only quantization has no activation dictionaries, so
        // nothing is retained; index mode must be a clean no-op.
        let (qm, _) = QuantizedModel::prepare(&model, QuantizeSpec::weights_only(), &[]);
        assert!(!qm.context().has_index_domain());
        let tokens = model.random_tokens(10, 77);
        let mut exec = QuantizedExecutor::with_mode(qm.context(), ExecMode::IndexDomain);
        let hidden = model.forward(&mut exec, &tokens);
        let out = model.apply_head(&mut exec, &hidden);
        assert_eq!(exec.lut_gemms(), 0);
        assert_eq!(out, qm.infer(&tokens).0);
    }

    #[test]
    fn gemm_output_snaps_to_grid() {
        let mut out_formats = BTreeMap::new();
        out_formats.insert("w".to_string(), QFormat::new(16, 4));
        let ctx = QuantizedContext::new(BTreeMap::new(), BTreeMap::new(), out_formats);
        let mut e = QuantizedExecutor::new(&ctx);
        let m = Matrix::from_rows(&[&[0.3, 1.26]]);
        let snapped = e.gemm_output("w", m);
        assert_eq!(snapped.as_slice(), &[0.3125, 1.25]);
    }
}
