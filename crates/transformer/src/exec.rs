//! Execution hooks: one forward-pass implementation, three behaviours.
//!
//! [`Model::forward`](crate::Model::forward) routes every activation
//! tensor, weight lookup, and GEMM output through an [`Executor`]:
//!
//! * [`FpExecutor`] — identity hooks: the FP32 reference path.
//! * [`ProfilingExecutor`] — observes activations and GEMM output ranges
//!   into an [`ActivationProfiler`] (the paper's one-batch profiling run).
//! * [`QuantizedExecutor`] — Mokey inference: activations are quantized to
//!   codes and decoded to centroids at every GEMM input, weights are
//!   replaced by their decoded centroid matrices, and GEMM outputs snap to
//!   the per-tensor 16-bit fixed-point grid (paper Eq. 7/8). Numerically,
//!   this is exactly the index-domain datapath — the equivalence is
//!   property-tested in `mokey-core::kernels`.

use crate::model::{Model, TaskOutput};
use mokey_core::dict::TensorDict;
use mokey_core::profile::ActivationProfiler;
use mokey_fixed::{snap_to_grid, QFormat};
use mokey_tensor::Matrix;
use std::collections::BTreeMap;

/// Hooks invoked by the shared forward-pass implementation.
///
/// All methods default to the identity, so the FP path costs nothing.
pub trait Executor {
    /// Observes/transforms a named activation tensor before it feeds a
    /// GEMM.
    fn activation(&mut self, _name: &str, m: Matrix) -> Matrix {
        m
    }

    /// Returns a replacement for a named weight tensor, if this executor
    /// substitutes weights (quantized execution).
    fn weight_override(&self, _name: &str) -> Option<&Matrix> {
        None
    }

    /// Observes/transforms a named GEMM output (bias already added).
    fn gemm_output(&mut self, _name: &str, m: Matrix) -> Matrix {
        m
    }
}

/// The FP32 reference path: every hook is the identity.
#[derive(Debug, Clone, Copy, Default)]
pub struct FpExecutor;

impl Executor for FpExecutor {}

/// Records every activation and GEMM-output distribution into an
/// [`ActivationProfiler`] — the paper's profiling run over a single batch.
///
/// GEMM outputs are recorded under `"<weight name>.out"`; their ranges
/// later define the Eq. 7 output fixed-point formats.
#[derive(Debug)]
pub struct ProfilingExecutor<'a> {
    profiler: &'a mut ActivationProfiler,
}

impl<'a> ProfilingExecutor<'a> {
    /// Wraps a profiler for one or more forward passes.
    pub fn new(profiler: &'a mut ActivationProfiler) -> Self {
        Self { profiler }
    }
}

impl Executor for ProfilingExecutor<'_> {
    fn activation(&mut self, name: &str, m: Matrix) -> Matrix {
        self.profiler.observe(name, &m);
        m
    }

    fn gemm_output(&mut self, name: &str, m: Matrix) -> Matrix {
        self.profiler.observe(&format!("{name}.out"), &m);
        m
    }
}

/// Everything the quantized path needs, shared read-only across worker
/// threads.
#[derive(Debug, Clone)]
pub struct QuantizedContext {
    /// Decoded centroid weight matrices (present when weights are
    /// quantized).
    pub weights: BTreeMap<String, Matrix>,
    /// Per-activation-tensor dictionaries (present when activations are
    /// quantized).
    pub act_dicts: BTreeMap<String, TensorDict>,
    /// Per-GEMM-output 16-bit fixed-point formats (Eq. 7 from profiled
    /// ranges).
    pub out_formats: BTreeMap<String, QFormat>,
}

impl QuantizedContext {
    /// Runs a coalesced batch of requests through **one** executor — the
    /// serving engine's batched path. Activations are re-encoded on the
    /// fly through the cached per-tensor dictionaries, exactly as in
    /// per-request execution; since the hooks are stateless apart from
    /// the counters, each output is bit-identical to running its request
    /// alone, regardless of how the batcher grouped them.
    ///
    /// Returns per-request `(output, stats)` pairs plus the merged
    /// batch-level counters.
    pub fn infer_batch(
        &self,
        model: &Model,
        batch: &[Vec<usize>],
    ) -> (Vec<(TaskOutput, QuantizedStats)>, QuantizedStats) {
        let mut exec = QuantizedExecutor::new(self);
        let mut outputs = Vec::with_capacity(batch.len());
        let mut prev = QuantizedStats::default();
        for tokens in batch {
            let out = model.infer(&mut exec, tokens);
            let now = exec.stats();
            outputs.push((out, now.diff(&prev)));
            prev = now;
        }
        (outputs, prev)
    }
}

/// Counters describing one quantized forward pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantizedStats {
    /// Activation values encoded.
    pub act_values: usize,
    /// Of those, how many hit the outlier dictionary (Table I's "A OT %").
    pub act_outliers: usize,
}

impl QuantizedStats {
    /// Merges counters from another pass.
    pub fn merge(&mut self, other: &QuantizedStats) {
        self.act_values += other.act_values;
        self.act_outliers += other.act_outliers;
    }

    /// Counters accumulated since an earlier snapshot (`earlier` must be
    /// a prefix of this accumulation, as in the batched execution loop).
    pub fn diff(&self, earlier: &QuantizedStats) -> QuantizedStats {
        QuantizedStats {
            act_values: self.act_values - earlier.act_values,
            act_outliers: self.act_outliers - earlier.act_outliers,
        }
    }

    /// Outlier fraction (0 when nothing was encoded).
    pub fn outlier_fraction(&self) -> f64 {
        if self.act_values == 0 {
            0.0
        } else {
            self.act_outliers as f64 / self.act_values as f64
        }
    }
}

/// Mokey quantized inference.
#[derive(Debug)]
pub struct QuantizedExecutor<'a> {
    ctx: &'a QuantizedContext,
    stats: QuantizedStats,
}

impl<'a> QuantizedExecutor<'a> {
    /// Creates an executor over a shared context.
    pub fn new(ctx: &'a QuantizedContext) -> Self {
        Self { ctx, stats: QuantizedStats::default() }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> QuantizedStats {
        self.stats
    }
}

impl Executor for QuantizedExecutor<'_> {
    fn activation(&mut self, name: &str, m: Matrix) -> Matrix {
        let Some(dict) = self.ctx.act_dicts.get(name) else {
            return m;
        };
        let mut out = m;
        for v in out.as_mut_slice() {
            let code = dict.encode_value(*v);
            self.stats.act_values += 1;
            if code.is_outlier() {
                self.stats.act_outliers += 1;
            }
            *v = dict.decode_code(code) as f32;
        }
        out
    }

    fn weight_override(&self, name: &str) -> Option<&Matrix> {
        self.ctx.weights.get(name)
    }

    fn gemm_output(&mut self, name: &str, m: Matrix) -> Matrix {
        let Some(fmt) = self.ctx.out_formats.get(name) else {
            return m;
        };
        let frac = fmt.frac_bits();
        let mut out = m;
        for v in out.as_mut_slice() {
            *v = snap_to_grid(f64::from(*v), frac) as f32;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mokey_core::curve::ExpCurve;
    use mokey_core::profile::ProfileConfig;
    use mokey_tensor::init::GaussianMixture;

    #[test]
    fn fp_executor_is_identity() {
        let m = GaussianMixture::pure(0.0, 1.0).sample_matrix(4, 4, 1);
        let mut e = FpExecutor;
        assert_eq!(e.activation("x", m.clone()), m);
        assert_eq!(e.gemm_output("x", m.clone()), m);
        assert!(e.weight_override("x").is_none());
    }

    #[test]
    fn profiling_executor_records_everything() {
        let mut profiler = ActivationProfiler::new(ProfileConfig::default());
        let m = GaussianMixture::pure(0.5, 2.0).sample_matrix(8, 8, 2);
        {
            let mut e = ProfilingExecutor::new(&mut profiler);
            let _ = e.activation("a", m.clone());
            let _ = e.gemm_output("w", m.clone());
        }
        assert_eq!(profiler.profile("a").unwrap().seen(), 64);
        assert_eq!(profiler.profile("w.out").unwrap().seen(), 64);
    }

    #[test]
    fn quantized_executor_decodes_to_centroids_and_counts() {
        let m = GaussianMixture::activation_like(0.0, 1.0).sample_matrix(16, 16, 3);
        let dict =
            TensorDict::for_values(m.as_slice(), &ExpCurve::paper(), &Default::default()).unwrap();
        let mut act_dicts = BTreeMap::new();
        act_dicts.insert("a".to_string(), dict.clone());
        let ctx =
            QuantizedContext { weights: BTreeMap::new(), act_dicts, out_formats: BTreeMap::new() };
        let mut e = QuantizedExecutor::new(&ctx);
        let out = e.activation("a", m.clone());
        assert_eq!(e.stats().act_values, 256);
        // Every output value must be a signed centroid.
        let centroids: Vec<f64> = dict.signed_centroids().iter().map(|(v, _)| *v).collect();
        for &v in out.as_slice() {
            let d =
                centroids.iter().map(|&c| (c - f64::from(v)).abs()).fold(f64::INFINITY, f64::min);
            assert!(d < 1e-5, "{v} is not a centroid");
        }
        // Unknown tensors pass through untouched.
        let untouched = e.activation("unknown", m.clone());
        assert_eq!(untouched, m);
    }

    #[test]
    fn batched_execution_is_bit_identical_to_per_request() {
        use crate::config::ModelConfig;
        use crate::model::Head;
        use crate::quantize::QuantizedModel;
        use crate::QuantizeSpec;

        let config = ModelConfig {
            name: "exec-batch".into(),
            layers: 1,
            hidden: 32,
            heads: 2,
            ff: 64,
            vocab: 200,
            max_seq: 16,
        };
        let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 3);
        let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(12, 50 + s)).collect();
        let (qm, _) =
            QuantizedModel::prepare(&model, QuantizeSpec::weights_and_activations(), &profile);
        let batch: Vec<Vec<usize>> = (0..5).map(|s| model.random_tokens(10, 400 + s)).collect();
        let (results, total) = qm.context().infer_batch(&model, &batch);
        assert_eq!(results.len(), 5);
        let mut merged = QuantizedStats::default();
        for (tokens, (out, stats)) in batch.iter().zip(&results) {
            // Per-request outputs and counters match a solo run exactly.
            let (solo_out, solo_stats) = qm.infer(tokens);
            assert_eq!(out, &solo_out);
            assert_eq!(stats, &solo_stats);
            merged.merge(stats);
        }
        assert_eq!(total, merged);
    }

    #[test]
    fn gemm_output_snaps_to_grid() {
        let mut out_formats = BTreeMap::new();
        out_formats.insert("w".to_string(), QFormat::new(16, 4));
        let ctx =
            QuantizedContext { weights: BTreeMap::new(), act_dicts: BTreeMap::new(), out_formats };
        let mut e = QuantizedExecutor::new(&ctx);
        let m = Matrix::from_rows(&[&[0.3, 1.26]]);
        let snapped = e.gemm_output("w", m);
        assert_eq!(snapped.as_slice(), &[0.3125, 1.25]);
    }
}
