//! Synthetic evaluation tasks calibrated to the paper's FP scores.
//!
//! The paper scores pre-trained checkpoints on MNLI (accuracy), STS-B
//! (Spearman) and SQuAD v1 (F1). Those datasets are substituted (see
//! `DESIGN.md`). Two properties of the real setting must be preserved for
//! Table I's *error deltas* to be meaningful:
//!
//! 1. **The FP operating point**: the FP model must score what the paper
//!    reports (e.g. 84.44 for BERT-Base MNLI). Real models miss the
//!    remaining ~15% on genuinely ambiguous examples (aleatoric noise),
//!    not on examples they are unsure about.
//! 2. **Margin concentration**: trained models are *confident* on the
//!    examples they get right — decision margins are large relative to
//!    the logit perturbation a 4-bit quantizer induces. Random synthetic
//!    models have no such concentration, so a naive construction
//!    overstates quantization damage by an order of magnitude.
//!
//! The decision tasks (MNLI, SQuAD) therefore build their dev sets in the
//! trained-model regime: candidate inputs are drawn, the FP model's
//! decisive samples (top margins) form the "easy" mass whose labels are
//! the FP decisions, and a calibrated fraction of ambiguous samples with
//! uniformly random labels supplies the aleatoric miss mass. The FP score
//! then sits at the paper's value by construction, and quantization error
//! shows up — exactly as in the paper — only where it flips genuinely
//! close decisions. The regression task (STS-B) keeps the additive-noise
//! calibration since rank correlation degrades smoothly (no decision
//! thresholds); its deltas run larger than the paper's and EXPERIMENTS.md
//! discusses why.

use crate::model::{Model, TaskOutput};
use crate::quantize::infer_fp_batch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Which benchmark a task mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// 3-class NLI, metric: matched accuracy (%).
    Mnli,
    /// Sentence-similarity regression, metric: Spearman × 100.
    StsB,
    /// Span extraction, metric: token-overlap F1 × 100.
    Squad,
}

impl TaskKind {
    /// The sequence length the paper uses for this task (Section IV-D:
    /// "BERT-Large and RoBERTa-Large on the SQuAD task used a sequence
    /// length of 384 tokens, while for other model/tasks use a sequence
    /// length of 128").
    pub fn paper_seq_len(&self) -> usize {
        match self {
            TaskKind::Squad => 384,
            _ => 128,
        }
    }
}

/// Task construction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Benchmark style.
    pub kind: TaskKind,
    /// Sequence length of each sample.
    pub seq_len: usize,
    /// Number of evaluation samples.
    pub n_eval: usize,
    /// FP score to calibrate to (the paper's "FP Score" column).
    pub fp_target: f64,
    /// Dataset RNG seed.
    pub seed: u64,
}

/// Ground-truth labels, per task style.
#[derive(Debug, Clone, PartialEq)]
pub enum Labels {
    /// Class index per sample.
    Class(Vec<usize>),
    /// Regression target per sample.
    Score(Vec<f64>),
    /// Gold `(start, end)` span per sample.
    Span(Vec<(usize, usize)>),
}

/// A calibrated dataset: inputs, labels, and the achieved FP score.
#[derive(Debug, Clone)]
pub struct CalibratedTask {
    /// Token sequences.
    pub inputs: Vec<Vec<usize>>,
    labels: Labels,
    /// Label-noise sigma (regression tasks; 0 for decision tasks).
    pub noise_sigma: f64,
    /// The FP model's score on the calibrated labels (≈ `fp_target`).
    pub fp_score: f64,
    kind: TaskKind,
}

/// Candidate-pool oversampling factor for margin selection.
const POOL_FACTOR: usize = 3;

impl CalibratedTask {
    /// Generates inputs, runs the FP model, and calibrates labels so the
    /// FP score hits `spec.fp_target`.
    ///
    /// # Panics
    ///
    /// Panics if the task kind does not match the model's head or
    /// `n_eval == 0`.
    pub fn build(model: &Model, spec: &TaskSpec) -> Self {
        assert!(spec.n_eval > 0, "need at least one evaluation sample");
        match spec.kind {
            TaskKind::Mnli => Self::build_classification(model, spec),
            TaskKind::Squad => Self::build_span(model, spec),
            TaskKind::StsB => Self::build_regression(model, spec),
        }
    }

    fn draw_inputs(model: &Model, spec: &TaskSpec, n: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| model.random_tokens(spec.seq_len, spec.seed.wrapping_add(i as u64)))
            .collect()
    }

    /// MNLI-style: margin-selected decisive samples plus a calibrated
    /// ambiguous mass with uniform labels.
    fn build_classification(model: &Model, spec: &TaskSpec) -> Self {
        let pool = Self::draw_inputs(model, spec, POOL_FACTOR * spec.n_eval);
        let fp = infer_fp_batch(model, &pool);
        let classes = match &fp[0] {
            TaskOutput::Logits(l) => l.len(),
            _ => panic!("MNLI task needs a classification head"),
        };
        // Rank candidates by decision margin (top1 − top2).
        let mut by_margin: Vec<usize> = (0..pool.len()).collect();
        let margin = |out: &TaskOutput| -> f64 {
            let TaskOutput::Logits(l) = out else { unreachable!() };
            let (m1, m2) = top2(l);
            f64::from(m1 - m2)
        };
        by_margin
            .sort_by(|&i, &j| margin(&fp[j]).partial_cmp(&margin(&fp[i])).expect("finite margins"));
        let chosen: Vec<usize> = by_margin.into_iter().take(spec.n_eval).collect();

        // Aleatoric mass: fraction p gets uniform labels so that the FP
        // expectation is the target: (1−p)·100 + p·100/k = target.
        let k = classes as f64;
        let p = ((100.0 - spec.fp_target) / 100.0 * k / (k - 1.0)).clamp(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xCA11_B8A7);
        let mut labels = Vec::with_capacity(chosen.len());
        let mut inputs = Vec::with_capacity(chosen.len());
        for &i in &chosen {
            let TaskOutput::Logits(l) = &fp[i] else { unreachable!() };
            let label = if rng.gen::<f64>() < p { rng.gen_range(0..classes) } else { argmax(l) };
            labels.push(label);
            inputs.push(pool[i].clone());
        }
        let labels = Labels::Class(labels);
        let fp_chosen: Vec<TaskOutput> = chosen.iter().map(|&i| fp[i].clone()).collect();
        let fp_score = score_outputs(spec.kind, &fp_chosen, &labels);
        Self { inputs, labels, noise_sigma: 0.0, fp_score, kind: spec.kind }
    }

    /// SQuAD-style: margin-selected spans plus a calibrated fraction of
    /// random gold spans.
    fn build_span(model: &Model, spec: &TaskSpec) -> Self {
        let pool = Self::draw_inputs(model, spec, POOL_FACTOR * spec.n_eval);
        let fp = infer_fp_batch(model, &pool);
        let margin = |out: &TaskOutput| -> f64 {
            let TaskOutput::Span(s, e) = out else { panic!("SQuAD task needs a span head") };
            let (s1, s2) = top2(s);
            let (e1, e2) = top2(e);
            f64::from((s1 - s2).min(e1 - e2))
        };
        let mut by_margin: Vec<usize> = (0..pool.len()).collect();
        by_margin
            .sort_by(|&i, &j| margin(&fp[j]).partial_cmp(&margin(&fp[i])).expect("finite margins"));
        let chosen: Vec<usize> = by_margin.into_iter().take(spec.n_eval).collect();

        // Random gold spans score ~r̄ F1 against the FP span; solve
        // (1−p)·100 + p·r̄ = target.
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xCA11_B8A7);
        let seq = spec.seq_len;
        let random_span = |rng: &mut StdRng| -> (usize, usize) {
            let a = rng.gen_range(0..seq);
            let len = rng.gen_range(1..=8.min(seq));
            (a, (a + len - 1).min(seq - 1))
        };
        // Estimate r̄ empirically.
        let mut trial_rng = StdRng::seed_from_u64(spec.seed ^ 0x5EED);
        let mut rbar = 0.0;
        for &i in chosen.iter().take(64.min(chosen.len())) {
            let TaskOutput::Span(s, e) = &fp[i] else { unreachable!() };
            let fp_span = ordered(argmax(s), argmax(e));
            rbar += 100.0 * span_f1(random_span(&mut trial_rng), fp_span);
        }
        rbar /= 64.min(chosen.len()) as f64;
        let p = ((100.0 - spec.fp_target) / (100.0 - rbar).max(1e-9)).clamp(0.0, 1.0);

        let mut labels = Vec::with_capacity(chosen.len());
        let mut inputs = Vec::with_capacity(chosen.len());
        for &i in &chosen {
            let TaskOutput::Span(s, e) = &fp[i] else { unreachable!() };
            let gold = if rng.gen::<f64>() < p {
                random_span(&mut rng)
            } else {
                ordered(argmax(s), argmax(e))
            };
            labels.push(gold);
            inputs.push(pool[i].clone());
        }
        let labels = Labels::Span(labels);
        let fp_chosen: Vec<TaskOutput> = chosen.iter().map(|&i| fp[i].clone()).collect();
        let fp_score = score_outputs(spec.kind, &fp_chosen, &labels);
        Self { inputs, labels, noise_sigma: 0.0, fp_score, kind: spec.kind }
    }

    /// STS-B-style: additive label noise with bisection calibration (rank
    /// correlation degrades smoothly — no margin structure to emulate).
    fn build_regression(model: &Model, spec: &TaskSpec) -> Self {
        let inputs = Self::draw_inputs(model, spec, spec.n_eval);
        let fp = infer_fp_batch(model, &inputs);
        let scores: Vec<f64> = fp
            .iter()
            .map(|out| {
                let TaskOutput::Score(s) = out else {
                    panic!("STS-B task needs a regression head")
                };
                f64::from(*s)
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xCA11_B8A7);
        let normal = Normal::new(0.0, 1.0).expect("N(0,1)");
        let noise: Vec<f64> = (0..scores.len()).map(|_| normal.sample(&mut rng)).collect();
        let scale = (scores.iter().map(|s| s.abs()).sum::<f64>() / scores.len() as f64).max(1e-6);

        let spearman_at = |sigma: f64| -> f64 {
            let labels: Vec<f64> = scores.iter().zip(&noise).map(|(s, g)| s + sigma * g).collect();
            100.0 * spearman(&scores, &labels)
        };
        let (mut lo, mut hi) = (0.0f64, scale * 0.25);
        let mut guard = 0;
        while spearman_at(hi) > spec.fp_target && guard < 24 {
            hi *= 2.0;
            guard += 1;
        }
        for _ in 0..40 {
            let mid = (lo + hi) / 2.0;
            if spearman_at(mid) > spec.fp_target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let sigma = (lo + hi) / 2.0;
        let labels = Labels::Score(scores.iter().zip(&noise).map(|(s, g)| s + sigma * g).collect());
        let fp_score = score_outputs(spec.kind, &fp, &labels);
        Self { inputs, labels, noise_sigma: sigma, fp_score, kind: spec.kind }
    }

    /// Scores a set of model outputs against the calibrated labels, on the
    /// paper's scale (percent).
    ///
    /// # Panics
    ///
    /// Panics if the outputs' variant does not match the task kind or the
    /// count differs from the dataset.
    pub fn score(&self, outputs: &[TaskOutput]) -> f64 {
        assert_eq!(outputs.len(), self.inputs.len(), "output count mismatch");
        score_outputs(self.kind, outputs, &self.labels)
    }

    /// The labels (for tests).
    pub fn labels(&self) -> &Labels {
        &self.labels
    }
}

fn top2(v: &[f32]) -> (f32, f32) {
    let mut m1 = f32::NEG_INFINITY;
    let mut m2 = f32::NEG_INFINITY;
    for &x in v {
        if x > m1 {
            m2 = m1;
            m1 = x;
        } else if x > m2 {
            m2 = x;
        }
    }
    (m1, m2)
}

fn argmax(v: &[f32]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn ordered(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn score_outputs(kind: TaskKind, outputs: &[TaskOutput], labels: &Labels) -> f64 {
    match (kind, labels) {
        (TaskKind::Mnli, Labels::Class(gold)) => {
            let correct = outputs
                .iter()
                .zip(gold)
                .filter(|(out, &g)| {
                    let TaskOutput::Logits(l) = out else {
                        panic!("classification output expected")
                    };
                    argmax(l) == g
                })
                .count();
            100.0 * correct as f64 / outputs.len() as f64
        }
        (TaskKind::StsB, Labels::Score(gold)) => {
            let preds: Vec<f64> = outputs
                .iter()
                .map(|out| {
                    let TaskOutput::Score(s) = out else { panic!("regression output expected") };
                    f64::from(*s)
                })
                .collect();
            100.0 * spearman(&preds, gold)
        }
        (TaskKind::Squad, Labels::Span(gold)) => {
            let mut total = 0.0;
            for (out, &g) in outputs.iter().zip(gold) {
                let TaskOutput::Span(s, e) = out else { panic!("span output expected") };
                let pred = ordered(argmax(s), argmax(e));
                total += span_f1(pred, g);
            }
            100.0 * total / outputs.len() as f64
        }
        _ => panic!("label variant does not match task kind"),
    }
}

/// Spearman rank correlation with average ranks for ties.
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than 2 elements.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "spearman length mismatch");
    assert!(a.len() >= 2, "spearman needs at least 2 points");
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).expect("finite values"));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// SQuAD-style token-overlap F1 between two (inclusive) spans.
pub fn span_f1(pred: (usize, usize), gold: (usize, usize)) -> f64 {
    let (ps, pe) = pred;
    let (gs, ge) = gold;
    let overlap_start = ps.max(gs);
    let overlap_end = pe.min(ge);
    if overlap_end < overlap_start {
        return 0.0;
    }
    let overlap = (overlap_end - overlap_start + 1) as f64;
    let p_len = (pe - ps + 1) as f64;
    let g_len = (ge - gs + 1) as f64;
    let precision = overlap / p_len;
    let recall = overlap / g_len;
    2.0 * precision * recall / (precision + recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::Head;

    fn tiny_model(head: Head, seed: u64) -> Model {
        let config = ModelConfig {
            name: "tiny".into(),
            layers: 2,
            hidden: 64,
            heads: 2,
            ff: 128,
            vocab: 300,
            max_seq: 48,
        };
        Model::synthesize(&config, head, seed)
    }

    #[test]
    fn spearman_perfect_and_reversed() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((spearman(&a, &[10.0, 20.0, 30.0, 40.0]) - 1.0).abs() < 1e-12);
        assert!((spearman(&a, &[4.0, 3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn span_f1_reference_values() {
        assert_eq!(span_f1((5, 10), (5, 10)), 1.0);
        assert_eq!(span_f1((0, 1), (5, 10)), 0.0);
        // pred [0,5] (6 tokens), gold [3,8] (6 tokens), overlap [3,5] (3):
        // p = r = 0.5 -> f1 = 0.5.
        assert!((span_f1((0, 5), (3, 8)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mnli_calibration_hits_target() {
        let model = tiny_model(Head::Classification { classes: 3 }, 21);
        let spec =
            TaskSpec { kind: TaskKind::Mnli, seq_len: 16, n_eval: 400, fp_target: 84.44, seed: 1 };
        let task = CalibratedTask::build(&model, &spec);
        assert!(
            (task.fp_score - 84.44).abs() < 4.0,
            "calibrated fp score {} vs target 84.44",
            task.fp_score
        );
    }

    #[test]
    fn stsb_calibration_hits_target() {
        let model = tiny_model(Head::Regression, 22);
        let spec =
            TaskSpec { kind: TaskKind::StsB, seq_len: 16, n_eval: 300, fp_target: 90.25, seed: 2 };
        let task = CalibratedTask::build(&model, &spec);
        assert!(
            (task.fp_score - 90.25).abs() < 2.5,
            "calibrated fp score {} vs target 90.25",
            task.fp_score
        );
        assert!(task.noise_sigma > 0.0);
    }

    #[test]
    fn squad_calibration_hits_target() {
        let model = tiny_model(Head::Span, 23);
        let spec =
            TaskSpec { kind: TaskKind::Squad, seq_len: 24, n_eval: 200, fp_target: 93.15, seed: 3 };
        let task = CalibratedTask::build(&model, &spec);
        assert!(
            (task.fp_score - 93.15).abs() < 4.0,
            "calibrated fp score {} vs target 93.15",
            task.fp_score
        );
    }

    #[test]
    fn perfect_outputs_score_is_fp_score() {
        let model = tiny_model(Head::Classification { classes: 3 }, 24);
        let spec =
            TaskSpec { kind: TaskKind::Mnli, seq_len: 12, n_eval: 120, fp_target: 80.0, seed: 4 };
        let task = CalibratedTask::build(&model, &spec);
        let fp_outputs = infer_fp_batch(&model, &task.inputs);
        let score = task.score(&fp_outputs);
        assert!((score - task.fp_score).abs() < 1e-9);
    }

    #[test]
    fn decision_tasks_select_decisive_samples() {
        // The chosen samples' FP margins must exceed the pool median (the
        // trained-regime emulation).
        let model = tiny_model(Head::Classification { classes: 3 }, 25);
        let spec =
            TaskSpec { kind: TaskKind::Mnli, seq_len: 12, n_eval: 50, fp_target: 84.0, seed: 6 };
        let task = CalibratedTask::build(&model, &spec);
        let chosen_fp = infer_fp_batch(&model, &task.inputs);
        let pool: Vec<Vec<usize>> =
            (0..150).map(|i| model.random_tokens(12, spec.seed.wrapping_add(i as u64))).collect();
        let pool_fp = infer_fp_batch(&model, &pool);
        let margin = |out: &TaskOutput| {
            let TaskOutput::Logits(l) = out else { unreachable!() };
            let (a, b) = super::top2(l);
            f64::from(a - b)
        };
        let mut pool_margins: Vec<f64> = pool_fp.iter().map(margin).collect();
        pool_margins.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = pool_margins[pool_margins.len() / 2];
        let chosen_mean: f64 = chosen_fp.iter().map(margin).sum::<f64>() / chosen_fp.len() as f64;
        assert!(chosen_mean > median, "chosen mean {chosen_mean} <= pool median {median}");
    }

    #[test]
    #[should_panic(expected = "output count mismatch")]
    fn score_with_wrong_count_panics() {
        let model = tiny_model(Head::Classification { classes: 3 }, 25);
        let spec =
            TaskSpec { kind: TaskKind::Mnli, seq_len: 8, n_eval: 10, fp_target: 80.0, seed: 5 };
        let task = CalibratedTask::build(&model, &spec);
        let _ = task.score(&[]);
    }
}
