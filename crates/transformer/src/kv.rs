//! The quantized KV-cache backing autoregressive decode.
//!
//! Mokey quantizes *activations* on the fly with per-tensor
//! dictionaries; K and V projections are just activations, so the cache
//! stores each position's K/V rows as the 5-bit **codes** the encoding
//! hook produced (`L{li}.attn.k` / `L{li}.attn.v` dictionaries), not as
//! floats — 5 bits per value instead of 32. At attention time a row is
//! rematerialized through the tensor's
//! [`DecodeLut`] (one table gather per
//! value), which reproduces the hook's float output bit-exactly; the
//! incremental step therefore computes the same attention a full
//! recompute of the prefix would.

use crate::exec::CapturedCodes;
use mokey_core::encode::Code;
use mokey_core::lut::DecodeLut;
use mokey_tensor::Matrix;

/// One layer's cached K and V code rows.
#[derive(Debug, Clone, Default)]
struct LayerKv {
    k_bits: Vec<u8>,
    v_bits: Vec<u8>,
}

/// Per-layer quantized K/V storage for one generation, growing one row
/// per decoded token (plus the whole prompt at prefill).
#[derive(Debug, Clone)]
pub struct KvCache {
    layers: Vec<LayerKv>,
    hidden: usize,
}

impl KvCache {
    /// An empty cache for `layers` encoder layers of width `hidden`.
    pub fn new(layers: usize, hidden: usize) -> Self {
        Self { layers: vec![LayerKv::default(); layers], hidden }
    }

    /// Number of layers the cache covers.
    pub fn layers(&self) -> usize {
        self.layers.len()
    }

    /// Cached positions (rows) in one layer. All layers agree between
    /// steps; mid-step, layers already visited are one row ahead.
    pub fn positions(&self, li: usize) -> usize {
        self.layers[li].k_bits.len() / self.hidden
    }

    /// Cache size in bytes (one byte per stored 5-bit code).
    pub fn bytes(&self) -> usize {
        self.layers.iter().map(|l| l.k_bits.len() + l.v_bits.len()).sum()
    }

    /// Appends captured K and V code rows (one row per position — a
    /// whole prompt at prefill, a single row per decode step).
    ///
    /// # Panics
    ///
    /// Panics if the captures disagree with the cache width or with each
    /// other.
    pub fn append(&mut self, li: usize, k: &CapturedCodes, v: &CapturedCodes) {
        assert_eq!(k.cols, self.hidden, "K capture width mismatch");
        assert_eq!(v.cols, self.hidden, "V capture width mismatch");
        assert_eq!(k.rows, v.rows, "K/V row count mismatch");
        let layer = &mut self.layers[li];
        layer.k_bits.extend_from_slice(&k.bits);
        layer.v_bits.extend_from_slice(&v.bits);
    }

    /// Rematerializes one layer's K rows (`positions × hidden`) through
    /// the tensor's decode table — bit-identical to the floats the
    /// encoding hook emitted when each row was cached.
    pub fn decode_k(&self, li: usize, lut: &DecodeLut) -> Matrix {
        decode_rows(&self.layers[li].k_bits, self.hidden, lut)
    }

    /// Rematerializes one layer's V rows (`positions × hidden`).
    pub fn decode_v(&self, li: usize, lut: &DecodeLut) -> Matrix {
        decode_rows(&self.layers[li].v_bits, self.hidden, lut)
    }
}

fn decode_rows(bits: &[u8], hidden: usize, lut: &DecodeLut) -> Matrix {
    let rows = bits.len() / hidden;
    let mut m = Matrix::zeros(rows, hidden);
    for (slot, &b) in m.as_mut_slice().iter_mut().zip(bits) {
        *slot = lut.value(Code::from_bits(b));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use mokey_core::curve::ExpCurve;
    use mokey_core::dict::TensorDict;
    use mokey_tensor::init::GaussianMixture;

    #[test]
    fn append_then_decode_reproduces_hook_floats() {
        let sample = GaussianMixture::activation_like(0.0, 1.0).sample_matrix(4, 8, 1);
        let dict =
            TensorDict::for_values(sample.as_slice(), &ExpCurve::paper(), &Default::default())
                .unwrap();
        let lut = DecodeLut::new(&dict);
        // Encode two rows the way the hook does, keeping bits + floats.
        let raw = GaussianMixture::activation_like(0.0, 1.0).sample_matrix(2, 8, 2);
        let mut bits = Vec::new();
        let mut floats = Vec::new();
        for &v in raw.as_slice() {
            let code = dict.encode_value(v);
            bits.push(code.to_bits());
            floats.push(lut.value(code));
        }
        let mut cache = KvCache::new(1, 8);
        let cap = CapturedCodes { bits: bits.clone(), rows: 2, cols: 8 };
        cache.append(0, &cap, &cap);
        assert_eq!(cache.positions(0), 2);
        assert_eq!(cache.bytes(), 2 * 2 * 8);
        assert_eq!(cache.decode_k(0, &lut).as_slice(), floats.as_slice());
        assert_eq!(cache.decode_v(0, &lut).as_slice(), floats.as_slice());
        // A second single-row append lands after the first two rows.
        let one = CapturedCodes { bits: bits[..8].to_vec(), rows: 1, cols: 8 };
        cache.append(0, &one, &one);
        assert_eq!(cache.positions(0), 3);
        assert_eq!(cache.decode_k(0, &lut).row(2), &floats[..8]);
    }
}
