//! The end-to-end Mokey pipeline over a model (paper Section II-G):
//! profile → build per-tensor dictionaries → pre-encode weights → run.
//!
//! All flow construction lives in [`mokey_pipeline::QuantSession`]; this
//! module adapts [`Model`] to the pipeline's [`ModelAdapter`] and wraps
//! the session products in a ready-to-infer [`QuantizedModel`].

use crate::exec::{
    ExecMode, LutLinear, ProfilingExecutor, QuantizedContext, QuantizedExecutor, QuantizedStats,
};
use crate::model::{Model, TaskOutput};
use mokey_core::dict::TensorDict;
use mokey_core::profile::ActivationProfiler;
use mokey_pipeline::{ModelAdapter, PipelineError, QuantSession};
use mokey_tensor::Matrix;

pub use mokey_pipeline::{QuantizationReport, QuantizeSpec};

impl ModelAdapter for Model {
    type Input = Vec<usize>;

    fn named_weights(&self) -> Vec<(String, &Matrix)> {
        self.weight_tensors()
    }

    fn run_profile(&self, profiler: &mut ActivationProfiler, tokens: &Vec<usize>) {
        let mut exec = ProfilingExecutor::new(profiler);
        let hidden = self.forward(&mut exec, tokens);
        let _ = self.apply_head(&mut exec, &hidden);
    }
}

/// A model prepared for Mokey inference.
///
/// # Example
///
/// ```
/// use mokey_transformer::{Head, Model, ModelConfig, QuantizeSpec, QuantizedModel};
///
/// let config = ModelConfig::bert_base().scaled(12, 12);
/// let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 1);
/// let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(16, s)).collect();
/// let (qmodel, report) = QuantizedModel::prepare(
///     &model, QuantizeSpec::weights_and_activations(), &profile);
/// assert!(report.weight_outlier_percent() < 5.0);
/// let (out, stats) = qmodel.infer(&model.random_tokens(16, 99));
/// assert!(stats.act_values > 0);
/// # let _ = out;
/// ```
#[derive(Debug)]
pub struct QuantizedModel<'m> {
    model: &'m Model,
    ctx: QuantizedContext,
}

impl<'m> QuantizedModel<'m> {
    /// Prepares quantized inference with a default session (paper curve
    /// constants, automatic parallelism): profiles activations over the
    /// given sequences (the paper uses a single batch of 8), builds
    /// dictionaries, and pre-encodes weights.
    ///
    /// # Panics
    ///
    /// Panics when the flow fails (degenerate tensor, or activation
    /// quantization without profiling sequences); use
    /// [`QuantizedModel::prepare_with_session`] to handle those as typed
    /// errors.
    pub fn prepare(
        model: &'m Model,
        spec: QuantizeSpec,
        profile_inputs: &[Vec<usize>],
    ) -> (Self, QuantizationReport) {
        let session = QuantSession::with_defaults();
        Self::prepare_with_session(&session, model, spec, profile_inputs)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Prepares quantized inference through an existing [`QuantSession`],
    /// sharing its curve, configuration, and dictionary cache (repeated
    /// preparations of the same model reuse cached weight dictionaries).
    ///
    /// # Errors
    ///
    /// Propagates the session's [`PipelineError`] (degenerate tensor, or
    /// missing profiling inputs).
    pub fn prepare_with_session(
        session: &QuantSession,
        model: &'m Model,
        spec: QuantizeSpec,
        profile_inputs: &[Vec<usize>],
    ) -> Result<(Self, QuantizationReport), PipelineError> {
        let mq = session.quantize_model(model, spec, profile_inputs)?;
        let weights = mq.decode_weights(session);
        // Index-domain retention: keep the codes of every weight whose
        // feeding activation is quantized, and build (or fetch from the
        // session's cross-model cache) the product table for each
        // (activation-dict, weight-dict) pair.
        let mut luts = std::collections::BTreeMap::new();
        for (name, q) in &mq.weights {
            for act_name in crate::exec::feeding_activations(name) {
                if let Some(act_dict) = mq.act_dicts.get(&act_name) {
                    let lut = session.pair_lut(act_dict, q.dict());
                    luts.insert(name.clone(), LutLinear { act_name, codes: q.clone(), lut });
                    break;
                }
            }
        }
        let mut ctx = QuantizedContext::new(weights, mq.act_dicts, mq.out_formats);
        ctx.set_index_domain(luts);
        Ok((Self { model, ctx }, mq.report))
    }

    /// The underlying FP model.
    pub fn model(&self) -> &Model {
        self.model
    }

    /// The quantization context (dictionaries, decoded weights, formats).
    pub fn context(&self) -> &QuantizedContext {
        &self.ctx
    }

    /// The activation dictionary of a named tensor, if present.
    pub fn act_dict(&self, name: &str) -> Option<&TensorDict> {
        self.ctx.act_dicts.get(name)
    }

    /// Quantized inference on one sequence, returning the head output and
    /// the activation-encoding counters.
    pub fn infer(&self, tokens: &[usize]) -> (TaskOutput, QuantizedStats) {
        self.infer_mode(tokens, ExecMode::Decoded)
    }

    /// [`QuantizedModel::infer`] with an explicit execution mode.
    /// [`ExecMode::IndexDomain`] output and counters are bit-identical to
    /// [`ExecMode::Decoded`].
    pub fn infer_mode(&self, tokens: &[usize], mode: ExecMode) -> (TaskOutput, QuantizedStats) {
        let mut exec = QuantizedExecutor::with_mode(&self.ctx, mode);
        let hidden = self.model.forward(&mut exec, tokens);
        let out = self.model.apply_head(&mut exec, &hidden);
        (out, exec.stats())
    }

    /// Releases the borrowed model and hands out the owned quantization
    /// context, so session products outlive the preparation call (the
    /// serving engine pairs the context with an owned model).
    pub fn into_context(self) -> QuantizedContext {
        self.ctx
    }

    /// Quantized forward pass only (final hidden states).
    pub fn forward(&self, tokens: &[usize]) -> (mokey_tensor::Matrix, QuantizedStats) {
        let mut exec = QuantizedExecutor::new(&self.ctx);
        let hidden = self.model.forward(&mut exec, tokens);
        (hidden, exec.stats())
    }
}

/// Runs FP inference over many sequences in parallel.
pub fn infer_fp_batch(model: &Model, inputs: &[Vec<usize>]) -> Vec<TaskOutput> {
    mokey_pipeline::parallel::map(inputs, mokey_pipeline::Parallelism::Auto, |tokens| {
        let mut exec = crate::exec::FpExecutor;
        let hidden = model.forward(&mut exec, tokens);
        model.apply_head(&mut exec, &hidden)
    })
}

/// Runs quantized inference over many sequences in parallel, merging the
/// activation counters.
pub fn infer_quantized_batch(
    qmodel: &QuantizedModel<'_>,
    inputs: &[Vec<usize>],
) -> (Vec<TaskOutput>, QuantizedStats) {
    let results = mokey_pipeline::parallel::map(inputs, mokey_pipeline::Parallelism::Auto, |t| {
        qmodel.infer(t)
    });
    let mut stats = QuantizedStats::default();
    let mut outputs = Vec::with_capacity(results.len());
    for (out, s) in results {
        stats.merge(&s);
        outputs.push(out);
    }
    (outputs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::exec::FpExecutor;
    use crate::model::Head;
    use mokey_pipeline::Parallelism;

    fn tiny_model() -> Model {
        let config = ModelConfig {
            name: "tiny".into(),
            layers: 2,
            hidden: 64,
            heads: 2,
            ff: 128,
            vocab: 300,
            max_seq: 32,
        };
        Model::synthesize(&config, Head::Classification { classes: 3 }, 11)
    }

    fn profile_inputs(model: &Model) -> Vec<Vec<usize>> {
        (0..4).map(|s| model.random_tokens(16, 1000 + s)).collect()
    }

    #[test]
    fn weight_only_quantization_reports_outliers() {
        let model = tiny_model();
        let (qm, report) = QuantizedModel::prepare(&model, QuantizeSpec::weights_only(), &[]);
        assert!(report.weight_values > 0);
        let pct = report.weight_outlier_percent();
        assert!(pct > 0.1 && pct < 6.0, "weight OT% {pct}");
        assert!(qm.context().act_dicts.is_empty());
        assert_eq!(report.weight_outlier_fractions.len(), model.weight_tensors().len());
    }

    #[test]
    fn quantized_outputs_track_fp_outputs() {
        let model = tiny_model();
        let (qm, _) = QuantizedModel::prepare(
            &model,
            QuantizeSpec::weights_and_activations(),
            &profile_inputs(&model),
        );
        let tokens = model.random_tokens(16, 5000);
        let fp = match model.infer(&mut FpExecutor, &tokens) {
            TaskOutput::Logits(l) => l,
            _ => unreachable!(),
        };
        let (q, stats) = qm.infer(&tokens);
        let TaskOutput::Logits(q) = q else { unreachable!() };
        assert!(stats.act_values > 0);
        // Quantized logits correlate strongly with FP logits.
        let cos = mokey_core::metrics::cosine_similarity(&fp, &q);
        assert!(cos > 0.8, "cosine {cos}; fp {fp:?} q {q:?}");
    }

    #[test]
    fn activation_outlier_rate_in_paper_band() {
        let model = tiny_model();
        let (qm, _) = QuantizedModel::prepare(
            &model,
            QuantizeSpec::weights_and_activations(),
            &profile_inputs(&model),
        );
        let mut stats = QuantizedStats::default();
        for s in 0..4 {
            let (_, st) = qm.infer(&model.random_tokens(16, 7000 + s));
            stats.merge(&st);
        }
        let pct = 100.0 * stats.outlier_fraction();
        // Paper Table I: 1.7–4.5%. Synthetic activations may run a little
        // wider; enforce a sane band.
        assert!(pct > 0.2 && pct < 12.0, "activation OT% {pct}");
    }

    #[test]
    fn batch_inference_matches_sequential() {
        let model = tiny_model();
        let inputs: Vec<Vec<usize>> = (0..6).map(|s| model.random_tokens(12, 100 + s)).collect();
        let batch = infer_fp_batch(&model, &inputs);
        for (tokens, out) in inputs.iter().zip(&batch) {
            let direct = model.infer(&mut FpExecutor, tokens);
            assert_eq!(&direct, out);
        }
    }

    #[test]
    fn quantized_batch_merges_stats() {
        let model = tiny_model();
        let (qm, _) = QuantizedModel::prepare(
            &model,
            QuantizeSpec::weights_and_activations(),
            &profile_inputs(&model),
        );
        let inputs: Vec<Vec<usize>> = (0..4).map(|s| model.random_tokens(12, 200 + s)).collect();
        let (outputs, stats) = infer_quantized_batch(&qm, &inputs);
        assert_eq!(outputs.len(), 4);
        let mut expect = QuantizedStats::default();
        for tokens in &inputs {
            expect.merge(&qm.infer(tokens).1);
        }
        assert_eq!(stats, expect);
    }

    #[test]
    fn serial_and_parallel_sessions_prepare_identical_contexts() {
        let model = tiny_model();
        let profile = profile_inputs(&model);
        let spec = QuantizeSpec::weights_and_activations();
        let serial = QuantSession::builder().parallelism(Parallelism::Serial).build();
        let parallel = QuantSession::builder().parallelism(Parallelism::Threads(3)).build();
        let (qs, rs) =
            QuantizedModel::prepare_with_session(&serial, &model, spec, &profile).unwrap();
        let (qp, rp) =
            QuantizedModel::prepare_with_session(&parallel, &model, spec, &profile).unwrap();
        assert_eq!(qs.context().weights, qp.context().weights);
        assert_eq!(qs.context().act_dicts, qp.context().act_dicts);
        assert_eq!(rs.weight_outliers, rp.weight_outliers);
        assert_eq!(rs.weight_outlier_fractions, rp.weight_outlier_fractions);
    }

    #[test]
    fn shared_session_reuses_cached_weight_dictionaries() {
        let model = tiny_model();
        let session = QuantSession::builder().parallelism(Parallelism::Serial).build();
        let (_, r1) = QuantizedModel::prepare_with_session(
            &session,
            &model,
            QuantizeSpec::weights_only(),
            &[],
        )
        .unwrap();
        let misses_after_first = session.cache_stats().misses;
        assert_eq!(misses_after_first, model.weight_tensors().len());
        let (_, r2) = QuantizedModel::prepare_with_session(
            &session,
            &model,
            QuantizeSpec::weights_only(),
            &[],
        )
        .unwrap();
        // Second preparation is served entirely from the cache.
        assert_eq!(session.cache_stats().misses, misses_after_first);
        assert_eq!(session.cache_stats().hits, misses_after_first);
        assert_eq!(r1.weight_outliers, r2.weight_outliers);
    }

    #[test]
    #[should_panic(expected = "requires at least one profiling sequence")]
    fn activation_quant_without_profile_panics() {
        let model = tiny_model();
        let _ = QuantizedModel::prepare(&model, QuantizeSpec::weights_and_activations(), &[]);
    }
}
