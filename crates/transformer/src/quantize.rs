//! The end-to-end Mokey pipeline over a model (paper Section II-G):
//! profile → build per-tensor dictionaries → pre-encode weights → run.

use crate::exec::{ProfilingExecutor, QuantizedContext, QuantizedExecutor, QuantizedStats};
use crate::model::{Model, TaskOutput};
use mokey_core::curve::ExpCurve;
use mokey_core::dict::{TensorDict, TensorDictConfig};
use mokey_core::encode::QuantizedTensor;
use mokey_core::profile::{ActivationProfiler, ProfileConfig};
use mokey_fixed::QFormat;
use std::collections::BTreeMap;

/// What to quantize (Table I evaluates both columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizeSpec {
    /// Quantize parameters and embeddings (offline, statically known).
    pub weights: bool,
    /// Quantize activations (profiled dictionaries, runtime encoding).
    pub activations: bool,
    /// Dictionary construction parameters.
    pub dict_config: TensorDictConfig,
    /// The fitted exponential curve shared by all dictionaries.
    pub curve: ExpCurve,
}

impl QuantizeSpec {
    /// Weights-only quantization (Table I, "Weight only Quant.").
    pub fn weights_only() -> Self {
        Self {
            weights: true,
            activations: false,
            dict_config: TensorDictConfig::default(),
            curve: ExpCurve::paper(),
        }
    }

    /// Weights + activations (Table I, "Weight + Activation Quant.").
    pub fn weights_and_activations() -> Self {
        Self { activations: true, ..Self::weights_only() }
    }
}

/// Per-tensor and aggregate statistics from quantizing a model.
#[derive(Debug, Clone, Default)]
pub struct QuantizationReport {
    /// Outlier fraction per weight tensor.
    pub weight_outlier_fractions: BTreeMap<String, f64>,
    /// Total weight values encoded.
    pub weight_values: usize,
    /// Total weight values that hit the outlier dictionary.
    pub weight_outliers: usize,
    /// Number of activation tensors with dictionaries.
    pub activation_tensors: usize,
}

impl QuantizationReport {
    /// Aggregate weight outlier percentage (Table I's "W OT %").
    pub fn weight_outlier_percent(&self) -> f64 {
        if self.weight_values == 0 {
            0.0
        } else {
            100.0 * self.weight_outliers as f64 / self.weight_values as f64
        }
    }
}

/// A model prepared for Mokey inference.
///
/// # Example
///
/// ```
/// use mokey_transformer::{Head, Model, ModelConfig, QuantizeSpec, QuantizedModel};
///
/// let config = ModelConfig::bert_base().scaled(12, 12);
/// let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 1);
/// let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(16, s)).collect();
/// let (qmodel, report) = QuantizedModel::prepare(
///     &model, QuantizeSpec::weights_and_activations(), &profile);
/// assert!(report.weight_outlier_percent() < 5.0);
/// let (out, stats) = qmodel.infer(&model.random_tokens(16, 99));
/// assert!(stats.act_values > 0);
/// # let _ = out;
/// ```
#[derive(Debug)]
pub struct QuantizedModel<'m> {
    model: &'m Model,
    ctx: QuantizedContext,
}

impl<'m> QuantizedModel<'m> {
    /// Prepares quantized inference: profiles activations over the given
    /// sequences (the paper uses a single batch of 8), builds dictionaries,
    /// and pre-encodes weights.
    pub fn prepare(
        model: &'m Model,
        spec: QuantizeSpec,
        profile_inputs: &[Vec<usize>],
    ) -> (Self, QuantizationReport) {
        let mut report = QuantizationReport::default();

        // Step: pre-encode weights offline.
        let mut weights = BTreeMap::new();
        if spec.weights {
            for (name, w) in model.weight_tensors() {
                let dict = TensorDict::for_values(w.as_slice(), &spec.curve, &spec.dict_config);
                let q = QuantizedTensor::encode(w, &dict);
                report.weight_values += q.codes().len();
                report.weight_outliers += q.outlier_count();
                report.weight_outlier_fractions.insert(name.clone(), q.outlier_fraction());
                weights.insert(name, q.decode());
            }
        }

        // Step: profile activations, derive dictionaries and Eq. 7 output
        // formats.
        let mut act_dicts = BTreeMap::new();
        let mut out_formats = BTreeMap::new();
        if spec.activations {
            assert!(
                !profile_inputs.is_empty(),
                "activation quantization requires at least one profiling sequence"
            );
            let mut profiler = ActivationProfiler::new(ProfileConfig::default());
            for tokens in profile_inputs {
                let mut exec = ProfilingExecutor::new(&mut profiler);
                let hidden = model.forward(&mut exec, tokens);
                let _ = model.apply_head(&mut exec, &hidden);
            }
            for name in profiler.tensor_names().map(str::to_owned).collect::<Vec<_>>() {
                let profile = profiler.profile(&name).expect("profiled name");
                if let Some(weight_name) = name.strip_suffix(".out") {
                    let s = profile.summary();
                    out_formats
                        .insert(weight_name.to_owned(), QFormat::for_range(16, s.min(), s.max()));
                } else {
                    act_dicts.insert(name, profile.build_dict(&spec.curve, &spec.dict_config));
                }
            }
            report.activation_tensors = act_dicts.len();
        }

        let ctx = QuantizedContext { weights, act_dicts, out_formats };
        (Self { model, ctx }, report)
    }

    /// The underlying FP model.
    pub fn model(&self) -> &Model {
        self.model
    }

    /// The quantization context (dictionaries, decoded weights, formats).
    pub fn context(&self) -> &QuantizedContext {
        &self.ctx
    }

    /// The activation dictionary of a named tensor, if present.
    pub fn act_dict(&self, name: &str) -> Option<&TensorDict> {
        self.ctx.act_dicts.get(name)
    }

    /// Quantized inference on one sequence, returning the head output and
    /// the activation-encoding counters.
    pub fn infer(&self, tokens: &[usize]) -> (TaskOutput, QuantizedStats) {
        let mut exec = QuantizedExecutor::new(&self.ctx);
        let hidden = self.model.forward(&mut exec, tokens);
        let out = self.model.apply_head(&mut exec, &hidden);
        (out, exec.stats())
    }

    /// Quantized forward pass only (final hidden states).
    pub fn forward(&self, tokens: &[usize]) -> (mokey_tensor::Matrix, QuantizedStats) {
        let mut exec = QuantizedExecutor::new(&self.ctx);
        let hidden = self.model.forward(&mut exec, tokens);
        (hidden, exec.stats())
    }
}

/// Runs FP inference over many sequences in parallel.
pub fn infer_fp_batch(model: &Model, inputs: &[Vec<usize>]) -> Vec<TaskOutput> {
    parallel_map(inputs, |tokens| {
        let mut exec = crate::exec::FpExecutor;
        let hidden = model.forward(&mut exec, tokens);
        model.apply_head(&mut exec, &hidden)
    })
}

/// Runs quantized inference over many sequences in parallel, merging the
/// activation counters.
pub fn infer_quantized_batch(
    qmodel: &QuantizedModel<'_>,
    inputs: &[Vec<usize>],
) -> (Vec<TaskOutput>, QuantizedStats) {
    let results = parallel_map(inputs, |tokens| qmodel.infer(tokens));
    let mut stats = QuantizedStats::default();
    let mut outputs = Vec::with_capacity(results.len());
    for (out, s) in results {
        stats.merge(&s);
        outputs.push(out);
    }
    (outputs, stats)
}

/// Order-preserving parallel map over a slice.
fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads =
        std::thread::available_parallelism().map_or(1, |n| n.get()).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (item_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in item_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("all slots filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::exec::FpExecutor;
    use crate::model::Head;

    fn tiny_model() -> Model {
        let config = ModelConfig {
            name: "tiny".into(),
            layers: 2,
            hidden: 64,
            heads: 2,
            ff: 128,
            vocab: 300,
            max_seq: 32,
        };
        Model::synthesize(&config, Head::Classification { classes: 3 }, 11)
    }

    fn profile_inputs(model: &Model) -> Vec<Vec<usize>> {
        (0..4).map(|s| model.random_tokens(16, 1000 + s)).collect()
    }

    #[test]
    fn weight_only_quantization_reports_outliers() {
        let model = tiny_model();
        let (qm, report) = QuantizedModel::prepare(&model, QuantizeSpec::weights_only(), &[]);
        assert!(report.weight_values > 0);
        let pct = report.weight_outlier_percent();
        assert!(pct > 0.1 && pct < 6.0, "weight OT% {pct}");
        assert!(qm.context().act_dicts.is_empty());
        assert_eq!(report.weight_outlier_fractions.len(), model.weight_tensors().len());
    }

    #[test]
    fn quantized_outputs_track_fp_outputs() {
        let model = tiny_model();
        let (qm, _) = QuantizedModel::prepare(
            &model,
            QuantizeSpec::weights_and_activations(),
            &profile_inputs(&model),
        );
        let tokens = model.random_tokens(16, 5000);
        let fp = match model.infer(&mut FpExecutor, &tokens) {
            TaskOutput::Logits(l) => l,
            _ => unreachable!(),
        };
        let (q, stats) = qm.infer(&tokens);
        let TaskOutput::Logits(q) = q else { unreachable!() };
        assert!(stats.act_values > 0);
        // Quantized logits correlate strongly with FP logits.
        let cos = mokey_core::metrics::cosine_similarity(&fp, &q);
        assert!(cos > 0.8, "cosine {cos}; fp {fp:?} q {q:?}");
    }

    #[test]
    fn activation_outlier_rate_in_paper_band() {
        let model = tiny_model();
        let (qm, _) = QuantizedModel::prepare(
            &model,
            QuantizeSpec::weights_and_activations(),
            &profile_inputs(&model),
        );
        let mut stats = QuantizedStats::default();
        for s in 0..4 {
            let (_, st) = qm.infer(&model.random_tokens(16, 7000 + s));
            stats.merge(&st);
        }
        let pct = 100.0 * stats.outlier_fraction();
        // Paper Table I: 1.7–4.5%. Synthetic activations may run a little
        // wider; enforce a sane band.
        assert!(pct > 0.2 && pct < 12.0, "activation OT% {pct}");
    }

    #[test]
    fn batch_inference_matches_sequential() {
        let model = tiny_model();
        let inputs: Vec<Vec<usize>> = (0..6).map(|s| model.random_tokens(12, 100 + s)).collect();
        let batch = infer_fp_batch(&model, &inputs);
        for (tokens, out) in inputs.iter().zip(&batch) {
            let direct = model.infer(&mut FpExecutor, tokens);
            assert_eq!(&direct, out);
        }
    }

    #[test]
    fn quantized_batch_merges_stats() {
        let model = tiny_model();
        let (qm, _) = QuantizedModel::prepare(
            &model,
            QuantizeSpec::weights_and_activations(),
            &profile_inputs(&model),
        );
        let inputs: Vec<Vec<usize>> = (0..4).map(|s| model.random_tokens(12, 200 + s)).collect();
        let (outputs, stats) = infer_quantized_batch(&qm, &inputs);
        assert_eq!(outputs.len(), 4);
        let mut expect = QuantizedStats::default();
        for tokens in &inputs {
            expect.merge(&qm.infer(tokens).1);
        }
        assert_eq!(stats, expect);
    }

    #[test]
    #[should_panic(expected = "requires at least one profiling sequence")]
    fn activation_quant_without_profile_panics() {
        let model = tiny_model();
        let _ = QuantizedModel::prepare(&model, QuantizeSpec::weights_and_activations(), &[]);
    }
}
