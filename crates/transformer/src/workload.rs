//! GEMM workload extraction for the accelerator simulator.
//!
//! The paper's performance/energy evaluation (Figs. 9–15, Tables II/III)
//! runs transformer inference through a cycle-level simulator. The
//! simulator does not need numerics — it needs the exact sequence of GEMM
//! shapes, which operand is a (statically resident) weight versus a
//! (streamed, runtime-produced) activation, and how many identical
//! instances occur (heads × batch).

use crate::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// Whether a GEMM operand is a parameter tensor or a runtime activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperandKind {
    /// Statically known parameter (loaded from DRAM, never written back).
    Weight,
    /// Runtime activation (produced by a previous layer, re-quantized by
    /// Mokey on the fly).
    Activation,
}

/// One GEMM shape in the inference workload: `count` independent instances
/// of an `m×k · k×n` product.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GemmShape {
    /// Layer-qualified name (e.g. `"L3.ffn.w1"`).
    pub name: String,
    /// Output rows (tokens × batch for projection layers).
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Number of independent instances (heads × batch for attention).
    pub count: usize,
    /// Left operand kind (always activation in inference).
    pub lhs: OperandKind,
    /// Right operand kind (weight for projections, activation for
    /// attention).
    pub rhs: OperandKind,
}

impl GemmShape {
    /// Multiply-accumulate operations across all instances.
    pub fn macs(&self) -> u64 {
        (self.m as u64) * (self.k as u64) * (self.n as u64) * (self.count as u64)
    }

    /// Left operand values per instance.
    pub fn lhs_values(&self) -> u64 {
        (self.m as u64) * (self.k as u64)
    }

    /// Right operand values per instance.
    pub fn rhs_values(&self) -> u64 {
        (self.k as u64) * (self.n as u64)
    }

    /// Output values per instance.
    pub fn out_values(&self) -> u64 {
        (self.m as u64) * (self.n as u64)
    }
}

/// Extracts the full inference GEMM workload for a model at a sequence
/// length and batch size.
///
/// Embedding gathers and element-wise operators (layer norm, softmax,
/// GELU) are not GEMMs; their traffic is <1% of the projection layers' and
/// is excluded, as in iso-GEMM accelerator comparisons.
///
/// # Example
///
/// ```
/// use mokey_transformer::{workload::model_gemms, ModelConfig};
///
/// let gemms = model_gemms(&ModelConfig::bert_base(), 128, 1);
/// let total_macs: u64 = gemms.iter().map(|g| g.macs()).sum();
/// // ~11.2 GMACs for BERT-Base at seq 128 (cf. Table II discussion).
/// assert!(total_macs > 10_000_000_000 && total_macs < 13_000_000_000);
/// ```
pub fn model_gemms(config: &ModelConfig, seq: usize, batch: usize) -> Vec<GemmShape> {
    let h = config.hidden;
    let dh = config.head_dim();
    let mut out = Vec::with_capacity(config.layers * 8);
    for li in 0..config.layers {
        let pre = format!("L{li}");
        for proj in ["wq", "wk", "wv"] {
            out.push(GemmShape {
                name: format!("{pre}.attn.{proj}"),
                m: batch * seq,
                k: h,
                n: h,
                count: 1,
                lhs: OperandKind::Activation,
                rhs: OperandKind::Weight,
            });
        }
        out.push(GemmShape {
            name: format!("{pre}.attn.scores"),
            m: seq,
            k: dh,
            n: seq,
            count: batch * config.heads,
            lhs: OperandKind::Activation,
            rhs: OperandKind::Activation,
        });
        out.push(GemmShape {
            name: format!("{pre}.attn.pv"),
            m: seq,
            k: seq,
            n: dh,
            count: batch * config.heads,
            lhs: OperandKind::Activation,
            rhs: OperandKind::Activation,
        });
        out.push(GemmShape {
            name: format!("{pre}.attn.wo"),
            m: batch * seq,
            k: h,
            n: h,
            count: 1,
            lhs: OperandKind::Activation,
            rhs: OperandKind::Weight,
        });
        out.push(GemmShape {
            name: format!("{pre}.ffn.w1"),
            m: batch * seq,
            k: h,
            n: config.ff,
            count: 1,
            lhs: OperandKind::Activation,
            rhs: OperandKind::Weight,
        });
        out.push(GemmShape {
            name: format!("{pre}.ffn.w2"),
            m: batch * seq,
            k: config.ff,
            n: h,
            count: 1,
            lhs: OperandKind::Activation,
            rhs: OperandKind::Weight,
        });
    }
    out
}

/// Total MACs of a workload.
pub fn total_macs(gemms: &[GemmShape]) -> u64 {
    gemms.iter().map(|g| g.macs()).sum()
}

/// Total weight values that must stream from DRAM (each weight read once
/// per inference at minimum).
pub fn total_weight_values(gemms: &[GemmShape]) -> u64 {
    gemms
        .iter()
        .filter(|g| g.rhs == OperandKind::Weight)
        .map(|g| g.rhs_values() * g.count as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_large_squad_matches_table3_compute() {
        // Table III: BERT-Large on SQuAD (seq 384, batch 1) needs 60M
        // cycles on 2048 MACs/cycle -> ~123 GMACs.
        let gemms = model_gemms(&ModelConfig::bert_large(), 384, 1);
        let macs = total_macs(&gemms);
        let cycles_at_2048 = macs / 2048;
        assert!((55_000_000..70_000_000).contains(&cycles_at_2048), "cycles {cycles_at_2048}");
    }

    #[test]
    fn weight_traffic_matches_parameter_count() {
        let config = ModelConfig::bert_base();
        let gemms = model_gemms(&config, 128, 1);
        let weight_values = total_weight_values(&gemms);
        // GEMM weights exclude embeddings/LN/biases: 12 layers × (4 h² +
        // 2 h·ff).
        let expect = config.layers as u64
            * (4 * (config.hidden as u64).pow(2) + 2 * config.hidden as u64 * config.ff as u64);
        assert_eq!(weight_values, expect);
    }

    #[test]
    fn attention_gemms_scale_with_batch_and_heads() {
        let config = ModelConfig::bert_base();
        let g1 = model_gemms(&config, 128, 1);
        let g8 = model_gemms(&config, 128, 8);
        let scores1 = g1.iter().find(|g| g.name == "L0.attn.scores").unwrap();
        let scores8 = g8.iter().find(|g| g.name == "L0.attn.scores").unwrap();
        assert_eq!(scores1.count, config.heads);
        assert_eq!(scores8.count, 8 * config.heads);
        assert_eq!(scores8.macs(), 8 * scores1.macs());
    }

    #[test]
    fn activation_activation_gemms_are_marked() {
        let gemms = model_gemms(&ModelConfig::bert_base(), 64, 1);
        let aa: Vec<_> = gemms.iter().filter(|g| g.rhs == OperandKind::Activation).collect();
        // scores + pv per layer.
        assert_eq!(aa.len(), 2 * 12);
        assert!(aa.iter().all(|g| g.lhs == OperandKind::Activation));
    }

    #[test]
    fn quadratic_attention_growth() {
        let config = ModelConfig::bert_base();
        let m128 = total_macs(&model_gemms(&config, 128, 1));
        let m512 = total_macs(&model_gemms(&config, 512, 1));
        // Attention term grows 16x, projections 4x; total growth between.
        let ratio = m512 as f64 / m128 as f64;
        assert!(ratio > 4.0 && ratio < 16.0, "ratio {ratio}");
    }
}
