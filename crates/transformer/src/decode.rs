//! Autoregressive greedy decode over a quantized KV-cache.
//!
//! The serving engine's one-shot requests run a single encoder pass;
//! this module adds the other dominant traffic shape: **generation**.
//! A [`DecodeSession`] prefills the prompt through the existing
//! [`Model::forward`] (bidirectional over the prompt, exactly the
//! encoder semantics every other path uses), harvesting each layer's
//! K/V activation codes into a [`KvCache`]; every subsequent token is
//! then computed *incrementally* — one `1 × hidden` row per layer,
//! attending causally over the cached K/V rows plus itself — with the
//! very same executor hooks (`dictionary encode → decode`, weight
//! substitution, Eq. 7/8 output snapping, and the pair-LUT GEMM path
//! under [`ExecMode::IndexDomain`]) the full forward pass uses.
//!
//! Attention semantics are prefix-LM style and self-consistent with the
//! cache: prompt positions attend only to the prompt (their K/V are
//! frozen at prefill), and each generated position attends to the
//! prompt plus every earlier generated position plus itself. Because
//! the cache stores *codes* and rematerializes floats through the same
//! [`DecodeLut`] the encoding hook used,
//! the incremental step is bit-identical to a from-scratch recompute of
//! the entire prefix — pinned by [`generate_reference`], which re-runs
//! prefill plus every earlier step from scratch each token, carrying
//! K/V as plain floats instead of cached codes.

use crate::exec::{ExecMode, Executor, QuantizedContext, QuantizedExecutor, QuantizedStats};
use crate::kv::KvCache;
use crate::model::Model;
use mokey_core::lut::DecodeLut;
use mokey_tensor::{dot, nn, Matrix};

/// A finished generation: the sampled tokens, the final hidden row the
/// last token was sampled from, and the activation-encoding counters
/// (prefill plus every incremental step).
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateResult {
    /// Greedily sampled tokens, in order (includes the EOS token when
    /// generation stopped on it).
    pub tokens: Vec<usize>,
    /// The `1 × hidden` state the final token was sampled from.
    pub hidden: Matrix,
    /// Merged activation-encoding counters.
    pub stats: QuantizedStats,
}

/// One in-flight generation: prompt prefilled, K/V codes cached,
/// advancing one greedy token per [`DecodeSession::step`].
///
/// The session owns no borrows — model and context are passed to each
/// call — so it can ride through a serving queue between steps.
#[derive(Debug, Clone)]
pub struct DecodeSession {
    mode: ExecMode,
    prompt_len: usize,
    /// Prompt plus every *advanced* generated token (= cached positions).
    tokens: Vec<usize>,
    generated: Vec<usize>,
    max_tokens: usize,
    eos: Option<usize>,
    cache: KvCache,
    last_hidden: Matrix,
    stats: QuantizedStats,
    done: bool,
}

impl DecodeSession {
    /// Prefills the prompt (one full [`Model::forward`] pass) and caches
    /// every layer's K/V codes. `max_tokens` bounds the generation;
    /// `eos` optionally stops it early. Generation also stops when the
    /// cache reaches the model's `max_seq`.
    ///
    /// # Panics
    ///
    /// Panics on an empty prompt, a prompt longer than `max_seq`, or a
    /// context without K/V activation dictionaries (decode stores codes,
    /// so it requires activation quantization).
    pub fn prefill(
        model: &Model,
        ctx: &QuantizedContext,
        prompt: &[usize],
        max_tokens: usize,
        eos: Option<usize>,
        mode: ExecMode,
    ) -> Self {
        assert!(!prompt.is_empty(), "decode needs a non-empty prompt");
        assert!(
            ctx.act_dicts.contains_key("L0.attn.k"),
            "decode requires activation quantization (K/V dictionaries)"
        );
        let layers = model.config().layers;
        let mut exec = QuantizedExecutor::with_mode(ctx, mode);
        exec.capture(kv_capture_names(layers));
        let hidden = model.forward(&mut exec, prompt);
        let mut cache = KvCache::new(layers, model.config().hidden);
        for li in 0..layers {
            let k = exec.take_captured(&format!("L{li}.attn.k")).expect("captured K codes");
            let v = exec.take_captured(&format!("L{li}.attn.v")).expect("captured V codes");
            cache.append(li, &k, &v);
        }
        Self {
            mode,
            prompt_len: prompt.len(),
            tokens: prompt.to_vec(),
            generated: Vec::new(),
            max_tokens,
            eos,
            cache,
            last_hidden: hidden.slice_rows(prompt.len() - 1, 1),
            stats: exec.stats(),
            done: max_tokens == 0,
        }
    }

    /// Samples the next greedy token and, unless that finishes the
    /// generation, advances the cache one position with it. Returns the
    /// sampled token.
    ///
    /// # Panics
    ///
    /// Panics if the session is already [`DecodeSession::is_done`].
    pub fn step(&mut self, model: &Model, ctx: &QuantizedContext) -> usize {
        assert!(!self.done, "decode session already finished");
        let t = greedy_token(model, self.last_hidden.row(0));
        self.generated.push(t);
        self.done = self.generated.len() >= self.max_tokens
            || Some(t) == self.eos
            || self.tokens.len() >= model.config().max_seq;
        if !self.done {
            self.advance(model, ctx, t);
        }
        t
    }

    /// One incremental layer-stack pass for `token` at the next cache
    /// position.
    fn advance(&mut self, model: &Model, ctx: &QuantizedContext, token: usize) {
        let pos = self.tokens.len();
        let x = model.embed_one(token, pos);
        let mut exec = QuantizedExecutor::with_mode(ctx, self.mode);
        exec.capture(kv_capture_names(model.config().layers));
        let mut backing = CodeBacked { cache: &mut self.cache };
        self.last_hidden = step_hidden(model, ctx, &mut exec, &mut backing, x);
        self.tokens.push(token);
        self.stats.merge(&exec.stats());
    }

    /// Whether generation has stopped (max tokens, EOS, or a full
    /// cache).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The prompt length this session was prefilled with.
    pub fn prompt_len(&self) -> usize {
        self.prompt_len
    }

    /// Tokens generated so far.
    pub fn generated(&self) -> &[usize] {
        &self.generated
    }

    /// Merged activation-encoding counters (prefill + steps so far).
    pub fn stats(&self) -> QuantizedStats {
        self.stats
    }

    /// Current KV-cache size in bytes (one byte per stored 5-bit code).
    pub fn cache_bytes(&self) -> usize {
        self.cache.bytes()
    }

    /// Consumes the session into its result.
    pub fn into_result(self) -> GenerateResult {
        GenerateResult { tokens: self.generated, hidden: self.last_hidden, stats: self.stats }
    }
}

/// Greedy generation end-to-end: prefill, then step until done.
pub fn generate(
    model: &Model,
    ctx: &QuantizedContext,
    prompt: &[usize],
    max_tokens: usize,
    eos: Option<usize>,
    mode: ExecMode,
) -> GenerateResult {
    let mut session = DecodeSession::prefill(model, ctx, prompt, max_tokens, eos, mode);
    while !session.is_done() {
        session.step(model, ctx);
    }
    session.into_result()
}

/// The no-cache reference oracle: every token re-runs the **entire
/// prefix from scratch** — a fresh prefill forward plus a fresh
/// incremental pass per earlier token — carrying K/V as plain float
/// matrices harvested straight from the executor hooks instead of
/// cached codes. [`generate`] must match it bit-for-bit (tokens, final
/// hidden row, and counters); the decode proptest pins exactly that.
pub fn generate_reference(
    model: &Model,
    ctx: &QuantizedContext,
    prompt: &[usize],
    max_tokens: usize,
    eos: Option<usize>,
    mode: ExecMode,
) -> GenerateResult {
    assert!(!prompt.is_empty(), "decode needs a non-empty prompt");
    let layers = model.config().layers;
    let mut generated: Vec<usize> = Vec::new();
    loop {
        // Re-run the full prefix: prefill, then replay every generated
        // token at its position with float-carried K/V.
        let mut exec = QuantizedExecutor::with_mode(ctx, mode);
        let mut rec = KvRecorder {
            inner: &mut exec,
            k: vec![Matrix::zeros(0, 0); layers],
            v: vec![Matrix::zeros(0, 0); layers],
        };
        let full = model.forward(&mut rec, prompt);
        let (mut kf, mut vf) = (rec.k, rec.v);
        let mut iter_stats = exec.stats();
        let mut last = full.slice_rows(prompt.len() - 1, 1);
        for (i, &t) in generated.iter().enumerate() {
            let x = model.embed_one(t, prompt.len() + i);
            let mut step_exec = QuantizedExecutor::with_mode(ctx, mode);
            let mut backing = FloatBacked { k: &mut kf, v: &mut vf };
            last = step_hidden(model, ctx, &mut step_exec, &mut backing, x);
            iter_stats.merge(&step_exec.stats());
        }
        if generated.len() >= max_tokens {
            // Only reachable with max_tokens == 0 (otherwise the break
            // below fires first).
            return GenerateResult { tokens: generated, hidden: last, stats: iter_stats };
        }
        let t = greedy_token(model, last.row(0));
        generated.push(t);
        let done = generated.len() >= max_tokens
            || Some(t) == eos
            || prompt.len() + generated.len() > model.config().max_seq;
        if done {
            return GenerateResult { tokens: generated, hidden: last, stats: iter_stats };
        }
    }
}

/// Greedy next-token choice: tied-embedding logits (final hidden row
/// dotted with every token-embedding row), argmax with lowest-index
/// tie-break.
fn greedy_token(model: &Model, hidden: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_score = f32::NEG_INFINITY;
    for t in 0..model.config().vocab {
        let score = dot(hidden, model.token_embedding.row(t));
        if score > best_score {
            best = t;
            best_score = score;
        }
    }
    best
}

fn kv_capture_names(layers: usize) -> impl Iterator<Item = String> {
    (0..layers).flat_map(|li| [format!("L{li}.attn.k"), format!("L{li}.attn.v")])
}

/// Where a step's K/V history comes from: the quantized code cache
/// (production) or float matrices (the reference oracle). Everything
/// else in the step is shared, so a divergence is a cache bug.
trait KvBacking {
    /// Appends the step's freshly encoded K/V row and returns the full
    /// `positions × hidden` K and V matrices to attend over.
    fn extend(
        &mut self,
        ctx: &QuantizedContext,
        li: usize,
        exec: &mut QuantizedExecutor<'_>,
        k: &Matrix,
        v: &Matrix,
    ) -> (Matrix, Matrix);
}

struct CodeBacked<'c> {
    cache: &'c mut KvCache,
}

impl KvBacking for CodeBacked<'_> {
    fn extend(
        &mut self,
        ctx: &QuantizedContext,
        li: usize,
        exec: &mut QuantizedExecutor<'_>,
        _k: &Matrix,
        _v: &Matrix,
    ) -> (Matrix, Matrix) {
        let kc = exec.take_captured(&format!("L{li}.attn.k")).expect("captured K codes");
        let vc = exec.take_captured(&format!("L{li}.attn.v")).expect("captured V codes");
        self.cache.append(li, &kc, &vc);
        let klut = decode_lut(ctx, li, 'k');
        let vlut = decode_lut(ctx, li, 'v');
        (self.cache.decode_k(li, &klut), self.cache.decode_v(li, &vlut))
    }
}

fn decode_lut(ctx: &QuantizedContext, li: usize, which: char) -> DecodeLut {
    ctx.act_decode.get(&format!("L{li}.attn.{which}")).copied().expect("K/V activation dictionary")
}

struct FloatBacked<'c> {
    k: &'c mut Vec<Matrix>,
    v: &'c mut Vec<Matrix>,
}

impl KvBacking for FloatBacked<'_> {
    fn extend(
        &mut self,
        _ctx: &QuantizedContext,
        li: usize,
        _exec: &mut QuantizedExecutor<'_>,
        k: &Matrix,
        v: &Matrix,
    ) -> (Matrix, Matrix) {
        self.k[li] = push_row(&self.k[li], k);
        self.v[li] = push_row(&self.v[li], v);
        (self.k[li].clone(), self.v[li].clone())
    }
}

fn push_row(m: &Matrix, row: &Matrix) -> Matrix {
    if m.rows() == 0 {
        return row.clone();
    }
    let mut out = Matrix::zeros(m.rows() + 1, m.cols());
    for r in 0..m.rows() {
        out.row_mut(r).copy_from_slice(m.row(r));
    }
    out.row_mut(m.rows()).copy_from_slice(row.row(0));
    out
}

/// One incremental layer-stack pass for a single embedded row, mirroring
/// [`Model::forward_embedded`]'s exact hook and kernel sequence at
/// `seq = 1`, with attention running over the KV history plus the new
/// row.
fn step_hidden(
    model: &Model,
    ctx: &QuantizedContext,
    exec: &mut QuantizedExecutor<'_>,
    kv: &mut dyn KvBacking,
    mut x: Matrix,
) -> Matrix {
    let heads = model.config().heads;
    let dh = model.config().head_dim();
    let hidden = model.config().hidden;
    for (li, layer) in model.layers.iter().enumerate() {
        let pre = format!("L{li}");
        // --- Attention (causal over cache + self) ---
        let input = exec.activation(&format!("{pre}.attn.input"), x);
        let q = model.linear(exec, &format!("{pre}.attn.wq"), &input, &layer.wq, &layer.bq);
        let k = model.linear(exec, &format!("{pre}.attn.wk"), &input, &layer.wk, &layer.bk);
        let v = model.linear(exec, &format!("{pre}.attn.wv"), &input, &layer.wv, &layer.bv);
        let q = exec.activation(&format!("{pre}.attn.q"), q);
        let k = exec.activation(&format!("{pre}.attn.k"), k);
        let v = exec.activation(&format!("{pre}.attn.v"), v);
        let (k_all, v_all) = kv.extend(ctx, li, exec, &k, &v);

        let len = k_all.rows();
        let scale = 1.0 / (dh as f32).sqrt();
        let mut all_probs = Matrix::zeros(heads, len);
        for hd in 0..heads {
            let qh = q.slice_cols(hd * dh, dh);
            let kh = k_all.slice_cols(hd * dh, dh);
            // Activation × activation GEMM #1: q·K^T over the history.
            let mut scores = qh.matmul_transposed(&kh).scale(scale);
            nn::softmax_rows(&mut scores);
            all_probs.row_mut(hd).copy_from_slice(scores.row(0));
        }
        let probs = exec.activation(&format!("{pre}.attn.probs"), all_probs);
        let mut context = Matrix::zeros(1, hidden);
        for hd in 0..heads {
            let vh = v_all.slice_cols(hd * dh, dh);
            let p = probs.slice_rows(hd, 1);
            // Activation × activation GEMM #2: p·V over the history.
            let ctx_h = p.matmul(&vh);
            context.row_mut(0)[hd * dh..(hd + 1) * dh].copy_from_slice(ctx_h.row(0));
        }
        let context = exec.activation(&format!("{pre}.attn.context"), context);
        let attn_out =
            model.linear(exec, &format!("{pre}.attn.wo"), &context, &layer.wo, &layer.bo);
        let mut x1 = attn_out.add(&input);
        nn::layer_norm(&mut x1, &layer.ln1_gamma, &layer.ln1_beta, 1e-6);

        // --- Feed-forward ---
        let ffn_in = exec.activation(&format!("{pre}.ffn.input"), x1);
        let mut mid = model.linear(exec, &format!("{pre}.ffn.w1"), &ffn_in, &layer.w1, &layer.b1);
        nn::gelu_inplace(&mut mid);
        let mid = exec.activation(&format!("{pre}.ffn.mid"), mid);
        let ffn_out = model.linear(exec, &format!("{pre}.ffn.w2"), &mid, &layer.w2, &layer.b2);
        let mut x2 = ffn_out.add(&ffn_in);
        nn::layer_norm(&mut x2, &layer.ln2_gamma, &layer.ln2_beta, 1e-6);
        x = x2;
    }
    x
}

/// Wraps a [`QuantizedExecutor`], recording the float K/V matrices the
/// hooks emit during a prefill forward — the reference oracle's
/// cache-free K/V source.
struct KvRecorder<'a, 'b> {
    inner: &'b mut QuantizedExecutor<'a>,
    k: Vec<Matrix>,
    v: Vec<Matrix>,
}

fn layer_of(name: &str, suffix: &str) -> Option<usize> {
    name.strip_suffix(suffix)?.strip_prefix('L')?.parse().ok()
}

impl Executor for KvRecorder<'_, '_> {
    fn activation(&mut self, name: &str, m: Matrix) -> Matrix {
        let out = self.inner.activation(name, m);
        if let Some(li) = layer_of(name, ".attn.k") {
            self.k[li] = out.clone();
        } else if let Some(li) = layer_of(name, ".attn.v") {
            self.v[li] = out.clone();
        }
        out
    }

    fn weight_override(&self, name: &str) -> Option<&Matrix> {
        self.inner.weight_override(name)
    }

    fn gemm_output(&mut self, name: &str, m: Matrix) -> Matrix {
        self.inner.gemm_output(name, m)
    }

    fn linear(&mut self, weight_name: &str, x: &Matrix, w: &Matrix, b: &[f32]) -> Option<Matrix> {
        self.inner.linear(weight_name, x, w, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::Head;
    use crate::quantize::{QuantizeSpec, QuantizedModel};

    fn decodable() -> (Model, QuantizedContext) {
        let config = ModelConfig {
            name: "decode-test".into(),
            layers: 2,
            hidden: 32,
            heads: 2,
            ff: 64,
            vocab: 120,
            max_seq: 24,
        };
        let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 11);
        let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(12, 30 + s)).collect();
        let (qm, _) =
            QuantizedModel::prepare(&model, QuantizeSpec::weights_and_activations(), &profile);
        let ctx = qm.into_context();
        (model, ctx)
    }

    #[test]
    fn generation_is_deterministic_and_bounded() {
        let (model, ctx) = decodable();
        let prompt = model.random_tokens(6, 1);
        let a = generate(&model, &ctx, &prompt, 5, None, ExecMode::Decoded);
        let b = generate(&model, &ctx, &prompt, 5, None, ExecMode::Decoded);
        assert_eq!(a, b);
        assert_eq!(a.tokens.len(), 5);
        assert!(a.tokens.iter().all(|&t| t < model.config().vocab));
        assert!(a.stats.act_values > 0);
    }

    #[test]
    fn index_domain_decode_is_bit_identical_to_decoded() {
        let (model, ctx) = decodable();
        let prompt = model.random_tokens(5, 2);
        let dec = generate(&model, &ctx, &prompt, 4, None, ExecMode::Decoded);
        let idx = generate(&model, &ctx, &prompt, 4, None, ExecMode::IndexDomain);
        assert_eq!(dec, idx);
    }

    #[test]
    fn incremental_matches_full_prefix_recompute() {
        let (model, ctx) = decodable();
        for mode in [ExecMode::Decoded, ExecMode::IndexDomain] {
            let prompt = model.random_tokens(7, 3);
            let inc = generate(&model, &ctx, &prompt, 6, None, mode);
            let reference = generate_reference(&model, &ctx, &prompt, 6, None, mode);
            assert_eq!(inc, reference, "mode {mode:?}");
        }
    }

    #[test]
    fn eos_stops_generation_and_is_included() {
        let (model, ctx) = decodable();
        let prompt = model.random_tokens(6, 4);
        // Find what the unconstrained second token is, then declare it EOS.
        let free = generate(&model, &ctx, &prompt, 3, None, ExecMode::Decoded);
        assert_eq!(free.tokens.len(), 3);
        let eos = free.tokens[1];
        let stopped = generate(&model, &ctx, &prompt, 8, Some(eos), ExecMode::Decoded);
        // Generation halts at the first occurrence of the EOS token
        // (greedy decode may emit it earlier than index 1).
        let cut = free.tokens.iter().position(|&t| t == eos).unwrap();
        assert_eq!(stopped.tokens, free.tokens[..=cut].to_vec());
    }

    #[test]
    fn generation_stops_at_max_seq() {
        let (model, ctx) = decodable();
        let max_seq = model.config().max_seq;
        let prompt = model.random_tokens(max_seq - 2, 5);
        // Room to advance twice; the third sample cannot be cached.
        let out = generate(&model, &ctx, &prompt, 100, None, ExecMode::Decoded);
        assert_eq!(out.tokens.len(), 3);
        let reference = generate_reference(&model, &ctx, &prompt, 100, None, ExecMode::Decoded);
        assert_eq!(out, reference);
    }

    #[test]
    fn zero_max_tokens_yields_prefill_only() {
        let (model, ctx) = decodable();
        let prompt = model.random_tokens(5, 6);
        let out = generate(&model, &ctx, &prompt, 0, None, ExecMode::Decoded);
        assert!(out.tokens.is_empty());
        let reference = generate_reference(&model, &ctx, &prompt, 0, None, ExecMode::Decoded);
        assert_eq!(out, reference);
    }

    #[test]
    fn session_steps_match_one_shot_generate() {
        let (model, ctx) = decodable();
        let prompt = model.random_tokens(6, 7);
        let mut session = DecodeSession::prefill(&model, &ctx, &prompt, 4, None, ExecMode::Decoded);
        let mut tokens = Vec::new();
        while !session.is_done() {
            tokens.push(session.step(&model, &ctx));
        }
        assert!(session.cache_bytes() > 0);
        let result = session.into_result();
        assert_eq!(result.tokens, tokens);
        assert_eq!(result, generate(&model, &ctx, &prompt, 4, None, ExecMode::Decoded));
    }
}
