//! Weight/activation memory accounting (paper Fig. 1).
//!
//! "Transformer models also incur a quadratic growth in activation
//! footprint when scaling the input sequence … When the sequence length
//! exceeds 512 tokens, activations dominate total memory footprint."
//!
//! Activation accounting counts, per encoder layer, every intermediate a
//! dataflow must be able to buffer: the layer input, Q/K/V, the attention
//! probability matrices (heads × seq²  — the quadratic term), the context,
//! the attention output, the FFN input/intermediate/output. Weights are the
//! full parameter set.

use crate::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// Memory footprint split, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Footprint {
    /// All model parameters.
    pub weight_bytes: usize,
    /// All per-layer activation intermediates at the given sequence length.
    pub activation_bytes: usize,
}

impl Footprint {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.weight_bytes + self.activation_bytes
    }

    /// Activation share of the total, in percent.
    pub fn activation_percent(&self) -> f64 {
        100.0 * self.activation_bytes as f64 / self.total() as f64
    }
}

/// Computes the Fig. 1 footprint for a model at a sequence length, with
/// `bytes_per_value` storage (2 for the FP16 baselines, 0.5 for Mokey's
/// 4-bit indexes).
///
/// # Example
///
/// ```
/// use mokey_transformer::{footprint::footprint, ModelConfig};
///
/// let fp = footprint(&ModelConfig::bert_large(), 512, 2.0);
/// // Fig. 1: activations overtake weights beyond 512 tokens.
/// let fp2 = footprint(&ModelConfig::bert_large(), 2048, 2.0);
/// assert!(fp.activation_percent() < 60.0);
/// assert!(fp2.activation_percent() > 75.0);
/// ```
pub fn footprint(config: &ModelConfig, seq: usize, bytes_per_value: f64) -> Footprint {
    let weight_bytes = (config.param_count() as f64 * bytes_per_value) as usize;
    let h = config.hidden;
    // Per layer: input + Q + K + V + context + attn-out + ffn-in + ffn-out
    // (8 seq×hidden tensors), probs (heads × seq²), FFN mid (seq × ff).
    let per_layer = 8 * seq * h + config.heads * seq * seq + seq * config.ff;
    let activation_values = config.layers * per_layer;
    Footprint {
        weight_bytes,
        activation_bytes: (activation_values as f64 * bytes_per_value) as usize,
    }
}

/// The Fig. 1 sweep: footprints for the paper's sequence lengths.
pub fn fig1_sweep(config: &ModelConfig, bytes_per_value: f64) -> Vec<(usize, Footprint)> {
    [128usize, 256, 512, 1024, 2048]
        .iter()
        .map(|&seq| (seq, footprint(config, seq, bytes_per_value)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_layer_activation_buffer_matches_paper_range() {
        // Paper intro: "For sequences of up to 128 tokens … buffering
        // activations between layers requires anywhere between 1.5MB to 2MB
        // depending on the model, layer, and dataflow."
        let config = ModelConfig::bert_large();
        let fp = footprint(&config, 128, 2.0);
        let per_layer_mb = fp.activation_bytes as f64 / config.layers as f64 / (1 << 20) as f64;
        assert!(
            per_layer_mb > 1.0 && per_layer_mb < 4.0,
            "per-layer activation buffer {per_layer_mb} MB"
        );
    }

    #[test]
    fn activations_dominate_beyond_512() {
        let config = ModelConfig::bert_large();
        let at = |seq: usize| footprint(&config, seq, 2.0).activation_percent();
        assert!(at(128) < 50.0, "at 128: {}", at(128));
        assert!(at(1024) > 50.0, "at 1024: {}", at(1024));
        assert!(at(2048) > at(1024), "monotone growth");
    }

    #[test]
    fn quadratic_term_grows_superlinearly() {
        let config = ModelConfig::bert_large();
        let a1 = footprint(&config, 512, 2.0).activation_bytes as f64;
        let a2 = footprint(&config, 1024, 2.0).activation_bytes as f64;
        assert!(a2 / a1 > 2.0, "doubling seq must more than double activations");
    }

    #[test]
    fn total_footprint_scale_matches_fig1() {
        // Fig. 1 shows ~5-6 GB total at seq 2048 for BERT-Large FP16.
        let fp = footprint(&ModelConfig::bert_large(), 2048, 2.0);
        let gb = fp.total() as f64 / (1u64 << 30) as f64;
        assert!(gb > 2.5 && gb < 8.0, "total {gb} GB at 2048");
    }

    #[test]
    fn sweep_covers_paper_points() {
        let sweep = fig1_sweep(&ModelConfig::bert_large(), 2.0);
        assert_eq!(sweep.len(), 5);
        assert_eq!(sweep[0].0, 128);
        assert_eq!(sweep[4].0, 2048);
    }
}
