//! The encoder-stack model: synthetic weights, faithful forward pass.
//!
//! Weight distributions follow the bell-shaped-with-rare-outliers character
//! the paper exploits (Section II: "most of values are densely populated
//! around their mean … and a small fraction of values (covering a wider
//! range) are outliers"), via [`GaussianMixture::weight_like`].

use crate::config::ModelConfig;
use crate::exec::Executor;
use crate::packed::{fused_attention_context, fused_attention_scores, PackedBatch, PackedLayout};
use mokey_tensor::init::GaussianMixture;
use mokey_tensor::{nn, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Task head attached after the encoder stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Head {
    /// CLS pooler + classifier over `classes` labels (MNLI-style).
    Classification {
        /// Number of output classes (3 for MNLI).
        classes: usize,
    },
    /// CLS pooler + scalar regressor (STS-B-style).
    Regression,
    /// Per-token start/end span logits (SQuAD-style).
    Span,
}

/// Output of a task head.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskOutput {
    /// Class logits (length = `classes`).
    Logits(Vec<f32>),
    /// Scalar regression score.
    Score(f32),
    /// Per-position start and end logits.
    Span(Vec<f32>, Vec<f32>),
}

/// One encoder layer's parameters.
#[derive(Debug, Clone)]
pub struct EncoderLayer {
    /// Query/key/value/output projections, each `hidden × hidden`.
    pub wq: Matrix,
    pub bq: Vec<f32>,
    pub wk: Matrix,
    pub bk: Vec<f32>,
    pub wv: Matrix,
    pub bv: Vec<f32>,
    pub wo: Matrix,
    pub bo: Vec<f32>,
    /// Post-attention layer norm.
    pub ln1_gamma: Vec<f32>,
    pub ln1_beta: Vec<f32>,
    /// Feed-forward: `hidden × ff` then `ff × hidden`.
    pub w1: Matrix,
    pub b1: Vec<f32>,
    pub w2: Matrix,
    pub b2: Vec<f32>,
    /// Post-FFN layer norm.
    pub ln2_gamma: Vec<f32>,
    pub ln2_beta: Vec<f32>,
}

/// A complete synthetic model: embeddings, encoder stack, task head.
///
/// # Example
///
/// ```
/// use mokey_transformer::{Head, Model, ModelConfig};
/// use mokey_transformer::exec::FpExecutor;
///
/// let config = ModelConfig::bert_base().scaled(12, 12); // tiny
/// let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 1);
/// let tokens: Vec<usize> = (0..16).map(|i| i * 7 % config.vocab).collect();
/// let out = model.forward(&mut FpExecutor, &tokens);
/// assert_eq!(out.shape(), (16, config.hidden));
/// ```
#[derive(Debug, Clone)]
pub struct Model {
    config: ModelConfig,
    head: Head,
    /// Token embedding table, `vocab × hidden`.
    pub token_embedding: Matrix,
    /// Position embedding table, `max_seq × hidden`.
    pub position_embedding: Matrix,
    emb_ln_gamma: Vec<f32>,
    emb_ln_beta: Vec<f32>,
    /// Encoder layers.
    pub layers: Vec<EncoderLayer>,
    /// Pooler weight (classification/regression heads).
    pub pooler_w: Matrix,
    pooler_b: Vec<f32>,
    /// Head projection: `hidden × classes`, `hidden × 1`, or `hidden × 2`.
    pub head_w: Matrix,
    head_b: Vec<f32>,
}

fn vec_normal(n: usize, mean: f64, std: f64, rng: &mut StdRng) -> Vec<f32> {
    let d = Normal::new(mean, std).expect("valid normal");
    (0..n).map(|_| d.sample(rng) as f32).collect()
}

impl Model {
    /// Generates a model with seeded synthetic weights.
    ///
    /// Linear weights use the outlier-bearing mixture at Xavier-ish scale;
    /// layer-norm gains sit near 1 and biases near 0, as in trained
    /// checkpoints.
    pub fn synthesize(config: &ModelConfig, head: Head, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = config.hidden;
        let mat = |rows: usize, cols: usize, rng: &mut StdRng| {
            let std = (2.0 / (rows + cols) as f64).sqrt();
            GaussianMixture::weight_like(0.0, std).sample_matrix_with(rows, cols, rng)
        };
        let layers = (0..config.layers)
            .map(|_| EncoderLayer {
                wq: mat(h, h, &mut rng),
                bq: vec_normal(h, 0.0, 0.02, &mut rng),
                wk: mat(h, h, &mut rng),
                bk: vec_normal(h, 0.0, 0.02, &mut rng),
                wv: mat(h, h, &mut rng),
                bv: vec_normal(h, 0.0, 0.02, &mut rng),
                wo: mat(h, h, &mut rng),
                bo: vec_normal(h, 0.0, 0.02, &mut rng),
                ln1_gamma: vec_normal(h, 1.0, 0.1, &mut rng),
                ln1_beta: vec_normal(h, 0.0, 0.05, &mut rng),
                w1: mat(h, config.ff, &mut rng),
                b1: vec_normal(config.ff, 0.0, 0.02, &mut rng),
                w2: mat(config.ff, h, &mut rng),
                b2: vec_normal(h, 0.0, 0.02, &mut rng),
                ln2_gamma: vec_normal(h, 1.0, 0.1, &mut rng),
                ln2_beta: vec_normal(h, 0.0, 0.05, &mut rng),
            })
            .collect();
        let head_cols = match head {
            Head::Classification { classes } => classes,
            Head::Regression => 1,
            Head::Span => 2,
        };
        Self {
            config: config.clone(),
            head,
            token_embedding: GaussianMixture::weight_like(0.0, 0.05).sample_matrix_with(
                config.vocab,
                h,
                &mut rng,
            ),
            position_embedding: GaussianMixture::weight_like(0.0, 0.02).sample_matrix_with(
                config.max_seq,
                h,
                &mut rng,
            ),
            emb_ln_gamma: vec_normal(h, 1.0, 0.1, &mut rng),
            emb_ln_beta: vec_normal(h, 0.0, 0.05, &mut rng),
            layers,
            pooler_w: mat(h, h, &mut rng),
            pooler_b: vec_normal(h, 0.0, 0.02, &mut rng),
            // Wider head weights give the synthetic tasks confident logit
            // margins, as trained classifiers have.
            head_w: GaussianMixture::weight_like(0.0, 0.3)
                .sample_matrix_with(h, head_cols, &mut rng),
            head_b: vec_normal(head_cols, 0.0, 0.02, &mut rng),
        }
    }

    /// The architecture.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The attached task head.
    pub fn head(&self) -> Head {
        self.head
    }

    /// Embeds a token sequence (token + position embeddings, layer norm).
    ///
    /// # Panics
    ///
    /// Panics if a token id is out of vocabulary or the sequence exceeds
    /// `max_seq`.
    pub fn embed(&self, tokens: &[usize]) -> Matrix {
        assert!(tokens.len() <= self.config.max_seq, "sequence too long");
        let h = self.config.hidden;
        let mut x = Matrix::zeros(tokens.len(), h);
        for (i, &t) in tokens.iter().enumerate() {
            assert!(t < self.config.vocab, "token {t} out of vocabulary");
            let emb = self.token_embedding.row(t);
            let pos = self.position_embedding.row(i);
            let row = x.row_mut(i);
            for j in 0..h {
                row[j] = emb[j] + pos[j];
            }
        }
        nn::layer_norm(&mut x, &self.emb_ln_gamma, &self.emb_ln_beta, 1e-6);
        x
    }

    /// Embeds one token at an absolute position as a `1 × hidden` row.
    /// Layer norm is per-row, so this is bit-identical to the matching
    /// row of [`Model::embed`] — the incremental decode path's embedding.
    ///
    /// # Panics
    ///
    /// Panics if the token is out of vocabulary or the position is at or
    /// beyond `max_seq`.
    pub fn embed_one(&self, token: usize, pos: usize) -> Matrix {
        assert!(pos < self.config.max_seq, "position {pos} beyond max_seq");
        assert!(token < self.config.vocab, "token {token} out of vocabulary");
        let h = self.config.hidden;
        let mut x = Matrix::zeros(1, h);
        let emb = self.token_embedding.row(token);
        let pe = self.position_embedding.row(pos);
        let row = x.row_mut(0);
        for j in 0..h {
            row[j] = emb[j] + pe[j];
        }
        nn::layer_norm(&mut x, &self.emb_ln_gamma, &self.emb_ln_beta, 1e-6);
        x
    }

    /// Full forward pass through the encoder stack, with every GEMM input,
    /// GEMM output, and weight routed through the [`Executor`] hooks.
    /// Returns the final hidden states (`seq × hidden`).
    pub fn forward(&self, exec: &mut dyn Executor, tokens: &[usize]) -> Matrix {
        let x = self.embed(tokens);
        self.forward_embedded(exec, x)
    }

    /// Forward pass from pre-embedded inputs.
    pub fn forward_embedded(&self, exec: &mut dyn Executor, mut x: Matrix) -> Matrix {
        let heads = self.config.heads;
        let dh = self.config.head_dim();
        for (li, layer) in self.layers.iter().enumerate() {
            let pre = format!("L{li}");
            // --- Attention ---
            let input = exec.activation(&format!("{pre}.attn.input"), x.clone());
            let q = self.linear(exec, &format!("{pre}.attn.wq"), &input, &layer.wq, &layer.bq);
            let k = self.linear(exec, &format!("{pre}.attn.wk"), &input, &layer.wk, &layer.bk);
            let v = self.linear(exec, &format!("{pre}.attn.wv"), &input, &layer.wv, &layer.bv);
            let q = exec.activation(&format!("{pre}.attn.q"), q);
            let k = exec.activation(&format!("{pre}.attn.k"), k);
            let v = exec.activation(&format!("{pre}.attn.v"), v);

            let seq = x.rows();
            let mut context = Matrix::zeros(seq, self.config.hidden);
            let scale = 1.0 / (dh as f32).sqrt();
            let mut all_probs = Matrix::zeros(seq * heads, seq);
            for hd in 0..heads {
                let qh = q.slice_cols(hd * dh, dh);
                let kh = k.slice_cols(hd * dh, dh);
                // Activation × activation GEMM #1: Q·K^T.
                let mut scores = qh.matmul_transposed(&kh).scale(scale);
                nn::softmax_rows(&mut scores);
                for r in 0..seq {
                    all_probs.row_mut(hd * seq + r).copy_from_slice(scores.row(r));
                }
            }
            let probs = exec.activation(&format!("{pre}.attn.probs"), all_probs);
            for hd in 0..heads {
                let vh = v.slice_cols(hd * dh, dh);
                let scores = probs.slice_rows(hd * seq, seq);
                // Activation × activation GEMM #2: P·V.
                let ctx_h = scores.matmul(&vh);
                for r in 0..seq {
                    context.row_mut(r)[hd * dh..(hd + 1) * dh].copy_from_slice(ctx_h.row(r));
                }
            }
            let context = exec.activation(&format!("{pre}.attn.context"), context);
            let attn_out =
                self.linear(exec, &format!("{pre}.attn.wo"), &context, &layer.wo, &layer.bo);
            let mut x1 = attn_out.add(&input);
            nn::layer_norm(&mut x1, &layer.ln1_gamma, &layer.ln1_beta, 1e-6);

            // --- Feed-forward ---
            let ffn_in = exec.activation(&format!("{pre}.ffn.input"), x1);
            let mut mid =
                self.linear(exec, &format!("{pre}.ffn.w1"), &ffn_in, &layer.w1, &layer.b1);
            nn::gelu_inplace(&mut mid);
            let mid = exec.activation(&format!("{pre}.ffn.mid"), mid);
            let ffn_out = self.linear(exec, &format!("{pre}.ffn.w2"), &mid, &layer.w2, &layer.b2);
            let mut x2 = ffn_out.add(&ffn_in);
            nn::layer_norm(&mut x2, &layer.ln2_gamma, &layer.ln2_beta, 1e-6);
            x = x2;
        }
        x
    }

    /// Applies the task head to final hidden states.
    pub fn apply_head(&self, exec: &mut dyn Executor, hidden: &Matrix) -> TaskOutput {
        match self.head {
            Head::Classification { .. } | Head::Regression => {
                let cls = hidden.slice_rows(0, 1);
                let cls = exec.activation("head.cls", cls);
                let mut pooled =
                    self.linear(exec, "head.pooler", &cls, &self.pooler_w, &self.pooler_b);
                nn::tanh_inplace(&mut pooled);
                let pooled = exec.activation("head.pooled", pooled);
                let logits = self.linear(exec, "head.proj", &pooled, &self.head_w, &self.head_b);
                match self.head {
                    Head::Classification { .. } => TaskOutput::Logits(logits.row(0).to_vec()),
                    _ => TaskOutput::Score(logits[(0, 0)]),
                }
            }
            Head::Span => {
                let hs = exec.activation("head.span_input", hidden.clone());
                let logits = self.linear(exec, "head.proj", &hs, &self.head_w, &self.head_b);
                TaskOutput::Span(logits.col(0), logits.col(1))
            }
        }
    }

    /// Convenience: forward + head in one call.
    pub fn infer(&self, exec: &mut dyn Executor, tokens: &[usize]) -> TaskOutput {
        let hidden = self.forward(exec, tokens);
        self.apply_head(exec, &hidden)
    }

    /// Embeds a packed batch: request `i` occupies rows
    /// `[i·S, i·S + len_i)` of a `(B·S) × hidden` matrix (`S` = longest
    /// sequence). Padding rows stay zero — layer norm turns them into
    /// harmless constants and nothing ever reads them back.
    ///
    /// # Panics
    ///
    /// Panics on out-of-vocabulary tokens, over-long sequences, or a
    /// batch that does not match `pack`.
    pub fn embed_packed(&self, pack: &PackedBatch, batch: &[&[usize]]) -> Matrix {
        assert_eq!(batch.len(), pack.requests(), "batch does not match pack");
        assert!(pack.seq() <= self.config.max_seq, "sequence too long");
        let h = self.config.hidden;
        let mut x = Matrix::zeros(pack.total_rows(), h);
        for (bi, tokens) in batch.iter().enumerate() {
            assert_eq!(tokens.len(), pack.len_of(bi), "batch does not match pack");
            let base = pack.row_of(bi);
            for (i, &t) in tokens.iter().enumerate() {
                assert!(t < self.config.vocab, "token {t} out of vocabulary");
                let emb = self.token_embedding.row(t);
                let pos = self.position_embedding.row(i);
                let row = x.row_mut(base + i);
                for j in 0..h {
                    row[j] = emb[j] + pos[j];
                }
            }
        }
        nn::layer_norm(&mut x, &self.emb_ln_gamma, &self.emb_ln_beta, 1e-6);
        x
    }

    /// Packed forward pass: one `(B·S) × hidden` activation matrix runs
    /// every projection and FFN GEMM once per **batch**, and attention
    /// runs block-diagonal **fused** — one region-strided kernel
    /// invocation per layer per stage (Q·K^T with the padding mask,
    /// softmax, P·V) instead of per sequence. Padded key positions are
    /// driven to `−∞` before the softmax, so masked probabilities are
    /// exactly `0.0` and padded value rows contribute nothing. Each
    /// request's valid rows are bit-identical to its solo
    /// [`Model::forward`] (see the [`packed`](crate::packed) module docs
    /// for why).
    pub fn forward_packed(
        &self,
        exec: &mut dyn Executor,
        pack: &PackedBatch,
        batch: &[&[usize]],
    ) -> Matrix {
        let heads = self.config.heads;
        let dh = self.config.head_dim();
        let rows_layout = pack.rows_layout();
        let probs_layout = pack.probs_layout(heads);
        let mut x = self.embed_packed(pack, batch);
        for (li, layer) in self.layers.iter().enumerate() {
            let pre = format!("L{li}");
            // --- Attention ---
            let input = exec.activation_packed(&format!("{pre}.attn.input"), x, &rows_layout);
            let q = self.linear_packed(
                exec,
                &format!("{pre}.attn.wq"),
                &input,
                &layer.wq,
                &layer.bq,
                &rows_layout,
            );
            let k = self.linear_packed(
                exec,
                &format!("{pre}.attn.wk"),
                &input,
                &layer.wk,
                &layer.bk,
                &rows_layout,
            );
            let v = self.linear_packed(
                exec,
                &format!("{pre}.attn.wv"),
                &input,
                &layer.wv,
                &layer.bv,
                &rows_layout,
            );
            let q = exec.activation_packed(&format!("{pre}.attn.q"), q, &rows_layout);
            let k = exec.activation_packed(&format!("{pre}.attn.k"), k, &rows_layout);
            let v = exec.activation_packed(&format!("{pre}.attn.v"), v, &rows_layout);

            let scale = 1.0 / (dh as f32).sqrt();
            // Fused block-diagonal attention: one region-strided kernel
            // invocation per stage — Q·K^T with the padding mask, one
            // softmax over the whole (request-major, then head-major)
            // probability matrix, then P·V — instead of `B·heads` small
            // GEMMs over `slice_block` copies. Bit-identical to the
            // per-sequence path (see `packed::fused_attention_scores`).
            let mut all_probs = fused_attention_scores(&q, &k, pack, heads, dh, scale);
            nn::softmax_rows(&mut all_probs);
            let probs =
                exec.activation_packed(&format!("{pre}.attn.probs"), all_probs, &probs_layout);
            let context = fused_attention_context(&probs, &v, pack, heads, dh, self.config.hidden);
            let context =
                exec.activation_packed(&format!("{pre}.attn.context"), context, &rows_layout);
            let attn_out = self.linear_packed(
                exec,
                &format!("{pre}.attn.wo"),
                &context,
                &layer.wo,
                &layer.bo,
                &rows_layout,
            );
            let mut x1 = attn_out.add(&input);
            nn::layer_norm(&mut x1, &layer.ln1_gamma, &layer.ln1_beta, 1e-6);

            // --- Feed-forward ---
            let ffn_in = exec.activation_packed(&format!("{pre}.ffn.input"), x1, &rows_layout);
            let mut mid = self.linear_packed(
                exec,
                &format!("{pre}.ffn.w1"),
                &ffn_in,
                &layer.w1,
                &layer.b1,
                &rows_layout,
            );
            nn::gelu_inplace(&mut mid);
            let mid = exec.activation_packed(&format!("{pre}.ffn.mid"), mid, &rows_layout);
            let ffn_out = self.linear_packed(
                exec,
                &format!("{pre}.ffn.w2"),
                &mid,
                &layer.w2,
                &layer.b2,
                &rows_layout,
            );
            let mut x2 = ffn_out.add(&ffn_in);
            nn::layer_norm(&mut x2, &layer.ln2_gamma, &layer.ln2_beta, 1e-6);
            x = x2;
        }
        x
    }

    /// Applies the task head to every request of a packed batch.
    pub fn apply_head_packed(
        &self,
        exec: &mut dyn Executor,
        hidden: &Matrix,
        pack: &PackedBatch,
    ) -> Vec<TaskOutput> {
        let nb = pack.requests();
        match self.head {
            Head::Classification { .. } | Head::Regression => {
                let cls_layout = pack.cls_layout();
                // Gather every request's CLS row into one B × hidden GEMM.
                let mut cls = Matrix::zeros(nb, self.config.hidden);
                for bi in 0..nb {
                    cls.row_mut(bi).copy_from_slice(hidden.row(pack.row_of(bi)));
                }
                let cls = exec.activation_packed("head.cls", cls, &cls_layout);
                let mut pooled = self.linear_packed(
                    exec,
                    "head.pooler",
                    &cls,
                    &self.pooler_w,
                    &self.pooler_b,
                    &cls_layout,
                );
                nn::tanh_inplace(&mut pooled);
                let pooled = exec.activation_packed("head.pooled", pooled, &cls_layout);
                let logits = self.linear_packed(
                    exec,
                    "head.proj",
                    &pooled,
                    &self.head_w,
                    &self.head_b,
                    &cls_layout,
                );
                (0..nb)
                    .map(|bi| match self.head {
                        Head::Classification { .. } => TaskOutput::Logits(logits.row(bi).to_vec()),
                        _ => TaskOutput::Score(logits[(bi, 0)]),
                    })
                    .collect()
            }
            Head::Span => {
                let rows_layout = pack.rows_layout();
                let hs = exec.activation_packed("head.span_input", hidden.clone(), &rows_layout);
                let logits = self.linear_packed(
                    exec,
                    "head.proj",
                    &hs,
                    &self.head_w,
                    &self.head_b,
                    &rows_layout,
                );
                (0..nb)
                    .map(|bi| {
                        let base = pack.row_of(bi);
                        let len = pack.len_of(bi);
                        let start = (0..len).map(|r| logits[(base + r, 0)]).collect();
                        let end = (0..len).map(|r| logits[(base + r, 1)]).collect();
                        TaskOutput::Span(start, end)
                    })
                    .collect()
            }
        }
    }

    /// Packed forward + head: one tall GEMM per projection for the whole
    /// batch, outputs (and, for quantizing executors, per-request
    /// counters) bit-identical to per-request [`Model::infer`].
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or contains an empty sequence — the
    /// caller routes those through the solo path.
    pub fn infer_packed(&self, exec: &mut dyn Executor, batch: &[&[usize]]) -> Vec<TaskOutput> {
        let pack = PackedBatch::new(batch);
        let hidden = self.forward_packed(exec, &pack, batch);
        self.apply_head_packed(exec, &hidden, &pack)
    }

    /// One fused GEMM + bias ([`nn::linear`]), routed through the
    /// executor: the weight may be substituted (quantized), the input
    /// transformed, and the output snapped to a fixed-point grid.
    /// Crate-visible so the incremental decode step
    /// ([`crate::decode`]) routes its projections through the exact
    /// same hook sequence as [`Model::forward_embedded`].
    pub(crate) fn linear(
        &self,
        exec: &mut dyn Executor,
        weight_name: &str,
        x: &Matrix,
        w: &Matrix,
        b: &[f32],
    ) -> Matrix {
        let out = match exec.linear(weight_name, x, w, b) {
            Some(out) => out,
            None => {
                let w_eff = exec.weight_override(weight_name).unwrap_or(w);
                nn::linear(x, w_eff, b)
            }
        };
        exec.gemm_output(weight_name, out)
    }

    /// Packed-batch variant of [`Model::linear`]: same fused GEMM, with
    /// the output snap routed through the layout-aware hook so padding
    /// rows are skipped and work is attributed per request.
    fn linear_packed(
        &self,
        exec: &mut dyn Executor,
        weight_name: &str,
        x: &Matrix,
        w: &Matrix,
        b: &[f32],
        layout: &PackedLayout,
    ) -> Matrix {
        let out = match exec.linear_packed(weight_name, x, w, b, layout) {
            Some(out) => out,
            None => {
                let w_eff = exec.weight_override(weight_name).unwrap_or(w);
                nn::linear(x, w_eff, b)
            }
        };
        exec.gemm_output_packed(weight_name, out, layout)
    }

    /// Names and references of every quantizable weight tensor (the
    /// paper's "parameters and embeddings").
    pub fn weight_tensors(&self) -> Vec<(String, &Matrix)> {
        let mut out: Vec<(String, &Matrix)> = vec![
            ("embedding.token".into(), &self.token_embedding),
            ("embedding.position".into(), &self.position_embedding),
            ("head.pooler".into(), &self.pooler_w),
            ("head.proj".into(), &self.head_w),
        ];
        for (li, layer) in self.layers.iter().enumerate() {
            let pre = format!("L{li}");
            out.push((format!("{pre}.attn.wq"), &layer.wq));
            out.push((format!("{pre}.attn.wk"), &layer.wk));
            out.push((format!("{pre}.attn.wv"), &layer.wv));
            out.push((format!("{pre}.attn.wo"), &layer.wo));
            out.push((format!("{pre}.ffn.w1"), &layer.w1));
            out.push((format!("{pre}.ffn.w2"), &layer.w2));
        }
        out
    }

    /// Generates a random in-vocabulary token sequence.
    pub fn random_tokens(&self, len: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len.min(self.config.max_seq)).map(|_| rng.gen_range(0..self.config.vocab)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::FpExecutor;

    fn tiny() -> (ModelConfig, Model) {
        let config = ModelConfig {
            name: "tiny".into(),
            layers: 2,
            hidden: 64,
            heads: 2,
            ff: 128,
            vocab: 500,
            max_seq: 64,
        };
        let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 7);
        (config, model)
    }

    #[test]
    fn forward_shapes_are_correct() {
        let (config, model) = tiny();
        let tokens = model.random_tokens(20, 1);
        let hidden = model.forward(&mut FpExecutor, &tokens);
        assert_eq!(hidden.shape(), (20, config.hidden));
    }

    #[test]
    fn forward_is_deterministic() {
        let (_, model) = tiny();
        let tokens = model.random_tokens(16, 2);
        let a = model.forward(&mut FpExecutor, &tokens);
        let b = model.forward(&mut FpExecutor, &tokens);
        assert_eq!(a, b);
    }

    #[test]
    fn different_inputs_give_different_outputs() {
        let (_, model) = tiny();
        let a = model.forward(&mut FpExecutor, &model.random_tokens(16, 3));
        let b = model.forward(&mut FpExecutor, &model.random_tokens(16, 4));
        assert!(a.max_abs_diff(&b) > 1e-3);
    }

    #[test]
    fn hidden_states_are_normalized_and_finite() {
        let (config, model) = tiny();
        let hidden = model.forward(&mut FpExecutor, &model.random_tokens(12, 5));
        assert!(hidden.as_slice().iter().all(|x| x.is_finite()));
        // Post-layer-norm rows have bounded scale.
        for r in 0..hidden.rows() {
            let ss: f32 = hidden.row(r).iter().map(|x| x * x).sum::<f32>() / config.hidden as f32;
            assert!(ss < 10.0, "row {r} rms too large: {}", ss.sqrt());
        }
    }

    #[test]
    fn classification_head_emits_logits() {
        let (_, model) = tiny();
        let out = model.infer(&mut FpExecutor, &model.random_tokens(10, 6));
        match out {
            TaskOutput::Logits(l) => assert_eq!(l.len(), 3),
            other => panic!("expected logits, got {other:?}"),
        }
    }

    #[test]
    fn span_head_emits_position_logits() {
        let config = tiny().0;
        let model = Model::synthesize(&config, Head::Span, 8);
        let out = model.infer(&mut FpExecutor, &model.random_tokens(10, 6));
        match out {
            TaskOutput::Span(s, e) => {
                assert_eq!(s.len(), 10);
                assert_eq!(e.len(), 10);
            }
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn weight_tensor_inventory_is_complete() {
        let (config, model) = tiny();
        let tensors = model.weight_tensors();
        // 4 (embeddings + heads) + 6 per layer.
        assert_eq!(tensors.len(), 4 + 6 * config.layers);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_panics() {
        let (_, model) = tiny();
        let _ = model.embed(&[10_000]);
    }
}
