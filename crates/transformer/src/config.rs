//! Model zoo configurations (paper Section IV-A).
//!
//! The dimensions below are the published architectures; they drive the
//! footprint accounting (Fig. 1), the accelerator workloads (Figs. 9–15),
//! and — scaled down via [`ModelConfig::scaled`] — the numeric accuracy
//! experiments (Table I).

use serde::{Deserialize, Serialize};

/// A BERT-family encoder architecture.
///
/// # Example
///
/// ```
/// use mokey_transformer::ModelConfig;
///
/// let bert = ModelConfig::bert_large();
/// assert_eq!(bert.layers, 24);
/// // ~340M parameters, as the paper states.
/// assert!((bert.param_count() as f64 / 1e6 - 340.0).abs() < 30.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name ("BERT-Base", …).
    pub name: String,
    /// Encoder layer count.
    pub layers: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Attention heads (must divide `hidden`).
    pub heads: usize,
    /// Feed-forward inner width (4·hidden for the BERT family).
    pub ff: usize,
    /// Vocabulary size (token embedding rows).
    pub vocab: usize,
    /// Maximum sequence length (position embedding rows).
    pub max_seq: usize,
}

impl ModelConfig {
    /// BERT-Base: 12 encoders, 110M parameters (paper Section IV-A).
    pub fn bert_base() -> Self {
        Self {
            name: "BERT-Base".into(),
            layers: 12,
            hidden: 768,
            heads: 12,
            ff: 3072,
            vocab: 30_522,
            max_seq: 512,
        }
    }

    /// BERT-Large: 24 encoders, 340M parameters.
    pub fn bert_large() -> Self {
        Self {
            name: "BERT-Large".into(),
            layers: 24,
            hidden: 1024,
            heads: 16,
            ff: 4096,
            vocab: 30_522,
            max_seq: 512,
        }
    }

    /// RoBERTa-Large: same architecture as BERT-Large, larger vocabulary.
    pub fn roberta_large() -> Self {
        Self {
            name: "RoBERTa-Large".into(),
            layers: 24,
            hidden: 1024,
            heads: 16,
            ff: 4096,
            vocab: 50_265,
            max_seq: 512,
        }
    }

    /// DeBERTa-XL: 48 encoders, ~750M parameters (paper Section IV-A).
    pub fn deberta_xl() -> Self {
        Self {
            name: "DeBERTa-XL".into(),
            layers: 48,
            hidden: 1024,
            heads: 16,
            ff: 4096,
            vocab: 128_100,
            max_seq: 512,
        }
    }

    /// All four evaluated architectures, in the paper's order.
    pub fn zoo() -> Vec<Self> {
        vec![Self::bert_base(), Self::bert_large(), Self::roberta_large(), Self::deberta_xl()]
    }

    /// Head dimension `hidden / heads`.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `hidden`.
    pub fn head_dim(&self) -> usize {
        assert_eq!(self.hidden % self.heads, 0, "heads must divide hidden");
        self.hidden / self.heads
    }

    /// Total parameter count: embeddings + per-layer attention/FFN/LN
    /// weights and biases.
    pub fn param_count(&self) -> usize {
        let h = self.hidden;
        let embeddings = self.vocab * h + self.max_seq * h + 2 * h; // token + position + LN
        let per_layer = 4 * (h * h + h)      // QKVO + biases
            + (h * self.ff + self.ff)        // FF1
            + (self.ff * h + h)              // FF2
            + 4 * h; // two layer norms
        embeddings + self.layers * per_layer
    }

    /// Parameter bytes at the given width (FP16 = 2 bytes in the paper's
    /// baselines).
    pub fn param_bytes(&self, bytes_per_value: usize) -> usize {
        self.param_count() * bytes_per_value
    }

    /// A proportionally scaled-down configuration for numeric experiments
    /// (same depth-to-width character, tractable GEMMs). Head count scales
    /// with width so the head dimension stays constant.
    ///
    /// # Panics
    ///
    /// Panics if the divisors do not divide the configuration evenly.
    pub fn scaled(&self, width_div: usize, layer_div: usize) -> Self {
        assert!(width_div > 0 && layer_div > 0, "divisors must be positive");
        assert_eq!(self.hidden % width_div, 0, "width_div must divide hidden");
        assert_eq!(self.heads % width_div.min(self.heads), 0, "width_div incompatible with heads");
        let heads = (self.heads / width_div).max(1);
        Self {
            name: format!("{}/s{}x{}", self.name, width_div, layer_div),
            layers: (self.layers / layer_div).max(1),
            hidden: self.hidden / width_div,
            heads,
            ff: self.ff / width_div,
            vocab: 2048,
            max_seq: self.max_seq.min(128),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_match_published_sizes() {
        // Published: 110M / 340M / 355M / ~750M.
        let within = |config: ModelConfig, millions: f64, tol: f64| {
            let m = config.param_count() as f64 / 1e6;
            assert!((m - millions).abs() < tol, "{}: {m}M vs {millions}M", config.name);
        };
        within(ModelConfig::bert_base(), 110.0, 10.0);
        within(ModelConfig::bert_large(), 340.0, 30.0);
        within(ModelConfig::roberta_large(), 355.0, 30.0);
        within(ModelConfig::deberta_xl(), 750.0, 80.0);
    }

    #[test]
    fn head_dim_is_64_for_the_zoo() {
        for config in ModelConfig::zoo() {
            assert_eq!(config.head_dim(), 64, "{}", config.name);
        }
    }

    #[test]
    fn scaled_config_preserves_head_dim() {
        let scaled = ModelConfig::bert_base().scaled(4, 3);
        assert_eq!(scaled.hidden, 192);
        assert_eq!(scaled.layers, 4);
        assert_eq!(scaled.head_dim(), 64);
        assert_eq!(scaled.ff, 768);
    }

    #[test]
    fn param_bytes_fp16() {
        let config = ModelConfig::bert_base();
        assert_eq!(config.param_bytes(2), config.param_count() * 2);
    }

    #[test]
    #[should_panic(expected = "width_div must divide hidden")]
    fn bad_scale_divisor_panics() {
        let _ = ModelConfig::bert_base().scaled(5, 1);
    }
}
