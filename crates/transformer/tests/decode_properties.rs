//! Property test pinning the decode subsystem's central claim: greedy
//! generation through the **incremental quantized KV-cache** is
//! bit-identical to a reference decode that re-runs the entire prefix
//! from scratch every step (fresh prefill + float-carried K/V), across
//! random prompt lengths, step budgets, EOS choices, and both
//! [`ExecMode`]s.
//!
//! Tokens, the final hidden row, *and* the activation-encoding counters
//! must all agree — the cache stores 5-bit codes and rematerializes
//! floats through the same decode tables the hooks used, so any
//! divergence is cache bookkeeping gone wrong.

use mokey_transformer::decode::{generate, generate_reference};
use mokey_transformer::quantize::QuantizedModel;
use mokey_transformer::{ExecMode, Head, Model, ModelConfig, QuantizeSpec, QuantizedContext};
use proptest::prelude::*;
use std::sync::OnceLock;

const VOCAB: usize = 120;
const MAX_SEQ: usize = 20;

fn fixture() -> &'static (Model, QuantizedContext) {
    static FIXTURE: OnceLock<(Model, QuantizedContext)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let config = ModelConfig {
            name: "decode-prop".into(),
            layers: 2,
            hidden: 32,
            heads: 2,
            ff: 64,
            vocab: VOCAB,
            max_seq: MAX_SEQ,
        };
        let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 17);
        let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(12, 90 + s)).collect();
        let (qm, _) =
            QuantizedModel::prepare(&model, QuantizeSpec::weights_and_activations(), &profile);
        let ctx = qm.into_context();
        (model, ctx)
    })
}

proptest! {
    /// Incremental KV-cache decode ≡ full-prefix-recompute decode,
    /// bit-for-bit, in both execution modes.
    #[test]
    fn incremental_decode_matches_full_prefix_recompute(
        prompt_len in 1usize..12,
        max_tokens in 0usize..7,
        prompt_seed in 0u64..10_000,
        index_domain in prop::bool::ANY,
        with_eos in prop::bool::ANY,
        eos in 0usize..VOCAB,
    ) {
        let (model, ctx) = fixture();
        let mode = if index_domain { ExecMode::IndexDomain } else { ExecMode::Decoded };
        let eos = with_eos.then_some(eos);
        let prompt = model.random_tokens(prompt_len, prompt_seed);
        let incremental = generate(model, ctx, &prompt, max_tokens, eos, mode);
        let reference = generate_reference(model, ctx, &prompt, max_tokens, eos, mode);
        prop_assert!(
            incremental == reference,
            "cache decode diverged from full recompute: prompt_len {prompt_len}, \
             max_tokens {max_tokens}, seed {prompt_seed}, mode {mode:?}, eos {eos:?}\n\
             incremental tokens {:?}\nreference tokens  {:?}",
            incremental.tokens, reference.tokens
        );
        prop_assert!(incremental.tokens.len() <= max_tokens);
    }

    /// Long generations saturate the cache at `max_seq` and still agree
    /// with the recompute oracle at the boundary.
    #[test]
    fn decode_agrees_at_the_max_seq_boundary(
        slack in 0usize..4,
        prompt_seed in 0u64..10_000,
        index_domain in prop::bool::ANY,
    ) {
        let (model, ctx) = fixture();
        let mode = if index_domain { ExecMode::IndexDomain } else { ExecMode::Decoded };
        let prompt = model.random_tokens(MAX_SEQ - 1 - slack, prompt_seed);
        // A budget far past the cache capacity: the max_seq stop rule
        // must fire in both implementations at the same token.
        let incremental = generate(model, ctx, &prompt, 3 * MAX_SEQ, None, mode);
        let reference = generate_reference(model, ctx, &prompt, 3 * MAX_SEQ, None, mode);
        prop_assert!(incremental == reference, "boundary divergence at slack {slack}");
        prop_assert_eq!(incremental.tokens.len(), slack + 2);
    }
}
