//! Shared fixtures for the Criterion benches.

use mokey_core::curve::ExpCurve;
use mokey_core::encode::QuantizedTensor;
use mokey_tensor::init::GaussianMixture;
use mokey_tensor::Matrix;

/// A deterministic weight-like matrix.
pub fn weight_matrix(rows: usize, cols: usize) -> Matrix {
    GaussianMixture::weight_like(0.0, 0.05).sample_matrix(rows, cols, 0xBEEF)
}

/// A deterministic activation-like matrix.
pub fn activation_matrix(rows: usize, cols: usize) -> Matrix {
    GaussianMixture::activation_like(0.2, 1.2).sample_matrix(rows, cols, 0xFEED)
}

/// Quantizes a matrix with its own dictionary and the paper curve.
pub fn quantize(m: &Matrix) -> QuantizedTensor {
    QuantizedTensor::encode_with_own_dict(m, &ExpCurve::paper(), &Default::default())
}
