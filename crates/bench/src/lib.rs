//! Shared fixtures for the Criterion benches.

use mokey_core::encode::QuantizedTensor;
use mokey_pipeline::QuantSession;
use mokey_tensor::init::GaussianMixture;
use mokey_tensor::Matrix;

/// A deterministic weight-like matrix.
pub fn weight_matrix(rows: usize, cols: usize) -> Matrix {
    GaussianMixture::weight_like(0.0, 0.05).sample_matrix(rows, cols, 0xBEEF)
}

/// A deterministic activation-like matrix.
pub fn activation_matrix(rows: usize, cols: usize) -> Matrix {
    GaussianMixture::activation_like(0.2, 1.2).sample_matrix(rows, cols, 0xFEED)
}

/// A pipeline session for bench fixtures: paper curve constants, cache
/// disabled (fixtures quantize each tensor once).
pub fn session() -> QuantSession {
    QuantSession::builder().cache_dicts(false).build()
}

/// Quantizes a matrix through a fixture pipeline session.
pub fn quantize(m: &Matrix) -> QuantizedTensor {
    session().quantize_tensor("bench", m).expect("bench fixtures are non-degenerate")
}
