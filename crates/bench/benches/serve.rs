//! Throughput/latency baseline for the `mokey-serve` engine: seeded
//! multi-client load swept over `max_batch ∈ {1, 8, 16}` on one model,
//! plus a two-model registry sweep (per-model requests/second and
//! cross-model dictionary-cache hits), a **fairness** sweep (a flooding
//! model with and without an admission quota vs the victim model's solo
//! p99), a **decode** sweep (seeded generations through the per-step
//! rebatching path, once per execution mode — decoded-GEMM vs
//! index-domain LUT — with tokens/second and per-generated-token
//! p50/p99 recorded per mode, plus
//! a mixed decode + one-shot scenario pinning the one-shot p99 within
//! 4x of its solo baseline), and a **network** sweep (the same seeded
//! load through the TCP frontend's wire protocol vs in-process
//! submission), reported with
//! p50/p99 latency and packed-execution counters (packed batches, pad
//! waste) and written to `BENCH_serve.json` at the workspace root so
//! future PRs have a serving-perf trajectory to compare against.
//! `host_parallelism` is recorded so the trajectory is interpretable
//! across machines.
//!
//! `cargo bench -p mokey-bench --bench serve -- --quick-check` keeps the
//! per-run load full-size (the batching assertion needs steady-state
//! margins, not coalescing-latency noise) but runs fewer repetitions,
//! shrinks the criterion sampling, and never rewrites the committed
//! baseline. It **asserts** three properties: batching pays (best
//! requests/second at `max_batch = 8` at least the `max_batch = 1`
//! figure on multi-core hosts, parity within noise on a single core);
//! an admission quota keeps a flooded victim's p99 near its solo
//! baseline; and the socket path's throughput stays within ~10% of
//! in-process submission (a relaxed floor under `--quick-check`, where
//! fewer repetitions leave more scheduler noise).

use criterion::{criterion_group, criterion_main, Criterion};
use mokey_serve::{
    drive_socket_clients, serve, serve_net, serve_registry, ExecMode, LoadGen, MetricsReport,
    ModelRegistry, ModelServeConfig, NetConfig, PreparedModel, ServeConfig, ServeReport,
    SocketLoadReport,
};
use mokey_transformer::model::{Head, Model};
use mokey_transformer::{ModelConfig, QuantizeSpec};
use std::path::PathBuf;
use std::time::Duration;

/// Workspace root: the first ancestor whose `Cargo.toml` declares
/// `[workspace]` (mirrors `mokey_eval::report::results_dir`).
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..4 {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(".")
}

fn quick_check() -> bool {
    std::env::args().any(|a| a == "--quick-check")
}

/// The single-model substrate lives in a registry so the same prepared
/// weights serve both the in-process sweeps (via [`ModelRegistry::get`])
/// and the TCP frontend (which resolves the model by wire name).
fn prepare() -> ModelRegistry {
    let config = ModelConfig::bert_base().scaled(6, 6);
    let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 2025);
    let profile: Vec<Vec<usize>> = (0..4).map(|s| model.random_tokens(24, 500 + s)).collect();
    let mut registry = ModelRegistry::new();
    registry
        .register("classify", model, QuantizeSpec::weights_and_activations(), &profile)
        .expect("non-degenerate model");
    registry
}

/// Two task heads over one encoder behind one shared session; returns
/// the registry plus the cross-model dictionary-cache hits the second
/// registration scored.
fn prepare_registry() -> (ModelRegistry, usize) {
    let config = ModelConfig::bert_base().scaled(6, 6);
    let profile: Vec<Vec<usize>> = (0..4)
        .map(|s| Model::synthesize(&config, Head::Span, 2025).random_tokens(24, 500 + s))
        .collect();
    let spec = QuantizeSpec::weights_and_activations();
    let mut registry = ModelRegistry::new();
    registry
        .register(
            "sentiment",
            Model::synthesize(&config, Head::Classification { classes: 3 }, 2025),
            spec,
            &profile,
        )
        .expect("non-degenerate model");
    registry
        .register(
            "topic",
            Model::synthesize(&config, Head::Classification { classes: 5 }, 2025),
            spec,
            &profile,
        )
        .expect("non-degenerate model");
    let hits = registry.cache_stats().hits;
    (registry, hits)
}

/// Drives interleaved two-model load (one client thread per model per
/// `clients` count) through a registry engine.
fn run_multi_model_load(
    registry: &ModelRegistry,
    max_batch: usize,
    clients_per_model: usize,
    requests_per_client: usize,
) -> ServeReport {
    let config = ServeConfig {
        workers: 2,
        max_batch,
        max_wait: Duration::from_millis(1),
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let ((), report) = serve_registry(registry, config, |handle| {
        std::thread::scope(|scope| {
            for (id, _, prepared) in registry.iter() {
                for c in 0..clients_per_model {
                    let model = prepared.model();
                    scope.spawn(move || {
                        let mut traffic =
                            LoadGen::new(model, 9500 + id.index() as u64 * 100 + c as u64);
                        let tickets: Vec<_> = traffic
                            .requests(requests_per_client)
                            .into_iter()
                            .map(|t| handle.submit_to(id, t).expect("valid request"))
                            .collect();
                        for ticket in tickets {
                            let _ = ticket.wait();
                        }
                    });
                }
            }
        })
    });
    report
}

/// Drives `requests` seeded requests from `clients` client threads
/// through an engine at the given batching setting and execution mode.
fn run_load_mode(
    prepared: &PreparedModel,
    max_batch: usize,
    clients: usize,
    requests_per_client: usize,
    mode: ExecMode,
) -> MetricsReport {
    let config = ServeConfig {
        workers: 2,
        max_batch,
        max_wait: Duration::from_millis(1),
        queue_capacity: 64,
        mode,
        ..ServeConfig::default()
    };
    let ((), report) = serve(prepared, config, |handle| {
        std::thread::scope(|scope| {
            for c in 0..clients {
                scope.spawn(move || {
                    let mut traffic = LoadGen::new(prepared.model(), 9000 + c as u64);
                    let tickets: Vec<_> = traffic
                        .requests(requests_per_client)
                        .into_iter()
                        .map(|t| handle.submit(t).expect("valid request"))
                        .collect();
                    for ticket in tickets {
                        let _ = ticket.wait();
                    }
                });
            }
        })
    });
    report
}

/// [`run_load_mode`] on the default decoded-GEMM execution path.
fn run_load(
    prepared: &PreparedModel,
    max_batch: usize,
    clients: usize,
    requests_per_client: usize,
) -> MetricsReport {
    run_load_mode(prepared, max_batch, clients, requests_per_client, ExecMode::Decoded)
}

/// Drives seeded decode traffic: `clients` threads each submit
/// `gens_per_client` generations (prompt from the LoadGen band, up to
/// `max_new` new tokens, no EOS) and stream them to completion on the
/// given execution mode. The engine report carries the decode figures:
/// generated tokens, decode slices, tokens/second, and the
/// per-generated-token latency histogram.
fn run_decode_load(
    prepared: &PreparedModel,
    clients: usize,
    gens_per_client: usize,
    max_new: usize,
    mode: ExecMode,
) -> MetricsReport {
    let config = ServeConfig {
        workers: 2,
        max_batch: 8,
        max_wait: Duration::from_millis(1),
        queue_capacity: 64,
        mode,
        ..ServeConfig::default()
    };
    let ((), report) = serve(prepared, config, |handle| {
        std::thread::scope(|scope| {
            for c in 0..clients {
                scope.spawn(move || {
                    let mut traffic = LoadGen::new(prepared.model(), 9700 + c as u64);
                    let tickets: Vec<_> = traffic
                        .generates(gens_per_client, max_new)
                        .into_iter()
                        .map(|(prompt, max_tokens)| {
                            handle.submit_generate(prompt, max_tokens, None).expect("admitted")
                        })
                        .collect();
                    for ticket in tickets {
                        let _ = ticket.wait();
                    }
                });
            }
        })
    });
    report
}

/// One mixed-traffic scenario on the fairness substrate (one worker,
/// tiny batches): `gen_threads` closed-loop decode clients each run
/// `gens_per_thread` sequential generations against "sentiment" — each
/// generation re-entering the queue between tokens — while "topic" runs
/// its sequential closed loop of one-shots. Closed-loop generators keep
/// steady decode pressure (always `gen_threads` generations in flight)
/// without the t=0 prefill herd a fully pipelined burst would park in
/// front of the victim's first request. Per-step rebatching is what
/// keeps the victim's p99 bounded: a one-shot never waits behind more
/// than the in-flight token slices.
fn run_mixed_decode_load(
    registry: &ModelRegistry,
    gen_threads: usize,
    gens_per_thread: usize,
    max_new: usize,
    victim_requests: usize,
) -> ServeReport {
    let config = ServeConfig {
        workers: 1,
        max_batch: 2,
        max_wait: Duration::from_millis(1),
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let generator = registry.lookup("sentiment").expect("registered");
    let victim = registry.lookup("topic").expect("registered");
    let ((), report) = serve_registry(registry, config, |handle| {
        std::thread::scope(|scope| {
            for g in 0..gen_threads {
                let model = registry.get(generator).unwrap().model();
                scope.spawn(move || {
                    let mut traffic = LoadGen::new(model, 4300 + g as u64);
                    for (prompt, max_tokens) in traffic.generates(gens_per_thread, max_new) {
                        let ticket = handle
                            .submit_generate_to(generator, prompt, max_tokens, None)
                            .expect("generation admitted");
                        let _ = ticket.wait();
                    }
                });
            }
            let model = registry.get(victim).unwrap().model();
            scope.spawn(move || {
                let mut traffic = LoadGen::new(model, 4200);
                for tokens in traffic.requests(victim_requests) {
                    let ticket = handle.submit_to(victim, tokens).expect("victim admitted");
                    let _ = ticket.wait();
                }
            });
        })
    });
    report
}

/// The same seeded, pipelined load as [`run_load`], but through the TCP
/// frontend: every request crosses the wire protocol twice.
fn run_socket_load(
    registry: &ModelRegistry,
    max_batch: usize,
    clients: usize,
    requests_per_client: usize,
) -> SocketLoadReport {
    let config = ServeConfig {
        workers: 2,
        max_batch,
        max_wait: Duration::from_millis(1),
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let model = registry.get(registry.lookup("classify").expect("registered")).unwrap().model();
    let (load, _report) = serve_net(registry, config, NetConfig::default(), |net| {
        drive_socket_clients(
            &net.addr().to_string(),
            model,
            "classify",
            clients,
            requests_per_client,
            9000,
        )
        .expect("socket load")
    })
    .expect("bind loopback");
    load
}

/// One fairness scenario on a single-worker engine: "sentiment" floods
/// `flood_requests` pipelined submissions while "topic" (the victim)
/// runs a closed loop of `victim_requests` sequential requests. With
/// `flood_requests = 0` this measures the victim's solo baseline. The
/// flooder's admission quota — or its absence — comes from the
/// registry's per-model serve config, set by the caller.
fn run_fairness_load(
    registry: &ModelRegistry,
    flood_requests: usize,
    victim_requests: usize,
) -> ServeReport {
    let config = ServeConfig {
        workers: 1,
        max_batch: 2,
        max_wait: Duration::from_millis(1),
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let flooder = registry.lookup("sentiment").expect("registered");
    let victim = registry.lookup("topic").expect("registered");
    let ((), report) = serve_registry(registry, config, |handle| {
        std::thread::scope(|scope| {
            if flood_requests > 0 {
                let model = registry.get(flooder).unwrap().model();
                scope.spawn(move || {
                    let mut traffic = LoadGen::new(model, 4100);
                    // Quota-shed submissions are the point of the
                    // capped scenario; only admitted tickets are waited.
                    let tickets: Vec<_> = traffic
                        .requests(flood_requests)
                        .into_iter()
                        .filter_map(|t| handle.submit_to(flooder, t).ok())
                        .collect();
                    for ticket in tickets {
                        let _ = ticket.wait();
                    }
                });
            }
            let model = registry.get(victim).unwrap().model();
            scope.spawn(move || {
                let mut traffic = LoadGen::new(model, 4200);
                for tokens in traffic.requests(victim_requests) {
                    let ticket = handle.submit_to(victim, tokens).expect("victim admitted");
                    let _ = ticket.wait();
                }
            });
        })
    });
    report
}

/// The victim model's p99 out of a fairness run's per-model metrics.
fn victim_p99(report: &ServeReport) -> Duration {
    report
        .per_model
        .iter()
        .find(|(name, _)| name == "topic")
        .map(|(_, r)| r.latency_p99)
        .expect("victim served")
}

fn bench(c: &mut Criterion) {
    let bench_registry = prepare();
    let prepared =
        bench_registry.get(bench_registry.lookup("classify").expect("registered")).unwrap();
    let quick = quick_check();
    // The quick load still has to reach batching steady state — a
    // handful of requests would measure coalescing latency, not
    // throughput (and the rps(8) ≥ rps(1) assertion needs the margin to
    // clear scheduler noise, so the quick *per-run* load matches the
    // full one; quick mode economizes on repetitions instead).
    let (clients, per_client) = (4, 16);

    // Bit-identity check: the batched engine path must produce exactly
    // the sequential single-request outputs (the acceptance invariant of
    // the serving subsystem).
    let probe = LoadGen::new(prepared.model(), 31).requests(6);
    let (engine_outputs, _) =
        serve(prepared, ServeConfig { max_batch: 6, ..ServeConfig::default() }, |handle| {
            let tickets: Vec<_> = probe.iter().map(|t| handle.submit(t.clone()).unwrap()).collect();
            tickets.into_iter().map(|t| t.wait().output).collect::<Vec<_>>()
        });
    for (tokens, out) in probe.iter().zip(&engine_outputs) {
        assert_eq!(out, &prepared.infer(tokens).0, "engine output diverged from sequential");
    }

    // The baseline: the same seeded load swept over the batching
    // settings. Each setting takes the best of five runs, with the
    // repetitions *interleaved* across settings (1, 8, 16, 1, 8, 16, …)
    // so a slow window on a noisy host depresses every setting equally
    // instead of sinking whichever one it landed on — the committed
    // trajectory (and the CI assertion) reflects capability, not
    // scheduler noise.
    const SETTINGS: [usize; 3] = [1, 8, 16];
    let reps = if quick { 3 } else { 5 };
    let mut best_report: std::collections::BTreeMap<usize, MetricsReport> =
        std::collections::BTreeMap::new();
    for _ in 0..reps {
        for max_batch in SETTINGS {
            let report = run_load(prepared, max_batch, clients, per_client);
            let slot = best_report.entry(max_batch).or_insert(report);
            if report.requests_per_sec > slot.requests_per_sec {
                *slot = report;
            }
        }
    }
    let mut settings_json = Vec::new();
    let mut best_by_batch = std::collections::BTreeMap::new();
    for max_batch in SETTINGS {
        let report = best_report[&max_batch];
        best_by_batch.insert(max_batch, report.requests_per_sec);
        println!(
            "[serve] max_batch {:>2}: {:>7.1} req/s, mean batch {:.2}, {} packed batches, pad waste {:.2}%, p50 {:.3} ms, p99 {:.3} ms",
            max_batch,
            report.requests_per_sec,
            report.mean_batch_size,
            report.packed_batches,
            100.0 * report.pad_waste,
            report.latency_p50.as_secs_f64() * 1e3,
            report.latency_p99.as_secs_f64() * 1e3,
        );
        settings_json.push(format!(
            "    {{\n      \"max_batch\": {},\n      \"clients\": {},\n      \"requests\": {},\n      \"requests_per_sec\": {:.1},\n      \"mean_batch_size\": {:.3},\n      \"batches_formed\": {},\n      \"packed_batches\": {},\n      \"packed_requests\": {},\n      \"pad_waste\": {:.4},\n      \"latency_p50_ms\": {:.3},\n      \"latency_p99_ms\": {:.3},\n      \"values_per_sec\": {:.0}\n    }}",
            max_batch,
            clients,
            clients * per_client,
            report.requests_per_sec,
            report.mean_batch_size,
            report.batches_formed,
            report.packed_batches,
            report.packed_requests,
            report.pad_waste,
            report.latency_p50.as_secs_f64() * 1e3,
            report.latency_p99.as_secs_f64() * 1e3,
            report.values_per_sec,
        ));
    }
    // Batching must keep paying; this runs in CI via --quick-check. On a
    // host with ≥2 cores the packed tall GEMMs now thread (they cross the
    // parallel row-chunk threshold; solo per-request shapes stay below
    // it), so max_batch=8 has a structural advantage the solo loop cannot
    // reach and must win outright. A single core cannot thread anything —
    // there the packed path can only tie the solo loop (GEMM zero-skipping
    // already drops pad rows), and strict ≥ on a true tie is a coin flip,
    // so the assertion requires parity within measurement noise instead;
    // it still fails on any real batching regression.
    let single_core = std::thread::available_parallelism().map_or(1, |n| n.get()) < 2;
    let floor = if single_core { 0.95 } else { 1.0 };
    let (rps1, rps8) = (best_by_batch[&1], best_by_batch[&8]);
    println!(
        "[serve] batching margin: {:+.1}% (max_batch=8 vs 1, {})",
        100.0 * (rps8 - rps1) / rps1,
        if single_core { "single-core parity check" } else { "multi-core strict check" },
    );
    assert!(
        rps8 >= rps1 * floor,
        "batching lost throughput: max_batch=8 at {rps8:.1} req/s vs max_batch=1 at {rps1:.1} req/s"
    );

    // The execution-mode sweep: the identical load at max_batch 8 on the
    // decoded-GEMM path vs the index-domain LUT path (projection/FFN
    // GEMMs on codes via pair-LUTs). Outputs are bit-identical either
    // way — the integration tests pin that — so this records the pure
    // throughput trade: in software a dense f32 GEMM on decoded
    // centroids vectorizes better than a table gather per MAC, while the
    // LUT path is the faithful software view of the accelerator's
    // index-domain datapath (and beats the histogram kernel by an order
    // of magnitude; see `BENCH_kernels.json`).
    let mut mode_json = Vec::new();
    for (label, mode) in [("decoded", ExecMode::Decoded), ("index_domain", ExecMode::IndexDomain)] {
        let mut best: Option<MetricsReport> = None;
        for _ in 0..reps {
            let report = run_load_mode(prepared, 8, clients, per_client, mode);
            assert_eq!(
                report.completed,
                (clients * per_client) as u64,
                "{label} mode dropped requests"
            );
            if best.as_ref().is_none_or(|b| report.values_per_sec > b.values_per_sec) {
                best = Some(report);
            }
        }
        let report = best.expect("mode runs executed");
        println!(
            "[serve] mode {label:<12}: {:>7.1} req/s, {:>12.0} values/s, p50 {:.3} ms, p99 {:.3} ms",
            report.requests_per_sec,
            report.values_per_sec,
            report.latency_p50.as_secs_f64() * 1e3,
            report.latency_p99.as_secs_f64() * 1e3,
        );
        mode_json.push(format!(
            "    {{\n      \"mode\": \"{label}\",\n      \"max_batch\": 8,\n      \"requests_per_sec\": {:.1},\n      \"values_per_sec\": {:.0},\n      \"latency_p50_ms\": {:.3},\n      \"latency_p99_ms\": {:.3}\n    }}",
            report.requests_per_sec,
            report.values_per_sec,
            report.latency_p50.as_secs_f64() * 1e3,
            report.latency_p99.as_secs_f64() * 1e3,
        ));
    }

    // The two-model registry sweep: same per-model load through one
    // shared worker pool, recording per-model requests/second and the
    // cross-model dictionary-cache hits scored at registration.
    let (mut registry, cross_model_hits) = prepare_registry();
    let mut multi_best: Option<ServeReport> = None;
    for _ in 0..if quick { 2 } else { 3 } {
        let report = run_multi_model_load(&registry, 8, 2, per_client / 2);
        if multi_best
            .as_ref()
            .is_none_or(|b| report.aggregate.requests_per_sec > b.aggregate.requests_per_sec)
        {
            multi_best = Some(report);
        }
    }
    let multi = multi_best.expect("three runs executed");
    println!(
        "[serve] 2-model  : {:>7.1} req/s aggregate, {} cross-model dict-cache hits",
        multi.aggregate.requests_per_sec, cross_model_hits,
    );
    let mut per_model_json = Vec::new();
    for (name, r) in &multi.per_model {
        println!(
            "[serve]   {name:<10}: {:>7.1} req/s, {} completed, p99 {:.3} ms",
            r.requests_per_sec,
            r.completed,
            r.latency_p99.as_secs_f64() * 1e3,
        );
        per_model_json.push(format!(
            "      {{\n        \"model\": \"{name}\",\n        \"requests_per_sec\": {:.1},\n        \"completed\": {},\n        \"latency_p99_ms\": {:.3}\n      }}",
            r.requests_per_sec,
            r.completed,
            r.latency_p99.as_secs_f64() * 1e3,
        ));
    }
    assert!(cross_model_hits > 0, "identical-stats tensors failed to hit the shared dict cache");

    // The fairness sweep: can a flooding model starve another model's
    // latency? One worker, tiny batches, a deep shared queue.
    // "sentiment" floods pipelined requests while "topic" (the victim)
    // runs a sequential closed loop. Without a quota the flood parks
    // tens of requests ahead of every victim arrival; with a
    // `queue_quota` on the flooder, everything beyond the cap is shed at
    // admission and the victim's p99 stays near its solo baseline. Each
    // scenario takes the best (lowest victim p99) of a few runs so the
    // committed figures reflect the policy, not a scheduler hiccup.
    let (flood_requests, victim_requests) = (200, 16);
    let fair_reps = if quick { 2 } else { 3 };
    let solo_p99 = (0..fair_reps)
        .map(|_| victim_p99(&run_fairness_load(&registry, 0, victim_requests)))
        .min()
        .expect("solo runs executed");
    let flooded_p99 = (0..fair_reps)
        .map(|_| victim_p99(&run_fairness_load(&registry, flood_requests, victim_requests)))
        .min()
        .expect("flooded runs executed");
    let flooder_quota = 2;
    let flooder_id = registry.lookup("sentiment").expect("registered");
    registry.set_serve_config(
        flooder_id,
        ModelServeConfig { queue_quota: Some(flooder_quota), ..ModelServeConfig::default() },
    );
    let mut capped_best: Option<ServeReport> = None;
    for _ in 0..fair_reps {
        let report = run_fairness_load(&registry, flood_requests, victim_requests);
        if capped_best.as_ref().is_none_or(|b| victim_p99(&report) < victim_p99(b)) {
            capped_best = Some(report);
        }
    }
    registry.set_serve_config(flooder_id, ModelServeConfig::default());
    let capped = capped_best.expect("capped runs executed");
    let capped_p99 = victim_p99(&capped);
    let flood_shed = capped.aggregate.rejected_quota;
    println!(
        "[serve] fairness : victim p99 solo {:.3} ms | flooded {:.3} ms | quota({flooder_quota}) {:.3} ms ({flood_shed} of {flood_requests} flood requests shed)",
        solo_p99.as_secs_f64() * 1e3,
        flooded_p99.as_secs_f64() * 1e3,
        capped_p99.as_secs_f64() * 1e3,
    );
    assert!(flood_shed > 0, "the admission quota never shed a {flood_requests}-request flood");
    // The quota bounds how much flood work a victim request can queue
    // behind (quota + one in-flight batch), so its p99 is the solo
    // figure plus a small constant — nothing like the unbounded case
    // (observed ~37× solo on a single core). 4× + 10 ms gives the
    // constant generous noise headroom while staying an order of
    // magnitude below what an uncapped flood inflicts.
    assert!(
        capped_p99.as_secs_f64() <= solo_p99.as_secs_f64() * 4.0 + 0.010,
        "quota failed to protect the victim: p99 {:.3} ms under a capped flood vs {:.3} ms solo",
        capped_p99.as_secs_f64() * 1e3,
        solo_p99.as_secs_f64() * 1e3,
    );

    // The decode sweep: seeded generations through the per-step
    // rebatching path, run once per execution mode — the decoded-GEMM
    // default and the index-domain LUT path (decode steps hit the
    // quantized KV cache either way; outputs are pinned bit-identical by
    // the integration tests). Each generation prefills once, then
    // re-enters the queue per token; tokens/second per mode and the
    // per-generated-token latency percentiles are the committed figures.
    let (decode_clients, gens_per_client, max_new) = (4, 4, 8);
    let mut decode_mode_json = Vec::new();
    let mut decode_by_mode: Vec<(&str, MetricsReport)> = Vec::new();
    for (label, mode) in [("decoded", ExecMode::Decoded), ("index_domain", ExecMode::IndexDomain)] {
        let mut decode_best: Option<MetricsReport> = None;
        for _ in 0..if quick { 2 } else { 3 } {
            let report = run_decode_load(prepared, decode_clients, gens_per_client, max_new, mode);
            assert_eq!(
                report.completed,
                (decode_clients * gens_per_client) as u64,
                "{label} decode load dropped generations"
            );
            assert!(report.generated_tokens > 0, "{label} decode load produced no tokens");
            if decode_best.as_ref().is_none_or(|b| report.tokens_per_sec > b.tokens_per_sec) {
                decode_best = Some(report);
            }
        }
        let report = decode_best.expect("decode runs executed");
        println!(
            "[serve] decode {label:<12}: {:>7.1} tokens/s ({} tokens in {} slices), per-token p50 {:.3} ms, p99 {:.3} ms",
            report.tokens_per_sec,
            report.generated_tokens,
            report.decode_steps,
            report.per_token_p50.as_secs_f64() * 1e3,
            report.per_token_p99.as_secs_f64() * 1e3,
        );
        decode_mode_json.push(format!(
            "      {{\n        \"mode\": \"{label}\",\n        \"tokens_per_sec\": {:.1},\n        \"per_token_p50_ms\": {:.3},\n        \"per_token_p99_ms\": {:.3}\n      }}",
            report.tokens_per_sec,
            report.per_token_p50.as_secs_f64() * 1e3,
            report.per_token_p99.as_secs_f64() * 1e3,
        ));
        decode_by_mode.push((label, report));
    }
    // The headline decode figures stay on the decoded-GEMM default so
    // the committed trajectory remains comparable across PRs.
    let decode = decode_by_mode[0].1;

    // Mixed decode + one-shot fairness: concurrent generations on one
    // model must not starve another model's one-shot latency, because
    // every generation yields the worker back after each token. The
    // victim's p99 under mixed load is asserted within 4x of its solo
    // baseline (the fairness solo run: same worker/batch config, same
    // seeded closed loop), plus the same 10 ms noise constant the quota
    // check uses.
    let (gen_threads, gens_per_thread) = (3, 4);
    let mixed_p99 = (0..fair_reps)
        .map(|_| {
            victim_p99(&run_mixed_decode_load(
                &registry,
                gen_threads,
                gens_per_thread,
                max_new,
                victim_requests,
            ))
        })
        .min()
        .expect("mixed runs executed");
    let mixed_ratio = mixed_p99.as_secs_f64() / solo_p99.as_secs_f64().max(1e-9);
    println!(
        "[serve] mixed    : one-shot p99 {:.3} ms under {gen_threads} closed-loop generation streams vs {:.3} ms solo ({mixed_ratio:.2}x)",
        mixed_p99.as_secs_f64() * 1e3,
        solo_p99.as_secs_f64() * 1e3,
    );
    assert!(
        mixed_p99.as_secs_f64() <= solo_p99.as_secs_f64() * 4.0 + 0.010,
        "per-step rebatching failed to protect one-shots: p99 {:.3} ms mixed vs {:.3} ms solo",
        mixed_p99.as_secs_f64() * 1e3,
        solo_p99.as_secs_f64() * 1e3,
    );

    // The network sweep: the identical pipelined load (same clients ×
    // requests, max_batch 8) driven through the TCP frontend instead of
    // in-process submission. Every request pays two wire crossings and
    // the per-connection reader/writer hop; throughput must stay within
    // ~10% of the in-process figure (relaxed under --quick-check, where
    // fewer repetitions leave more scheduler noise on a busy host).
    let mut net_best: Option<SocketLoadReport> = None;
    for _ in 0..if quick { 2 } else { 3 } {
        let load = run_socket_load(&bench_registry, 8, clients, per_client);
        assert_eq!(load.completed, (clients * per_client) as u64, "socket load dropped requests");
        assert_eq!(load.rejected, 0, "socket load saw rejections on an uncapped model");
        if net_best.as_ref().is_none_or(|b| load.requests_per_sec > b.requests_per_sec) {
            net_best = Some(load);
        }
    }
    let net = net_best.expect("network runs executed");
    let wire_ratio = net.requests_per_sec / rps8;
    println!(
        "[serve] network  : {:>7.1} req/s over TCP ({:.1}% of {:.1} in-process), p50 {:.3} ms, p99 {:.3} ms",
        net.requests_per_sec,
        100.0 * wire_ratio,
        rps8,
        net.latency_p50.as_secs_f64() * 1e3,
        net.latency_p99.as_secs_f64() * 1e3,
    );
    let mut per_connection_json = Vec::new();
    for (i, conn) in net.per_connection.iter().enumerate() {
        println!(
            "[serve]   conn {i}    : {:>3} completed, p50 {:.3} ms, p99 {:.3} ms",
            conn.completed,
            conn.latency_p50.as_secs_f64() * 1e3,
            conn.latency_p99.as_secs_f64() * 1e3,
        );
        per_connection_json.push(format!(
            "      {{\n        \"completed\": {},\n        \"latency_p50_ms\": {:.3},\n        \"latency_p99_ms\": {:.3}\n      }}",
            conn.completed,
            conn.latency_p50.as_secs_f64() * 1e3,
            conn.latency_p99.as_secs_f64() * 1e3,
        ));
    }
    // Target is ~90% of in-process (observed ~91% on a single core); the
    // floor sits a few points under it so a scheduler hiccup on a shared
    // host doesn't fail a healthy wire path, and much lower under
    // --quick-check where best-of-2 absorbs less noise.
    let net_floor = if quick { 0.7 } else { 0.85 };
    assert!(
        wire_ratio >= net_floor,
        "wire throughput fell to {:.1}% of in-process ({:.1} vs {rps8:.1} req/s; floor {:.0}%)",
        100.0 * wire_ratio,
        net.requests_per_sec,
        100.0 * net_floor,
    );

    // A quick-check pass (CI) exercises the path but must not replace
    // the committed full-load baseline with shrunken numbers.
    if quick {
        println!("[serve] quick check: baseline not rewritten");
    } else {
        let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
        let multi_model_json = format!(
            "  \"multi_model\": {{\n    \"models\": 2,\n    \"max_batch\": 8,\n    \"cross_model_dict_cache_hits\": {},\n    \"aggregate_requests_per_sec\": {:.1},\n    \"per_model\": [\n{}\n    ]\n  }}",
            cross_model_hits,
            multi.aggregate.requests_per_sec,
            per_model_json.join(",\n"),
        );
        let fairness_json = format!(
            "  \"fairness\": {{\n    \"workers\": 1,\n    \"max_batch\": 2,\n    \"flood_requests\": {flood_requests},\n    \"victim_requests\": {victim_requests},\n    \"flooder_quota\": {flooder_quota},\n    \"victim_p99_solo_ms\": {:.3},\n    \"victim_p99_flooded_ms\": {:.3},\n    \"victim_p99_quota_ms\": {:.3},\n    \"flood_shed\": {flood_shed}\n  }}",
            solo_p99.as_secs_f64() * 1e3,
            flooded_p99.as_secs_f64() * 1e3,
            capped_p99.as_secs_f64() * 1e3,
        );
        let decode_json = format!(
            "  \"decode\": {{\n    \"clients\": {decode_clients},\n    \"generations\": {},\n    \"max_new_tokens\": {max_new},\n    \"generated_tokens\": {},\n    \"decode_steps\": {},\n    \"tokens_per_sec\": {:.1},\n    \"per_token_p50_ms\": {:.3},\n    \"per_token_p99_ms\": {:.3},\n    \"exec_modes\": [\n{}\n    ],\n    \"mixed_oneshot_p99_solo_ms\": {:.3},\n    \"mixed_oneshot_p99_ms\": {:.3},\n    \"mixed_oneshot_p99_ratio\": {:.3}\n  }}",
            decode_clients * gens_per_client,
            decode.generated_tokens,
            decode.decode_steps,
            decode.tokens_per_sec,
            decode.per_token_p50.as_secs_f64() * 1e3,
            decode.per_token_p99.as_secs_f64() * 1e3,
            decode_mode_json.join(",\n"),
            solo_p99.as_secs_f64() * 1e3,
            mixed_p99.as_secs_f64() * 1e3,
            mixed_ratio,
        );
        let network_json = format!(
            "  \"network\": {{\n    \"clients\": {},\n    \"requests\": {},\n    \"max_batch\": 8,\n    \"requests_per_sec\": {:.1},\n    \"in_process_requests_per_sec\": {:.1},\n    \"wire_ratio\": {:.3},\n    \"latency_p50_ms\": {:.3},\n    \"latency_p99_ms\": {:.3},\n    \"per_connection\": [\n{}\n    ]\n  }}",
            clients,
            clients * per_client,
            net.requests_per_sec,
            rps8,
            wire_ratio,
            net.latency_p50.as_secs_f64() * 1e3,
            net.latency_p99.as_secs_f64() * 1e3,
            per_connection_json.join(",\n"),
        );
        let baseline = format!(
            "{{\n  \"bench\": \"serve_engine\",\n  \"model\": \"{}\",\n  \"workers\": 2,\n  \"host_parallelism\": {},\n  \"settings\": [\n{}\n  ],\n  \"exec_modes\": [\n{}\n  ],\n{},\n{},\n{},\n{}\n}}\n",
            prepared.model().config().name,
            host_parallelism,
            settings_json.join(",\n"),
            mode_json.join(",\n"),
            multi_model_json,
            fairness_json,
            decode_json,
            network_json,
        );
        let path = workspace_root().join("BENCH_serve.json");
        match std::fs::write(&path, baseline) {
            Ok(()) => println!("[serve] baseline written to {}", path.display()),
            Err(e) => println!("[serve] could not write {}: {e}", path.display()),
        }
    }

    let mut group = c.benchmark_group("serve");
    group.sample_size(if quick { 2 } else { 10 });
    group.bench_function("engine_batch1", |b| b.iter(|| run_load(prepared, 1, 2, 4).completed));
    group.bench_function("engine_batch8", |b| b.iter(|| run_load(prepared, 8, 2, 4).completed));
    group.bench_function("prepared_infer_solo", |b| {
        let tokens = prepared.model().random_tokens(24, 77);
        b.iter(|| prepared.infer(&tokens))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
