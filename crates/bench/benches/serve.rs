//! Throughput/latency baseline for the `mokey-serve` engine: seeded
//! multi-client load swept over `max_batch ∈ {1, 8, 16}`, reported as
//! requests/second with p50/p99 latency plus packed-execution counters
//! (packed batches, pad waste) and written to `BENCH_serve.json` at the
//! workspace root so future PRs have a serving-perf trajectory to
//! compare against. `host_parallelism` is recorded so the trajectory is
//! interpretable across machines.
//!
//! `cargo bench -p mokey-bench --bench serve -- --quick-check` runs a
//! shrunken load (CI keeps the path warm without paying full bench
//! time) and **asserts** that batching pays: best-of-three
//! requests/second at `max_batch = 8` must be at least the
//! `max_batch = 1` figure — the tensor-level packed path has to beat the
//! solo loop, not just tie it.

use criterion::{criterion_group, criterion_main, Criterion};
use mokey_serve::{serve, LoadGen, MetricsReport, PreparedModel, ServeConfig};
use mokey_transformer::model::{Head, Model};
use mokey_transformer::{ModelConfig, QuantizeSpec};
use std::path::PathBuf;
use std::time::Duration;

/// Workspace root: the first ancestor whose `Cargo.toml` declares
/// `[workspace]` (mirrors `mokey_eval::report::results_dir`).
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..4 {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(".")
}

fn quick_check() -> bool {
    std::env::args().any(|a| a == "--quick-check")
}

fn prepare() -> PreparedModel {
    let config = ModelConfig::bert_base().scaled(6, 6);
    let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 2025);
    let profile: Vec<Vec<usize>> = (0..4).map(|s| model.random_tokens(24, 500 + s)).collect();
    PreparedModel::prepare(model, QuantizeSpec::weights_and_activations(), &profile)
        .expect("non-degenerate model")
}

/// Drives `requests` seeded requests from `clients` client threads
/// through an engine at the given batching setting.
fn run_load(
    prepared: &PreparedModel,
    max_batch: usize,
    clients: usize,
    requests_per_client: usize,
) -> MetricsReport {
    let config = ServeConfig {
        workers: 2,
        max_batch,
        max_wait: Duration::from_millis(1),
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let ((), report) = serve(prepared, config, |handle| {
        std::thread::scope(|scope| {
            for c in 0..clients {
                scope.spawn(move || {
                    let mut traffic = LoadGen::new(prepared.model(), 9000 + c as u64);
                    let tickets: Vec<_> = traffic
                        .requests(requests_per_client)
                        .into_iter()
                        .map(|t| handle.submit(t).expect("valid request"))
                        .collect();
                    for ticket in tickets {
                        let _ = ticket.wait();
                    }
                });
            }
        })
    });
    report
}

fn bench(c: &mut Criterion) {
    let prepared = prepare();
    let quick = quick_check();
    // The quick load still has to reach batching steady state — a
    // handful of requests would measure coalescing latency, not
    // throughput.
    let (clients, per_client) = if quick { (4, 12) } else { (4, 16) };

    // Bit-identity check: the batched engine path must produce exactly
    // the sequential single-request outputs (the acceptance invariant of
    // the serving subsystem).
    let probe = LoadGen::new(prepared.model(), 31).requests(6);
    let (engine_outputs, _) =
        serve(&prepared, ServeConfig { max_batch: 6, ..ServeConfig::default() }, |handle| {
            let tickets: Vec<_> = probe.iter().map(|t| handle.submit(t.clone()).unwrap()).collect();
            tickets.into_iter().map(|t| t.wait().output).collect::<Vec<_>>()
        });
    for (tokens, out) in probe.iter().zip(&engine_outputs) {
        assert_eq!(out, &prepared.infer(tokens).0, "engine output diverged from sequential");
    }

    // The baseline: the same seeded load swept over the batching
    // settings. Each setting takes the best of three runs so the
    // committed trajectory (and the CI assertion) reflects capability,
    // not scheduler noise.
    let mut settings_json = Vec::new();
    let mut best_by_batch = std::collections::BTreeMap::new();
    for max_batch in [1usize, 8, 16] {
        let mut best: Option<MetricsReport> = None;
        for _ in 0..3 {
            let report = run_load(&prepared, max_batch, clients, per_client);
            if best.as_ref().is_none_or(|b| report.requests_per_sec > b.requests_per_sec) {
                best = Some(report);
            }
        }
        let report = best.expect("three runs executed");
        best_by_batch.insert(max_batch, report.requests_per_sec);
        println!(
            "[serve] max_batch {:>2}: {:>7.1} req/s, mean batch {:.2}, {} packed batches, pad waste {:.2}%, p50 {:.3} ms, p99 {:.3} ms",
            max_batch,
            report.requests_per_sec,
            report.mean_batch_size,
            report.packed_batches,
            100.0 * report.pad_waste,
            report.latency_p50.as_secs_f64() * 1e3,
            report.latency_p99.as_secs_f64() * 1e3,
        );
        settings_json.push(format!(
            "    {{\n      \"max_batch\": {},\n      \"clients\": {},\n      \"requests\": {},\n      \"requests_per_sec\": {:.1},\n      \"mean_batch_size\": {:.3},\n      \"batches_formed\": {},\n      \"packed_batches\": {},\n      \"packed_requests\": {},\n      \"pad_waste\": {:.4},\n      \"latency_p50_ms\": {:.3},\n      \"latency_p99_ms\": {:.3},\n      \"values_per_sec\": {:.0}\n    }}",
            max_batch,
            clients,
            clients * per_client,
            report.requests_per_sec,
            report.mean_batch_size,
            report.batches_formed,
            report.packed_batches,
            report.packed_requests,
            report.pad_waste,
            report.latency_p50.as_secs_f64() * 1e3,
            report.latency_p99.as_secs_f64() * 1e3,
            report.values_per_sec,
        ));
    }
    // Batching must pay: the packed tensor-level path at max_batch = 8
    // has to beat (or at worst tie) the solo loop. This runs in CI via
    // --quick-check.
    let (rps1, rps8) = (best_by_batch[&1], best_by_batch[&8]);
    assert!(
        rps8 >= rps1,
        "batching lost throughput: max_batch=8 at {rps8:.1} req/s vs max_batch=1 at {rps1:.1} req/s"
    );
    // A quick-check pass (CI) exercises the path but must not replace
    // the committed full-load baseline with shrunken numbers.
    if quick {
        println!("[serve] quick check: baseline not rewritten");
    } else {
        let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
        let baseline = format!(
            "{{\n  \"bench\": \"serve_engine\",\n  \"model\": \"{}\",\n  \"workers\": 2,\n  \"host_parallelism\": {},\n  \"settings\": [\n{}\n  ]\n}}\n",
            prepared.model().config().name,
            host_parallelism,
            settings_json.join(",\n"),
        );
        let path = workspace_root().join("BENCH_serve.json");
        match std::fs::write(&path, baseline) {
            Ok(()) => println!("[serve] baseline written to {}", path.display()),
            Err(e) => println!("[serve] could not write {}: {e}", path.display()),
        }
    }

    let mut group = c.benchmark_group("serve");
    group.sample_size(if quick { 2 } else { 10 });
    group.bench_function("engine_batch1", |b| b.iter(|| run_load(&prepared, 1, 2, 4).completed));
    group.bench_function("engine_batch8", |b| b.iter(|| run_load(&prepared, 8, 2, 4).completed));
    group.bench_function("prepared_infer_solo", |b| {
        let tokens = prepared.model().random_tokens(24, 77);
        b.iter(|| prepared.infer(&tokens))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
