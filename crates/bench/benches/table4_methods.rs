//! Bench for Table IV: per-method weight-quantization cost on a real
//! weight matrix, plus the full Quick-quality table printout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mokey_baselines::Baseline;
use mokey_bench::weight_matrix;
use mokey_eval::tables::table4;
use mokey_eval::Quality;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let t = table4(Quality::Quick);
    println!("\n[table4/quick] FP score {:.2}", t.fp_score);
    for r in &t.rows {
        println!(
            "  {:<12} {:>4.1}b/{:>4.1}b  score {:>6.2} (err {:+.2})  int:{} post:{}  {:>4.1}x",
            r.method,
            r.param_bits,
            r.act_bits,
            r.score,
            r.err,
            r.int_compute as u8,
            r.post_training as u8,
            r.compression
        );
    }

    let w = weight_matrix(256, 512);
    let mut group = c.benchmark_group("table4_weight_quantizers");
    for method in [Baseline::Q8Bert, Baseline::QBert, Baseline::Gobo, Baseline::TernaryBert] {
        group.bench_with_input(
            BenchmarkId::new("quantize", method.info().name),
            &method,
            |b, m| b.iter(|| black_box(m.quantize_weights(&w))),
        );
    }
    group.bench_function("quantize/Mokey", |b| b.iter(|| black_box(mokey_bench::quantize(&w))));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
