//! Throughput smoke benchmark for `QuantSession::quantize_model`: serial
//! vs parallel weight quantization of a scaled BERT-Base, reported as
//! values/second and written to `BENCH_pipeline.json` at the workspace
//! root so future PRs have a perf trajectory to compare against.

use criterion::{criterion_group, criterion_main, Criterion};
use mokey_pipeline::{Parallelism, QuantSession, QuantizeSpec};
use mokey_transformer::model::{Head, Model};
use mokey_transformer::ModelConfig;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Workspace root: the first ancestor whose `Cargo.toml` declares
/// `[workspace]` (mirrors `mokey_eval::report::results_dir`).
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..4 {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(".")
}

/// Measures one `quantize_model` weight pass in values/second. Every
/// iteration uses a fresh session so dictionary fits are never served
/// from cache.
fn values_per_sec(model: &Model, par: Parallelism, iters: u32) -> (usize, f64) {
    let mut values = 0usize;
    let t0 = Instant::now();
    for _ in 0..iters {
        let session = QuantSession::builder().parallelism(par).cache_dicts(false).build();
        let mq = session
            .quantize_model(model, QuantizeSpec::weights_only(), &[])
            .expect("non-degenerate weights");
        values = mq.report.weight_values;
        black_box(mq);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    (values, values as f64 * f64::from(iters) / elapsed)
}

fn bench(c: &mut Criterion) {
    let config = ModelConfig::bert_base().scaled(6, 4);
    let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 2024);

    // Bit-identity check: the parallel path must produce exactly the
    // serial codes (the acceptance invariant of the pipeline refactor).
    let serial = QuantSession::builder().parallelism(Parallelism::Serial).build();
    let parallel = QuantSession::builder().parallelism(Parallelism::Auto).build();
    let ms = serial.quantize_model(&model, QuantizeSpec::weights_only(), &[]).unwrap();
    let mp = parallel.quantize_model(&model, QuantizeSpec::weights_only(), &[]).unwrap();
    assert_eq!(ms.weights, mp.weights, "parallel codes diverged from serial");

    let iters = 3;
    let (values, serial_vps) = values_per_sec(&model, Parallelism::Serial, iters);
    let (_, parallel_vps) = values_per_sec(&model, Parallelism::Auto, iters);
    // The workers the parallel pass actually spawned (capped by the
    // per-tensor item count), vs what the host offers — both recorded so
    // the perf trajectory is interpretable across machines.
    let tensors = model.weight_tensors().len();
    let threads = Parallelism::Auto.workers(tensors);
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n[pipeline] {} weight values: serial {:.2} Mvals/s, parallel {:.2} Mvals/s ({}x on {} threads, host has {})",
        values,
        serial_vps / 1e6,
        parallel_vps / 1e6,
        parallel_vps / serial_vps,
        threads,
        host_parallelism,
    );

    let baseline = format!(
        "{{\n  \"bench\": \"quantize_model_weights\",\n  \"model\": \"{}\",\n  \"weight_values\": {},\n  \"serial_values_per_sec\": {:.0},\n  \"parallel_values_per_sec\": {:.0},\n  \"parallel_speedup\": {:.3},\n  \"threads\": {},\n  \"host_parallelism\": {}\n}}\n",
        config.name,
        values,
        serial_vps,
        parallel_vps,
        parallel_vps / serial_vps,
        threads,
        host_parallelism,
    );
    let path = workspace_root().join("BENCH_pipeline.json");
    match std::fs::write(&path, baseline) {
        Ok(()) => println!("[pipeline] baseline written to {}", path.display()),
        Err(e) => println!("[pipeline] could not write {}: {e}", path.display()),
    }

    let mut group = c.benchmark_group("pipeline");
    group.bench_function("quantize_model_serial", |b| {
        b.iter(|| {
            let session =
                QuantSession::builder().parallelism(Parallelism::Serial).cache_dicts(false).build();
            black_box(session.quantize_model(&model, QuantizeSpec::weights_only(), &[]).unwrap())
        })
    });
    group.bench_function("quantize_model_parallel", |b| {
        b.iter(|| {
            let session =
                QuantSession::builder().parallelism(Parallelism::Auto).cache_dicts(false).build();
            black_box(session.quantize_model(&model, QuantizeSpec::weights_only(), &[]).unwrap())
        })
    });
    group.bench_function("quantize_model_cached", |b| {
        // Warm cache: the steady-state cost of re-quantizing a model
        // through a long-lived session.
        let session = QuantSession::with_defaults();
        let _ = session.quantize_model(&model, QuantizeSpec::weights_only(), &[]).unwrap();
        b.iter(|| {
            black_box(session.quantize_model(&model, QuantizeSpec::weights_only(), &[]).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
