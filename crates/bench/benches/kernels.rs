//! Kernel microbenchmarks: the index-domain MAC path versus decoded-
//! centroid and FP32 GEMMs — the software view of what the Mokey PE does
//! in hardware — plus encode/quantizer throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mokey_bench::{activation_matrix, quantize, weight_matrix};
use mokey_core::kernels;
use mokey_core::quantizer::OutputQuantizer;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Dot-product paths at attention/FFN-like depths.
    let mut group = c.benchmark_group("dot_product");
    for k in [256usize, 1024, 4096] {
        let a = activation_matrix(1, k);
        let w = weight_matrix(1, k);
        let qa = quantize(&a);
        let qw = quantize(&w);
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("indexed", k), &k, |b, _| {
            b.iter(|| black_box(kernels::dot_indexed(qa.codes(), qa.dict(), qw.codes(), qw.dict())))
        });
        group.bench_with_input(BenchmarkId::new("decoded", k), &k, |b, _| {
            b.iter(|| black_box(kernels::dot_decoded(qa.codes(), qa.dict(), qw.codes(), qw.dict())))
        });
        group.bench_with_input(BenchmarkId::new("fp32", k), &k, |b, _| {
            b.iter(|| {
                let mut acc = 0.0f32;
                for (x, y) in a.as_slice().iter().zip(w.as_slice()) {
                    acc += x * y;
                }
                black_box(acc)
            })
        });
    }
    group.finish();

    // GEMM paths.
    let a = activation_matrix(32, 256);
    let w = weight_matrix(256, 64);
    let qa = quantize(&a);
    let qw = quantize(&w);
    let mut gemm = c.benchmark_group("gemm_32x256x64");
    gemm.bench_function("indexed", |b| b.iter(|| black_box(kernels::matmul_indexed(&qa, &qw))));
    gemm.bench_function("decoded", |b| b.iter(|| black_box(kernels::matmul_decoded(&qa, &qw))));
    gemm.bench_function("fp32", |b| b.iter(|| black_box(a.matmul(&w))));
    gemm.finish();

    // Encode/quantizer throughput (the Fig. 7 engine).
    let acts = activation_matrix(64, 256);
    let dict = quantize(&acts).dict().clone();
    let engine = OutputQuantizer::new(dict.clone());
    let mut enc = c.benchmark_group("encode");
    enc.throughput(Throughput::Elements(acts.len() as u64));
    enc.bench_function("dictionary_encode", |b| {
        b.iter(|| {
            for &v in acts.as_slice() {
                black_box(dict.encode_value(v));
            }
        })
    });
    enc.bench_function("output_quantizer_engine", |b| {
        b.iter(|| {
            for &v in acts.as_slice() {
                black_box(engine.quantize(v));
            }
        })
    });
    enc.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
