//! Kernel microbenchmarks: the index-domain MAC path versus decoded-
//! centroid and FP32 GEMMs — the software view of what the Mokey PE does
//! in hardware — plus encode/quantizer throughput.
//!
//! The GEMM comparison sweeps transformer-projection-like shapes
//! (`192×128×{128,512}`: a packed `(batch·seq)×hidden` activation against
//! a square projection and a 4× FFN expansion) across three kernels that
//! all produce the same quantized result:
//!
//! * **decoded** — decode both operands to centroid f32s (into reused
//!   scratch buffers, no per-iteration allocation), then a dense GEMM;
//! * **indexed** — the histogram kernel ([`kernels::matmul_indexed`]),
//!   bit-faithful to the paper's PE datapath but slow in software;
//! * **lut** — the pair-LUT kernel ([`lut::matmul_lut`]): both operands
//!   stay as codes, every product is one 32×32 table gather.
//!
//! Best-of-N values/sec (MACs per second) per kernel land in
//! `BENCH_kernels.json` at the workspace root. The run **asserts** the
//! LUT kernel beats the histogram kernel — ≥5× at `192×128×512` in a
//! full run, a relaxed ≥2× under `--quick-check` (CI), where fewer
//! repetitions absorb less scheduler noise — and never rewrites the
//! committed baseline in quick mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mokey_bench::{activation_matrix, quantize, weight_matrix};
use mokey_core::kernels;
use mokey_core::lut::{self, ColMajorCodes, PairLut};
use mokey_core::quantizer::OutputQuantizer;
use mokey_tensor::Matrix;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Workspace root: the first ancestor whose `Cargo.toml` declares
/// `[workspace]` (mirrors the serve bench).
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..4 {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(".")
}

fn quick_check() -> bool {
    std::env::args().any(|a| a == "--quick-check")
}

/// Best-of-`reps` wall-clock for `iters` calls of `f`, as MAC values/sec.
fn values_per_sec(macs: usize, reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    (macs as f64) / best
}

struct GemmRow {
    kernel: &'static str,
    vps: f64,
}

fn bench(c: &mut Criterion) {
    let quick = quick_check();

    // ------------------------------------------------------------------
    // The GEMM kernel comparison: decoded vs indexed vs LUT at packed
    // projection shapes. The decoded loop reuses scratch decode buffers
    // (`decode_into` + `into_vec` round trip) so it measures decode +
    // GEMM, not allocator traffic.
    // ------------------------------------------------------------------
    const M: usize = 192;
    const K: usize = 128;
    let (reps, iters) = if quick { (2, 1) } else { (3, 3) };
    let mut shapes_json = Vec::new();
    let mut lut_speedup_at_512 = 0.0f64;
    for n in [128usize, 512] {
        let a = activation_matrix(M, K);
        let w = weight_matrix(K, n);
        let qa = quantize(&a);
        let qw = quantize(&w);
        let pair = PairLut::new(qa.dict(), qw.dict());
        let w_cols = ColMajorCodes::from_tensor(&qw);
        let macs = M * K * n;

        let mut a_scratch: Vec<f32> = Vec::new();
        let mut w_scratch: Vec<f32> = Vec::new();
        let decoded_vps = values_per_sec(macs, reps, iters, || {
            qa.decode_into(&mut a_scratch);
            qw.decode_into(&mut w_scratch);
            let am = Matrix::from_vec(M, K, std::mem::take(&mut a_scratch));
            let wm = Matrix::from_vec(K, n, std::mem::take(&mut w_scratch));
            black_box(am.matmul(&wm));
            a_scratch = am.into_vec();
            w_scratch = wm.into_vec();
        });
        // The histogram kernel is orders of magnitude slower; one call per
        // measurement keeps the sweep tolerable without hurting best-of-N.
        let indexed_vps = values_per_sec(macs, reps, 1, || {
            black_box(kernels::matmul_indexed(&qa, &qw));
        });
        let lut_vps = values_per_sec(macs, reps, iters, || {
            black_box(lut::matmul_lut(&qa, &w_cols, &pair));
        });

        let rows = [
            GemmRow { kernel: "decoded", vps: decoded_vps },
            GemmRow { kernel: "indexed", vps: indexed_vps },
            GemmRow { kernel: "lut", vps: lut_vps },
        ];
        let speedup = lut_vps / indexed_vps;
        if n == 512 {
            lut_speedup_at_512 = speedup;
        }
        println!(
            "[kernels] {M}x{K}x{n}: decoded {:>10.0} MAC/s | indexed {:>10.0} MAC/s | lut {:>10.0} MAC/s (lut {:.1}x indexed, {:.2}x decoded)",
            decoded_vps,
            indexed_vps,
            lut_vps,
            speedup,
            lut_vps / decoded_vps,
        );
        let kernel_json = rows
            .iter()
            .map(|r| {
                format!(
                    "        {{\n          \"kernel\": \"{}\",\n          \"values_per_sec\": {:.0}\n        }}",
                    r.kernel, r.vps,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        shapes_json.push(format!(
            "    {{\n      \"m\": {M},\n      \"k\": {K},\n      \"n\": {n},\n      \"macs\": {macs},\n      \"kernels\": [\n{kernel_json}\n      ],\n      \"lut_speedup_vs_indexed\": {:.2},\n      \"lut_speedup_vs_decoded\": {:.3},\n      \"pair_lut_bytes\": {}\n    }}",
            speedup,
            lut_vps / decoded_vps,
            pair.bytes(),
        ));
    }
    // The whole point of the index-domain path: a table gather must beat
    // replaying the histogram datapath in software, by a wide margin.
    let speedup_floor = if quick { 2.0 } else { 5.0 };
    assert!(
        lut_speedup_at_512 >= speedup_floor,
        "matmul_lut only {lut_speedup_at_512:.2}x matmul_indexed at {M}x{K}x512 (floor {speedup_floor}x)"
    );

    if quick {
        println!("[kernels] quick check: baseline not rewritten");
    } else {
        let baseline = format!(
            "{{\n  \"bench\": \"kernels_gemm\",\n  \"host_parallelism\": {},\n  \"shapes\": [\n{}\n  ]\n}}\n",
            std::thread::available_parallelism().map_or(1, |p| p.get()),
            shapes_json.join(",\n"),
        );
        let path = workspace_root().join("BENCH_kernels.json");
        match std::fs::write(&path, baseline) {
            Ok(()) => println!("[kernels] baseline written to {}", path.display()),
            Err(e) => println!("[kernels] could not write {}: {e}", path.display()),
        }
    }

    // Dot-product paths at attention/FFN-like depths.
    let mut group = c.benchmark_group("dot_product");
    group.sample_size(if quick { 2 } else { 20 });
    for k in [256usize, 1024, 4096] {
        let a = activation_matrix(1, k);
        let w = weight_matrix(1, k);
        let qa = quantize(&a);
        let qw = quantize(&w);
        let pair = PairLut::new(qa.dict(), qw.dict());
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("indexed", k), &k, |b, _| {
            b.iter(|| black_box(kernels::dot_indexed(qa.codes(), qa.dict(), qw.codes(), qw.dict())))
        });
        group.bench_with_input(BenchmarkId::new("decoded", k), &k, |b, _| {
            b.iter(|| black_box(kernels::dot_decoded(qa.codes(), qa.dict(), qw.codes(), qw.dict())))
        });
        group.bench_with_input(BenchmarkId::new("lut", k), &k, |b, _| {
            b.iter(|| black_box(lut::dot_lut(qa.codes(), qw.codes(), &pair)))
        });
        group.bench_with_input(BenchmarkId::new("fp32", k), &k, |b, _| {
            b.iter(|| {
                let mut acc = 0.0f32;
                for (x, y) in a.as_slice().iter().zip(w.as_slice()) {
                    acc += x * y;
                }
                black_box(acc)
            })
        });
    }
    group.finish();

    // GEMM paths under criterion (smaller shape than the JSON sweep so
    // the histogram kernel stays affordable at criterion sample counts).
    let a = activation_matrix(32, 256);
    let w = weight_matrix(256, 64);
    let qa = quantize(&a);
    let qw = quantize(&w);
    let pair = PairLut::new(qa.dict(), qw.dict());
    let w_cols = ColMajorCodes::from_tensor(&qw);
    let mut gemm = c.benchmark_group("gemm_32x256x64");
    gemm.sample_size(if quick { 2 } else { 20 });
    gemm.bench_function("indexed", |b| b.iter(|| black_box(kernels::matmul_indexed(&qa, &qw))));
    gemm.bench_function("decoded", |b| b.iter(|| black_box(kernels::matmul_decoded(&qa, &qw))));
    gemm.bench_function("lut", |b| b.iter(|| black_box(lut::matmul_lut(&qa, &w_cols, &pair))));
    gemm.bench_function("fp32", |b| b.iter(|| black_box(a.matmul(&w))));
    gemm.finish();

    // Encode/quantizer throughput (the Fig. 7 engine).
    let acts = activation_matrix(64, 256);
    let dict = quantize(&acts).dict().clone();
    let engine = OutputQuantizer::new(dict.clone());
    let mut enc = c.benchmark_group("encode");
    enc.sample_size(if quick { 2 } else { 20 });
    enc.throughput(Throughput::Elements(acts.len() as u64));
    enc.bench_function("dictionary_encode", |b| {
        b.iter(|| {
            for &v in acts.as_slice() {
                black_box(dict.encode_value(v));
            }
        })
    });
    enc.bench_function("output_quantizer_engine", |b| {
        b.iter(|| {
            for &v in acts.as_slice() {
                black_box(engine.quantize(v));
            }
        })
    });
    enc.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
