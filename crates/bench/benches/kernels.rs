//! Kernel microbenchmarks: the index-domain MAC path versus decoded-
//! centroid and FP32 GEMMs — the software view of what the Mokey PE does
//! in hardware — plus encode/quantizer throughput.
//!
//! The GEMM comparison sweeps transformer-projection-like shapes
//! (`192×128×{128,512}`: a packed `(batch·seq)×hidden` activation against
//! a square projection and a 4× FFN expansion) across four kernels that
//! all produce the same quantized result:
//!
//! * **decoded** — decode both operands to centroid f32s (into reused
//!   scratch buffers, no per-iteration allocation), then a dense GEMM;
//! * **indexed** — the histogram kernel, bit-faithful to the paper's PE
//!   datapath but slow in software (here driven through
//!   [`kernels::dot_indexed`] with the column-major weight gather and the
//!   output buffer hoisted out of the timing loop, so its ratio is as
//!   honest as the decoded loop's);
//! * **lut** — the pair-LUT kernel ([`lut::matmul_lut`]): both operands
//!   stay as codes, every product is one 32×32 table gather;
//! * **counter_array** — the counter-array kernel
//!   ([`lut::matmul_lut_counter`]): per-weight-code partial sums over row
//!   panels of A, deferring every multiply to one per-code reduction.
//!
//! A second section times the fused block-diagonal packed attention
//! ([`mokey_transformer::packed::fused_attention_scores`] /
//! [`fused_attention_context`]) against the per-sequence `slice_block` +
//! GEMM formulation it replaced, at a serve-like ragged pack.
//!
//! Best-of-N values/sec (MACs per second) per kernel land in
//! `BENCH_kernels.json` at the workspace root. The run **asserts** the
//! LUT kernel beats the histogram kernel — ≥5× at `192×128×512` in a
//! full run, a relaxed ≥2× under `--quick-check` (CI), where fewer
//! repetitions absorb less scheduler noise — that the counter-array
//! kernel is no slower than the pair-LUT gather, and that fused attention
//! is no slower than the per-sequence formulation (both floors are
//! host-parallelism-aware: a multi-core host relaxes them to near-parity
//! because noisy neighbours hit the longer-running side harder). Every
//! run prints a one-line perf diff against the committed baseline; quick
//! mode never rewrites it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mokey_bench::{activation_matrix, quantize, weight_matrix};
use mokey_core::kernels;
use mokey_core::lut::{self, ColMajorCodes, PairLut};
use mokey_core::quantizer::OutputQuantizer;
use mokey_tensor::{nn, Matrix};
use mokey_transformer::packed::{fused_attention_context, fused_attention_scores, PackedBatch};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Workspace root: the first ancestor whose `Cargo.toml` declares
/// `[workspace]` (mirrors the serve bench).
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..4 {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(".")
}

fn quick_check() -> bool {
    std::env::args().any(|a| a == "--quick-check")
}

/// Best-of-`reps` wall-clock for `iters` calls of `f`, as MAC values/sec.
fn values_per_sec(macs: usize, reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    (macs as f64) / best
}

struct GemmRow {
    kernel: &'static str,
    vps: f64,
}

/// Naive line-oriented parse of a committed `BENCH_kernels.json`: pairs
/// each `"kernel"` name with the `"values_per_sec"` that follows it, in
/// file order. Hand-rolled like the writer — the bench deliberately has
/// no JSON dependency.
fn parse_baseline_kernels(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut last_kernel = String::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"kernel\": \"") {
            if let Some(name) = rest.strip_suffix("\",").or_else(|| rest.strip_suffix('\"')) {
                last_kernel = name.to_string();
            }
        } else if let Some(rest) = line.strip_prefix("\"values_per_sec\": ") {
            if let Ok(v) = rest.trim_end_matches(',').parse::<f64>() {
                out.push((last_kernel.clone(), v));
            }
        }
    }
    out
}

/// One-line perf summary against the committed baseline: per kernel name,
/// the ratio of this run's values/sec to the committed ones, matched in
/// file order (so both sweep shapes pair up as `a/b`). Kernels with no
/// committed counterpart print as `new`.
fn perf_diff_line(committed: &[(String, f64)], measured: &[(String, f64)]) -> String {
    if committed.is_empty() {
        return "[kernels] no committed BENCH_kernels.json baseline to diff against".into();
    }
    let mut parts = Vec::new();
    let mut seen: Vec<&str> = Vec::new();
    for (name, _) in measured {
        if seen.contains(&name.as_str()) {
            continue;
        }
        seen.push(name);
        let news: Vec<f64> = measured.iter().filter(|(n, _)| n == name).map(|&(_, v)| v).collect();
        let olds: Vec<f64> = committed.iter().filter(|(n, _)| n == name).map(|&(_, v)| v).collect();
        if olds.is_empty() {
            parts.push(format!("{name} new"));
        } else {
            let ratios: Vec<String> =
                news.iter().zip(&olds).map(|(n, o)| format!("{:.2}x", n / o)).collect();
            parts.push(format!("{name} {}", ratios.join("/")));
        }
    }
    format!("[kernels] vs committed baseline: {}", parts.join(" | "))
}

fn bench(c: &mut Criterion) {
    let quick = quick_check();

    // ------------------------------------------------------------------
    // The GEMM kernel comparison: decoded vs indexed vs LUT at packed
    // projection shapes. The decoded loop reuses scratch decode buffers
    // (`decode_into` + `into_vec` round trip) so it measures decode +
    // GEMM, not allocator traffic.
    // ------------------------------------------------------------------
    const M: usize = 192;
    const K: usize = 128;
    let (reps, iters) = if quick { (2, 1) } else { (3, 3) };
    let mut shapes_json = Vec::new();
    let mut measured: Vec<(String, f64)> = Vec::new();
    let mut lut_speedup_at_512 = 0.0f64;
    let mut counter_vs_lut_at_512 = 0.0f64;
    for n in [128usize, 512] {
        let a = activation_matrix(M, K);
        let w = weight_matrix(K, n);
        let qa = quantize(&a);
        let qw = quantize(&w);
        let pair = PairLut::new(qa.dict(), qw.dict());
        let w_cols = ColMajorCodes::from_tensor(&qw);
        let macs = M * K * n;

        let mut a_scratch: Vec<f32> = Vec::new();
        let mut w_scratch: Vec<f32> = Vec::new();
        let decoded_vps = values_per_sec(macs, reps, iters, || {
            qa.decode_into(&mut a_scratch);
            qw.decode_into(&mut w_scratch);
            let am = Matrix::from_vec(M, K, std::mem::take(&mut a_scratch));
            let wm = Matrix::from_vec(K, n, std::mem::take(&mut w_scratch));
            black_box(am.matmul(&wm));
            a_scratch = am.into_vec();
            w_scratch = wm.into_vec();
        });
        // The histogram kernel is orders of magnitude slower; one call per
        // measurement keeps the sweep tolerable without hurting best-of-N.
        // It gets the same scratch-reuse treatment as the decoded loop:
        // the column-major weight gather (which `kernels::matmul_indexed`
        // rebuilds on every call) and the output buffer are hoisted out of
        // the timing loop, so its ratio measures the datapath, not setup.
        let mut indexed_out = vec![0.0f32; M * n];
        let indexed_vps = values_per_sec(macs, reps, 1, || {
            for i in 0..M {
                let a_row = qa.row_codes(i);
                for (j, out) in indexed_out[i * n..(i + 1) * n].iter_mut().enumerate() {
                    *out = kernels::dot_indexed(a_row, qa.dict(), w_cols.col(j), qw.dict()) as f32;
                }
            }
            black_box(&indexed_out);
        });
        let lut_vps = values_per_sec(macs, reps, iters, || {
            black_box(lut::matmul_lut(&qa, &w_cols, &pair));
        });
        let counter_vps = values_per_sec(macs, reps, iters, || {
            black_box(lut::matmul_lut_counter(&qa, &w_cols, &pair));
        });

        let rows = [
            GemmRow { kernel: "decoded", vps: decoded_vps },
            GemmRow { kernel: "indexed", vps: indexed_vps },
            GemmRow { kernel: "lut", vps: lut_vps },
            GemmRow { kernel: "counter_array", vps: counter_vps },
        ];
        for r in &rows {
            measured.push((r.kernel.to_string(), r.vps));
        }
        let speedup = lut_vps / indexed_vps;
        let counter_vs_lut = counter_vps / lut_vps;
        // `lut_speedup_vs_decoded` tracks the kernel the executor would
        // actually dispatch for this shape — the counter-array rung for
        // any GEMM at least `COUNTER_MIN_ROWS` tall (every shape in this
        // sweep) — so the committed trajectory measures the serving
        // index-domain path, not a rung it no longer takes. The raw
        // pair-LUT ratio keeps its own field.
        let index_vs_decoded = counter_vps / decoded_vps;
        if n == 512 {
            lut_speedup_at_512 = speedup;
            counter_vs_lut_at_512 = counter_vs_lut;
        }
        println!(
            "[kernels] {M}x{K}x{n}: decoded {:>10.0} MAC/s | indexed {:>10.0} MAC/s | lut {:>10.0} MAC/s | counter {:>10.0} MAC/s (lut {:.1}x indexed, {:.2}x decoded; counter {:.2}x lut)",
            decoded_vps,
            indexed_vps,
            lut_vps,
            counter_vps,
            speedup,
            lut_vps / decoded_vps,
            counter_vs_lut,
        );
        let kernel_json = rows
            .iter()
            .map(|r| {
                format!(
                    "        {{\n          \"kernel\": \"{}\",\n          \"values_per_sec\": {:.0}\n        }}",
                    r.kernel, r.vps,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        shapes_json.push(format!(
            "    {{\n      \"m\": {M},\n      \"k\": {K},\n      \"n\": {n},\n      \"macs\": {macs},\n      \"kernels\": [\n{kernel_json}\n      ],\n      \"lut_speedup_vs_indexed\": {:.2},\n      \"lut_speedup_vs_decoded\": {:.3},\n      \"pair_lut_speedup_vs_decoded\": {:.3},\n      \"counter_speedup_vs_lut\": {:.2},\n      \"pair_lut_bytes\": {}\n    }}",
            speedup,
            index_vs_decoded,
            lut_vps / decoded_vps,
            counter_vs_lut,
            pair.bytes(),
        ));
    }
    // The whole point of the index-domain path: a table gather must beat
    // replaying the histogram datapath in software, by a wide margin.
    let speedup_floor = if quick { 2.0 } else { 5.0 };
    assert!(
        lut_speedup_at_512 >= speedup_floor,
        "matmul_lut only {lut_speedup_at_512:.2}x matmul_indexed at {M}x{K}x512 (floor {speedup_floor}x)"
    );
    // The counter-array kernel exists to beat the per-MAC pair-LUT gather
    // at multi-row shapes. Host-parallelism-aware floor: on a multi-core
    // host (or under quick-check's few repetitions) scheduler noise lands
    // disproportionately on the longer-running kernel, so the bar relaxes
    // to parity; a dedicated single-core run must show a real win.
    let host_par = std::thread::available_parallelism().map_or(1, |p| p.get());
    let counter_floor = if quick || host_par > 1 { 1.0 } else { 1.2 };
    assert!(
        counter_vs_lut_at_512 >= counter_floor,
        "matmul_lut_counter only {counter_vs_lut_at_512:.2}x matmul_lut at {M}x{K}x512 (floor {counter_floor}x, host_parallelism {host_par})"
    );

    // ------------------------------------------------------------------
    // Fused block-diagonal packed attention vs the per-sequence
    // `slice_block` + GEMM formulation it replaced, at a serve-like
    // ragged pack (8 requests, max seq 24, 4 heads of 32). The
    // per-sequence side is timed exactly as `forward_packed` used to run
    // it — per-(request, head) Q/K/V block copies and small GEMMs —
    // because those copies *are* the cost the fused kernel removes.
    // ------------------------------------------------------------------
    let att_lens: [usize; 8] = [24, 20, 16, 24, 12, 18, 24, 22];
    let att_batch: Vec<Vec<usize>> = att_lens.iter().map(|&l| vec![0usize; l]).collect();
    let pack = PackedBatch::new(&att_batch);
    let (heads, dh) = (4usize, 32usize);
    let hidden = heads * dh;
    let (s, nb) = (pack.seq(), pack.requests());
    let q = activation_matrix(nb * s, hidden);
    let k = weight_matrix(nb * s, hidden).scale(20.0);
    let v = activation_matrix(nb * s, hidden).scale(0.5);
    let att_scale = 1.0 / (dh as f32).sqrt();
    // Q·K^T and P·V are each nb·heads·s·s·dh MACs per pass.
    let att_macs = 2 * nb * heads * s * s * dh;
    let (att_reps, att_iters) = if quick { (2, 2) } else { (3, 8) };

    let mut per_seq_probs = Matrix::zeros(nb * heads * s, s);
    let mut per_seq_ctx = Matrix::zeros(nb * s, hidden);
    let per_seq_vps = values_per_sec(att_macs, att_reps, att_iters, || {
        for bi in 0..nb {
            let len = pack.len_of(bi);
            let base = pack.row_of(bi);
            for hd in 0..heads {
                let qh = q.slice_block(base, s, hd * dh, dh);
                let kh = k.slice_block(base, s, hd * dh, dh);
                let mut scores = qh.matmul_transposed(&kh).scale(att_scale);
                for r in 0..s {
                    for sc in &mut scores.row_mut(r)[len..] {
                        *sc = f32::NEG_INFINITY;
                    }
                }
                nn::softmax_rows(&mut scores);
                let probs_base = (bi * heads + hd) * s;
                for r in 0..s {
                    per_seq_probs.row_mut(probs_base + r).copy_from_slice(scores.row(r));
                }
                let vh = v.slice_block(base, s, hd * dh, dh);
                let ctx_h = scores.matmul(&vh);
                for r in 0..s {
                    per_seq_ctx.row_mut(base + r)[hd * dh..(hd + 1) * dh]
                        .copy_from_slice(ctx_h.row(r));
                }
            }
        }
        black_box((&per_seq_probs, &per_seq_ctx));
    });
    let fused_vps = values_per_sec(att_macs, att_reps, att_iters, || {
        let mut probs = fused_attention_scores(&q, &k, &pack, heads, dh, att_scale);
        nn::softmax_rows(&mut probs);
        black_box(fused_attention_context(&probs, &v, &pack, heads, dh, hidden));
    });
    let fused_speedup = fused_vps / per_seq_vps;
    println!(
        "[kernels] attention {nb}x{s} h{heads}xd{dh}: per_sequence {:>10.0} MAC/s | fused {:>10.0} MAC/s (fused {:.2}x per_sequence)",
        per_seq_vps, fused_vps, fused_speedup,
    );
    measured.push(("attention_per_sequence".to_string(), per_seq_vps));
    measured.push(("attention_fused".to_string(), fused_vps));
    // Fusing exists to win; the floor is host-parallelism-aware for the
    // same reason as the counter-array bar above.
    let fused_floor = if quick || host_par > 1 { 0.9 } else { 1.0 };
    assert!(
        fused_speedup >= fused_floor,
        "fused attention only {fused_speedup:.2}x per-sequence at {nb}x{s} h{heads}xd{dh} (floor {fused_floor}x, host_parallelism {host_par})"
    );
    let attention_json = format!(
        "  \"attention\": {{\n    \"requests\": {nb},\n    \"seq\": {s},\n    \"heads\": {heads},\n    \"head_dim\": {dh},\n    \"macs\": {att_macs},\n    \"kernels\": [\n      {{\n        \"kernel\": \"attention_per_sequence\",\n        \"values_per_sec\": {per_seq_vps:.0}\n      }},\n      {{\n        \"kernel\": \"attention_fused\",\n        \"values_per_sec\": {fused_vps:.0}\n      }}\n    ],\n    \"fused_speedup_vs_per_sequence\": {fused_speedup:.2}\n  }}",
    );

    // One-line perf diff against the committed baseline — read *before*
    // a full run overwrites it. CI (quick mode) surfaces this line as the
    // regression-at-a-glance summary.
    let baseline_path = workspace_root().join("BENCH_kernels.json");
    let committed = std::fs::read_to_string(&baseline_path).unwrap_or_default();
    println!("{}", perf_diff_line(&parse_baseline_kernels(&committed), &measured));

    if quick {
        println!("[kernels] quick check: baseline not rewritten");
    } else {
        let baseline = format!(
            "{{\n  \"bench\": \"kernels_gemm\",\n  \"host_parallelism\": {host_par},\n  \"shapes\": [\n{}\n  ],\n{attention_json}\n}}\n",
            shapes_json.join(",\n"),
        );
        match std::fs::write(&baseline_path, baseline) {
            Ok(()) => println!("[kernels] baseline written to {}", baseline_path.display()),
            Err(e) => println!("[kernels] could not write {}: {e}", baseline_path.display()),
        }
    }

    // Dot-product paths at attention/FFN-like depths.
    let mut group = c.benchmark_group("dot_product");
    group.sample_size(if quick { 2 } else { 20 });
    for k in [256usize, 1024, 4096] {
        let a = activation_matrix(1, k);
        let w = weight_matrix(1, k);
        let qa = quantize(&a);
        let qw = quantize(&w);
        let pair = PairLut::new(qa.dict(), qw.dict());
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("indexed", k), &k, |b, _| {
            b.iter(|| black_box(kernels::dot_indexed(qa.codes(), qa.dict(), qw.codes(), qw.dict())))
        });
        group.bench_with_input(BenchmarkId::new("decoded", k), &k, |b, _| {
            b.iter(|| black_box(kernels::dot_decoded(qa.codes(), qa.dict(), qw.codes(), qw.dict())))
        });
        group.bench_with_input(BenchmarkId::new("lut", k), &k, |b, _| {
            b.iter(|| black_box(lut::dot_lut(qa.codes(), qw.codes(), &pair)))
        });
        group.bench_with_input(BenchmarkId::new("fp32", k), &k, |b, _| {
            b.iter(|| {
                let mut acc = 0.0f32;
                for (x, y) in a.as_slice().iter().zip(w.as_slice()) {
                    acc += x * y;
                }
                black_box(acc)
            })
        });
    }
    group.finish();

    // GEMM paths under criterion (smaller shape than the JSON sweep so
    // the histogram kernel stays affordable at criterion sample counts).
    let a = activation_matrix(32, 256);
    let w = weight_matrix(256, 64);
    let qa = quantize(&a);
    let qw = quantize(&w);
    let pair = PairLut::new(qa.dict(), qw.dict());
    let w_cols = ColMajorCodes::from_tensor(&qw);
    let mut gemm = c.benchmark_group("gemm_32x256x64");
    gemm.sample_size(if quick { 2 } else { 20 });
    gemm.bench_function("indexed", |b| b.iter(|| black_box(kernels::matmul_indexed(&qa, &qw))));
    gemm.bench_function("decoded", |b| b.iter(|| black_box(kernels::matmul_decoded(&qa, &qw))));
    gemm.bench_function("lut", |b| b.iter(|| black_box(lut::matmul_lut(&qa, &w_cols, &pair))));
    gemm.bench_function("fp32", |b| b.iter(|| black_box(a.matmul(&w))));
    gemm.finish();

    // Encode/quantizer throughput (the Fig. 7 engine).
    let acts = activation_matrix(64, 256);
    let dict = quantize(&acts).dict().clone();
    let engine = OutputQuantizer::new(dict.clone());
    let mut enc = c.benchmark_group("encode");
    enc.sample_size(if quick { 2 } else { 20 });
    enc.throughput(Throughput::Elements(acts.len() as u64));
    enc.bench_function("dictionary_encode", |b| {
        b.iter(|| {
            for &v in acts.as_slice() {
                black_box(dict.encode_value(v));
            }
        })
    });
    enc.bench_function("output_quantizer_engine", |b| {
        b.iter(|| {
            for &v in acts.as_slice() {
                black_box(engine.quantize(v));
            }
        })
    });
    enc.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
