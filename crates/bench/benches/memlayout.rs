//! Memory-container microbenchmarks: the Fig. 5 pack/unpack paths, the
//! 5-bit on-chip stream, and the DRAM bank-timing model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mokey_accel::dram::DramModel;
use mokey_bench::{quantize, weight_matrix};
use mokey_memlayout::{DramContainer, OnChipStream};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let w = weight_matrix(256, 1024);
    let q = quantize(&w);
    let codes = q.codes();
    let packed = DramContainer::pack(codes);
    println!(
        "\n[memlayout] {} values -> {} bytes ({:.2}x vs FP16)",
        codes.len(),
        packed.total_bytes(),
        packed.compression_ratio(16)
    );

    let mut group = c.benchmark_group("container");
    group.throughput(Throughput::Elements(codes.len() as u64));
    group.bench_function("dram_pack", |b| b.iter(|| black_box(DramContainer::pack(codes))));
    group.bench_function("dram_unpack", |b| b.iter(|| black_box(packed.unpack())));
    group.bench_function("onchip_pack", |b| b.iter(|| black_box(OnChipStream::pack(codes))));
    let stream = OnChipStream::pack(codes);
    group.bench_function("onchip_unpack", |b| b.iter(|| black_box(stream.unpack())));
    group.finish();

    let dram = DramModel::default();
    let mut dgroup = c.benchmark_group("dram_model");
    for mb in [1u64, 16] {
        dgroup.bench_with_input(BenchmarkId::new("stream", mb), &mb, |b, &mb| {
            b.iter(|| black_box(dram.stream(&[mb << 20, mb << 20])))
        });
    }
    dgroup.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
