//! Bench for Fig. 3: the exponential curve fit (golden-section weighted
//! least squares replacing MATLAB's toolbox).

use criterion::{criterion_group, criterion_main, Criterion};
use mokey_core::curve::{ExpCurve, PAPER_A, PAPER_B};
use mokey_core::golden::{GoldenConfig, GoldenDictionary};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let gd = GoldenDictionary::generate(&GoldenConfig::default());
    let curve = ExpCurve::fit(&gd);
    println!(
        "\n[fig03] fitted a = {:.4}, b = {:+.4} (paper {PAPER_A} / {PAPER_B})",
        curve.a, curve.b
    );

    c.bench_function("fig03_curve_fit", |b| b.iter(|| black_box(ExpCurve::fit(&gd))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
