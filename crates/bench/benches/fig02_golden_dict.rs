//! Bench for Fig. 2: Golden Dictionary generation — the paper's one-time
//! agglomerative-clustering cost (50,000 samples → 16 centroids).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mokey_clustering::ward_agglomerative;
use mokey_core::golden::{GoldenConfig, GoldenDictionary};
use mokey_tensor::init::standard_normal_vec;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let gd = GoldenDictionary::generate(&GoldenConfig::default());
    println!("\n[fig02] Golden Dictionary half: {:?}", gd.half());

    let mut group = c.benchmark_group("fig02");
    for samples in [10_000usize, 50_000] {
        let data = standard_normal_vec(samples, 1);
        group.bench_with_input(BenchmarkId::new("ward_clustering", samples), &data, |b, data| {
            b.iter(|| black_box(ward_agglomerative(data, 16)))
        });
    }
    group.bench_function("full_generation_single_repeat", |b| {
        b.iter(|| {
            black_box(GoldenDictionary::generate(&GoldenConfig {
                repeats: 1,
                ..Default::default()
            }))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
