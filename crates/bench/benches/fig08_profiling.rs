//! Bench for Fig. 8: the cost of one profiling trial (profile batch →
//! dictionaries) and the resulting accuracy stability.

use criterion::{criterion_group, criterion_main, Criterion};
use mokey_eval::figures::fig08;
use mokey_eval::scaled::{build_row, profile_inputs, table1_rows};
use mokey_eval::Quality;
use mokey_transformer::quantize::{QuantizeSpec, QuantizedModel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = fig08(Quality::Quick);
    println!(
        "\n[fig08] trial scores {:?} (mean {:.2}, std {:.3})",
        result.trial_scores, result.mean, result.std
    );

    let spec = &table1_rows()[0];
    let (model, _) = build_row(spec, Quality::Quick);
    let profile = profile_inputs(&model, spec, Quality::Quick);
    c.bench_function("fig08_profile_and_build_dicts", |b| {
        b.iter(|| {
            black_box(QuantizedModel::prepare(
                &model,
                QuantizeSpec::weights_and_activations(),
                &profile,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
