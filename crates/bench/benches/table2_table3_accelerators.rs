//! Benches for Tables II/III: the three-architecture comparison at 512 KB
//! (Table II) and the BERT-Large/SQuAD breakdown (Table III). Prints both
//! tables' data from the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use mokey_eval::tables::{table2, table3};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let t2 = table2();
    println!("\n[table2] BERT-Base @ 512 KB:");
    for r in &t2.rows {
        println!(
            "  {:<18} {:>5} units  {:>5.1} mm2  {:>8.1}M cycles  {:.4} J",
            r.architecture,
            r.units,
            r.area_mm2,
            r.cycles as f64 / 1e6,
            r.energy_j
        );
    }
    let t3 = table3();
    println!("[table3] BERT-Large SQuAD (buffer, TC total cycles, Mokey total cycles, overlap%):");
    for (buffer, tc, mokey) in &t3.rows {
        println!(
            "  {:>5} KB  TC {:>8.1}M ({:.0}%)  Mokey {:>7.1}M ({:.0}%)",
            buffer >> 10,
            tc.total_cycles as f64 / 1e6,
            tc.overlap_percent(),
            mokey.total_cycles as f64 / 1e6,
            mokey.overlap_percent()
        );
    }

    c.bench_function("table2_full", |b| b.iter(|| black_box(table2())));
    c.bench_function("table3_full", |b| b.iter(|| black_box(table3())));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
