//! Bench for Table I: the quantization pipeline on one row (profile →
//! dictionaries → weight pre-encode) plus quantized-inference throughput.
//! Prints the Quick-quality row so the bench log shows the table's shape.

use criterion::{criterion_group, criterion_main, Criterion};
use mokey_eval::scaled::{build_row, evaluate_row, profile_inputs, table1_rows};
use mokey_eval::Quality;
use mokey_pipeline::QuantSession;
use mokey_transformer::quantize::{QuantizeSpec, QuantizedModel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = &table1_rows()[0];
    let row = evaluate_row(spec, Quality::Quick);
    println!(
        "\n[table1/quick] {} {}: FP {:.2} | W-only {:.2} (err {:+.2}, OT {:.2}%) | W+A {:.2} (err {:+.2}, OT {:.2}%)",
        row.model, row.task, row.fp_score, row.w_score, row.w_err, row.w_ot_pct,
        row.wa_score, row.wa_err, row.a_ot_pct
    );

    let (model, task) = build_row(spec, Quality::Quick);
    let profile = profile_inputs(&model, spec, Quality::Quick);
    c.bench_function("table1_weight_quantization", |b| {
        b.iter(|| {
            // A fresh cache-less session per iteration: measures the full
            // cold flow (every dictionary fit paid, no carry-over).
            let session = QuantSession::builder().cache_dicts(false).build();
            black_box(
                QuantizedModel::prepare_with_session(
                    &session,
                    &model,
                    QuantizeSpec::weights_only(),
                    &[],
                )
                .expect("non-degenerate weights"),
            )
        })
    });
    let session = QuantSession::with_defaults();
    let (qm, _) = QuantizedModel::prepare_with_session(
        &session,
        &model,
        QuantizeSpec::weights_and_activations(),
        &profile,
    )
    .expect("non-degenerate tensors");
    let tokens = &task.inputs[0];
    c.bench_function("table1_quantized_forward", |b| b.iter(|| black_box(qm.infer(tokens))));
    c.bench_function("table1_fp_forward", |b| {
        b.iter(|| {
            let mut exec = mokey_transformer::exec::FpExecutor;
            black_box(model.infer(&mut exec, tokens))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
