//! Benches for Figs. 9–15: the accelerator-simulation sweep. Prints the
//! geomean series of every figure so `cargo bench` regenerates the data,
//! then times single simulations and the figure extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mokey_accel::arch::{Accelerator, MemCompression};
use mokey_accel::sim::{simulate, SimConfig};
use mokey_accel::workloads::paper_workloads;
use mokey_eval::figures::SimMatrix;
use mokey_eval::Quality;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let matrix = SimMatrix::run(Quality::Quick);
    let print_geo = |name: &str, fig: &mokey_eval::figures::SweepFigure| {
        let series: Vec<String> =
            fig.geomean.iter().map(|(b, g)| format!("{}KB:{g:.2}", b >> 10)).collect();
        println!("[{name}] geomean {}", series.join("  "));
    };
    println!();
    print_geo("fig09 TC cycles", &matrix.fig09());
    print_geo("fig10 speedup/TC", &matrix.fig10());
    print_geo("fig11 energy-eff/TC", &matrix.fig11());
    print_geo("fig12 speedup/GOBO", &matrix.fig12());
    print_geo("fig13 energy-eff/GOBO", &matrix.fig13());
    print_geo("fig14 OC speedup", &matrix.fig14(MemCompression::OffChip));
    print_geo("fig14 OC+ON speedup", &matrix.fig14(MemCompression::OffChipOnChip));
    print_geo("fig15 OC rel-energy", &matrix.fig15(MemCompression::OffChip));
    print_geo("fig15 OC+ON rel-energy", &matrix.fig15(MemCompression::OffChipOnChip));

    let workload = &paper_workloads()[0];
    let gemms = workload.gemms();
    let mut group = c.benchmark_group("simulator");
    for (name, accel) in [
        ("tensor_cores", Accelerator::tensor_cores()),
        ("gobo", Accelerator::gobo()),
        ("mokey", Accelerator::mokey()),
    ] {
        group.bench_with_input(BenchmarkId::new("simulate_512k", name), &accel, |b, accel| {
            b.iter(|| {
                black_box(simulate(
                    &gemms,
                    &SimConfig::new(accel.clone(), 512 << 10).with_rates(workload.rates),
                ))
            })
        });
    }
    group.bench_function("quick_matrix", |b| b.iter(|| black_box(SimMatrix::run(Quality::Quick))));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
