//! Bench for the Fig. 1 experiment: the footprint sweep itself plus the
//! underlying accounting. Prints the figure's series once so `cargo bench`
//! output doubles as a regeneration log.

use criterion::{criterion_group, criterion_main, Criterion};
use mokey_eval::figures::fig01;
use mokey_transformer::footprint::footprint;
use mokey_transformer::ModelConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = fig01();
    println!("\n[fig01] BERT-Large FP16 footprint (seq, weights MB, acts MB, acts %):");
    for row in &result.rows {
        println!("  {:>5}  {:>8.0}  {:>8.0}  {:>5.1}%", row.0, row.1, row.2, row.3);
    }

    c.bench_function("fig01_sweep", |b| b.iter(|| black_box(fig01())));
    let config = ModelConfig::bert_large();
    c.bench_function("fig01_single_footprint", |b| {
        b.iter(|| black_box(footprint(&config, black_box(2048), 2.0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
