//! Property-based tests for the fixed-point substrate.

use mokey_fixed::{snap_to_grid, QFormat};
use proptest::prelude::*;

proptest! {
    /// Eq. 8 round-trip: quantization error is at most half a grid step for
    /// any in-range value.
    #[test]
    fn quantize_error_bounded(
        value in -1000.0f64..1000.0,
        bits in 8u32..32,
        frac in -4i32..20,
    ) {
        let q = QFormat::new(bits, frac);
        if q.represents(value) {
            let fx = q.quantize(value);
            prop_assert!(
                (fx.to_f64() - value).abs() <= q.resolution() / 2.0 + 1e-12,
                "error {} exceeds half-step {} for {q}",
                (fx.to_f64() - value).abs(),
                q.resolution() / 2.0
            );
        }
    }

    /// Quantization is idempotent: re-quantizing a grid value is exact.
    #[test]
    fn quantize_idempotent(value in -100.0f64..100.0, frac in 0i32..16) {
        let q = QFormat::new(24, frac);
        let once = q.quantize(value);
        let twice = q.quantize(once.to_f64());
        prop_assert_eq!(once.raw(), twice.raw());
    }

    /// Saturating add never leaves the representable range and is exact when
    /// the true sum is representable.
    #[test]
    fn saturating_add_properties(a in -500.0f64..500.0, b in -500.0f64..500.0) {
        let q = QFormat::new(12, 2);
        let fa = q.quantize(a);
        let fb = q.quantize(b);
        let sum = fa.saturating_add(fb);
        prop_assert!(sum.raw() <= q.max_raw() && sum.raw() >= q.min_raw());
        let true_sum = fa.to_f64() + fb.to_f64();
        if true_sum <= q.max_value() && true_sum >= q.min_value() {
            prop_assert!((sum.to_f64() - true_sum).abs() < 1e-12);
        }
    }

    /// Widening multiply then rescale: error against the exact product is at
    /// most half a destination grid step (plus saturation).
    #[test]
    fn mul_rescale_error_bounded(a in -30.0f64..30.0, b in -30.0f64..30.0) {
        let src = QFormat::new(16, 8);
        let dst = QFormat::new(24, 10);
        let fa = src.quantize(a);
        let fb = src.quantize(b);
        let prod = fa.mul_rescale(fb, dst);
        let exact = fa.to_f64() * fb.to_f64();
        if exact <= dst.max_value() && exact >= dst.min_value() {
            prop_assert!(
                (prod.to_f64() - exact).abs() <= dst.resolution() / 2.0 + 1e-12,
                "product error too large: {} vs {}",
                prod.to_f64(),
                exact
            );
        }
    }

    /// Eq. 7 format always covers the span it was derived from.
    #[test]
    fn for_range_covers_span(lo in -1e4f64..1e4, span in 1e-3f64..1e4) {
        let hi = lo + span;
        let q = QFormat::for_range(16, lo, hi);
        let width = q.max_value() - q.min_value();
        prop_assert!(width + q.resolution() >= span);
    }

    /// Grid snapping is monotone: x <= y implies snap(x) <= snap(y).
    #[test]
    fn snap_to_grid_monotone(x in -100.0f64..100.0, y in -100.0f64..100.0, frac in -2i32..16) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(snap_to_grid(lo, frac) <= snap_to_grid(hi, frac));
    }

    /// Format conversion round-trip to a wider format is lossless.
    #[test]
    fn widening_conversion_lossless(v in -100.0f64..100.0) {
        let narrow = QFormat::new(16, 6);
        let wide = QFormat::new(32, 12);
        let x = narrow.quantize(v);
        prop_assert_eq!(x.convert(wide).to_f64(), x.to_f64());
    }
}
