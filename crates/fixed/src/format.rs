//! The `(total bits, fractional bits)` Q-format descriptor.

use crate::Fixed;
use serde::{Deserialize, Serialize};

/// A signed fixed-point format: `total_bits` two's-complement bits of which
/// `frac_bits` sit right of the binary point.
///
/// `frac_bits` may exceed `total_bits` (all-fraction formats for sub-unit
/// ranges) or be negative (coarse grids for very wide ranges); both occur
/// when the paper's Eq. 7 is applied to real layer statistics.
///
/// # Example
///
/// ```
/// use mokey_fixed::QFormat;
///
/// let q = QFormat::new(16, 8);
/// assert_eq!(q.resolution(), 1.0 / 256.0);
/// assert!((q.max_value() - 127.996).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QFormat {
    total_bits: u32,
    frac_bits: i32,
}

impl QFormat {
    /// Creates a format with the given bit budget.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= total_bits <= 62` (the raw value must fit an
    /// `i64` with headroom for products).
    pub fn new(total_bits: u32, frac_bits: i32) -> Self {
        assert!((2..=62).contains(&total_bits), "total_bits must be in [2, 62], got {total_bits}");
        Self { total_bits, frac_bits }
    }

    /// Derives the format for a layer from its value range, per the paper's
    /// Eq. 7: `frac = b − ceil(log2(max − min))`.
    ///
    /// A degenerate range (`max <= min`, e.g. a constant tensor) gets the
    /// finest sensible grid: `frac = b − 1`.
    ///
    /// # Example
    ///
    /// ```
    /// use mokey_fixed::QFormat;
    ///
    /// // Range 6.0 -> ceil(log2 6) = 3 integer bits -> 13 fractional bits.
    /// let q = QFormat::for_range(16, -3.0, 3.0);
    /// assert_eq!(q.frac_bits(), 13);
    /// ```
    pub fn for_range(total_bits: u32, min: f64, max: f64) -> Self {
        let range = max - min;
        let frac = if range > 0.0 {
            total_bits as i32 - range.log2().ceil() as i32
        } else {
            total_bits as i32 - 1
        };
        Self::new(total_bits, frac)
    }

    /// Total two's-complement bits.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Bits right of the binary point (may be negative or exceed
    /// `total_bits`).
    pub fn frac_bits(&self) -> i32 {
        self.frac_bits
    }

    /// The grid step `2^-frac`.
    pub fn resolution(&self) -> f64 {
        (-self.frac_bits as f64).exp2()
    }

    /// Largest representable value: `(2^(b−1) − 1) · 2^−frac`.
    pub fn max_value(&self) -> f64 {
        (self.max_raw() as f64) * self.resolution()
    }

    /// Smallest (most negative) representable value: `−2^(b−1) · 2^−frac`.
    pub fn min_value(&self) -> f64 {
        (self.min_raw() as f64) * self.resolution()
    }

    /// Largest raw integer: `2^(b−1) − 1`.
    pub fn max_raw(&self) -> i64 {
        (1i64 << (self.total_bits - 1)) - 1
    }

    /// Smallest raw integer: `−2^(b−1)`.
    pub fn min_raw(&self) -> i64 {
        -(1i64 << (self.total_bits - 1))
    }

    /// Quantizes a float to this format per the paper's Eq. 8, saturating at
    /// the representable extremes.
    ///
    /// # Example
    ///
    /// ```
    /// use mokey_fixed::QFormat;
    ///
    /// let q = QFormat::new(8, 4);            // range [-8, 7.9375]
    /// assert_eq!(q.quantize(100.0).to_f64(), q.max_value()); // saturates
    /// ```
    pub fn quantize(&self, value: f64) -> Fixed {
        let scaled = (value * (self.frac_bits as f64).exp2()).round();
        let raw = if scaled >= self.max_raw() as f64 {
            self.max_raw()
        } else if scaled <= self.min_raw() as f64 {
            self.min_raw()
        } else {
            scaled as i64
        };
        Fixed::from_raw(raw, *self)
    }

    /// `true` when `value` quantizes without saturating.
    pub fn represents(&self, value: f64) -> bool {
        let scaled = (value * (self.frac_bits as f64).exp2()).round();
        scaled <= self.max_raw() as f64 && scaled >= self.min_raw() as f64
    }

    /// Clamps a raw integer into this format's representable range.
    pub fn saturate_raw(&self, raw: i64) -> i64 {
        raw.clamp(self.min_raw(), self.max_raw())
    }
}

impl std::fmt::Display for QFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Q{}.{}", self.total_bits as i32 - self.frac_bits, self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_range_matches_eq7_examples() {
        // b = 16, range = 6 -> ceil(log2 6) = 3 -> frac = 13.
        assert_eq!(QFormat::for_range(16, -3.0, 3.0).frac_bits(), 13);
        // range exactly a power of two: ceil(log2 8) = 3 -> frac = 13.
        assert_eq!(QFormat::for_range(16, 0.0, 8.0).frac_bits(), 13);
        // Sub-unit range: range 0.25 -> ceil(-2) = -2 -> frac = 18 > b.
        assert_eq!(QFormat::for_range(16, 0.0, 0.25).frac_bits(), 18);
        // Huge range: range 2^20 -> frac negative.
        assert_eq!(QFormat::for_range(16, 0.0, 1_048_576.0).frac_bits(), -4);
    }

    #[test]
    fn degenerate_range_gets_finest_grid() {
        assert_eq!(QFormat::for_range(16, 1.0, 1.0).frac_bits(), 15);
    }

    #[test]
    fn quantize_saturates_at_extremes() {
        let q = QFormat::new(8, 0); // integers in [-128, 127]
        assert_eq!(q.quantize(1000.0).raw(), 127);
        assert_eq!(q.quantize(-1000.0).raw(), -128);
        assert!(q.represents(100.0));
        assert!(!q.represents(1000.0));
    }

    #[test]
    fn resolution_and_bounds_consistent() {
        let q = QFormat::new(16, 8);
        assert_eq!(q.resolution(), 1.0 / 256.0);
        assert_eq!(q.max_value(), 32767.0 / 256.0);
        assert_eq!(q.min_value(), -32768.0 / 256.0);
    }

    #[test]
    fn display_shows_q_notation() {
        assert_eq!(QFormat::new(16, 13).to_string(), "Q3.13");
    }

    #[test]
    #[should_panic(expected = "total_bits")]
    fn new_rejects_tiny_widths() {
        let _ = QFormat::new(1, 0);
    }

    #[test]
    fn range_derived_format_covers_the_range() {
        for (lo, hi) in [(-3.0, 3.0), (0.0, 10.0), (-0.1, 0.1), (-100.0, 250.0)] {
            let q = QFormat::for_range(16, lo, hi);
            // The span must fit in the representable width (Eq. 7 guarantees
            // ceil(log2 range) integer bits; values may still need an offset
            // when the range is not centred, which Mokey handles via the mean
            // shift, so we check the *width*).
            let width = q.max_value() - q.min_value();
            assert!(
                width >= (hi - lo) - q.resolution(),
                "format {q} width {width} < range {}",
                hi - lo
            );
        }
    }
}
