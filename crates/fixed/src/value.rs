//! A fixed-point value: raw integer plus its [`QFormat`].

use crate::QFormat;
use serde::{Deserialize, Serialize};

/// A signed fixed-point number.
///
/// The raw integer is interpreted as `raw · 2^−frac` in the carried
/// [`QFormat`]. Arithmetic mirrors what narrow integer datapaths do:
/// same-format saturating addition, widening multiplication with an explicit
/// rescale to the destination format.
///
/// # Example
///
/// ```
/// use mokey_fixed::QFormat;
///
/// let q = QFormat::new(16, 8);
/// let a = q.quantize(1.5);
/// let b = q.quantize(2.25);
/// assert_eq!(a.saturating_add(b).to_f64(), 3.75);
/// assert_eq!(a.mul_rescale(b, q).to_f64(), 3.375);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fixed {
    raw: i64,
    format: QFormat,
}

impl Fixed {
    /// Wraps a raw integer in a format.
    ///
    /// # Panics
    ///
    /// Panics if `raw` exceeds the format's representable range — use
    /// [`QFormat::saturate_raw`] first when saturation is intended.
    pub fn from_raw(raw: i64, format: QFormat) -> Self {
        assert!(
            raw >= format.min_raw() && raw <= format.max_raw(),
            "raw value {raw} out of range for {format}"
        );
        Self { raw, format }
    }

    /// The zero value in a format.
    pub fn zero(format: QFormat) -> Self {
        Self { raw: 0, format }
    }

    /// The raw two's-complement integer.
    pub fn raw(&self) -> i64 {
        self.raw
    }

    /// The carried format.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Converts back to floating point (exact: `raw · 2^−frac`).
    pub fn to_f64(&self) -> f64 {
        self.raw as f64 * self.format.resolution()
    }

    /// Saturating same-format addition, as a hardware accumulator would do.
    ///
    /// # Panics
    ///
    /// Panics if the operands carry different formats; fixed-point adders
    /// have no implicit alignment.
    pub fn saturating_add(self, other: Fixed) -> Fixed {
        assert_eq!(self.format, other.format, "cannot add {} to {}", self.format, other.format);
        let raw = self.format.saturate_raw(self.raw.saturating_add(other.raw));
        Fixed { raw, format: self.format }
    }

    /// Saturating same-format subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the operands carry different formats.
    pub fn saturating_sub(self, other: Fixed) -> Fixed {
        assert_eq!(self.format, other.format, "cannot sub {} from {}", other.format, self.format);
        let raw = self.format.saturate_raw(self.raw.saturating_sub(other.raw));
        Fixed { raw, format: self.format }
    }

    /// Widening multiply followed by a rounding rescale into `target`.
    ///
    /// The raw product carries `frac_a + frac_b` fractional bits; hardware
    /// then shifts (with round-to-nearest) into the destination format and
    /// saturates. Both steps are modelled exactly.
    ///
    /// # Panics
    ///
    /// Panics if the raw product overflows `i64` (cannot happen for operand
    /// widths ≤ 31 bits, which covers every datapath in this workspace).
    pub fn mul_rescale(self, other: Fixed, target: QFormat) -> Fixed {
        let prod = self
            .raw
            .checked_mul(other.raw)
            .expect("fixed-point product overflowed i64; operands too wide");
        let prod_frac = self.format.frac_bits() + other.format.frac_bits();
        let raw = rescale_raw(prod, prod_frac, target.frac_bits());
        Fixed { raw: target.saturate_raw(raw), format: target }
    }

    /// Re-expresses this value in another format (rounding, saturating).
    pub fn convert(self, target: QFormat) -> Fixed {
        let raw = rescale_raw(self.raw, self.format.frac_bits(), target.frac_bits());
        Fixed { raw: target.saturate_raw(raw), format: target }
    }

    /// Negation (saturating: the most negative raw value negates to max).
    pub fn saturating_neg(self) -> Fixed {
        let raw = self.format.saturate_raw(self.raw.checked_neg().unwrap_or(i64::MAX));
        Fixed { raw, format: self.format }
    }
}

impl std::fmt::Display for Fixed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.to_f64(), self.format)
    }
}

/// Shifts a raw value from `from_frac` to `to_frac` fractional bits with
/// round-to-nearest (ties away from zero), without saturation.
fn rescale_raw(raw: i64, from_frac: i32, to_frac: i32) -> i64 {
    let shift = to_frac - from_frac;
    if shift >= 0 {
        raw.checked_shl(shift as u32).expect("rescale overflow")
    } else {
        let down = (-shift) as u32;
        if down >= 63 {
            return 0;
        }
        let half = 1i64 << (down - 1);
        if raw >= 0 {
            (raw + half) >> down
        } else {
            -((-raw + half) >> down)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(bits: u32, frac: i32) -> QFormat {
        QFormat::new(bits, frac)
    }

    #[test]
    fn roundtrip_exact_grid_points() {
        let fmt = q(16, 8);
        for raw in [-32768i64, -256, -1, 0, 1, 255, 32767] {
            let x = Fixed::from_raw(raw, fmt);
            assert_eq!(fmt.quantize(x.to_f64()).raw(), raw);
        }
    }

    #[test]
    fn add_is_exact_within_range() {
        let fmt = q(16, 8);
        let a = fmt.quantize(1.5);
        let b = fmt.quantize(-0.25);
        assert_eq!(a.saturating_add(b).to_f64(), 1.25);
        assert_eq!(a.saturating_sub(b).to_f64(), 1.75);
    }

    #[test]
    fn add_saturates_instead_of_wrapping() {
        let fmt = q(8, 0);
        let max = Fixed::from_raw(127, fmt);
        let one = Fixed::from_raw(1, fmt);
        assert_eq!(max.saturating_add(one).raw(), 127);
        let min = Fixed::from_raw(-128, fmt);
        assert_eq!(min.saturating_sub(one).raw(), -128);
    }

    #[test]
    fn mul_rescale_known_values() {
        let fmt = q(16, 8);
        let a = fmt.quantize(1.5);
        let b = fmt.quantize(2.0);
        assert_eq!(a.mul_rescale(b, fmt).to_f64(), 3.0);
        // 0.5 * 0.5 = 0.25, exactly representable.
        let h = fmt.quantize(0.5);
        assert_eq!(h.mul_rescale(h, fmt).to_f64(), 0.25);
    }

    #[test]
    fn mul_rescale_rounds_to_nearest() {
        // Q4 grid: step 1/16. 0.0625 * 0.0625 = 0.00390625 -> rounds to
        // 0.0625 * 1/16 grid: nearest grid point of 0.0039 in frac=4 is 0.
        let fmt = q(16, 4);
        let eps = Fixed::from_raw(1, fmt); // 1/16
        assert_eq!(eps.mul_rescale(eps, fmt).raw(), 0);
        // 3/16 * 3/16 = 9/256 = 0.5625/16 -> rounds to 1/16.
        let x = Fixed::from_raw(3, fmt);
        assert_eq!(x.mul_rescale(x, fmt).raw(), 1);
    }

    #[test]
    fn convert_between_formats() {
        let wide = q(32, 16);
        let narrow = q(16, 8);
        let x = wide.quantize(std::f64::consts::PI);
        let y = x.convert(narrow);
        assert!((y.to_f64() - std::f64::consts::PI).abs() <= narrow.resolution() / 2.0 + 1e-12);
        // Converting back widens losslessly.
        let z = y.convert(wide);
        assert_eq!(z.to_f64(), y.to_f64());
    }

    #[test]
    fn negation_saturates_min() {
        let fmt = q(8, 0);
        let min = Fixed::from_raw(-128, fmt);
        assert_eq!(min.saturating_neg().raw(), 127);
        let x = Fixed::from_raw(-5, fmt);
        assert_eq!(x.saturating_neg().raw(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_raw_out_of_range_panics() {
        let _ = Fixed::from_raw(128, q(8, 0));
    }

    #[test]
    #[should_panic(expected = "cannot add")]
    fn mixed_format_add_panics() {
        let a = Fixed::zero(q(16, 8));
        let b = Fixed::zero(q(16, 9));
        let _ = a.saturating_add(b);
    }
}
