//! Fixed-point arithmetic for the Mokey reproduction.
//!
//! Mokey's accelerator performs *all* computation in the fixed-point domain
//! (paper Section II-F, "Integer Computation Throughout"): after profiling,
//! every per-layer constant and every 16-bit datapath value is mapped from
//! floating point to fixed point. Two pieces of the paper define that
//! mapping:
//!
//! * Eq. 7 — fractional-bit selection per layer:
//!   `frac = b − ceil(log2(max − min))`
//! * Eq. 8 — value mapping:
//!   `fx = round(fl · 2^frac) / 2^frac`
//!
//! [`QFormat`] captures the `(total bits, fractional bits)` pair and
//! implements both equations; [`Fixed`] is a raw-integer value carrying its
//! format, with saturating add and widening multiply so the 16-bit datapath
//! of the accelerator can be emulated bit-faithfully.
//!
//! # Example
//!
//! ```
//! use mokey_fixed::QFormat;
//!
//! // A layer whose values span [-2.5, 3.1], on a 16-bit datapath:
//! let q = QFormat::for_range(16, -2.5, 3.1);
//! let x = q.quantize(1.234_567);
//! // Round-trip error is bounded by half a resolution step.
//! assert!((x.to_f64() - 1.234_567).abs() <= q.resolution() / 2.0);
//! ```

mod format;
mod value;

pub use format::QFormat;
pub use value::Fixed;

/// Applies the paper's Eq. 8 directly on `f64`, snapping a value to the
/// fixed-point grid with `frac` fractional bits *without* range saturation.
///
/// This is the "mathematician's view" of fixed point — useful for the
/// simulator's error-model paths where saturation is handled separately.
///
/// # Example
///
/// ```
/// assert_eq!(mokey_fixed::snap_to_grid(0.3, 2), 0.25);
/// assert_eq!(mokey_fixed::snap_to_grid(0.3, 4), 0.3125);
/// ```
pub fn snap_to_grid(value: f64, frac_bits: i32) -> f64 {
    let scale = (frac_bits as f64).exp2();
    (value * scale).round() / scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snap_to_grid_known_points() {
        assert_eq!(snap_to_grid(1.0, 0), 1.0);
        assert_eq!(snap_to_grid(1.4, 0), 1.0);
        assert_eq!(snap_to_grid(1.5, 0), 2.0);
        assert_eq!(snap_to_grid(-1.5, 0), -2.0);
        // Negative frac bits coarsen beyond integers: grid step 8, and
        // 100/8 = 12.5 rounds away from zero to 13 -> 104.
        assert_eq!(snap_to_grid(100.0, -3), 104.0);
        assert_eq!(snap_to_grid(99.0, -3), 96.0);
    }

    #[test]
    fn snap_error_bounded_by_half_step() {
        for i in 0..1000 {
            let x = (i as f64) * 0.01371 - 7.0;
            for frac in [0, 3, 8, 12] {
                let snapped = snap_to_grid(x, frac);
                assert!((snapped - x).abs() <= 0.5 / (frac as f64).exp2() + 1e-12);
            }
        }
    }
}
