//! Property-based tests for the memory containers: pack/unpack must be the
//! identity for arbitrary code streams and outlier patterns, and the
//! bit-level writer/reader pair must round-trip arbitrary field widths.

use mokey_core::encode::Code;
use mokey_memlayout::bitio::{BitReader, BitWriter};
use mokey_memlayout::{DramContainer, OnChipStream};
use proptest::prelude::*;

/// Arbitrary code streams with bounded per-group outlier density (the
/// container's documented limit is < 64 outliers per group of 64; we keep
/// realistic densities and add a dense-but-legal case separately).
fn codes_strategy() -> impl Strategy<Value = Vec<Code>> {
    prop::collection::vec((prop::bool::weighted(0.08), prop::bool::ANY, 0u8..8), 0..600)
        .prop_map(|v| v.into_iter().map(|(o, n, i)| Code::new(o, n, i)).collect())
}

proptest! {
    #[test]
    fn dram_container_roundtrip(codes in codes_strategy()) {
        let packed = DramContainer::pack(&codes);
        let unpacked = packed.unpack();
        prop_assert_eq!(unpacked, codes);
    }

    #[test]
    fn dram_bit_accounting_exact(codes in codes_strategy()) {
        let packed = DramContainer::pack(&codes);
        let groups = codes.len().div_ceil(64);
        let outliers = codes.iter().filter(|c| c.is_outlier()).count();
        prop_assert_eq!(packed.total_bits(), codes.len() * 4 + groups * 6 + outliers * 6);
        prop_assert_eq!(packed.outlier_count(), outliers);
        // Byte padding never exceeds 1 byte per stream.
        prop_assert!(packed.total_bytes() * 8 <= packed.total_bits() + 16);
    }

    #[test]
    fn onchip_stream_roundtrip(codes in codes_strategy()) {
        let stream = OnChipStream::pack(&codes);
        prop_assert_eq!(stream.total_bits(), codes.len() * 5);
        prop_assert_eq!(stream.unpack(), codes);
    }

    /// Compression ratio vs FP16 stays within the paper's ~4x band for
    /// realistic outlier densities.
    #[test]
    fn compression_ratio_band(codes in codes_strategy()) {
        prop_assume!(codes.len() >= 64);
        let packed = DramContainer::pack(&codes);
        let ratio = packed.compression_ratio(16);
        prop_assert!(ratio > 2.5 && ratio <= 4.0, "ratio {ratio}");
    }
}

/// Arbitrary `(value, width)` field sequences: widths span the full 1–32
/// range and each value is drawn from the width's full domain.
fn bit_fields_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    let field = (1u32..=32).prop_flat_map(|width| {
        let max = ((1u64 << width) - 1) as u32;
        (0u32..=max).prop_map(move |value| (value, width))
    });
    prop::collection::vec(field, 0..200)
}

proptest! {
    /// Writing N values at arbitrary bit widths and reading them back is
    /// the identity, including the zero-padded partial final byte.
    #[test]
    fn bitio_roundtrip_at_random_widths(fields in bit_fields_strategy()) {
        let mut w = BitWriter::new();
        for &(value, width) in &fields {
            w.write(value, width);
        }
        let total_bits: usize = fields.iter().map(|&(_, width)| width as usize).sum();
        prop_assert_eq!(w.bits_written(), total_bits);
        let bytes = w.finish();
        prop_assert_eq!(bytes.len(), total_bits.div_ceil(8));

        let mut r = BitReader::new(&bytes);
        for &(value, width) in &fields {
            prop_assert_eq!(r.read(width), value, "field of width {}", width);
        }
        prop_assert_eq!(r.bit_pos(), total_bits);
        // The partial final byte is zero-padded.
        let padding = r.remaining_bits();
        prop_assert!(padding < 8);
        if padding > 0 {
            prop_assert_eq!(r.read(padding as u32), 0);
        }
    }
}

#[test]
fn dense_outlier_group_still_roundtrips() {
    // 63 outliers in one group — the maximum the 6-bit count can express.
    let mut codes = vec![Code::new(true, false, 1); 63];
    codes.push(Code::new(false, true, 7));
    let packed = DramContainer::pack(&codes);
    assert_eq!(packed.unpack(), codes);
    assert_eq!(packed.outlier_count(), 63);
}
