//! A multi-tensor archive with a compact binary wire format — what
//! "storing the quantized model along with its dictionaries and constants"
//! (paper Section II-G) means concretely for this reproduction.

use crate::DramContainer;
use mokey_core::curve::ExpCurve;
use mokey_core::dict::TensorDict;
use mokey_core::encode::QuantizedTensor;
use mokey_tensor::Matrix;
use std::collections::BTreeMap;

const MAGIC: &[u8; 4] = b"MOKY";
const VERSION: u16 = 1;

/// Errors produced when parsing an archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseArchiveError {
    /// The buffer does not start with the `MOKY` magic.
    BadMagic,
    /// The format version is unknown.
    UnsupportedVersion(u16),
    /// The buffer ended mid-field.
    Truncated,
    /// A string field was not valid UTF-8.
    BadString,
}

impl std::fmt::Display for ParseArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "buffer is not a Mokey archive"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported archive version {v}"),
            Self::Truncated => write!(f, "archive ended unexpectedly"),
            Self::BadString => write!(f, "archive contains an invalid string"),
        }
    }
}

impl std::error::Error for ParseArchiveError {}

/// One archived tensor: shape, dictionary, packed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchivedTensor {
    rows: usize,
    cols: usize,
    dict: TensorDict,
    container: DramContainer,
}

impl ArchivedTensor {
    /// Tensor shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The dictionary pair.
    pub fn dict(&self) -> &TensorDict {
        &self.dict
    }

    /// The packed payload.
    pub fn container(&self) -> &DramContainer {
        &self.container
    }

    /// Decodes to a dense matrix of centroid values.
    pub fn decode(&self) -> Matrix {
        let codes = self.container.unpack();
        let data = codes.iter().map(|&c| self.dict.decode_code(c) as f32).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

/// A named collection of quantized tensors with a binary wire format.
///
/// # Example
///
/// ```
/// use mokey_core::{curve::ExpCurve, encode::QuantizedTensor};
/// use mokey_memlayout::TensorArchive;
/// use mokey_tensor::init::GaussianMixture;
///
/// let w = GaussianMixture::weight_like(0.0, 0.1).sample_matrix(8, 8, 2);
/// let q = QuantizedTensor::encode_with_own_dict(&w, &ExpCurve::paper(), &Default::default())
///     .expect("non-degenerate tensor");
/// let mut archive = TensorArchive::new();
/// archive.insert("layer0.weight", &q);
/// let bytes = archive.to_bytes();
/// let restored = TensorArchive::from_bytes(&bytes)?;
/// assert_eq!(restored.get("layer0.weight").unwrap().decode(), q.decode());
/// # Ok::<(), mokey_memlayout::ParseArchiveError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TensorArchive {
    entries: BTreeMap<String, ArchivedTensor>,
}

impl TensorArchive {
    /// An empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a tensor under a name.
    pub fn insert(&mut self, name: &str, tensor: &QuantizedTensor) {
        let container = DramContainer::pack(tensor.codes());
        self.entries.insert(
            name.to_owned(),
            ArchivedTensor {
                rows: tensor.rows(),
                cols: tensor.cols(),
                dict: tensor.dict().clone(),
                container,
            },
        );
    }

    /// Looks up a tensor by name.
    pub fn get(&self, name: &str) -> Option<&ArchivedTensor> {
        self.entries.get(name)
    }

    /// Number of stored tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the archive holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Total packed payload bits across all tensors.
    pub fn total_payload_bits(&self) -> usize {
        self.entries.values().map(|e| e.container.total_bits()).sum()
    }

    /// Total dictionary/constant metadata bits.
    pub fn total_metadata_bits(&self) -> usize {
        self.entries.values().map(|e| e.dict.metadata_bits()).sum()
    }

    /// Compression ratio versus `bits_per_value` dense storage, counting
    /// metadata against Mokey.
    pub fn compression_ratio(&self, bits_per_value: u32) -> f64 {
        let dense: usize =
            self.entries.values().map(|e| e.rows * e.cols * bits_per_value as usize).sum();
        let packed = self.total_payload_bits() + self.total_metadata_bits();
        if packed == 0 {
            1.0
        } else {
            dense as f64 / packed as f64
        }
    }

    /// Serializes to the binary wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (name, e) in &self.entries {
            write_str(&mut out, name);
            out.extend_from_slice(&(e.rows as u32).to_le_bytes());
            out.extend_from_slice(&(e.cols as u32).to_le_bytes());
            // Dictionary: curve, scale/shift, cutoff, OT magnitudes.
            let curve = e.dict.curve();
            out.extend_from_slice(&curve.a.to_le_bytes());
            out.extend_from_slice(&curve.b.to_le_bytes());
            out.extend_from_slice(&(curve.half_len as u16).to_le_bytes());
            out.extend_from_slice(&e.dict.scale().to_le_bytes());
            out.extend_from_slice(&e.dict.shift().to_le_bytes());
            out.extend_from_slice(&e.dict.cutoff().to_le_bytes());
            out.extend_from_slice(&(e.dict.ot_magnitudes().len() as u16).to_le_bytes());
            for &m in e.dict.ot_magnitudes() {
                out.extend_from_slice(&m.to_le_bytes());
            }
            // Payload: both streams.
            out.extend_from_slice(&(e.container.len() as u32).to_le_bytes());
            out.extend_from_slice(&(e.container.outlier_count() as u32).to_le_bytes());
            write_bytes(&mut out, e.container.value_bytes());
            write_bytes(&mut out, e.container.pointer_bytes());
        }
        out
    }

    /// Parses the binary wire format.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseArchiveError`] on bad magic, unknown version, or a
    /// truncated/corrupt buffer.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ParseArchiveError> {
        let mut r = Cursor { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(ParseArchiveError::BadMagic);
        }
        let version = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes"));
        if version != VERSION {
            return Err(ParseArchiveError::UnsupportedVersion(version));
        }
        let count = r.read_u32()?;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let name = r.read_str()?;
            let rows = r.read_u32()? as usize;
            let cols = r.read_u32()? as usize;
            let a = r.read_f64()?;
            let b = r.read_f64()?;
            let half_len = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes")) as usize;
            let scale = r.read_f64()?;
            let shift = r.read_f64()?;
            let cutoff = r.read_f64()?;
            let ot_len = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes")) as usize;
            let mut ot = Vec::with_capacity(ot_len);
            for _ in 0..ot_len {
                ot.push(r.read_f64()?);
            }
            let curve = ExpCurve { a, b, half_len };
            let dict = TensorDict::from_parts(curve, scale, shift, ot, cutoff);
            let len = r.read_u32()? as usize;
            let _outliers = r.read_u32()? as usize;
            let values = r.read_bytes()?.to_vec();
            let pointers = r.read_bytes()?.to_vec();
            let container = DramContainer::from_parts_internal(values, pointers, len);
            entries.insert(name, ArchivedTensor { rows, cols, dict, container });
        }
        Ok(Self { entries })
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn write_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ParseArchiveError> {
        if self.pos + n > self.bytes.len() {
            return Err(ParseArchiveError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn read_u32(&mut self) -> Result<u32, ParseArchiveError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn read_f64(&mut self) -> Result<f64, ParseArchiveError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn read_str(&mut self) -> Result<String, ParseArchiveError> {
        let len = self.read_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ParseArchiveError::BadString)
    }

    fn read_bytes(&mut self) -> Result<&'a [u8], ParseArchiveError> {
        let len = self.read_u32()? as usize;
        self.take(len)
    }
}

impl DramContainer {
    /// Internal reconstruction used by the archive parser: the streams were
    /// produced by [`DramContainer::pack`], so the invariants hold.
    pub(crate) fn from_parts_internal(values: Vec<u8>, pointers: Vec<u8>, len: usize) -> Self {
        // Re-derive outlier count from the pointer stream for consistency.
        let mut reader = crate::bitio::BitReader::new(&pointers);
        let mut outliers = 0usize;
        let mut remaining = len;
        while remaining > 0 {
            let group_len = remaining.min(crate::container::GROUP_SIZE);
            let count = reader.read(6) as usize;
            for _ in 0..count {
                let _ = reader.read(6);
            }
            outliers += count;
            remaining -= group_len;
        }
        Self::assemble(values, pointers, len, outliers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mokey_tensor::init::GaussianMixture;

    fn quantized(seed: u64) -> QuantizedTensor {
        let m = GaussianMixture::weight_like(0.0, 0.07).sample_matrix(24, 40, seed);
        QuantizedTensor::encode_with_own_dict(&m, &ExpCurve::paper(), &Default::default()).unwrap()
    }

    #[test]
    fn wire_roundtrip_preserves_everything() {
        let mut archive = TensorArchive::new();
        for (i, name) in ["encoder.0.q", "encoder.0.k", "pooler"].iter().enumerate() {
            archive.insert(name, &quantized(i as u64));
        }
        let bytes = archive.to_bytes();
        let restored = TensorArchive::from_bytes(&bytes).expect("parse");
        assert_eq!(restored.len(), 3);
        for name in archive.names() {
            let a = archive.get(name).unwrap();
            let b = restored.get(name).unwrap();
            assert_eq!(a.shape(), b.shape());
            assert_eq!(a.decode(), b.decode(), "tensor {name} decoded differently");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(TensorArchive::from_bytes(b"NOPE....."), Err(ParseArchiveError::BadMagic));
    }

    #[test]
    fn truncation_is_detected() {
        let mut archive = TensorArchive::new();
        archive.insert("t", &quantized(1));
        let bytes = archive.to_bytes();
        for cut in [5, 10, bytes.len() / 2, bytes.len() - 1] {
            let err = TensorArchive::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ParseArchiveError::Truncated | ParseArchiveError::UnsupportedVersion(_)
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn compression_ratio_includes_metadata() {
        let mut archive = TensorArchive::new();
        archive.insert("w", &quantized(2));
        let ratio = archive.compression_ratio(16);
        assert!(ratio > 3.0 && ratio < 4.0, "ratio {ratio}");
    }

    #[test]
    fn empty_archive_roundtrips() {
        let archive = TensorArchive::new();
        let restored = TensorArchive::from_bytes(&archive.to_bytes()).unwrap();
        assert!(restored.is_empty());
    }
}
