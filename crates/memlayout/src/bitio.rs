//! LSB-first bit-level writers and readers.
//!
//! The Fig. 5 container mixes 4-bit and 6-bit fields; these helpers keep
//! the packing exact and testable.

use bytes::{BufMut, BytesMut};

/// Writes variable-width little-endian bit fields into a growing buffer.
///
/// # Example
///
/// ```
/// use mokey_memlayout::bitio::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write(0b1011, 4);
/// w.write(0b10, 2);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read(4), 0b1011);
/// assert_eq!(r.read(2), 0b10);
/// ```
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: BytesMut,
    current: u64,
    filled: u32,
    bits_written: usize,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 32, or `value` has bits above
    /// `width`.
    pub fn write(&mut self, value: u32, width: u32) {
        assert!((1..=32).contains(&width), "width must be in [1, 32]");
        assert!(
            u64::from(value) < (1u64 << width),
            "value {value:#b} does not fit in {width} bits"
        );
        self.current |= u64::from(value) << self.filled;
        self.filled += width;
        self.bits_written += width as usize;
        while self.filled >= 8 {
            self.buf.put_u8((self.current & 0xFF) as u8);
            self.current >>= 8;
            self.filled -= 8;
        }
    }

    /// Total bits written so far.
    pub fn bits_written(&self) -> usize {
        self.bits_written
    }

    /// Flushes the final partial byte (zero-padded) and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.buf.put_u8((self.current & 0xFF) as u8);
        }
        self.buf.to_vec()
    }
}

/// Reads variable-width little-endian bit fields from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    bit_pos: usize,
}

impl<'a> BitReader<'a> {
    /// A reader positioned at bit 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, bit_pos: 0 }
    }

    /// Reads the next `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 32, or the read runs past the end.
    pub fn read(&mut self, width: u32) -> u32 {
        assert!((1..=32).contains(&width), "width must be in [1, 32]");
        assert!(
            self.bit_pos + width as usize <= self.bytes.len() * 8,
            "bit read past end of buffer"
        );
        let mut out = 0u64;
        for i in 0..width {
            let pos = self.bit_pos + i as usize;
            let bit = (self.bytes[pos / 8] >> (pos % 8)) & 1;
            out |= u64::from(bit) << i;
        }
        self.bit_pos += width as usize;
        out as u32
    }

    /// Current read position in bits.
    pub fn bit_pos(&self) -> usize {
        self.bit_pos
    }

    /// Remaining readable bits.
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.bit_pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let fields = [(5u32, 3u32), (0, 1), (63, 6), (1, 1), (1023, 10), (7, 4)];
        let mut w = BitWriter::new();
        for &(v, width) in &fields {
            w.write(v, width);
        }
        let total: u32 = fields.iter().map(|f| f.1).sum();
        assert_eq!(w.bits_written(), total as usize);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, width) in &fields {
            assert_eq!(r.read(width), v);
        }
    }

    #[test]
    fn padding_is_zero() {
        let mut w = BitWriter::new();
        w.write(1, 1);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0000_0001]);
    }

    #[test]
    fn crossing_byte_boundaries() {
        let mut w = BitWriter::new();
        w.write(0b111111, 6);
        w.write(0b101, 3); // straddles first/second byte
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(6), 0b111111);
        assert_eq!(r.read(3), 0b101);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        BitWriter::new().write(16, 4);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn read_past_end_panics() {
        let mut r = BitReader::new(&[0u8]);
        let _ = r.read(9);
    }

    #[test]
    fn full_u32_roundtrip() {
        let mut w = BitWriter::new();
        w.write(u32::MAX, 32);
        w.write(0x1234_5678, 32);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(32), u32::MAX);
        assert_eq!(r.read(32), 0x1234_5678);
    }
}
