//! Mokey's memory layout (paper Section III-A, Fig. 5).
//!
//! Off-chip, every value is a 4-bit index. A separate, sequential
//! "OT Pointers" stream records, per group of 64 indexes, how many of them
//! are outliers and their positions — so the bulk "Quantized Values" stream
//! stays dense and DRAM-friendly (two streaming access patterns per
//! tensor). On-chip, values expand to 5 bits (dictionary-select, sign,
//! 3-bit index) to avoid the pointer metadata.
//!
//! * [`bitio`] — LSB-first bit readers/writers the containers build on.
//! * [`DramContainer`] — the Fig. 5 off-chip format (4b values + pointer
//!   stream), with exact bit accounting.
//! * [`OnChipStream`] — the 5-bit on-chip form.
//! * [`engine`] — compression/decompression engine models (index ↔ FP16)
//!   for the memory-compression-only deployment (Section III-C).
//! * [`TensorArchive`] — a multi-tensor container with a binary wire format
//!   (what "storing the model" means in the examples).
//!
//! # Example
//!
//! ```
//! use mokey_core::{curve::ExpCurve, encode::QuantizedTensor};
//! use mokey_memlayout::DramContainer;
//! use mokey_tensor::init::GaussianMixture;
//!
//! let w = GaussianMixture::weight_like(0.0, 0.1).sample_matrix(32, 32, 5);
//! let q = QuantizedTensor::encode_with_own_dict(&w, &ExpCurve::paper(), &Default::default())
//!     .expect("non-degenerate tensor");
//! let packed = DramContainer::pack(q.codes());
//! assert_eq!(packed.unpack(), q.codes());
//! assert!(packed.total_bits() < 32 * 32 * 16 / 3); // >3x under FP16
//! ```

pub mod bitio;
pub mod engine;

mod archive;
mod container;
mod onchip;

pub use archive::{ArchivedTensor, ParseArchiveError, TensorArchive};
pub use container::{DramContainer, GROUP_SIZE};
pub use onchip::OnChipStream;
