//! The off-chip DRAM container (paper Fig. 5).
//!
//! "Conceptually, the regular 'Quantized value' 4b index array is split into
//! groups of 64, 4b indexes. To identify those indexes that are outliers,
//! the 'OT Pointers' list first stores outlier count per group, followed by
//! a list of 6b indexes marking their relative position within the group."

use crate::bitio::{BitReader, BitWriter};
use mokey_core::encode::Code;
use serde::{Deserialize, Serialize};

/// Values per pointer group (fixed at 64 in the paper; positions are 6-bit).
pub const GROUP_SIZE: usize = 64;

/// Bits per packed value in the quantized-values stream.
const VALUE_BITS: u32 = 4;
/// Bits of the per-group outlier count and of each position entry.
const FIELD_BITS: u32 = 6;

/// A tensor packed into the two Fig. 5 streams.
///
/// # Example
///
/// ```
/// use mokey_core::encode::Code;
/// use mokey_memlayout::DramContainer;
///
/// let codes = vec![Code::new(false, false, 3); 100];
/// let packed = DramContainer::pack(&codes);
/// assert_eq!(packed.unpack(), codes);
/// assert_eq!(packed.len(), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramContainer {
    /// Dense 4-bit (sign + index) value stream.
    values: Vec<u8>,
    /// Outlier-pointer stream: per group, 6-bit count then 6-bit positions.
    pointers: Vec<u8>,
    /// Number of encoded values.
    len: usize,
    /// Number of outliers (for accounting).
    outliers: usize,
}

impl DramContainer {
    /// Packs a code stream into the two DRAM streams.
    ///
    /// # Panics
    ///
    /// Panics if any group of 64 contains more than 63 outliers — the 6-bit
    /// count field cannot express 64, and real tensors are nowhere near
    /// that (paper: ≤ 5% outliers).
    pub fn pack(codes: &[Code]) -> Self {
        let mut values = BitWriter::new();
        let mut pointers = BitWriter::new();
        let mut outliers = 0usize;
        for group in codes.chunks(GROUP_SIZE) {
            let positions: Vec<u32> = group
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_outlier())
                .map(|(i, _)| i as u32)
                .collect();
            assert!(
                positions.len() < GROUP_SIZE,
                "group with {} outliers exceeds the 6-bit count field",
                positions.len()
            );
            outliers += positions.len();
            pointers.write(positions.len() as u32, FIELD_BITS);
            for &p in &positions {
                pointers.write(p, FIELD_BITS);
            }
            for &c in group {
                values.write(u32::from(c.to_bits4()), VALUE_BITS);
            }
        }
        Self { values: values.finish(), pointers: pointers.finish(), len: codes.len(), outliers }
    }

    /// Reassembles a container from previously packed streams (archive
    /// parsing path). Callers guarantee the streams came from
    /// [`DramContainer::pack`].
    pub(crate) fn assemble(
        values: Vec<u8>,
        pointers: Vec<u8>,
        len: usize,
        outliers: usize,
    ) -> Self {
        Self { values, pointers, len, outliers }
    }

    /// Reconstructs the code stream (the decompression engine's address
    /// path: walk both streams in lockstep).
    pub fn unpack(&self) -> Vec<Code> {
        let mut out = Vec::with_capacity(self.len);
        let mut values = BitReader::new(&self.values);
        let mut pointers = BitReader::new(&self.pointers);
        let mut remaining = self.len;
        while remaining > 0 {
            let group_len = remaining.min(GROUP_SIZE);
            let count = pointers.read(FIELD_BITS) as usize;
            let mut flags = [false; GROUP_SIZE];
            for _ in 0..count {
                flags[pointers.read(FIELD_BITS) as usize] = true;
            }
            for flag in flags.iter().take(group_len) {
                let bits4 = values.read(VALUE_BITS) as u8;
                out.push(Code::from_bits4(bits4, *flag));
            }
            remaining -= group_len;
        }
        out
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of outlier values.
    pub fn outlier_count(&self) -> usize {
        self.outliers
    }

    /// Bytes of the quantized-values stream.
    pub fn value_bytes(&self) -> &[u8] {
        &self.values
    }

    /// Bytes of the outlier-pointer stream.
    pub fn pointer_bytes(&self) -> &[u8] {
        &self.pointers
    }

    /// Exact payload size in bits (both streams, without byte padding):
    /// `4·n` values plus `6` per group plus `6` per outlier.
    pub fn total_bits(&self) -> usize {
        let groups = self.len.div_ceil(GROUP_SIZE);
        self.len * VALUE_BITS as usize
            + groups * FIELD_BITS as usize
            + self.outliers * FIELD_BITS as usize
    }

    /// Total stored bytes (with byte padding per stream).
    pub fn total_bytes(&self) -> usize {
        self.values.len() + self.pointers.len()
    }

    /// Compression ratio versus a dense encoding at `bits_per_value`
    /// (16 for the FP16 baselines of the paper).
    pub fn compression_ratio(&self, bits_per_value: u32) -> f64 {
        if self.len == 0 {
            return 1.0;
        }
        (self.len * bits_per_value as usize) as f64 / self.total_bits() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_codes(n: usize, outlier_rate: f64, seed: u64) -> Vec<Code> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Code::new(rng.gen_bool(outlier_rate), rng.gen_bool(0.5), rng.gen_range(0..8)))
            .collect()
    }

    #[test]
    fn roundtrip_with_outliers() {
        for n in [1usize, 63, 64, 65, 1000, 4096] {
            let codes = random_codes(n, 0.05, n as u64);
            let packed = DramContainer::pack(&codes);
            assert_eq!(packed.unpack(), codes, "roundtrip failed for n={n}");
        }
    }

    #[test]
    fn roundtrip_without_outliers() {
        let codes = random_codes(500, 0.0, 1);
        let packed = DramContainer::pack(&codes);
        assert_eq!(packed.outlier_count(), 0);
        assert_eq!(packed.unpack(), codes);
    }

    #[test]
    fn empty_container() {
        let packed = DramContainer::pack(&[]);
        assert!(packed.is_empty());
        assert_eq!(packed.unpack(), vec![]);
        assert_eq!(packed.total_bits(), 0);
    }

    #[test]
    fn total_bits_formula_matches_paper_example() {
        // The Fig. 5 example: group0 has outliers at positions 1 and 31.
        let mut codes = vec![Code::new(false, false, 2); 64];
        codes[1] = Code::new(true, false, 7);
        codes[31] = Code::new(true, true, 0);
        let packed = DramContainer::pack(&codes);
        // 64 values * 4b + 1 group * 6b + 2 outliers * 6b = 274 bits.
        assert_eq!(packed.total_bits(), 64 * 4 + 6 + 12);
        assert_eq!(packed.unpack(), codes);
    }

    #[test]
    fn compression_ratio_close_to_4x_at_low_outlier_rate() {
        let codes = random_codes(65536, 0.015, 9);
        let packed = DramContainer::pack(&codes);
        let ratio = packed.compression_ratio(16);
        // 16 / (4 + 6/64 + 0.015*6) ≈ 3.83
        assert!(ratio > 3.7 && ratio < 4.0, "ratio {ratio}");
    }

    #[test]
    fn streams_are_separately_accessible() {
        let codes = random_codes(256, 0.1, 3);
        let packed = DramContainer::pack(&codes);
        // Values stream is exactly n/2 bytes for 4b values.
        assert_eq!(packed.value_bytes().len(), 128);
        assert!(!packed.pointer_bytes().is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds the 6-bit count field")]
    fn all_outlier_group_panics() {
        let codes = vec![Code::new(true, false, 0); 64];
        let _ = DramContainer::pack(&codes);
    }
}
