//! The 5-bit on-chip stream (paper Sections III-A and III-C).
//!
//! "For simplicity, at an appropriate level of the on-chip hierarchy the
//! values can be expanded to 5b (dictionary selection/1b, sign/1b, centroid
//! index/3b) indexes. This facilitates single stream accesses per tensor."

use crate::bitio::{BitReader, BitWriter};
use mokey_core::encode::Code;
use serde::{Deserialize, Serialize};

/// A dense 5-bit-per-value code stream for on-chip buffers.
///
/// # Example
///
/// ```
/// use mokey_core::encode::Code;
/// use mokey_memlayout::OnChipStream;
///
/// let codes = vec![Code::new(true, false, 5), Code::new(false, true, 2)];
/// let stream = OnChipStream::pack(&codes);
/// assert_eq!(stream.unpack(), codes);
/// assert_eq!(stream.total_bits(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnChipStream {
    bytes: Vec<u8>,
    len: usize,
}

impl OnChipStream {
    /// Packs codes at 5 bits per value.
    pub fn pack(codes: &[Code]) -> Self {
        let mut w = BitWriter::new();
        for &c in codes {
            w.write(u32::from(c.to_bits()), 5);
        }
        Self { bytes: w.finish(), len: codes.len() }
    }

    /// Unpacks the stream back to codes.
    pub fn unpack(&self) -> Vec<Code> {
        let mut r = BitReader::new(&self.bytes);
        (0..self.len).map(|_| Code::from_bits(r.read(5) as u8)).collect()
    }

    /// Number of stored codes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the stream holds no codes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exact payload bits (`5·n`).
    pub fn total_bits(&self) -> usize {
        self.len * 5
    }

    /// Stored bytes including padding.
    pub fn total_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// On-chip capacity amplification versus a `bits_per_value` buffer
    /// (16/5 = 3.2× for FP16, which combined with the 4× narrower buffer
    /// area underlies the paper's "nearly 13× amplification of on-chip
    /// memory capacity" claim).
    pub fn capacity_amplification(bits_per_value: u32) -> f64 {
        f64::from(bits_per_value) / 5.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_random_codes() {
        let mut rng = StdRng::seed_from_u64(4);
        let codes: Vec<Code> = (0..1000)
            .map(|_| Code::new(rng.gen_bool(0.05), rng.gen_bool(0.5), rng.gen_range(0..8)))
            .collect();
        let stream = OnChipStream::pack(&codes);
        assert_eq!(stream.unpack(), codes);
        assert_eq!(stream.total_bits(), 5000);
        assert_eq!(stream.total_bytes(), 625);
    }

    #[test]
    fn empty_stream() {
        let stream = OnChipStream::pack(&[]);
        assert!(stream.is_empty());
        assert_eq!(stream.unpack(), vec![]);
    }

    #[test]
    fn amplification_matches_paper_ratio() {
        assert!((OnChipStream::capacity_amplification(16) - 3.2).abs() < 1e-12);
    }
}
