//! Compression/decompression engine models (paper Section III-C and the
//! Fig. 5 "Decompression Engine").
//!
//! When Mokey is used purely as a memory-compression assist, values are
//! "transparently converted to fixed-point 16b or (FP16 if desired) when
//! written or read from an appropriate level in the memory hierarchy … when
//! reading values, lookup tables can convert the indexes into their
//! corresponding centroids."

use crate::DramContainer;
use mokey_core::dict::TensorDict;
use mokey_core::encode::{Code, QuantizedTensor};
use mokey_core::quantizer::OutputQuantizer;
use mokey_tensor::Matrix;

/// Work counters of an engine pass, consumed by the accelerator's energy
/// model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Values that flowed through the engine.
    pub values: usize,
    /// Centroid LUT lookups performed (one per decompressed value).
    pub lut_lookups: usize,
    /// Comparator evaluations performed (quantizer ladder, one ladder per
    /// compressed value).
    pub comparisons: usize,
}

/// The read-path engine: packed indexes → FP16/16b-fixed centroid values.
///
/// # Example
///
/// ```
/// use mokey_core::{curve::ExpCurve, encode::QuantizedTensor};
/// use mokey_memlayout::{engine::DecompressionEngine, DramContainer};
/// use mokey_tensor::init::GaussianMixture;
///
/// let w = GaussianMixture::weight_like(0.0, 0.1).sample_matrix(8, 8, 1);
/// let q = QuantizedTensor::encode_with_own_dict(&w, &ExpCurve::paper(), &Default::default())
///     .expect("non-degenerate tensor");
/// let packed = DramContainer::pack(q.codes());
/// let engine = DecompressionEngine::new(q.dict().clone());
/// let (values, stats) = engine.decompress(&packed);
/// assert_eq!(values.len(), 64);
/// assert_eq!(stats.lut_lookups, 64);
/// ```
#[derive(Debug, Clone)]
pub struct DecompressionEngine {
    dict: TensorDict,
}

impl DecompressionEngine {
    /// Builds the engine's LUT pair from a tensor dictionary.
    pub fn new(dict: TensorDict) -> Self {
        Self { dict }
    }

    /// The dictionary backing the LUTs.
    pub fn dict(&self) -> &TensorDict {
        &self.dict
    }

    /// Expands a packed container to dense `f32` values (modelling the
    /// FP16/fixed-16 output of the hardware engine).
    pub fn decompress(&self, packed: &DramContainer) -> (Vec<f32>, EngineStats) {
        let codes = packed.unpack();
        self.decompress_codes(&codes)
    }

    /// Expands an explicit code stream.
    pub fn decompress_codes(&self, codes: &[Code]) -> (Vec<f32>, EngineStats) {
        let values: Vec<f32> = codes.iter().map(|&c| self.dict.decode_code(c) as f32).collect();
        let stats = EngineStats { values: codes.len(), lut_lookups: codes.len(), comparisons: 0 };
        (values, stats)
    }
}

/// The write-path engine: dense values → packed indexes, via the Fig. 7
/// quantizer ladder.
#[derive(Debug, Clone)]
pub struct CompressionEngine {
    quantizer: OutputQuantizer,
}

impl CompressionEngine {
    /// Builds the engine from a tensor dictionary.
    pub fn new(dict: TensorDict) -> Self {
        Self { quantizer: OutputQuantizer::new(dict) }
    }

    /// The dictionary backing the comparator ladder.
    pub fn dict(&self) -> &TensorDict {
        self.quantizer.dict()
    }

    /// Quantizes and packs a dense matrix into the off-chip container.
    pub fn compress(&self, values: &Matrix) -> (DramContainer, EngineStats) {
        let q = self.quantizer.quantize_matrix(values);
        let packed = DramContainer::pack(q.codes());
        let stats = EngineStats {
            values: values.len(),
            lut_lookups: 0,
            comparisons: values.len() * self.quantizer.comparator_count(),
        };
        (packed, stats)
    }

    /// Quantizes without packing (the on-chip 5b path).
    pub fn quantize(&self, values: &Matrix) -> (QuantizedTensor, EngineStats) {
        let q = self.quantizer.quantize_matrix(values);
        let stats = EngineStats {
            values: values.len(),
            lut_lookups: 0,
            comparisons: values.len() * self.quantizer.comparator_count(),
        };
        (q, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mokey_core::curve::ExpCurve;
    use mokey_core::dict::TensorDict;
    use mokey_tensor::init::GaussianMixture;

    fn fixture() -> (Matrix, TensorDict) {
        let m = GaussianMixture::activation_like(0.3, 1.1).sample_matrix(16, 24, 8);
        let dict =
            TensorDict::for_values(m.as_slice(), &ExpCurve::paper(), &Default::default()).unwrap();
        (m, dict)
    }

    #[test]
    fn compress_then_decompress_is_quantize_decode() {
        let (m, dict) = fixture();
        let comp = CompressionEngine::new(dict.clone());
        let decomp = DecompressionEngine::new(dict.clone());
        let (packed, cstats) = comp.compress(&m);
        let (values, dstats) = decomp.decompress(&packed);
        assert_eq!(cstats.values, m.len());
        assert_eq!(dstats.lut_lookups, m.len());
        let direct = QuantizedTensor::encode(&m, &dict).decode();
        assert_eq!(values, direct.as_slice());
    }

    #[test]
    fn roundtrip_through_container_is_lossless_in_code_space() {
        let (m, dict) = fixture();
        let comp = CompressionEngine::new(dict.clone());
        let (packed, _) = comp.compress(&m);
        let codes = packed.unpack();
        let direct = QuantizedTensor::encode(&m, &dict);
        assert_eq!(codes, direct.codes());
    }

    #[test]
    fn comparator_work_scales_with_ladder() {
        let (m, dict) = fixture();
        let comp = CompressionEngine::new(dict.clone());
        let (_, stats) = comp.compress(&m);
        let ladder = OutputQuantizer::new(dict).comparator_count();
        assert_eq!(stats.comparisons, m.len() * ladder);
    }
}
