//! `mokey-serve`: an in-process batching inference-serving engine over a
//! quantized transformer.
//!
//! The paper's deployment story is cheap narrow fixed-point inference
//! for *out-of-the-box* checkpoints — many heterogeneous models sharing
//! the same arithmetic; this crate is the layer that *serves* them. A
//! model is quantized once into a [`PreparedModel`] (decoded centroid
//! weights + cached activation dictionaries, shareable across threads),
//! or several models are registered into a [`ModelRegistry`] behind one
//! shared `QuantSession` dictionary cache; then [`serve`] (one model) or
//! [`serve_registry`] (all of them, one worker pool, model-tagged queue,
//! per-model + aggregate metrics) runs a queue → batcher → worker-pool
//! engine around them:
//!
//! * **admission control** — a [`BoundedQueue`](queue::BoundedQueue)
//!   validates requests (vocabulary, sequence length) and bounds the
//!   backlog; [`ServeHandle::submit`] applies backpressure by blocking,
//!   [`ServeHandle::try_submit`] bounces with
//!   [`SubmitError::QueueFull`];
//! * **dynamic batching** — workers coalesce up to
//!   [`ServeConfig::max_batch`] requests, waiting at most
//!   [`ServeConfig::max_wait`] for stragglers, and run the whole batch
//!   through one `QuantizedExecutor` (activations re-encoded on the fly
//!   via the cached dictionaries); batched outputs are **bit-identical**
//!   to solo execution, so batching is purely a throughput decision;
//! * **autoregressive decode** — [`ServeHandle::submit_generate`] runs
//!   greedy generation over a quantized KV-cache
//!   ([`mokey_transformer::DecodeSession`]): the prompt prefills once,
//!   each later token is decoded incrementally, and between tokens the
//!   generation *re-enters the queue*, so decode interleaves with
//!   one-shot traffic at token granularity while a [`GenTicket`] streams
//!   the tokens back;
//! * **structural shutdown** — workers live in a `std::thread::scope`;
//!   when the driver closure returns, the queue closes and the accepted
//!   backlog is drained before [`serve`] returns. No accepted request is
//!   dropped;
//! * **observability** — [`MetricsReport`] captures request/batch
//!   counters, queue depth, values/sec, and a log-scale latency
//!   histogram (p50/p90/p99), dumpable as plain text.
//!
//! The engine itself is in-process and synchronous — no async runtime —
//! which keeps tests hermetic. [`serve_net`] wraps it in a TCP frontend:
//! length-prefixed binary [wire] frames, one acceptor plus reader/writer
//! threads per connection translating frames into
//! [`ServeHandle::submit_to`] calls, graceful close-then-drain shutdown.
//! Clients address models by registered name; responses cross the wire
//! bit-exactly (f32 as raw IEEE-754 bits). Per-model admission quotas
//! ([`ModelServeConfig::queue_quota`]) keep one flooding client from
//! starving other models of queue space, and [`ModelId`]s carry their
//! minting registry's identity so cross-registry ids bounce with
//! [`SubmitError::UnknownModel`] instead of silently aliasing.
//!
//! # Quickstart
//!
//! ```
//! use mokey_serve::{serve, LoadGen, PreparedModel, ServeConfig};
//! use mokey_transformer::{Head, Model, ModelConfig, QuantizeSpec};
//!
//! let config = ModelConfig::bert_base().scaled(16, 16);
//! let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 1);
//! let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(12, s)).collect();
//! let prepared =
//!     PreparedModel::prepare(model, QuantizeSpec::weights_and_activations(), &profile).unwrap();
//!
//! let mut traffic = LoadGen::new(prepared.model(), 42);
//! let (_, report) = serve(&prepared, ServeConfig::default(), |handle| {
//!     let tickets: Vec<_> =
//!         traffic.requests(6).into_iter().map(|t| handle.submit(t).unwrap()).collect();
//!     for ticket in tickets {
//!         let response = ticket.wait();
//!         assert!(response.stats.act_values > 0);
//!     }
//! });
//! assert_eq!(report.completed, 6);
//! println!("{}", report.dump());
//! ```

pub mod engine;
pub mod loadgen;
pub mod metrics;
pub mod net;
pub mod prepared;
pub mod queue;
pub mod registry;
pub mod wire;

pub use engine::{
    serve, serve_registry, GenTicket, GenUpdate, GenerateResponse, Response, ServeConfig,
    ServeHandle, SubmitError, Ticket,
};
pub use loadgen::{drive_socket_clients, LoadGen, SocketConnectionReport, SocketLoadReport};
pub use metrics::{LatencyHistogram, Metrics, MetricsReport, ServeReport};
pub use mokey_transformer::ExecMode;
pub use net::{serve_net, NetConfig, NetHandle};
pub use prepared::PreparedModel;
pub use registry::{ModelId, ModelRegistry, ModelServeConfig, RegistryError};
pub use wire::{
    read_frame, write_frame, Frame, GenSummary, GenerateOutcome, NetClient, ReadFrameError,
    ServerReply, WireError, WireErrorCode,
};
