//! [`ModelRegistry`]: N [`PreparedModel`]s behind one shared
//! [`QuantSession`], addressed by [`ModelId`].
//!
//! The paper's deployment story is that *many* heterogeneous checkpoints
//! quantize out-of-the-box into the same narrow fixed-point arithmetic;
//! the registry is the serving-side expression of that. Every model
//! registered here is prepared through **one** session, so its curve,
//! dictionary configuration, and — crucially — its statistics-keyed
//! dictionary cache are shared: two models with identical-stats tensors
//! (per-task heads over one encoder, re-deployed checkpoints) reuse each
//! other's dictionaries instead of rebuilding them. The engine
//! ([`serve_registry`](crate::serve_registry)) serves every registered
//! model through one worker pool and one tagged queue.

use crate::prepared::PreparedModel;
use mokey_pipeline::{CacheStats, PipelineError, QuantSession, QuantizeSpec};
use mokey_transformer::Model;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// Process-unique registry identities, stamped into every [`ModelId`] a
/// registry mints. `0` is reserved for unscoped ids
/// ([`ModelId::DEFAULT`]).
static NEXT_REGISTRY_NONCE: AtomicU32 = AtomicU32::new(1);

pub(crate) fn next_registry_nonce() -> u32 {
    NEXT_REGISTRY_NONCE.fetch_add(1, Ordering::Relaxed)
}

/// Handle to one registered model: a dense index into the registry plus
/// the identity of the registry that minted it, cheap to copy and to tag
/// queue entries with.
///
/// Ids **carry their registry's identity** (a process-unique nonce), so
/// an id from one registry used against an engine serving a *different*
/// registry bounces with
/// [`SubmitError::UnknownModel`](crate::SubmitError::UnknownModel)
/// instead of silently aliasing whatever model occupies that position.
/// The one unscoped id is [`ModelId::DEFAULT`], which addresses "the
/// first model of whichever engine you hand it to" — the single-model
/// convenience route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId {
    /// The minting registry's nonce; `0` = unscoped.
    pub(crate) registry: u32,
    /// The registry slot.
    pub(crate) index: u32,
}

impl ModelId {
    /// The first registered model of whichever engine the id is used
    /// against — what the single-model convenience API
    /// ([`ServeHandle::submit`](crate::ServeHandle::submit)) routes to.
    /// This is the only id without a registry identity.
    pub const DEFAULT: ModelId = ModelId { registry: 0, index: 0 };

    pub(crate) fn scoped(registry: u32, index: usize) -> Self {
        Self { registry, index: index as u32 }
    }

    /// Resolves this id against an engine's registry nonce: unscoped ids
    /// adopt the engine's registry, matching ids pass through, foreign
    /// ids are rejected.
    pub(crate) fn resolve(self, nonce: u32) -> Option<ModelId> {
        if self.registry == 0 {
            Some(ModelId { registry: nonce, index: self.index })
        } else if self.registry == nonce {
            Some(self)
        } else {
            None
        }
    }

    /// The registry slot this id addresses.
    pub fn index(self) -> usize {
        self.index as usize
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.registry == 0 {
            write!(f, "model#{}", self.index)
        } else {
            write!(f, "model#{}@r{}", self.index, self.registry)
        }
    }
}

/// Per-model overrides of the engine-global [`ServeConfig`] batching
/// policy, attached at registration ([`ModelRegistry::register_with`] /
/// [`ModelRegistry::set_serve_config`]). `None` fields inherit the
/// engine-global value, so a small model is no longer forced onto a
/// large model's batching policy.
///
/// [`ServeConfig`]: crate::ServeConfig
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModelServeConfig {
    /// Largest batch the dynamic batcher coalesces for this model
    /// (overrides [`ServeConfig::max_batch`](crate::ServeConfig)).
    pub max_batch: Option<usize>,
    /// This model's length-bucket width (overrides
    /// [`ServeConfig::length_bucket`](crate::ServeConfig); `Some(0)`
    /// disables bucketing for this model).
    pub length_bucket: Option<usize>,
    /// Admission quota: how many submission-queue slots this model may
    /// occupy at once (floored at 1). `None` = bounded only by the
    /// shared queue capacity. A model at its quota sheds load with
    /// [`SubmitError::ModelQuotaExceeded`](crate::SubmitError) instead
    /// of starving other models of queue space.
    pub queue_quota: Option<usize>,
    /// This model's execution mode (overrides
    /// [`ServeConfig::mode`](crate::ServeConfig): decoded float GEMMs vs
    /// index-domain LUT GEMMs — responses are bit-identical either way).
    pub mode: Option<mokey_transformer::ExecMode>,
}

/// Why a model could not be registered.
#[derive(Debug, PartialEq)]
pub enum RegistryError {
    /// A model with this name is already registered — registration never
    /// silently shadows an existing model.
    DuplicateModel {
        /// The contested name.
        name: String,
    },
    /// The shared session failed to quantize the model.
    Prepare {
        /// The model that failed.
        name: String,
        /// The underlying pipeline failure.
        source: PipelineError,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateModel { name } => {
                write!(f, "a model named {name:?} is already registered")
            }
            RegistryError::Prepare { name, source } => {
                write!(f, "preparing model {name:?} failed: {source}")
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::DuplicateModel { .. } => None,
            RegistryError::Prepare { source, .. } => Some(source),
        }
    }
}

/// Owns every servable model plus the one [`QuantSession`] they were all
/// prepared through.
///
/// # Example
///
/// ```
/// use mokey_serve::ModelRegistry;
/// use mokey_transformer::{Head, Model, ModelConfig, QuantizeSpec};
///
/// let config = ModelConfig::bert_base().scaled(16, 16);
/// let profile: Vec<Vec<usize>> = (0..2)
///     .map(|s| Model::synthesize(&config, Head::Span, 1).random_tokens(12, s))
///     .collect();
/// let mut registry = ModelRegistry::new();
/// let sentiment = registry
///     .register(
///         "sentiment",
///         Model::synthesize(&config, Head::Classification { classes: 3 }, 1),
///         QuantizeSpec::weights_and_activations(),
///         &profile,
///     )
///     .unwrap();
/// // Same encoder seed, different head: the second registration reuses
/// // the cached encoder dictionaries.
/// let topic = registry
///     .register(
///         "topic",
///         Model::synthesize(&config, Head::Classification { classes: 5 }, 1),
///         QuantizeSpec::weights_and_activations(),
///         &profile,
///     )
///     .unwrap();
/// assert_ne!(sentiment, topic);
/// assert!(registry.cache_stats().hits > 0);
/// ```
#[derive(Debug)]
pub struct ModelRegistry {
    session: QuantSession,
    nonce: u32,
    models: Vec<Registered>,
}

/// One registry slot: the name, the prepared model, and its serve-policy
/// overrides.
#[derive(Debug)]
struct Registered {
    name: String,
    model: PreparedModel,
    serve: ModelServeConfig,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// A registry over a default session (paper curve constants, cache
    /// enabled).
    pub fn new() -> Self {
        Self::with_session(QuantSession::with_defaults())
    }

    /// A registry over an explicitly configured session.
    pub fn with_session(session: QuantSession) -> Self {
        Self { session, nonce: next_registry_nonce(), models: Vec::new() }
    }

    /// The process-unique identity stamped into every id this registry
    /// mints.
    pub(crate) fn nonce(&self) -> u32 {
        self.nonce
    }

    /// Whether `id` was minted by this registry (or is unscoped) and
    /// addresses a registered slot.
    fn index_of(&self, id: ModelId) -> Option<usize> {
        let resolved = id.resolve(self.nonce)?;
        let index = resolved.index();
        (index < self.models.len()).then_some(index)
    }

    /// Quantizes `model` through the shared session and registers the
    /// result under `name` with default (engine-inherited) serve policy.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateModel`] when `name` is taken (the
    /// registry never silently shadows), or [`RegistryError::Prepare`]
    /// wrapping the session's failure.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        model: Model,
        spec: QuantizeSpec,
        profile_inputs: &[Vec<usize>],
    ) -> Result<ModelId, RegistryError> {
        self.register_with(name, model, spec, profile_inputs, ModelServeConfig::default())
    }

    /// Like [`register`](Self::register), but attaches per-model serve
    /// overrides (batching policy, admission quota).
    ///
    /// # Errors
    ///
    /// Same as [`register`](Self::register).
    pub fn register_with(
        &mut self,
        name: impl Into<String>,
        model: Model,
        spec: QuantizeSpec,
        profile_inputs: &[Vec<usize>],
        serve: ModelServeConfig,
    ) -> Result<ModelId, RegistryError> {
        let name = name.into();
        self.ensure_unique(&name)?;
        let prepared =
            PreparedModel::prepare_with_session(&self.session, model, spec, profile_inputs)
                .map_err(|source| RegistryError::Prepare { name: name.clone(), source })?;
        self.models.push(Registered { name, model: prepared, serve });
        Ok(ModelId::scoped(self.nonce, self.models.len() - 1))
    }

    /// Registers an already-prepared model under `name` (e.g. one built
    /// through this registry's [`ModelRegistry::session`] by custom
    /// preparation code).
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateModel`] when `name` is taken.
    pub fn register_prepared(
        &mut self,
        name: impl Into<String>,
        prepared: PreparedModel,
    ) -> Result<ModelId, RegistryError> {
        let name = name.into();
        self.ensure_unique(&name)?;
        self.models.push(Registered { name, model: prepared, serve: ModelServeConfig::default() });
        Ok(ModelId::scoped(self.nonce, self.models.len() - 1))
    }

    /// Replaces a registered model's serve overrides. Takes effect on
    /// engines started *after* the call; a running engine keeps the
    /// policy it was launched with.
    ///
    /// Returns `false` (and changes nothing) when `id` is foreign or out
    /// of range.
    pub fn set_serve_config(&mut self, id: ModelId, serve: ModelServeConfig) -> bool {
        match self.index_of(id) {
            Some(index) => {
                self.models[index].serve = serve;
                true
            }
            None => false,
        }
    }

    /// A registered model's serve overrides.
    pub fn serve_config(&self, id: ModelId) -> Option<ModelServeConfig> {
        self.index_of(id).map(|i| self.models[i].serve)
    }

    fn ensure_unique(&self, name: &str) -> Result<(), RegistryError> {
        if self.models.iter().any(|r| r.name == name) {
            return Err(RegistryError::DuplicateModel { name: name.to_owned() });
        }
        Ok(())
    }

    /// The model behind an id, when the id was minted here (or is
    /// unscoped) and is in range.
    pub fn get(&self, id: ModelId) -> Option<&PreparedModel> {
        self.index_of(id).map(|i| &self.models[i].model)
    }

    /// The registered name behind an id.
    pub fn name(&self, id: ModelId) -> Option<&str> {
        self.index_of(id).map(|i| self.models[i].name.as_str())
    }

    /// Resolves a registered name back to its id.
    pub fn lookup(&self, name: &str) -> Option<ModelId> {
        self.models.iter().position(|r| r.name == name).map(|i| ModelId::scoped(self.nonce, i))
    }

    /// Iterates registered models in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ModelId, &str, &PreparedModel)> {
        self.models
            .iter()
            .enumerate()
            .map(|(i, r)| (ModelId::scoped(self.nonce, i), r.name.as_str(), &r.model))
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no model has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The shared quantization session (curve, configuration, dictionary
    /// cache, [`report`](QuantSession::report)).
    pub fn session(&self) -> &QuantSession {
        &self.session
    }

    /// The shared dictionary cache's counters: hits recorded after the
    /// first registration are cross-model (or cross-prepare) reuse.
    pub fn cache_stats(&self) -> CacheStats {
        self.session.cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mokey_pipeline::Parallelism;
    use mokey_transformer::{Head, ModelConfig};

    fn config() -> ModelConfig {
        ModelConfig {
            name: "registry-test".into(),
            layers: 1,
            hidden: 32,
            heads: 2,
            ff: 64,
            vocab: 150,
            max_seq: 16,
        }
    }

    fn registry_with(serial: bool) -> ModelRegistry {
        if serial {
            ModelRegistry::with_session(
                QuantSession::builder().parallelism(Parallelism::Serial).build(),
            )
        } else {
            ModelRegistry::new()
        }
    }

    #[test]
    fn register_assigns_dense_ids_and_resolves_names() {
        let mut registry = registry_with(false);
        let spec = QuantizeSpec::weights_only();
        let a = registry.register("a", Model::synthesize(&config(), Head::Span, 3), spec, &[]);
        let b = registry.register("b", Model::synthesize(&config(), Head::Span, 4), spec, &[]);
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.lookup("b"), Some(b));
        assert_eq!(registry.name(a), Some("a"));
        assert!(registry.get(ModelId::scoped(registry.nonce(), 2)).is_none());
        let ids: Vec<_> = registry.iter().map(|(id, name, _)| (id, name.to_owned())).collect();
        assert_eq!(ids, vec![(a, "a".to_owned()), (b, "b".to_owned())]);
        // The unscoped default id addresses slot 0 of *this* registry too.
        assert_eq!(registry.name(ModelId::DEFAULT), Some("a"));
    }

    #[test]
    fn foreign_ids_do_not_alias_across_registries() {
        let spec = QuantizeSpec::weights_only();
        let mut first = registry_with(false);
        let mut second = registry_with(false);
        let in_first =
            first.register("a", Model::synthesize(&config(), Head::Span, 3), spec, &[]).unwrap();
        let in_second =
            second.register("z", Model::synthesize(&config(), Head::Span, 4), spec, &[]).unwrap();
        // Same position, different registries: the ids must not compare
        // equal and must not resolve against the other registry.
        assert_eq!(in_first.index(), in_second.index());
        assert_ne!(in_first, in_second);
        assert!(first.get(in_second).is_none());
        assert!(second.get(in_first).is_none());
        assert!(first.name(in_second).is_none());
        // Foreign ids cannot mutate serve policy either.
        assert!(!first.set_serve_config(in_second, ModelServeConfig::default()));
    }

    #[test]
    fn serve_overrides_attach_at_registration_and_update_in_place() {
        let mut registry = registry_with(false);
        let spec = QuantizeSpec::weights_only();
        let tuned = ModelServeConfig {
            max_batch: Some(2),
            length_bucket: Some(0),
            queue_quota: Some(4),
            mode: Some(mokey_transformer::ExecMode::IndexDomain),
        };
        let a = registry
            .register_with("a", Model::synthesize(&config(), Head::Span, 3), spec, &[], tuned)
            .unwrap();
        let b = registry.register("b", Model::synthesize(&config(), Head::Span, 4), spec, &[]);
        let b = b.unwrap();
        assert_eq!(registry.serve_config(a), Some(tuned));
        assert_eq!(registry.serve_config(b), Some(ModelServeConfig::default()));
        let retuned = ModelServeConfig { queue_quota: Some(8), ..tuned };
        assert!(registry.set_serve_config(b, retuned));
        assert_eq!(registry.serve_config(b), Some(retuned));
    }

    #[test]
    fn duplicate_names_are_a_typed_error_not_a_shadow() {
        let mut registry = registry_with(false);
        let spec = QuantizeSpec::weights_only();
        let first = Model::synthesize(&config(), Head::Classification { classes: 3 }, 5);
        let id = registry.register("head", first, spec, &[]).unwrap();
        let second = Model::synthesize(&config(), Head::Classification { classes: 7 }, 6);
        let err = registry.register("head", second.clone(), spec, &[]).unwrap_err();
        assert_eq!(err, RegistryError::DuplicateModel { name: "head".into() });
        // The original registration is untouched…
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.lookup("head"), Some(id));
        // …and prepared models bounce off the same check.
        let prepared =
            PreparedModel::prepare_with_session(registry.session(), second, spec, &[]).unwrap();
        let err = registry.register_prepared("head", prepared).unwrap_err();
        assert!(matches!(err, RegistryError::DuplicateModel { ref name } if name == "head"));
    }

    #[test]
    fn identical_stats_tensors_hit_the_shared_cache_across_models() {
        let mut registry = registry_with(true);
        let spec = QuantizeSpec::weights_only();
        // Same config + seed, different heads: every encoder/embedding
        // tensor is bit-identical between the two models.
        let sentiment = Model::synthesize(&config(), Head::Classification { classes: 3 }, 9);
        let topic = Model::synthesize(&config(), Head::Classification { classes: 5 }, 9);
        let shared = sentiment.weight_tensors().len() - 1; // all but the head
        let a = registry.register("sentiment", sentiment, spec, &[]).unwrap();
        let after_first = registry.cache_stats();
        assert_eq!(after_first.hits, 0, "first registration has nothing to reuse");
        let b = registry.register("topic", topic, spec, &[]).unwrap();
        let after_second = registry.cache_stats();
        // Every shared-stats dictionary was served from cache, not rebuilt:
        // the dict-build count is what it would be for disjoint models
        // minus one build per shared tensor.
        assert_eq!(after_second.hits, shared, "cross-model dictionary reuse");
        assert_eq!(after_second.misses, after_first.misses + 1, "only the head was rebuilt");
        // The second model's own report shows the reuse too.
        let report = registry.get(b).unwrap().quantization_report();
        assert_eq!(report.dict_cache.hits, shared);
        assert_eq!(report.dict_cache.misses, 1);
        // And the decoded shared weights really are identical bit-for-bit
        // (head.proj is the one tensor the two models legitimately differ
        // on — 3-way vs 5-way logits).
        let wa = &registry.get(a).unwrap().context().weights;
        let wb = &registry.get(b).unwrap().context().weights;
        for (name, m) in wa {
            if name == "head.proj" {
                continue;
            }
            assert_eq!(Some(m), wb.get(name), "decoded weight {name} diverged");
        }
    }

    #[test]
    fn prepare_failure_carries_the_model_name() {
        let mut registry = registry_with(false);
        let model = Model::synthesize(&config(), Head::Span, 11);
        // Activation quantization without profiling inputs is a pipeline
        // error; the registry wraps it with the model's name.
        let err = registry
            .register("broken", model, QuantizeSpec::weights_and_activations(), &[])
            .unwrap_err();
        assert!(matches!(err, RegistryError::Prepare { ref name, .. } if name == "broken"));
        assert!(registry.is_empty());
    }
}
