//! [`ModelRegistry`]: N [`PreparedModel`]s behind one shared
//! [`QuantSession`], addressed by [`ModelId`].
//!
//! The paper's deployment story is that *many* heterogeneous checkpoints
//! quantize out-of-the-box into the same narrow fixed-point arithmetic;
//! the registry is the serving-side expression of that. Every model
//! registered here is prepared through **one** session, so its curve,
//! dictionary configuration, and — crucially — its statistics-keyed
//! dictionary cache are shared: two models with identical-stats tensors
//! (per-task heads over one encoder, re-deployed checkpoints) reuse each
//! other's dictionaries instead of rebuilding them. The engine
//! ([`serve_registry`](crate::serve_registry)) serves every registered
//! model through one worker pool and one tagged queue.

use crate::prepared::PreparedModel;
use mokey_pipeline::{CacheStats, PipelineError, QuantSession, QuantizeSpec};
use mokey_transformer::Model;
use std::fmt;

/// Handle to one registered model: a dense index into the registry, cheap
/// to copy and to tag queue entries with.
///
/// Ids are **positional and scoped to the registry that minted them** —
/// they carry no registry identity, so an id from one registry used
/// against an engine serving a different registry addresses whatever
/// model occupies that slot there (or bounces with
/// [`SubmitError::UnknownModel`](crate::SubmitError::UnknownModel) when
/// out of range). Keep one registry per engine and resolve names through
/// [`ModelRegistry::lookup`] at the boundary where ids cross components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(pub(crate) usize);

impl ModelId {
    /// The first registered model — what the single-model convenience
    /// API ([`ServeHandle::submit`](crate::ServeHandle::submit)) routes
    /// to.
    pub const DEFAULT: ModelId = ModelId(0);

    /// The registry slot this id addresses.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model#{}", self.0)
    }
}

/// Why a model could not be registered.
#[derive(Debug, PartialEq)]
pub enum RegistryError {
    /// A model with this name is already registered — registration never
    /// silently shadows an existing model.
    DuplicateModel {
        /// The contested name.
        name: String,
    },
    /// The shared session failed to quantize the model.
    Prepare {
        /// The model that failed.
        name: String,
        /// The underlying pipeline failure.
        source: PipelineError,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateModel { name } => {
                write!(f, "a model named {name:?} is already registered")
            }
            RegistryError::Prepare { name, source } => {
                write!(f, "preparing model {name:?} failed: {source}")
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::DuplicateModel { .. } => None,
            RegistryError::Prepare { source, .. } => Some(source),
        }
    }
}

/// Owns every servable model plus the one [`QuantSession`] they were all
/// prepared through.
///
/// # Example
///
/// ```
/// use mokey_serve::ModelRegistry;
/// use mokey_transformer::{Head, Model, ModelConfig, QuantizeSpec};
///
/// let config = ModelConfig::bert_base().scaled(16, 16);
/// let profile: Vec<Vec<usize>> = (0..2)
///     .map(|s| Model::synthesize(&config, Head::Span, 1).random_tokens(12, s))
///     .collect();
/// let mut registry = ModelRegistry::new();
/// let sentiment = registry
///     .register(
///         "sentiment",
///         Model::synthesize(&config, Head::Classification { classes: 3 }, 1),
///         QuantizeSpec::weights_and_activations(),
///         &profile,
///     )
///     .unwrap();
/// // Same encoder seed, different head: the second registration reuses
/// // the cached encoder dictionaries.
/// let topic = registry
///     .register(
///         "topic",
///         Model::synthesize(&config, Head::Classification { classes: 5 }, 1),
///         QuantizeSpec::weights_and_activations(),
///         &profile,
///     )
///     .unwrap();
/// assert_ne!(sentiment, topic);
/// assert!(registry.cache_stats().hits > 0);
/// ```
#[derive(Debug)]
pub struct ModelRegistry {
    session: QuantSession,
    models: Vec<(String, PreparedModel)>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// A registry over a default session (paper curve constants, cache
    /// enabled).
    pub fn new() -> Self {
        Self::with_session(QuantSession::with_defaults())
    }

    /// A registry over an explicitly configured session.
    pub fn with_session(session: QuantSession) -> Self {
        Self { session, models: Vec::new() }
    }

    /// Quantizes `model` through the shared session and registers the
    /// result under `name`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateModel`] when `name` is taken (the
    /// registry never silently shadows), or [`RegistryError::Prepare`]
    /// wrapping the session's failure.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        model: Model,
        spec: QuantizeSpec,
        profile_inputs: &[Vec<usize>],
    ) -> Result<ModelId, RegistryError> {
        let name = name.into();
        self.ensure_unique(&name)?;
        let prepared =
            PreparedModel::prepare_with_session(&self.session, model, spec, profile_inputs)
                .map_err(|source| RegistryError::Prepare { name: name.clone(), source })?;
        self.models.push((name, prepared));
        Ok(ModelId(self.models.len() - 1))
    }

    /// Registers an already-prepared model under `name` (e.g. one built
    /// through this registry's [`ModelRegistry::session`] by custom
    /// preparation code).
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateModel`] when `name` is taken.
    pub fn register_prepared(
        &mut self,
        name: impl Into<String>,
        prepared: PreparedModel,
    ) -> Result<ModelId, RegistryError> {
        let name = name.into();
        self.ensure_unique(&name)?;
        self.models.push((name, prepared));
        Ok(ModelId(self.models.len() - 1))
    }

    fn ensure_unique(&self, name: &str) -> Result<(), RegistryError> {
        if self.models.iter().any(|(n, _)| n == name) {
            return Err(RegistryError::DuplicateModel { name: name.to_owned() });
        }
        Ok(())
    }

    /// The model behind an id, when the id is in range.
    pub fn get(&self, id: ModelId) -> Option<&PreparedModel> {
        self.models.get(id.0).map(|(_, m)| m)
    }

    /// The registered name behind an id.
    pub fn name(&self, id: ModelId) -> Option<&str> {
        self.models.get(id.0).map(|(n, _)| n.as_str())
    }

    /// Resolves a registered name back to its id.
    pub fn lookup(&self, name: &str) -> Option<ModelId> {
        self.models.iter().position(|(n, _)| n == name).map(ModelId)
    }

    /// Iterates registered models in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ModelId, &str, &PreparedModel)> {
        self.models.iter().enumerate().map(|(i, (n, m))| (ModelId(i), n.as_str(), m))
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no model has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The shared quantization session (curve, configuration, dictionary
    /// cache, [`report`](QuantSession::report)).
    pub fn session(&self) -> &QuantSession {
        &self.session
    }

    /// The shared dictionary cache's counters: hits recorded after the
    /// first registration are cross-model (or cross-prepare) reuse.
    pub fn cache_stats(&self) -> CacheStats {
        self.session.cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mokey_pipeline::Parallelism;
    use mokey_transformer::{Head, ModelConfig};

    fn config() -> ModelConfig {
        ModelConfig {
            name: "registry-test".into(),
            layers: 1,
            hidden: 32,
            heads: 2,
            ff: 64,
            vocab: 150,
            max_seq: 16,
        }
    }

    fn registry_with(serial: bool) -> ModelRegistry {
        if serial {
            ModelRegistry::with_session(
                QuantSession::builder().parallelism(Parallelism::Serial).build(),
            )
        } else {
            ModelRegistry::new()
        }
    }

    #[test]
    fn register_assigns_dense_ids_and_resolves_names() {
        let mut registry = registry_with(false);
        let spec = QuantizeSpec::weights_only();
        let a = registry.register("a", Model::synthesize(&config(), Head::Span, 3), spec, &[]);
        let b = registry.register("b", Model::synthesize(&config(), Head::Span, 4), spec, &[]);
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(a, ModelId::DEFAULT);
        assert_eq!(b.index(), 1);
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.lookup("b"), Some(b));
        assert_eq!(registry.name(a), Some("a"));
        assert!(registry.get(ModelId(2)).is_none());
        let ids: Vec<_> = registry.iter().map(|(id, name, _)| (id, name.to_owned())).collect();
        assert_eq!(ids, vec![(a, "a".to_owned()), (b, "b".to_owned())]);
    }

    #[test]
    fn duplicate_names_are_a_typed_error_not_a_shadow() {
        let mut registry = registry_with(false);
        let spec = QuantizeSpec::weights_only();
        let first = Model::synthesize(&config(), Head::Classification { classes: 3 }, 5);
        let id = registry.register("head", first, spec, &[]).unwrap();
        let second = Model::synthesize(&config(), Head::Classification { classes: 7 }, 6);
        let err = registry.register("head", second.clone(), spec, &[]).unwrap_err();
        assert_eq!(err, RegistryError::DuplicateModel { name: "head".into() });
        // The original registration is untouched…
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.lookup("head"), Some(id));
        // …and prepared models bounce off the same check.
        let prepared =
            PreparedModel::prepare_with_session(registry.session(), second, spec, &[]).unwrap();
        let err = registry.register_prepared("head", prepared).unwrap_err();
        assert!(matches!(err, RegistryError::DuplicateModel { ref name } if name == "head"));
    }

    #[test]
    fn identical_stats_tensors_hit_the_shared_cache_across_models() {
        let mut registry = registry_with(true);
        let spec = QuantizeSpec::weights_only();
        // Same config + seed, different heads: every encoder/embedding
        // tensor is bit-identical between the two models.
        let sentiment = Model::synthesize(&config(), Head::Classification { classes: 3 }, 9);
        let topic = Model::synthesize(&config(), Head::Classification { classes: 5 }, 9);
        let shared = sentiment.weight_tensors().len() - 1; // all but the head
        let a = registry.register("sentiment", sentiment, spec, &[]).unwrap();
        let after_first = registry.cache_stats();
        assert_eq!(after_first.hits, 0, "first registration has nothing to reuse");
        let b = registry.register("topic", topic, spec, &[]).unwrap();
        let after_second = registry.cache_stats();
        // Every shared-stats dictionary was served from cache, not rebuilt:
        // the dict-build count is what it would be for disjoint models
        // minus one build per shared tensor.
        assert_eq!(after_second.hits, shared, "cross-model dictionary reuse");
        assert_eq!(after_second.misses, after_first.misses + 1, "only the head was rebuilt");
        // The second model's own report shows the reuse too.
        let report = registry.get(b).unwrap().quantization_report();
        assert_eq!(report.dict_cache.hits, shared);
        assert_eq!(report.dict_cache.misses, 1);
        // And the decoded shared weights really are identical bit-for-bit
        // (head.proj is the one tensor the two models legitimately differ
        // on — 3-way vs 5-way logits).
        let wa = &registry.get(a).unwrap().context().weights;
        let wb = &registry.get(b).unwrap().context().weights;
        for (name, m) in wa {
            if name == "head.proj" {
                continue;
            }
            assert_eq!(Some(m), wb.get(name), "decoded weight {name} diverged");
        }
    }

    #[test]
    fn prepare_failure_carries_the_model_name() {
        let mut registry = registry_with(false);
        let model = Model::synthesize(&config(), Head::Span, 11);
        // Activation quantization without profiling inputs is a pipeline
        // error; the registry wraps it with the model's name.
        let err = registry
            .register("broken", model, QuantizeSpec::weights_and_activations(), &[])
            .unwrap_err();
        assert!(matches!(err, RegistryError::Prepare { ref name, .. } if name == "broken"));
        assert!(registry.is_empty());
    }
}
