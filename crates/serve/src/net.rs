//! The TCP serving frontend: a listener + per-connection reader/writer
//! threads translating [wire](crate::wire) frames into engine
//! submissions.
//!
//! ```text
//!  client ──TCP──▶ acceptor thread ──▶ connection thread (reader)
//!                                           │ read_frame → name lookup
//!                                           │ → submit_to /
//!                                           │   submit_generate_to
//!                                           ▼
//!                                      writer thread: wait Tickets,
//!                                      write response/error frames,
//!                                      stream Generated tokens
//! ```
//!
//! Everything is plain `std::net` blocking I/O on scoped threads — no
//! async runtime, consistent with the engine's `std::thread::scope`
//! design. Backpressure propagates naturally: a connection whose
//! requests hit the model's admission quota gets typed error frames,
//! while shared-capacity backpressure blocks that connection's reader
//! (and therefore, via TCP flow control, the client).
//!
//! Shutdown is graceful and structural, mirroring the engine's
//! close-then-drain: when the driver closure returns, the listener stops
//! accepting, open connections are read-shutdown (unblocking parked
//! readers), every in-flight request drains through the still-running
//! workers, the writer threads flush the responses, and only then does
//! the engine close. No accepted request is ever dropped.

use crate::engine::{GenTicket, GenUpdate, ServeConfig, ServeHandle, Ticket};
use crate::metrics::ServeReport;
use crate::registry::{ModelId, ModelRegistry};
use crate::serve_registry;
use crate::wire::{
    read_frame, write_frame, Frame, GenSummary, ReadFrameError, WireError, WireErrorCode,
    CORR_CONNECTION, DEFAULT_MAX_FRAME_BYTES,
};
use std::collections::HashMap;
use std::io::{self, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

/// Frontend sizing: where to listen and how defensive to be.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Listen address; port 0 picks a free port (read the bound address
    /// back from [`NetHandle::addr`]).
    pub addr: String,
    /// Largest frame either direction may carry; an oversized length
    /// prefix is rejected before allocation.
    pub max_frame_bytes: usize,
    /// Per-connection write timeout (`None` = block indefinitely). A
    /// client that stops reading its responses eventually errors its
    /// writer instead of wedging shutdown.
    pub write_timeout: Option<Duration>,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// The driver's view of a running network frontend.
pub struct NetHandle<'a, 'e> {
    addr: SocketAddr,
    engine: &'a ServeHandle<'e>,
    accepted: &'a AtomicU64,
}

impl<'e> NetHandle<'_, 'e> {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The in-process engine handle — local submissions and live metrics
    /// work alongside socket traffic.
    pub fn engine(&self) -> &ServeHandle<'e> {
        self.engine
    }

    /// Connections accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }
}

/// What one request's journey through a connection produced: either a
/// claim on a future engine response or an immediate typed rejection.
/// The writer thread serializes these in submission order per
/// connection.
enum Outcome {
    Pending(u64, Ticket),
    /// A generation's token stream: the writer drains the ticket into
    /// one `Generated` frame per token plus the closing summary frame.
    /// Replies queued behind a streaming generation wait for it — a
    /// connection's responses are strictly ordered.
    PendingGen(u64, GenTicket),
    Reject(u64, WireErrorCode, String),
}

/// Runs the multi-model engine with a TCP frontend for the lifetime of
/// the driver closure `f`.
///
/// Clients address models by their registered *name* (resolved to
/// [`ModelId`]s at the boundary, so wire traffic can never alias across
/// registries). When `f` returns, the frontend shuts down gracefully:
/// listener closed, open connections read-shutdown, accepted requests
/// drained and their responses flushed, then the engine itself drains.
///
/// # Errors
///
/// Returns the bind/listen failure. Per-connection I/O errors never
/// fail the server; they end that connection.
///
/// # Example
///
/// ```
/// use mokey_serve::{serve_net, ModelRegistry, NetClient, NetConfig, ServeConfig, ServerReply};
/// use mokey_transformer::{Head, Model, ModelConfig, QuantizeSpec};
///
/// let config = ModelConfig::bert_base().scaled(16, 16);
/// let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 1);
/// let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(12, s)).collect();
/// let mut registry = ModelRegistry::new();
/// registry
///     .register("classify", model, QuantizeSpec::weights_and_activations(), &profile)
///     .unwrap();
/// let tokens = registry.iter().next().unwrap().2.model().random_tokens(12, 9);
/// let (reply, report) = serve_net(
///     &registry,
///     ServeConfig::default(),
///     NetConfig::default(),
///     |net| {
///         let mut client = NetClient::connect(&net.addr().to_string()).unwrap();
///         client.call(1, "classify", &tokens).unwrap()
///     },
/// )
/// .unwrap();
/// assert!(matches!(reply, ServerReply::Response { .. }));
/// assert_eq!(report.aggregate.completed, 1);
/// ```
pub fn serve_net<R, F>(
    registry: &ModelRegistry,
    config: ServeConfig,
    net: NetConfig,
    f: F,
) -> io::Result<(R, ServeReport)>
where
    F: FnOnce(&NetHandle<'_, '_>) -> R,
{
    let listener = TcpListener::bind(&net.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let names: HashMap<String, ModelId> =
        registry.iter().map(|(id, name, _)| (name.to_owned(), id)).collect();
    let shutdown = AtomicBool::new(false);
    let accepted = AtomicU64::new(0);

    Ok(serve_registry(registry, config, |handle| {
        // Clones of every accepted socket, so shutdown can unblock
        // readers parked in `read` via `Shutdown::Read`.
        let conns: Mutex<Vec<TcpStream>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            let acceptor = scope.spawn(|| {
                while !shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let _ = stream.set_nodelay(true);
                            let _ = stream.set_write_timeout(net.write_timeout);
                            accepted.fetch_add(1, Ordering::Relaxed);
                            if let Ok(clone) = stream.try_clone() {
                                conns.lock().expect("conn list poisoned").push(clone);
                            }
                            let names = &names;
                            let max = net.max_frame_bytes;
                            scope.spawn(move || serve_connection(stream, handle, names, max));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            });

            // Graceful drain: stop accepting first (joining the acceptor
            // closes the race where a just-accepted socket misses the
            // shutdown), then unblock every parked reader. Connection
            // threads finish their in-flight requests and flush before
            // the scope joins them; only after that does the engine's
            // own close-then-drain run. The sequence lives in a drop
            // guard so a panicking driver closure still runs it — the
            // scope would otherwise wait forever on the polling
            // acceptor.
            struct DrainOnDrop<'s, 'a> {
                shutdown: &'a AtomicBool,
                conns: &'a Mutex<Vec<TcpStream>>,
                acceptor: Option<std::thread::ScopedJoinHandle<'s, ()>>,
            }
            impl Drop for DrainOnDrop<'_, '_> {
                fn drop(&mut self) {
                    self.shutdown.store(true, Ordering::SeqCst);
                    if let Some(acceptor) = self.acceptor.take() {
                        let _ = acceptor.join();
                    }
                    if let Ok(mut conns) = self.conns.lock() {
                        for conn in conns.drain(..) {
                            let _ = conn.shutdown(Shutdown::Read);
                        }
                    }
                }
            }
            let _drain =
                DrainOnDrop { shutdown: &shutdown, conns: &conns, acceptor: Some(acceptor) };
            f(&NetHandle { addr, engine: handle, accepted: &accepted })
        })
    }))
}

/// One connection's lifetime: this thread reads and routes frames, a
/// sibling writer thread waits tickets and writes replies, so a slow
/// model never stops the connection from accepting pipelined requests.
fn serve_connection(
    mut stream: TcpStream,
    engine: &ServeHandle<'_>,
    names: &HashMap<String, ModelId>,
    max_frame_bytes: usize,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<Outcome>();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut w = BufWriter::new(write_half);
            let mut client_gone = false;
            let emit = |w: &mut BufWriter<TcpStream>, gone: &mut bool, frame: &Frame| {
                if !*gone && write_frame(w, frame, max_frame_bytes).is_err() {
                    *gone = true;
                }
            };
            while let Ok(outcome) = rx.recv() {
                // A vanished client stops the writing but never the
                // waiting: every accepted ticket is still claimed (and
                // every generation stream drained), so the engine's
                // drain accounting stays exact.
                match outcome {
                    Outcome::Pending(corr, ticket) => {
                        let frame = Frame::from_response(corr, ticket.wait());
                        emit(&mut w, &mut client_gone, &frame);
                    }
                    Outcome::PendingGen(corr, ticket) => loop {
                        match ticket.next() {
                            GenUpdate::Token { index, token } => {
                                let frame = Frame::Generated {
                                    corr,
                                    index: index as u32,
                                    token: token as u32,
                                    summary: None,
                                };
                                emit(&mut w, &mut client_gone, &frame);
                            }
                            GenUpdate::Done(response) => {
                                let frame = Frame::Generated {
                                    corr,
                                    index: response.tokens.len() as u32,
                                    token: 0,
                                    summary: Some(GenSummary::from_response(&response)),
                                };
                                emit(&mut w, &mut client_gone, &frame);
                                break;
                            }
                        }
                    },
                    Outcome::Reject(corr, code, message) => {
                        let frame = Frame::Error { corr, code, message };
                        emit(&mut w, &mut client_gone, &frame);
                    }
                }
            }
        });

        loop {
            match read_frame(&mut stream, max_frame_bytes) {
                Ok(Some(Frame::Request { corr, model, tokens })) => {
                    let outcome = match names.get(&model) {
                        Some(&id) => match engine.submit_to(id, tokens) {
                            Ok(ticket) => Outcome::Pending(corr, ticket),
                            Err(err) => Outcome::Reject(
                                corr,
                                WireErrorCode::from_submit_error(&err),
                                err.to_string(),
                            ),
                        },
                        None => Outcome::Reject(
                            corr,
                            WireErrorCode::UnknownModel,
                            format!("no model registered as {model:?}"),
                        ),
                    };
                    if tx.send(outcome).is_err() {
                        break;
                    }
                }
                Ok(Some(Frame::Generate { corr, model, prompt, max_tokens, eos })) => {
                    let outcome = match names.get(&model) {
                        Some(&id) => match engine.submit_generate_to(
                            id,
                            prompt,
                            max_tokens as usize,
                            eos.map(|t| t as usize),
                        ) {
                            Ok(ticket) => Outcome::PendingGen(corr, ticket),
                            Err(err) => Outcome::Reject(
                                corr,
                                WireErrorCode::from_submit_error(&err),
                                err.to_string(),
                            ),
                        },
                        None => Outcome::Reject(
                            corr,
                            WireErrorCode::UnknownModel,
                            format!("no model registered as {model:?}"),
                        ),
                    };
                    if tx.send(outcome).is_err() {
                        break;
                    }
                }
                Ok(Some(_)) => {
                    // Response/error/generated frames only flow server →
                    // client.
                    let _ = tx.send(Outcome::Reject(
                        CORR_CONNECTION,
                        WireErrorCode::MalformedFrame,
                        "clients may only send request frames".into(),
                    ));
                    break;
                }
                Ok(None) => break, // clean hangup at a frame boundary
                Err(ReadFrameError::Wire(WireError::UnsupportedTag { tag })) => {
                    // A well-framed payload with a tag we don't serve:
                    // answer with the dedicated kind error, not a
                    // generic malformed complaint, so newer clients can
                    // tell "old server" from "corrupt stream".
                    let _ = tx.send(Outcome::Reject(
                        CORR_CONNECTION,
                        WireErrorCode::UnsupportedKind,
                        format!("unsupported frame tag 0x{tag:02x}"),
                    ));
                    break;
                }
                Err(ReadFrameError::Wire(WireError::FrameTooLarge { declared, max })) => {
                    let _ = tx.send(Outcome::Reject(
                        CORR_CONNECTION,
                        WireErrorCode::FrameTooLarge,
                        format!("frame of {declared} bytes exceeds the {max}-byte maximum"),
                    ));
                    break;
                }
                Err(ReadFrameError::Wire(e)) => {
                    let _ = tx.send(Outcome::Reject(
                        CORR_CONNECTION,
                        WireErrorCode::MalformedFrame,
                        e.to_string(),
                    ));
                    break;
                }
                Err(ReadFrameError::Io(_)) => break,
            }
        }
        // Dropping the sender lets the writer drain its backlog and
        // exit; the scope joins it, so the connection never outlives its
        // in-flight responses.
        drop(tx);
    });
    // The shutdown list still holds a clone of this socket, so dropping
    // our handles alone would not send FIN; shut the socket down
    // explicitly (after the writer flushed) so the peer sees a clean
    // EOF.
    let _ = stream.shutdown(Shutdown::Both);
}
