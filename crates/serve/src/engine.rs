//! The serving engine: submission queue → dynamic batcher → scoped
//! worker pool.
//!
//! ```text
//!  clients                    engine (std::thread::scope)
//!  ───────                    ─────────────────────────────────────────
//!  submit()/try_submit() ──▶  BoundedQueue (capacity, backpressure)
//!        │                         │ pop_batch(max_batch, max_wait)
//!        ▼                         ▼
//!     Ticket ◀── mpsc ──  worker: PreparedModel::infer_batch
//!        wait()                    │ one QuantizedExecutor per batch
//!                                  ▼
//!                               Metrics (latency histogram, batches,
//!                               queue depth, values/sec)
//! ```
//!
//! Everything is in-process and synchronous: [`serve`] owns the worker
//! threads inside a `std::thread::scope`, so shutdown is structural —
//! when the driver closure returns, the queue closes, workers drain the
//! accepted backlog, and the scope joins them before [`serve`] returns.
//! No accepted request is ever dropped.

use crate::metrics::{Metrics, MetricsReport};
use crate::prepared::PreparedModel;
use crate::queue::{BoundedQueue, PushError};
use mokey_transformer::exec::QuantizedStats;
use mokey_transformer::TaskOutput;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Engine sizing: worker pool, batcher, and admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads executing batches (minimum 1).
    pub workers: usize,
    /// Largest batch the dynamic batcher coalesces.
    pub max_batch: usize,
    /// How long an underfull batch waits for stragglers.
    pub max_wait: Duration,
    /// Submission-queue capacity (admission control / backpressure
    /// threshold).
    pub queue_capacity: usize,
    /// Width of the length buckets the batcher groups by: requests whose
    /// token counts fall in the same `length_bucket`-wide band coalesce
    /// into one batch, so the executor can pack them into a single
    /// seq×batch GEMM with bounded padding. `0` disables bucketing
    /// (batches form FIFO regardless of length).
    pub length_bucket: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            queue_capacity: 128,
            length_bucket: 8,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity (only `try_submit`; `submit` blocks
    /// instead).
    QueueFull,
    /// The engine is shutting down.
    ShuttingDown,
    /// The request carries no tokens (a forward pass needs at least the
    /// CLS position).
    EmptySequence,
    /// The request exceeds the model's maximum sequence length.
    SequenceTooLong {
        /// Submitted sequence length.
        len: usize,
        /// The model's limit.
        max_seq: usize,
    },
    /// The request contains an out-of-vocabulary token.
    TokenOutOfVocab {
        /// The offending token id.
        token: usize,
        /// The model's vocabulary size.
        vocab: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "submission queue is at capacity"),
            SubmitError::ShuttingDown => write!(f, "serving engine is shutting down"),
            SubmitError::EmptySequence => write!(f, "request carries no tokens"),
            SubmitError::SequenceTooLong { len, max_seq } => {
                write!(f, "sequence of {len} tokens exceeds the model maximum of {max_seq}")
            }
            SubmitError::TokenOutOfVocab { token, vocab } => {
                write!(f, "token {token} is outside the vocabulary of {vocab}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// One answered request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The id [`ServeHandle::submit`] assigned.
    pub id: u64,
    /// The task-head output.
    pub output: TaskOutput,
    /// This request's activation-encoding counters.
    pub stats: QuantizedStats,
    /// How many requests shared the batch.
    pub batch_size: usize,
    /// Submission → batch-formed wait.
    pub queue_wait: Duration,
    /// Submission → response latency.
    pub latency: Duration,
}

/// A claim on a future [`Response`].
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// The id the engine assigned to this request.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives. Accepted requests are always
    /// answered — shutdown drains the queue.
    pub fn wait(self) -> Response {
        self.rx.recv().expect("serving engine dropped an accepted request")
    }
}

struct Request {
    id: u64,
    tokens: Vec<usize>,
    accepted_at: Instant,
    tx: mpsc::Sender<Response>,
}

struct Shared<'m> {
    model: &'m PreparedModel,
    config: ServeConfig,
    queue: BoundedQueue<Request>,
    metrics: Metrics,
    next_id: AtomicU64,
}

/// The client face of a running engine: submit requests, read live
/// metrics. `Sync`, so one handle can drive many client threads.
pub struct ServeHandle<'e> {
    shared: &'e Shared<'e>,
}

impl ServeHandle<'_> {
    fn admit(&self, tokens: &[usize]) -> Result<(), SubmitError> {
        if tokens.is_empty() {
            self.shared.metrics.note_rejected_invalid();
            return Err(SubmitError::EmptySequence);
        }
        let max_seq = self.shared.model.max_seq();
        if tokens.len() > max_seq {
            self.shared.metrics.note_rejected_invalid();
            return Err(SubmitError::SequenceTooLong { len: tokens.len(), max_seq });
        }
        let vocab = self.shared.model.vocab();
        if let Some(&token) = tokens.iter().find(|&&t| t >= vocab) {
            self.shared.metrics.note_rejected_invalid();
            return Err(SubmitError::TokenOutOfVocab { token, vocab });
        }
        Ok(())
    }

    fn request(&self, tokens: Vec<usize>) -> (Request, Ticket) {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        (Request { id, tokens, accepted_at: Instant::now(), tx }, Ticket { id, rx })
    }

    /// Submits a request, blocking while the queue is at capacity
    /// (backpressure).
    ///
    /// # Errors
    ///
    /// Validation failures ([`SubmitError::SequenceTooLong`] /
    /// [`SubmitError::TokenOutOfVocab`]) or
    /// [`SubmitError::ShuttingDown`].
    pub fn submit(&self, tokens: Vec<usize>) -> Result<Ticket, SubmitError> {
        self.admit(&tokens)?;
        let (request, ticket) = self.request(tokens);
        match self.shared.queue.push_blocking(request) {
            Ok(_) => {
                self.shared.metrics.note_submitted();
                Ok(ticket)
            }
            // `push_blocking` only fails on a closed queue.
            Err(_) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Submits a request without blocking (admission control).
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] at capacity, plus everything
    /// [`ServeHandle::submit`] can return.
    pub fn try_submit(&self, tokens: Vec<usize>) -> Result<Ticket, SubmitError> {
        self.admit(&tokens)?;
        let (request, ticket) = self.request(tokens);
        match self.shared.queue.try_push(request) {
            Ok(_) => {
                self.shared.metrics.note_submitted();
                Ok(ticket)
            }
            Err(PushError::Full(_)) => {
                self.shared.metrics.note_rejected_full();
                Err(SubmitError::QueueFull)
            }
            Err(PushError::Closed(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Current submission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Live metrics snapshot.
    pub fn metrics(&self) -> MetricsReport {
        self.shared.metrics.snapshot(self.shared.queue.peak_depth())
    }
}

fn worker_loop(shared: &Shared<'_>) {
    let bucket = shared.config.length_bucket;
    let key = |r: &Request| r.tokens.len().checked_div(bucket).unwrap_or(0);
    while let Some(batch) =
        shared.queue.pop_batch_grouped(shared.config.max_batch, shared.config.max_wait, key)
    {
        if batch.is_empty() {
            continue;
        }
        let formed_at = Instant::now();
        shared.metrics.note_batch(batch.len());
        let batch_size = batch.len();
        let (requests, tokens): (Vec<_>, Vec<_>) =
            batch.into_iter().map(|r| ((r.id, r.accepted_at, r.tx), r.tokens)).unzip();
        let run = shared.model.infer_batch(&tokens);
        shared.metrics.note_packing(&run.packing);
        for ((id, accepted_at, tx), (output, stats)) in requests.into_iter().zip(run.results) {
            let queue_wait = formed_at.duration_since(accepted_at);
            let latency = accepted_at.elapsed();
            shared.metrics.note_completed(latency, queue_wait, &stats);
            // A client that dropped its ticket just doesn't read the
            // response; the request still counts as served.
            let _ = tx.send(Response { id, output, stats, batch_size, queue_wait, latency });
        }
    }
}

/// Runs a serving engine around `model` for the lifetime of the driver
/// closure `f`.
///
/// Workers start before `f` runs and keep serving while it executes;
/// when `f` returns, the queue closes (new submissions fail with
/// [`SubmitError::ShuttingDown`]), the workers drain every accepted
/// request, and the scope joins them. Returns the closure's result and
/// the final metrics.
///
/// # Example
///
/// ```
/// use mokey_serve::{serve, PreparedModel, ServeConfig};
/// use mokey_transformer::{Head, Model, ModelConfig, QuantizeSpec};
///
/// let config = ModelConfig::bert_base().scaled(16, 16);
/// let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 1);
/// let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(12, s)).collect();
/// let prepared =
///     PreparedModel::prepare(model, QuantizeSpec::weights_and_activations(), &profile).unwrap();
/// let (outputs, report) = serve(&prepared, ServeConfig::default(), |handle| {
///     let tickets: Vec<_> = (0..4)
///         .map(|s| handle.submit(prepared.model().random_tokens(12, s)).unwrap())
///         .collect();
///     tickets.into_iter().map(|t| t.wait().output).collect::<Vec<_>>()
/// });
/// assert_eq!(outputs.len(), 4);
/// assert_eq!(report.completed, 4);
/// ```
pub fn serve<R, F>(model: &PreparedModel, config: ServeConfig, f: F) -> (R, MetricsReport)
where
    F: FnOnce(&ServeHandle<'_>) -> R,
{
    let config = ServeConfig { workers: config.workers.max(1), ..config };
    let shared = Shared {
        model,
        config,
        queue: BoundedQueue::new(config.queue_capacity),
        metrics: Metrics::new(),
        next_id: AtomicU64::new(0),
    };
    /// Closes the queue when dropped — including during unwinding, so a
    /// panicking driver closure can't leave workers parked on the
    /// condvar while the scope waits to join them.
    struct CloseOnDrop<'a>(&'a BoundedQueue<Request>);
    impl Drop for CloseOnDrop<'_> {
        fn drop(&mut self) {
            self.0.close();
        }
    }

    let out = std::thread::scope(|scope| {
        for _ in 0..config.workers {
            scope.spawn(|| worker_loop(&shared));
        }
        // Structural shutdown: when the driver returns (or panics), the
        // guard stops admissions, workers drain the backlog, and the
        // scope joins them.
        let _shutdown = CloseOnDrop(&shared.queue);
        let handle = ServeHandle { shared: &shared };
        f(&handle)
    });
    let report = shared.metrics.snapshot(shared.queue.peak_depth());
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mokey_pipeline::QuantizeSpec;
    use mokey_transformer::{Head, Model, ModelConfig};

    fn prepared() -> PreparedModel {
        let config = ModelConfig {
            name: "engine-test".into(),
            layers: 1,
            hidden: 32,
            heads: 2,
            ff: 64,
            vocab: 150,
            max_seq: 16,
        };
        let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 13);
        let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(10, 30 + s)).collect();
        PreparedModel::prepare(model, QuantizeSpec::weights_and_activations(), &profile)
            .expect("non-degenerate model")
    }

    #[test]
    fn serves_requests_and_reports_metrics() {
        let p = prepared();
        let config = ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::from_millis(2),
            queue_capacity: 16,
            ..ServeConfig::default()
        };
        let inputs: Vec<Vec<usize>> = (0..10).map(|s| p.model().random_tokens(10, s)).collect();
        let (responses, report) = serve(&p, config, |handle| {
            let tickets: Vec<_> =
                inputs.iter().map(|t| handle.submit(t.clone()).unwrap()).collect();
            tickets.into_iter().map(Ticket::wait).collect::<Vec<_>>()
        });
        assert_eq!(responses.len(), 10);
        for (tokens, response) in inputs.iter().zip(&responses) {
            assert_eq!(response.output, p.infer(tokens).0, "engine output diverged");
            assert!(response.batch_size >= 1);
            assert!(response.latency >= response.queue_wait);
        }
        assert_eq!(report.submitted, 10);
        assert_eq!(report.completed, 10);
        assert!(report.batches_formed >= 1);
        assert!(report.act_values > 0);
    }

    #[test]
    fn invalid_requests_are_rejected_at_admission() {
        let p = prepared();
        let ((), report) = serve(&p, ServeConfig::default(), |handle| {
            let too_long = vec![1usize; p.max_seq() + 1];
            assert_eq!(
                handle.submit(too_long).unwrap_err(),
                SubmitError::SequenceTooLong { len: p.max_seq() + 1, max_seq: p.max_seq() }
            );
            let oov = vec![p.vocab() + 5];
            assert_eq!(
                handle.submit(oov).unwrap_err(),
                SubmitError::TokenOutOfVocab { token: p.vocab() + 5, vocab: p.vocab() }
            );
        });
        assert_eq!(report.submitted, 0);
        assert_eq!(report.rejected_invalid, 2);
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let p = prepared();
        let (ids, _) = serve(&p, ServeConfig::default(), |handle| {
            (0..5)
                .map(|s| handle.submit(p.model().random_tokens(8, s)).unwrap().id())
                .collect::<Vec<_>>()
        });
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn panicking_driver_closes_the_engine_instead_of_deadlocking() {
        let p = prepared();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve(&p, ServeConfig::default(), |handle| {
                let _ = handle.submit(p.model().random_tokens(8, 1)).unwrap();
                panic!("driver failed");
            })
        }));
        // Without the close-on-drop guard the workers would wait on the
        // queue forever and this join would hang; with it the panic
        // propagates after the backlog drains.
        assert!(result.is_err());
    }

    #[test]
    fn max_batch_one_forms_singleton_batches() {
        let p = prepared();
        let config = ServeConfig {
            workers: 2,
            max_batch: 1,
            max_wait: Duration::from_millis(5),
            queue_capacity: 16,
            ..ServeConfig::default()
        };
        let ((), report) = serve(&p, config, |handle| {
            let tickets: Vec<_> = (0..6)
                .map(|s| handle.submit(p.model().random_tokens(10, 100 + s)).unwrap())
                .collect();
            for t in tickets {
                assert_eq!(t.wait().batch_size, 1);
            }
        });
        assert_eq!(report.batches_formed, 6);
        assert_eq!(report.max_batch_size, 1);
        assert!((report.mean_batch_size - 1.0).abs() < 1e-9);
    }
}
