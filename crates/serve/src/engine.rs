//! The serving engine: tagged submission queue → dynamic batcher →
//! scoped worker pool, shared by every registered model.
//!
//! ```text
//!  clients                      engine (std::thread::scope)
//!  ───────                      ─────────────────────────────────────────
//!  submit_to(model, …) ──▶      TaggedQueue<ModelId, Request>
//!  submit(…) = model #0              │ one global FIFO, capacity-bounded
//!        │                          │ pop_batch_grouped: leader = oldest
//!        ▼                          │ request, batch = same
//!     Ticket ◀── mpsc ──  worker:   ▼ (model, length-bucket) only
//!        wait()           any worker runs any model's batch through
//!                         that model's PreparedModel::infer_batch
//!                                   │
//!                                   ▼
//!                         Metrics (per-model + aggregate: latency
//!                         histograms, batches, queue depth, values/sec)
//! ```
//!
//! Everything is in-process and synchronous: [`serve`] /
//! [`serve_registry`] own the worker threads inside a
//! `std::thread::scope`, so shutdown is structural — when the driver
//! closure returns, the queue closes, workers drain the accepted
//! backlog, and the scope joins them before returning. No accepted
//! request is ever dropped.
//!
//! Batches never mix models: the batcher coalesces only requests for the
//! leader's `(model, length-bucket)` pair, and because the leader is the
//! *globally* oldest request, a lightly-loaded model is never starved by
//! a heavily-loaded one.
//!
//! Besides one-shot encoder requests, the engine serves **generations**
//! ([`ServeHandle::submit_generate`]): autoregressive greedy decode over
//! a quantized KV-cache ([`DecodeSession`]). A generation does not camp
//! on a worker until it finishes — each service slice advances it one
//! token and then *re-enqueues* it, so in-flight generations interleave
//! with one-shot traffic and with each other at token granularity.
//! Decode slices batch generations for the same model together but never
//! mix with one-shot batches. If a finished step cannot re-enter the
//! queue (capacity, quota, or shutdown), the worker finishes that
//! generation inline — an accepted generation, like any accepted
//! request, is never dropped.

use crate::metrics::{Metrics, MetricsReport, ServeReport};
use crate::prepared::PreparedModel;
use crate::queue::{PushError, TaggedQueue};
use crate::registry::{next_registry_nonce, ModelId, ModelRegistry, ModelServeConfig};
use mokey_transformer::exec::QuantizedStats;
use mokey_transformer::{DecodeSession, ExecMode, TaskOutput};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Engine sizing: worker pool, batcher, and admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads executing batches (minimum 1). Workers are not
    /// pinned to models: any worker executes any model's batch.
    pub workers: usize,
    /// Largest batch the dynamic batcher coalesces.
    pub max_batch: usize,
    /// How long an underfull batch waits for stragglers.
    pub max_wait: Duration,
    /// Submission-queue capacity, shared across all models (admission
    /// control / backpressure threshold).
    pub queue_capacity: usize,
    /// Width of the length buckets the batcher groups by: requests whose
    /// token counts fall in the same `length_bucket`-wide band coalesce
    /// into one batch, so the executor can pack them into a single
    /// seq×batch GEMM with bounded padding. `0` disables bucketing
    /// (batches form FIFO regardless of length). Batches additionally
    /// never mix models, whatever this is set to.
    pub length_bucket: usize,
    /// How workers evaluate the projection/FFN GEMMs:
    /// [`ExecMode::Decoded`] (dense float GEMMs over decoded centroids,
    /// the default) or [`ExecMode::IndexDomain`] (LUT GEMMs over retained
    /// codes — bit-identical responses, typically faster). Per-model
    /// overrides via
    /// [`ModelServeConfig::mode`](crate::ModelServeConfig::mode).
    pub mode: ExecMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            queue_capacity: 128,
            length_bucket: 8,
            mode: ExecMode::Decoded,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity (only `try_submit`; `submit` blocks
    /// instead).
    QueueFull,
    /// The engine is shutting down.
    ShuttingDown,
    /// The target [`ModelId`] is not registered with this engine —
    /// either its slot is out of range or the id was minted by a
    /// *different* registry (ids carry registry identity and never alias
    /// across registries).
    UnknownModel {
        /// The id that failed to resolve.
        model: ModelId,
    },
    /// The target model is at its admission quota
    /// ([`ModelServeConfig::queue_quota`](crate::ModelServeConfig)): it
    /// already occupies its full share of the submission queue, so this
    /// request is shed instead of letting one model starve the others of
    /// queue space. Returned by blocking and non-blocking submission
    /// alike — quota rejection never blocks.
    ModelQuotaExceeded {
        /// The model at quota.
        model: ModelId,
        /// Its configured quota.
        quota: usize,
    },
    /// The request carries no tokens (a forward pass needs at least the
    /// CLS position).
    EmptySequence,
    /// The request exceeds the target model's maximum sequence length.
    SequenceTooLong {
        /// Submitted sequence length.
        len: usize,
        /// The model's limit.
        max_seq: usize,
    },
    /// The request contains a token outside the target model's
    /// vocabulary.
    TokenOutOfVocab {
        /// The offending token id.
        token: usize,
        /// The model's vocabulary size.
        vocab: usize,
    },
    /// A generation was submitted to a model prepared without activation
    /// quantization: the KV-cache stores activation *codes*, so decode
    /// requires K/V dictionaries.
    DecodeUnsupported {
        /// The model that cannot decode.
        model: ModelId,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "submission queue is at capacity"),
            SubmitError::ShuttingDown => write!(f, "serving engine is shutting down"),
            SubmitError::UnknownModel { model } => {
                write!(f, "{model} is not registered with this engine")
            }
            SubmitError::ModelQuotaExceeded { model, quota } => {
                write!(f, "{model} is at its admission quota of {quota} queued requests")
            }
            SubmitError::EmptySequence => write!(f, "request carries no tokens"),
            SubmitError::SequenceTooLong { len, max_seq } => {
                write!(f, "sequence of {len} tokens exceeds the model maximum of {max_seq}")
            }
            SubmitError::TokenOutOfVocab { token, vocab } => {
                write!(f, "token {token} is outside the vocabulary of {vocab}")
            }
            SubmitError::DecodeUnsupported { model } => {
                write!(f, "{model} was prepared without activation quantization; decode needs K/V dictionaries")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// One answered request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The id [`ServeHandle::submit`] assigned.
    pub id: u64,
    /// The model that served this request.
    pub model: ModelId,
    /// The task-head output.
    pub output: TaskOutput,
    /// This request's activation-encoding counters.
    pub stats: QuantizedStats,
    /// How many requests shared the batch.
    pub batch_size: usize,
    /// Submission → batch-formed wait.
    pub queue_wait: Duration,
    /// Submission → response latency.
    pub latency: Duration,
}

/// A claim on a future [`Response`].
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// The id the engine assigned to this request.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives. Accepted requests are always
    /// answered — shutdown drains the queue.
    pub fn wait(self) -> Response {
        self.rx.recv().expect("serving engine dropped an accepted request")
    }
}

/// One finished generation.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateResponse {
    /// The id [`ServeHandle::submit_generate`] assigned.
    pub id: u64,
    /// The model that served this generation.
    pub model: ModelId,
    /// Every greedily sampled token, in order (includes the EOS token
    /// when generation stopped on it).
    pub tokens: Vec<usize>,
    /// Queue passes this generation consumed (prefill slice plus one per
    /// re-entry). Less than `tokens.len()` when a failed re-enqueue made
    /// a worker finish the tail inline.
    pub steps: usize,
    /// Merged activation-encoding counters (prefill + every step).
    pub stats: QuantizedStats,
    /// Submission → first service slice.
    pub queue_wait: Duration,
    /// Submission → final token.
    pub latency: Duration,
}

/// One event on a generation stream.
#[derive(Debug, Clone, PartialEq)]
pub enum GenUpdate {
    /// A token was sampled (`index` counts from 0).
    Token {
        /// Position of this token within the generation.
        index: usize,
        /// The sampled token id.
        token: usize,
    },
    /// The generation finished; no further updates follow.
    Done(GenerateResponse),
}

/// A claim on a generation's token stream.
#[derive(Debug)]
pub struct GenTicket {
    id: u64,
    rx: mpsc::Receiver<GenUpdate>,
}

impl GenTicket {
    /// The id the engine assigned to this generation.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the next update. Tokens arrive in order;
    /// [`GenUpdate::Done`] is always the final update.
    pub fn next(&self) -> GenUpdate {
        self.rx.recv().expect("serving engine dropped an accepted generation")
    }

    /// Blocks until the generation finishes, discarding the per-token
    /// stream (the final response carries every token anyway).
    pub fn wait(self) -> GenerateResponse {
        loop {
            if let GenUpdate::Done(response) = self.next() {
                return response;
            }
        }
    }
}

struct Request {
    id: u64,
    tokens: Vec<usize>,
    accepted_at: Instant,
    tx: mpsc::Sender<Response>,
}

/// Where an in-flight generation is in its lifecycle: accepted but not
/// yet prefilled, or running with a live KV-cache.
enum GenState {
    Pending { prompt: Vec<usize>, max_tokens: usize, eos: Option<usize> },
    Running(DecodeSession),
}

/// One in-flight generation riding the submission queue between steps.
struct GenJob {
    id: u64,
    state: GenState,
    accepted_at: Instant,
    /// When the previous token was sampled (accept time before the
    /// first), anchoring per-token latency.
    last_token_at: Instant,
    /// Set at the first service slice.
    queue_wait: Option<Duration>,
    /// Queue passes so far.
    steps: usize,
    tx: mpsc::Sender<GenUpdate>,
}

/// What the submission queue carries: a one-shot encoder request or an
/// in-flight generation between steps. The batch key separates the two,
/// so batches are always homogeneous.
enum WorkItem {
    OneShot(Request),
    Generate(Box<GenJob>),
}

/// One registered model inside a running engine: the prepared model, its
/// batching policy (per-model overrides already resolved against the
/// engine-global [`ServeConfig`]), and its own metrics scope.
struct ModelSlot<'m> {
    name: &'m str,
    model: &'m PreparedModel,
    /// This model's batch cap ([`ModelServeConfig::max_batch`] or the
    /// engine default).
    max_batch: usize,
    /// This model's length-bucket width ([`ModelServeConfig::length_bucket`]
    /// or the engine default).
    length_bucket: usize,
    /// This model's admission quota, if capped.
    queue_quota: Option<usize>,
    /// This model's execution mode ([`ModelServeConfig::mode`] or the
    /// engine default).
    mode: ExecMode,
    metrics: Metrics,
}

struct Shared<'m> {
    slots: Vec<ModelSlot<'m>>,
    config: ServeConfig,
    /// The registry identity this engine serves: ids resolve against it,
    /// so foreign-registry ids bounce instead of aliasing positionally.
    nonce: u32,
    queue: TaggedQueue<ModelId, WorkItem>,
    /// Aggregate across every model; per-model counters live in the
    /// slots. Every event is recorded into both scopes.
    metrics: Metrics,
    next_id: AtomicU64,
}

/// The client face of a running engine: submit requests (to any
/// registered model), read live metrics. `Sync`, so one handle can drive
/// many client threads.
pub struct ServeHandle<'e> {
    shared: &'e Shared<'e>,
}

impl ServeHandle<'_> {
    /// Resolves a client-supplied id to its canonical engine-scoped form
    /// plus the slot it addresses. The canonical id is what tags the
    /// queue entry, so unscoped ([`ModelId::DEFAULT`]) and
    /// registry-minted submissions to the same model share one quota and
    /// one batching group.
    fn slot(&self, model: ModelId) -> Result<(ModelId, &ModelSlot<'_>), SubmitError> {
        // An unknown id has no metrics scope to account against (and
        // counting it only in the aggregate would break the per-model
        // columns summing to the aggregate), so it is bounced uncounted.
        let resolved =
            model.resolve(self.shared.nonce).ok_or(SubmitError::UnknownModel { model })?;
        let slot =
            self.shared.slots.get(resolved.index()).ok_or(SubmitError::UnknownModel { model })?;
        Ok((resolved, slot))
    }

    fn admit(&self, slot: &ModelSlot<'_>, tokens: &[usize]) -> Result<(), SubmitError> {
        let reject = |err| {
            self.shared.metrics.note_rejected_invalid();
            slot.metrics.note_rejected_invalid();
            Err(err)
        };
        if tokens.is_empty() {
            return reject(SubmitError::EmptySequence);
        }
        let max_seq = slot.model.max_seq();
        if tokens.len() > max_seq {
            return reject(SubmitError::SequenceTooLong { len: tokens.len(), max_seq });
        }
        let vocab = slot.model.vocab();
        if let Some(&token) = tokens.iter().find(|&&t| t >= vocab) {
            return reject(SubmitError::TokenOutOfVocab { token, vocab });
        }
        Ok(())
    }

    fn request(&self, tokens: Vec<usize>) -> (Request, Ticket) {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        (Request { id, tokens, accepted_at: Instant::now(), tx }, Ticket { id, rx })
    }

    fn note_submitted(&self, slot: &ModelSlot<'_>) {
        self.shared.metrics.note_submitted();
        slot.metrics.note_submitted();
    }

    /// Submits a request to the default model ([`ModelId::DEFAULT`] — the
    /// single-model convenience), blocking while the queue is at capacity
    /// (backpressure).
    ///
    /// # Errors
    ///
    /// Everything [`ServeHandle::submit_to`] can return.
    pub fn submit(&self, tokens: Vec<usize>) -> Result<Ticket, SubmitError> {
        self.submit_to(ModelId::DEFAULT, tokens)
    }

    /// Submits a request to the default model without blocking.
    ///
    /// # Errors
    ///
    /// Everything [`ServeHandle::try_submit_to`] can return.
    pub fn try_submit(&self, tokens: Vec<usize>) -> Result<Ticket, SubmitError> {
        self.try_submit_to(ModelId::DEFAULT, tokens)
    }

    fn note_rejected_quota(&self, slot: &ModelSlot<'_>) {
        self.shared.metrics.note_rejected_quota();
        slot.metrics.note_rejected_quota();
    }

    /// Submits a request to a specific registered model, blocking while
    /// the queue is at capacity (backpressure).
    ///
    /// `model` must come from the registry this engine serves — ids carry
    /// their minting registry's identity, so a foreign id bounces with
    /// [`SubmitError::UnknownModel`] instead of aliasing positionally.
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownModel`], validation failures
    /// ([`SubmitError::SequenceTooLong`] /
    /// [`SubmitError::TokenOutOfVocab`] /
    /// [`SubmitError::EmptySequence`]),
    /// [`SubmitError::ModelQuotaExceeded`] when the model is at its
    /// admission quota (quota rejection never blocks — blocking would let
    /// the flooder camp on shared capacity), or
    /// [`SubmitError::ShuttingDown`].
    pub fn submit_to(&self, model: ModelId, tokens: Vec<usize>) -> Result<Ticket, SubmitError> {
        let (model, slot) = self.slot(model)?;
        self.admit(slot, &tokens)?;
        let (request, ticket) = self.request(tokens);
        match self.shared.queue.push_blocking(model, WorkItem::OneShot(request)) {
            Ok(_) => {
                self.note_submitted(slot);
                Ok(ticket)
            }
            Err(PushError::QuotaExceeded(_)) => {
                self.note_rejected_quota(slot);
                Err(SubmitError::ModelQuotaExceeded {
                    model,
                    quota: slot.queue_quota.unwrap_or(0).max(1),
                })
            }
            Err(_) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Submits a request to a specific registered model without blocking
    /// (admission control).
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] at capacity, plus everything
    /// [`ServeHandle::submit_to`] can return.
    pub fn try_submit_to(&self, model: ModelId, tokens: Vec<usize>) -> Result<Ticket, SubmitError> {
        let (model, slot) = self.slot(model)?;
        self.admit(slot, &tokens)?;
        let (request, ticket) = self.request(tokens);
        match self.shared.queue.try_push(model, WorkItem::OneShot(request)) {
            Ok(_) => {
                self.note_submitted(slot);
                Ok(ticket)
            }
            Err(PushError::Full(_)) => {
                self.shared.metrics.note_rejected_full();
                slot.metrics.note_rejected_full();
                Err(SubmitError::QueueFull)
            }
            Err(PushError::QuotaExceeded(_)) => {
                self.note_rejected_quota(slot);
                Err(SubmitError::ModelQuotaExceeded {
                    model,
                    quota: slot.queue_quota.unwrap_or(0).max(1),
                })
            }
            Err(PushError::Closed(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Generation admission: everything one-shot admission checks, plus
    /// the token budget must be non-zero, fit the model's sequence limit
    /// together with the prompt, and the EOS token (if any) must be in
    /// vocabulary. The model must have K/V activation dictionaries.
    fn admit_generate(
        &self,
        slot: &ModelSlot<'_>,
        model: ModelId,
        prompt: &[usize],
        max_tokens: usize,
        eos: Option<usize>,
    ) -> Result<(), SubmitError> {
        let reject = |err| {
            self.shared.metrics.note_rejected_invalid();
            slot.metrics.note_rejected_invalid();
            Err(err)
        };
        if prompt.is_empty() || max_tokens == 0 {
            return reject(SubmitError::EmptySequence);
        }
        let max_seq = slot.model.max_seq();
        if prompt.len() + max_tokens > max_seq {
            return reject(SubmitError::SequenceTooLong {
                len: prompt.len() + max_tokens,
                max_seq,
            });
        }
        let vocab = slot.model.vocab();
        if let Some(&token) = prompt.iter().chain(eos.as_ref()).find(|&&t| t >= vocab) {
            return reject(SubmitError::TokenOutOfVocab { token, vocab });
        }
        if !slot.model.context().act_dicts.contains_key("L0.attn.k") {
            return reject(SubmitError::DecodeUnsupported { model });
        }
        Ok(())
    }

    fn gen_job(
        &self,
        prompt: Vec<usize>,
        max_tokens: usize,
        eos: Option<usize>,
    ) -> (GenJob, GenTicket) {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let accepted_at = Instant::now();
        let job = GenJob {
            id,
            state: GenState::Pending { prompt, max_tokens, eos },
            accepted_at,
            last_token_at: accepted_at,
            queue_wait: None,
            steps: 0,
            tx,
        };
        (job, GenTicket { id, rx })
    }

    /// Submits a generation to the default model, blocking while the
    /// queue is at capacity. The prompt is prefilled once; every
    /// subsequent token is decoded incrementally over the quantized
    /// KV-cache, with the generation re-entering the queue between
    /// tokens so it interleaves with other traffic.
    ///
    /// # Errors
    ///
    /// Everything [`ServeHandle::submit_generate_to`] can return.
    pub fn submit_generate(
        &self,
        prompt: Vec<usize>,
        max_tokens: usize,
        eos: Option<usize>,
    ) -> Result<GenTicket, SubmitError> {
        self.submit_generate_to(ModelId::DEFAULT, prompt, max_tokens, eos)
    }

    /// Submits a generation to a specific registered model, blocking
    /// while the queue is at capacity.
    ///
    /// `max_tokens` bounds the generation (it must be non-zero and
    /// `prompt.len() + max_tokens` must fit the model's `max_seq`);
    /// `eos`, when given, stops it early (the EOS token is included in
    /// the response).
    ///
    /// # Errors
    ///
    /// Everything [`ServeHandle::submit_to`] can return, plus
    /// [`SubmitError::DecodeUnsupported`] for a model prepared without
    /// activation quantization. [`SubmitError::EmptySequence`] also
    /// covers `max_tokens == 0`, and [`SubmitError::SequenceTooLong`]
    /// reports `prompt.len() + max_tokens` against `max_seq`.
    pub fn submit_generate_to(
        &self,
        model: ModelId,
        prompt: Vec<usize>,
        max_tokens: usize,
        eos: Option<usize>,
    ) -> Result<GenTicket, SubmitError> {
        let (model, slot) = self.slot(model)?;
        self.admit_generate(slot, model, &prompt, max_tokens, eos)?;
        let (job, ticket) = self.gen_job(prompt, max_tokens, eos);
        match self.shared.queue.push_blocking(model, WorkItem::Generate(Box::new(job))) {
            Ok(_) => {
                self.note_submitted(slot);
                Ok(ticket)
            }
            Err(PushError::QuotaExceeded(_)) => {
                self.note_rejected_quota(slot);
                Err(SubmitError::ModelQuotaExceeded {
                    model,
                    quota: slot.queue_quota.unwrap_or(0).max(1),
                })
            }
            Err(_) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Submits a generation to a specific registered model without
    /// blocking (admission control).
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] at capacity, plus everything
    /// [`ServeHandle::submit_generate_to`] can return.
    pub fn try_submit_generate_to(
        &self,
        model: ModelId,
        prompt: Vec<usize>,
        max_tokens: usize,
        eos: Option<usize>,
    ) -> Result<GenTicket, SubmitError> {
        let (model, slot) = self.slot(model)?;
        self.admit_generate(slot, model, &prompt, max_tokens, eos)?;
        let (job, ticket) = self.gen_job(prompt, max_tokens, eos);
        match self.shared.queue.try_push(model, WorkItem::Generate(Box::new(job))) {
            Ok(_) => {
                self.note_submitted(slot);
                Ok(ticket)
            }
            Err(PushError::Full(_)) => {
                self.shared.metrics.note_rejected_full();
                slot.metrics.note_rejected_full();
                Err(SubmitError::QueueFull)
            }
            Err(PushError::QuotaExceeded(_)) => {
                self.note_rejected_quota(slot);
                Err(SubmitError::ModelQuotaExceeded {
                    model,
                    quota: slot.queue_quota.unwrap_or(0).max(1),
                })
            }
            Err(PushError::Closed(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Current submission-queue depth (all models).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Number of models this engine serves.
    pub fn model_count(&self) -> usize {
        self.shared.slots.len()
    }

    /// Live aggregate metrics snapshot.
    pub fn metrics(&self) -> MetricsReport {
        self.shared.metrics.snapshot(self.shared.queue.peak_depth())
    }

    /// Live metrics snapshot for one registered model. `None` for
    /// foreign-registry or out-of-range ids.
    pub fn model_metrics(&self, model: ModelId) -> Option<MetricsReport> {
        let (_, slot) = self.slot(model).ok()?;
        Some(slot.metrics.snapshot(self.shared.queue.peak_depth()))
    }

    /// Current submission-queue occupancy of one registered model —
    /// what its admission quota is charged against.
    pub fn model_queue_depth(&self, model: ModelId) -> Option<usize> {
        let (model, _) = self.slot(model).ok()?;
        Some(self.shared.queue.tag_depth(model))
    }
}

fn worker_loop(shared: &Shared<'_>) {
    // Batching policy is the *leader's* model's: its batch cap and its
    // length-bucket width (per-model overrides resolved at startup).
    let max_batch = |model: ModelId| shared.slots[model.index()].max_batch;
    // The key's leading bool splits one-shot requests from generations,
    // so a popped batch is always homogeneous. Decode slices ignore
    // length buckets — every step is one row regardless of the prefix.
    let key = |model: ModelId, item: &WorkItem| {
        let bucket = shared.slots[model.index()].length_bucket;
        match item {
            WorkItem::OneShot(r) => (false, r.tokens.len().checked_div(bucket).unwrap_or(0)),
            WorkItem::Generate(_) => (true, 0),
        }
    };
    while let Some((model, batch)) =
        shared.queue.pop_batch_by(max_batch, shared.config.max_wait, key)
    {
        let slot = &shared.slots[model.index()];
        let formed_at = Instant::now();
        let mut requests = Vec::new();
        let mut jobs = Vec::new();
        for item in batch {
            match item {
                WorkItem::OneShot(r) => requests.push(r),
                WorkItem::Generate(j) => jobs.push(*j),
            }
        }
        if !requests.is_empty() {
            serve_oneshot_batch(shared, model, slot, formed_at, requests);
        }
        if !jobs.is_empty() {
            serve_decode_slice(shared, model, slot, formed_at, jobs);
        }
    }
}

fn serve_oneshot_batch(
    shared: &Shared<'_>,
    model: ModelId,
    slot: &ModelSlot<'_>,
    formed_at: Instant,
    batch: Vec<Request>,
) {
    shared.metrics.note_batch(batch.len());
    slot.metrics.note_batch(batch.len());
    let batch_size = batch.len();
    let (requests, tokens): (Vec<_>, Vec<_>) =
        batch.into_iter().map(|r| ((r.id, r.accepted_at, r.tx), r.tokens)).unzip();
    let run = slot.model.infer_batch_mode(&tokens, slot.mode);
    shared.metrics.note_packing(&run.packing);
    slot.metrics.note_packing(&run.packing);
    for ((id, accepted_at, tx), (output, stats)) in requests.into_iter().zip(run.results) {
        let queue_wait = formed_at.duration_since(accepted_at);
        let latency = accepted_at.elapsed();
        shared.metrics.note_completed(latency, queue_wait, &stats);
        slot.metrics.note_completed(latency, queue_wait, &stats);
        // A client that dropped its ticket just doesn't read the
        // response; the request still counts as served.
        let _ = tx.send(Response { id, model, output, stats, batch_size, queue_wait, latency });
    }
}

/// One decode slice: advance every popped generation a single token,
/// then re-enqueue the unfinished ones so they interleave with other
/// traffic instead of camping on this worker.
fn serve_decode_slice(
    shared: &Shared<'_>,
    model: ModelId,
    slot: &ModelSlot<'_>,
    formed_at: Instant,
    jobs: Vec<GenJob>,
) {
    shared.metrics.note_decode_step();
    slot.metrics.note_decode_step();
    for mut job in jobs {
        job.steps += 1;
        if job.queue_wait.is_none() {
            job.queue_wait = Some(formed_at.duration_since(job.accepted_at));
        }
        if let GenState::Pending { prompt, max_tokens, eos } = &job.state {
            let session = DecodeSession::prefill(
                slot.model.model(),
                slot.model.context(),
                prompt,
                *max_tokens,
                *eos,
                slot.mode,
            );
            job.state = GenState::Running(session);
        }
        if advance_generation(shared, slot, &mut job) {
            finish_generation(shared, model, slot, job);
            continue;
        }
        // Unfinished: back into the queue behind whatever arrived since.
        // If re-entry fails (capacity, quota, shutdown), finish inline —
        // an accepted generation is never dropped, and parking it would
        // deadlock a drain.
        match shared.queue.try_push(model, WorkItem::Generate(Box::new(job))) {
            Ok(_) => {}
            Err(
                PushError::Full(item) | PushError::QuotaExceeded(item) | PushError::Closed(item),
            ) => {
                let WorkItem::Generate(boxed) = item else { unreachable!() };
                let mut job = *boxed;
                while !advance_generation(shared, slot, &mut job) {}
                finish_generation(shared, model, slot, job);
            }
        }
    }
}

/// Samples one token, streams it, and records per-token metrics.
/// Returns whether the generation just finished.
fn advance_generation(shared: &Shared<'_>, slot: &ModelSlot<'_>, job: &mut GenJob) -> bool {
    let GenState::Running(session) = &mut job.state else {
        unreachable!("generation advanced before prefill")
    };
    let token = session.step(slot.model.model(), slot.model.context());
    let index = session.generated().len() - 1;
    let now = Instant::now();
    let inter_token = now.duration_since(job.last_token_at);
    job.last_token_at = now;
    shared.metrics.note_generated(inter_token);
    slot.metrics.note_generated(inter_token);
    // A client that dropped its ticket just doesn't read the stream.
    let _ = job.tx.send(GenUpdate::Token { index, token });
    session.is_done()
}

fn finish_generation(shared: &Shared<'_>, model: ModelId, slot: &ModelSlot<'_>, job: GenJob) {
    let GenState::Running(session) = job.state else {
        unreachable!("generation finished before prefill")
    };
    let stats = session.stats();
    let result = session.into_result();
    let queue_wait = job.queue_wait.unwrap_or_default();
    let latency = job.accepted_at.elapsed();
    shared.metrics.note_completed(latency, queue_wait, &stats);
    slot.metrics.note_completed(latency, queue_wait, &stats);
    let _ = job.tx.send(GenUpdate::Done(GenerateResponse {
        id: job.id,
        model,
        tokens: result.tokens,
        steps: job.steps,
        stats,
        queue_wait,
        latency,
    }));
}

/// The engine core shared by [`serve`] and [`serve_registry`]: spins up
/// the worker pool over the given model slots, runs the driver, drains,
/// and snapshots every metrics scope.
fn run_engine<'m, R, F>(
    models: Vec<(&'m str, &'m PreparedModel, ModelServeConfig)>,
    nonce: u32,
    config: ServeConfig,
    f: F,
) -> (R, ServeReport)
where
    F: FnOnce(&ServeHandle<'_>) -> R,
{
    assert!(!models.is_empty(), "the serving engine needs at least one model");
    let config = ServeConfig { workers: config.workers.max(1), ..config };
    let shared = Shared {
        slots: models
            .into_iter()
            .map(|(name, model, serve)| ModelSlot {
                name,
                model,
                max_batch: serve.max_batch.unwrap_or(config.max_batch),
                length_bucket: serve.length_bucket.unwrap_or(config.length_bucket),
                queue_quota: serve.queue_quota,
                mode: serve.mode.unwrap_or(config.mode),
                metrics: Metrics::new(),
            })
            .collect(),
        config,
        nonce,
        queue: TaggedQueue::new(config.queue_capacity),
        metrics: Metrics::new(),
        next_id: AtomicU64::new(0),
    };
    for (index, slot) in shared.slots.iter().enumerate() {
        if slot.queue_quota.is_some() {
            shared.queue.set_quota(ModelId::scoped(nonce, index), slot.queue_quota);
        }
    }
    /// Closes the queue when dropped — including during unwinding, so a
    /// panicking driver closure can't leave workers parked on the
    /// condvar while the scope waits to join them.
    struct CloseOnDrop<'a>(&'a TaggedQueue<ModelId, WorkItem>);
    impl Drop for CloseOnDrop<'_> {
        fn drop(&mut self) {
            self.0.close();
        }
    }

    let out = std::thread::scope(|scope| {
        for _ in 0..config.workers {
            scope.spawn(|| worker_loop(&shared));
        }
        // Structural shutdown: when the driver returns (or panics), the
        // guard stops admissions, workers drain the backlog, and the
        // scope joins them.
        let _shutdown = CloseOnDrop(&shared.queue);
        let handle = ServeHandle { shared: &shared };
        f(&handle)
    });
    let peak = shared.queue.peak_depth();
    let report = ServeReport {
        aggregate: shared.metrics.snapshot(peak),
        per_model: shared
            .slots
            .iter()
            .map(|slot| (slot.name.to_owned(), slot.metrics.snapshot(peak)))
            .collect(),
    };
    (out, report)
}

/// Runs a single-model serving engine around `model` for the lifetime of
/// the driver closure `f` — the convenience wrapper over the multi-model
/// engine for the common one-checkpoint deployment.
///
/// The model is registered as [`ModelId::DEFAULT`], which is where
/// [`ServeHandle::submit`] routes, so single-model callers never mention
/// model ids. Workers start before `f` runs and keep serving while it
/// executes; when `f` returns, the queue closes (new submissions fail
/// with [`SubmitError::ShuttingDown`]), the workers drain every accepted
/// request, and the scope joins them. Returns the closure's result and
/// the final (aggregate) metrics.
///
/// # Example
///
/// ```
/// use mokey_serve::{serve, PreparedModel, ServeConfig};
/// use mokey_transformer::{Head, Model, ModelConfig, QuantizeSpec};
///
/// let config = ModelConfig::bert_base().scaled(16, 16);
/// let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 1);
/// let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(12, s)).collect();
/// let prepared =
///     PreparedModel::prepare(model, QuantizeSpec::weights_and_activations(), &profile).unwrap();
/// let (outputs, report) = serve(&prepared, ServeConfig::default(), |handle| {
///     let tickets: Vec<_> = (0..4)
///         .map(|s| handle.submit(prepared.model().random_tokens(12, s)).unwrap())
///         .collect();
///     tickets.into_iter().map(|t| t.wait().output).collect::<Vec<_>>()
/// });
/// assert_eq!(outputs.len(), 4);
/// assert_eq!(report.completed, 4);
/// ```
pub fn serve<R, F>(model: &PreparedModel, config: ServeConfig, f: F) -> (R, MetricsReport)
where
    F: FnOnce(&ServeHandle<'_>) -> R,
{
    let name = model.model().config().name.as_str();
    // A single-model engine still gets a fresh registry identity, so its
    // unscoped default route resolves consistently and foreign registry
    // ids bounce.
    let nonce = next_registry_nonce();
    let (out, report) =
        run_engine(vec![(name, model, ModelServeConfig::default())], nonce, config, f);
    (out, report.aggregate)
}

/// Runs a multi-model serving engine over every model in `registry` for
/// the lifetime of the driver closure `f`.
///
/// All models share one submission queue, one worker pool, and one
/// batcher; batches never mix models, and the globally oldest request
/// always leads the next batch (no model can starve another). Returns
/// the closure's result and a [`ServeReport`] with the aggregate plus
/// per-model metrics.
///
/// # Panics
///
/// Panics if the registry is empty.
///
/// # Example
///
/// ```
/// use mokey_serve::{serve_registry, ModelRegistry, ServeConfig};
/// use mokey_transformer::{Head, Model, ModelConfig, QuantizeSpec};
///
/// let config = ModelConfig::bert_base().scaled(16, 16);
/// let profile: Vec<Vec<usize>> = (0..2)
///     .map(|s| Model::synthesize(&config, Head::Span, 1).random_tokens(12, s))
///     .collect();
/// let mut registry = ModelRegistry::new();
/// let spec = QuantizeSpec::weights_and_activations();
/// let sentiment = registry
///     .register(
///         "sentiment",
///         Model::synthesize(&config, Head::Classification { classes: 3 }, 1),
///         spec,
///         &profile,
///     )
///     .unwrap();
/// let topic = registry
///     .register(
///         "topic",
///         Model::synthesize(&config, Head::Classification { classes: 5 }, 1),
///         spec,
///         &profile,
///     )
///     .unwrap();
/// let ((), report) = serve_registry(&registry, ServeConfig::default(), |handle| {
///     let tokens = registry.get(sentiment).unwrap().model().random_tokens(12, 9);
///     let a = handle.submit_to(sentiment, tokens.clone()).unwrap();
///     let b = handle.submit_to(topic, tokens).unwrap();
///     assert_ne!(a.wait().output, b.wait().output);
/// });
/// assert_eq!(report.aggregate.completed, 2);
/// assert_eq!(report.model("sentiment").unwrap().completed, 1);
/// ```
pub fn serve_registry<R, F>(registry: &ModelRegistry, config: ServeConfig, f: F) -> (R, ServeReport)
where
    F: FnOnce(&ServeHandle<'_>) -> R,
{
    assert!(!registry.is_empty(), "serve_registry needs at least one registered model");
    run_engine(
        registry
            .iter()
            .map(|(id, name, model)| (name, model, registry.serve_config(id).unwrap_or_default()))
            .collect(),
        registry.nonce(),
        config,
        f,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mokey_pipeline::QuantizeSpec;
    use mokey_transformer::{Head, Model, ModelConfig};

    fn test_config() -> ModelConfig {
        ModelConfig {
            name: "engine-test".into(),
            layers: 1,
            hidden: 32,
            heads: 2,
            ff: 64,
            vocab: 150,
            max_seq: 16,
        }
    }

    fn prepared() -> PreparedModel {
        let model = Model::synthesize(&test_config(), Head::Classification { classes: 3 }, 13);
        let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(10, 30 + s)).collect();
        PreparedModel::prepare(model, QuantizeSpec::weights_and_activations(), &profile)
            .expect("non-degenerate model")
    }

    fn two_model_registry() -> (ModelRegistry, ModelId, ModelId) {
        let mut registry = ModelRegistry::new();
        let spec = QuantizeSpec::weights_and_activations();
        let config = test_config();
        let profile: Vec<Vec<usize>> = (0..2)
            .map(|s| Model::synthesize(&config, Head::Span, 13).random_tokens(10, 30 + s))
            .collect();
        let a = registry
            .register(
                "classify",
                Model::synthesize(&config, Head::Classification { classes: 3 }, 13),
                spec,
                &profile,
            )
            .unwrap();
        let b = registry
            .register("span", Model::synthesize(&config, Head::Span, 14), spec, &profile)
            .unwrap();
        (registry, a, b)
    }

    #[test]
    fn serves_requests_and_reports_metrics() {
        let p = prepared();
        let config = ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::from_millis(2),
            queue_capacity: 16,
            ..ServeConfig::default()
        };
        let inputs: Vec<Vec<usize>> = (0..10).map(|s| p.model().random_tokens(10, s)).collect();
        let (responses, report) = serve(&p, config, |handle| {
            let tickets: Vec<_> =
                inputs.iter().map(|t| handle.submit(t.clone()).unwrap()).collect();
            tickets.into_iter().map(Ticket::wait).collect::<Vec<_>>()
        });
        assert_eq!(responses.len(), 10);
        for (tokens, response) in inputs.iter().zip(&responses) {
            assert_eq!(response.output, p.infer(tokens).0, "engine output diverged");
            assert_eq!(response.model.index(), 0);
            assert!(response.batch_size >= 1);
            assert!(response.latency >= response.queue_wait);
        }
        assert_eq!(report.submitted, 10);
        assert_eq!(report.completed, 10);
        assert!(report.batches_formed >= 1);
        assert!(report.act_values > 0);
    }

    #[test]
    fn invalid_requests_are_rejected_at_admission() {
        let p = prepared();
        let ((), report) = serve(&p, ServeConfig::default(), |handle| {
            let too_long = vec![1usize; p.max_seq() + 1];
            assert_eq!(
                handle.submit(too_long).unwrap_err(),
                SubmitError::SequenceTooLong { len: p.max_seq() + 1, max_seq: p.max_seq() }
            );
            let oov = vec![p.vocab() + 5];
            assert_eq!(
                handle.submit(oov).unwrap_err(),
                SubmitError::TokenOutOfVocab { token: p.vocab() + 5, vocab: p.vocab() }
            );
            // An id past the slot table is a typed error, not a panic.
            let past = ModelId { registry: 0, index: 7 };
            assert_eq!(
                handle.submit_to(past, vec![1, 2, 3]).unwrap_err(),
                SubmitError::UnknownModel { model: past }
            );
        });
        assert_eq!(report.submitted, 0);
        assert_eq!(report.rejected_invalid, 2);
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let p = prepared();
        let (ids, _) = serve(&p, ServeConfig::default(), |handle| {
            (0..5)
                .map(|s| handle.submit(p.model().random_tokens(8, s)).unwrap().id())
                .collect::<Vec<_>>()
        });
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn panicking_driver_closes_the_engine_instead_of_deadlocking() {
        let p = prepared();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve(&p, ServeConfig::default(), |handle| {
                let _ = handle.submit(p.model().random_tokens(8, 1)).unwrap();
                panic!("driver failed");
            })
        }));
        // Without the close-on-drop guard the workers would wait on the
        // queue forever and this join would hang; with it the panic
        // propagates after the backlog drains.
        assert!(result.is_err());
    }

    #[test]
    fn max_batch_one_forms_singleton_batches() {
        let p = prepared();
        let config = ServeConfig {
            workers: 2,
            max_batch: 1,
            max_wait: Duration::from_millis(5),
            queue_capacity: 16,
            ..ServeConfig::default()
        };
        let ((), report) = serve(&p, config, |handle| {
            let tickets: Vec<_> = (0..6)
                .map(|s| handle.submit(p.model().random_tokens(10, 100 + s)).unwrap())
                .collect();
            for t in tickets {
                assert_eq!(t.wait().batch_size, 1);
            }
        });
        assert_eq!(report.batches_formed, 6);
        assert_eq!(report.max_batch_size, 1);
        assert!((report.mean_batch_size - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_models_share_one_pool_and_report_per_model_metrics() {
        let (registry, a, b) = two_model_registry();
        let config = ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::from_millis(2),
            queue_capacity: 32,
            ..ServeConfig::default()
        };
        let (responses, report) = serve_registry(&registry, config, |handle| {
            // Interleave submissions across the two models.
            let tickets: Vec<_> = (0..12)
                .map(|s| {
                    let model = if s % 2 == 0 { a } else { b };
                    let tokens = registry.get(model).unwrap().model().random_tokens(10, s as u64);
                    (model, tokens.clone(), handle.submit_to(model, tokens).unwrap())
                })
                .collect();
            tickets
                .into_iter()
                .map(|(model, tokens, t)| (model, tokens, t.wait()))
                .collect::<Vec<_>>()
        });
        for (model, tokens, response) in &responses {
            assert_eq!(response.model, *model);
            let (reference, reference_stats) = registry.get(*model).unwrap().infer(tokens);
            assert_eq!(response.output, reference, "multi-model output diverged");
            assert_eq!(response.stats, reference_stats);
        }
        assert_eq!(report.aggregate.completed, 12);
        assert_eq!(report.per_model.len(), 2);
        assert_eq!(report.model("classify").unwrap().completed, 6);
        assert_eq!(report.model("span").unwrap().completed, 6);
        let summed: u64 = report.per_model.iter().map(|(_, r)| r.batches_formed).sum();
        assert_eq!(summed, report.aggregate.batches_formed);
    }

    #[test]
    fn batches_never_mix_models_even_without_length_bucketing() {
        let (registry, a, b) = two_model_registry();
        // One worker + long straggler window + bucketing off: maximal
        // pressure to coalesce across models. Uniform lengths, so only
        // the model tag separates the traffic.
        let config = ServeConfig {
            workers: 1,
            max_batch: 8,
            max_wait: Duration::from_millis(50),
            queue_capacity: 32,
            length_bucket: 0,
            ..ServeConfig::default()
        };
        let (responses, _) = serve_registry(&registry, config, |handle| {
            let tickets: Vec<_> = (0..10)
                .map(|s| {
                    let model = if s % 2 == 0 { a } else { b };
                    let tokens = registry.get(model).unwrap().model().random_tokens(12, s as u64);
                    (model, tokens.clone(), handle.submit_to(model, tokens).unwrap())
                })
                .collect();
            tickets
                .into_iter()
                .map(|(model, tokens, t)| (model, tokens, t.wait()))
                .collect::<Vec<_>>()
        });
        for (model, tokens, response) in &responses {
            let (reference, _) = registry.get(*model).unwrap().infer(tokens);
            assert_eq!(&response.output, &reference, "cross-model batch contamination");
        }
    }

    #[test]
    fn single_model_serve_reports_the_models_name_in_registry_form() {
        let (registry, a, _) = two_model_registry();
        // model_metrics and model_count are live inside the driver.
        let ((), report) = serve_registry(&registry, ServeConfig::default(), |handle| {
            assert_eq!(handle.model_count(), 2);
            let tokens = registry.get(a).unwrap().model().random_tokens(8, 3);
            handle.submit_to(a, tokens).unwrap().wait();
            assert_eq!(handle.model_metrics(a).unwrap().completed, 1);
            assert!(handle.model_metrics(ModelId { registry: 0, index: 9 }).is_none());
        });
        assert_eq!(report.per_model[0].0, "classify");
        assert_eq!(report.per_model[1].0, "span");
        assert_eq!(report.model("span").unwrap().completed, 0);
    }

    #[test]
    fn cross_registry_ids_bounce_with_unknown_model() {
        let (registry_a, a, _) = two_model_registry();
        let (registry_b, foreign, _) = two_model_registry();
        // Same position, different registry: must be a typed rejection,
        // never a silent route to whatever occupies that slot here.
        assert_eq!(a.index(), foreign.index());
        let ((), report) = serve_registry(&registry_a, ServeConfig::default(), |handle| {
            let tokens = registry_a.get(a).unwrap().model().random_tokens(8, 3);
            assert_eq!(
                handle.submit_to(foreign, tokens.clone()).unwrap_err(),
                SubmitError::UnknownModel { model: foreign }
            );
            assert_eq!(
                handle.try_submit_to(foreign, tokens.clone()).unwrap_err(),
                SubmitError::UnknownModel { model: foreign }
            );
            assert!(handle.model_metrics(foreign).is_none());
            assert!(handle.model_queue_depth(foreign).is_none());
            // The engine still serves its own ids.
            handle.submit_to(a, tokens).unwrap().wait();
        });
        assert_eq!(report.aggregate.completed, 1);
        drop(registry_b);
    }

    #[test]
    fn model_at_quota_is_shed_without_blocking() {
        let (mut registry, a, b) = two_model_registry();
        registry.set_serve_config(
            a,
            ModelServeConfig { queue_quota: Some(2), ..ModelServeConfig::default() },
        );
        // One slow worker + singleton batches: rapid-fire submissions
        // back up behind the in-flight inference, so model a's occupancy
        // reaches its quota of 2 and further pushes must shed — not
        // block, and not consume shared capacity model b needs.
        let config = ServeConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::from_millis(1),
            queue_capacity: 8,
            ..ServeConfig::default()
        };
        let ((), report) = serve_registry(&registry, config, |handle| {
            let tokens = registry.get(a).unwrap().model().random_tokens(8, 3);
            // Saturate the single worker with a backlog so pushed
            // requests stay queued long enough to observe the quota.
            let mut tickets = Vec::new();
            let mut shed = 0;
            for _ in 0..16 {
                match handle.submit_to(a, tokens.clone()) {
                    Ok(t) => tickets.push(t),
                    Err(SubmitError::ModelQuotaExceeded { model, quota }) => {
                        assert_eq!(model.index(), a.index());
                        assert_eq!(quota, 2);
                        shed += 1;
                    }
                    Err(other) => panic!("unexpected rejection: {other}"),
                }
            }
            // With quota 2 and a 1-wide worker, at least some of the 16
            // rapid-fire submissions must be shed — and none may block.
            assert!(shed > 0, "no submission was shed by the quota");
            // The victim model is unaffected by a's quota.
            let vt = registry.get(b).unwrap().model().random_tokens(8, 4);
            let victim = handle.submit_to(b, vt).unwrap();
            victim.wait();
            for t in tickets {
                t.wait();
            }
        });
        assert_eq!(
            report.aggregate.rejected_quota,
            report.model("classify").unwrap().rejected_quota
        );
        assert!(report.aggregate.rejected_quota > 0);
        assert_eq!(report.model("span").unwrap().rejected_quota, 0);
        assert_eq!(
            report.aggregate.completed + report.aggregate.rejected_quota,
            17,
            "every submission either served or shed: {}",
            report.aggregate.dump()
        );
    }

    #[test]
    fn per_model_max_batch_override_caps_that_models_batches_only() {
        let (mut registry, a, b) = two_model_registry();
        registry.set_serve_config(
            a,
            ModelServeConfig { max_batch: Some(1), ..ModelServeConfig::default() },
        );
        // Engine-global max_batch 8 with a generous straggler window and
        // one worker: model b may coalesce, model a must never.
        let config = ServeConfig {
            workers: 1,
            max_batch: 8,
            max_wait: Duration::from_millis(50),
            queue_capacity: 32,
            ..ServeConfig::default()
        };
        let (batch_sizes, _) = serve_registry(&registry, config, |handle| {
            let ta = registry.get(a).unwrap().model().random_tokens(12, 1);
            let tb = registry.get(b).unwrap().model().random_tokens(12, 2);
            let mut tickets = Vec::new();
            for _ in 0..6 {
                tickets.push((a, handle.submit_to(a, ta.clone()).unwrap()));
                tickets.push((b, handle.submit_to(b, tb.clone()).unwrap()));
            }
            tickets.into_iter().map(|(id, t)| (id, t.wait().batch_size)).collect::<Vec<_>>()
        });
        for (id, batch_size) in &batch_sizes {
            if id == &a {
                assert_eq!(*batch_size, 1, "override ignored: model a coalesced");
            }
        }
        // And the un-overridden model did coalesce under the backlog.
        assert!(
            batch_sizes.iter().any(|(id, s)| id == &b && *s > 1),
            "expected model b to coalesce under a 1-worker backlog: {batch_sizes:?}"
        );
    }

    #[test]
    fn generations_match_direct_decode_and_stream_tokens_in_order() {
        let p = prepared();
        let prompt = p.model().random_tokens(6, 11);
        let max_tokens = 5;
        let reference = mokey_transformer::generate(
            p.model(),
            p.context(),
            &prompt,
            max_tokens,
            None,
            ExecMode::default(),
        );
        let (response, report) = serve(&p, ServeConfig::default(), |handle| {
            let ticket = handle.submit_generate(prompt.clone(), max_tokens, None).unwrap();
            // Token updates arrive strictly in index order, then Done.
            let mut streamed = Vec::new();
            loop {
                match ticket.next() {
                    GenUpdate::Token { index, token } => {
                        assert_eq!(index, streamed.len(), "out-of-order token update");
                        streamed.push(token);
                    }
                    GenUpdate::Done(response) => {
                        assert_eq!(streamed, response.tokens, "stream diverged from summary");
                        return response;
                    }
                }
            }
        });
        assert_eq!(response.tokens, reference.tokens, "served decode diverged from direct");
        assert_eq!(response.stats, reference.stats);
        assert!(response.steps >= 1);
        assert!(response.latency >= response.queue_wait);
        assert_eq!(report.generated_tokens, max_tokens as u64);
        assert!(report.decode_steps >= 1);
        assert_eq!(report.completed, 1, "a finished generation counts as one completion");
        assert!(report.tokens_per_sec > 0.0);
    }

    #[test]
    fn generations_interleave_with_oneshot_traffic_bit_identically() {
        let (registry, a, b) = two_model_registry();
        let config = ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            queue_capacity: 32,
            ..ServeConfig::default()
        };
        let pa = registry.get(a).unwrap();
        let pb = registry.get(b).unwrap();
        let prompt = pa.model().random_tokens(5, 21);
        let gen_reference = mokey_transformer::generate(
            pa.model(),
            pa.context(),
            &prompt,
            6,
            None,
            ExecMode::default(),
        );
        let oneshots: Vec<Vec<usize>> = (0..8).map(|s| pb.model().random_tokens(9, s)).collect();
        let ((gen_a, gen_b, responses), report) = serve_registry(&registry, config, |handle| {
            // Two concurrent generations on model a racing a stream of
            // one-shots on model b through the same worker pool.
            let ga = handle.submit_generate_to(a, prompt.clone(), 6, None).unwrap();
            let gb = handle.submit_generate_to(a, prompt.clone(), 6, None).unwrap();
            let tickets: Vec<_> =
                oneshots.iter().map(|t| handle.submit_to(b, t.clone()).unwrap()).collect();
            let responses = tickets.into_iter().map(Ticket::wait).collect::<Vec<_>>();
            (ga.wait(), gb.wait(), responses)
        });
        // Same prompt, greedy decode: both generations and the direct
        // reference must agree exactly, regardless of interleaving.
        assert_eq!(gen_a.tokens, gen_reference.tokens);
        assert_eq!(gen_b.tokens, gen_reference.tokens);
        for (tokens, response) in oneshots.iter().zip(&responses) {
            assert_eq!(response.output, pb.infer(tokens).0, "one-shot contaminated by decode");
        }
        assert_eq!(report.aggregate.completed, 10);
        assert_eq!(report.aggregate.generated_tokens, 12);
        assert_eq!(report.model("classify").unwrap().generated_tokens, 12);
        assert_eq!(report.model("span").unwrap().generated_tokens, 0);
        let summed: u64 = report.per_model.iter().map(|(_, r)| r.decode_steps).sum();
        assert_eq!(summed, report.aggregate.decode_steps);
    }

    #[test]
    fn generate_admission_rejects_invalid_and_unquantized() {
        let p = prepared();
        let ((), report) = serve(&p, ServeConfig::default(), |handle| {
            // Zero new tokens is an empty generation.
            assert_eq!(
                handle.submit_generate(vec![1, 2], 0, None).unwrap_err(),
                SubmitError::EmptySequence
            );
            assert_eq!(
                handle.submit_generate(vec![], 3, None).unwrap_err(),
                SubmitError::EmptySequence
            );
            // The budget is prompt + max_tokens against max_seq.
            assert_eq!(
                handle.submit_generate(vec![1; 10], 10, None).unwrap_err(),
                SubmitError::SequenceTooLong { len: 20, max_seq: p.max_seq() }
            );
            // EOS participates in vocabulary validation.
            assert_eq!(
                handle.submit_generate(vec![1, 2], 3, Some(p.vocab() + 1)).unwrap_err(),
                SubmitError::TokenOutOfVocab { token: p.vocab() + 1, vocab: p.vocab() }
            );
        });
        assert_eq!(report.submitted, 0);
        assert_eq!(report.rejected_invalid, 4);
        assert_eq!(report.generated_tokens, 0);

        // A weights-only model has no activation dictionaries, so there
        // is nothing to encode K/V rows with: typed rejection, no panic.
        let model = Model::synthesize(&test_config(), Head::Classification { classes: 3 }, 13);
        let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(10, 30 + s)).collect();
        let wo = PreparedModel::prepare(model, QuantizeSpec::weights_only(), &profile)
            .expect("weights-only prepares");
        let ((), _) = serve(&wo, ServeConfig::default(), |handle| {
            match handle.submit_generate(vec![1, 2, 3], 2, None).unwrap_err() {
                SubmitError::DecodeUnsupported { .. } => {}
                other => panic!("expected DecodeUnsupported, got {other}"),
            }
        });
    }

    #[test]
    fn eos_stops_a_generation_early_when_emitted() {
        let p = prepared();
        let prompt = p.model().random_tokens(4, 7);
        // Run the reference decode once, then declare its first sampled
        // token as EOS: the served generation must stop right there.
        let free_run = mokey_transformer::generate(
            p.model(),
            p.context(),
            &prompt,
            8,
            None,
            ExecMode::default(),
        );
        let eos = free_run.tokens[0];
        let (response, report) = serve(&p, ServeConfig::default(), |handle| {
            handle.submit_generate(prompt.clone(), 8, Some(eos)).unwrap().wait()
        });
        assert_eq!(response.tokens, vec![eos], "generation must stop at the EOS token");
        assert_eq!(report.generated_tokens, 1);
    }
}
