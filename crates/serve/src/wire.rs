//! The mokey-serve wire protocol: length-prefixed binary frames over a
//! byte stream.
//!
//! Every frame is a little-endian `u32` payload length followed by that
//! many payload bytes. The first payload byte is the frame tag:
//!
//! ```text
//!  0x01 Request   [corr u64][name_len u16][name bytes][ntokens u32][token u32 ×n]
//!  0x02 Response  [corr u64][batch u32][queue_wait µs u64][latency µs u64]
//!                 [act_values u64][act_outliers u64][output]
//!  0x03 Error     [corr u64][code u16][msg_len u32][msg bytes]
//!  0x04 Generate  [corr u64][name_len u16][name bytes][max_tokens u32]
//!                 [has_eos u8][eos u32 if has_eos][nprompt u32][token u32 ×n]
//!  0x05 Generated [corr u64][index u32][token u32][done u8]
//!                 [steps u32][queue_wait µs u64][latency µs u64]
//!                 [act_values u64][act_outliers u64]     ← done frames only
//! ```
//!
//! A `Generate` request is answered by a *stream* of `Generated` frames
//! sharing its `corr`: one per sampled token (`done = 0`, `token` the
//! sampled id, `index` counting from 0), then a final summary frame
//! (`done = 1`, `index` = token count, `token` unused) carrying the
//! generation's step count, waits, and encoding counters. A tag outside
//! the table is a *recognizably framed but unsupported* request kind and
//! bounces with [`WireErrorCode::UnsupportedKind`], distinct from
//! [`WireErrorCode::MalformedFrame`] (bytes that fail to decode).
//!
//! `corr` is a client-chosen correlation id echoed verbatim in the
//! matching response or error, so clients may pipeline arbitrarily many
//! requests per connection. Correlation id `0` is reserved for
//! connection-level error frames (malformed framing, oversized frame)
//! that cannot be attributed to a request.
//!
//! `[output]` encodes a [`TaskOutput`]: a kind byte (`1` logits, `2`
//! score, `3` span) followed by `f32` values carried as raw IEEE-754 bits
//! (`u32`), so outputs cross the wire **bit-exactly** — the engine's
//! bit-identity guarantee survives the network hop.
//!
//! Both sides enforce a maximum frame size; an overlong length prefix is
//! rejected *before* allocating, so a hostile peer cannot make the
//! server balloon memory with a 4 GiB length word.

use crate::engine::{GenerateResponse, Response, SubmitError};
use mokey_transformer::exec::QuantizedStats;
use mokey_transformer::TaskOutput;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Frame tag for a client request.
pub const TAG_REQUEST: u8 = 0x01;
/// Frame tag for a server response.
pub const TAG_RESPONSE: u8 = 0x02;
/// Frame tag for a server error.
pub const TAG_ERROR: u8 = 0x03;
/// Frame tag for a client generation request.
pub const TAG_GENERATE: u8 = 0x04;
/// Frame tag for a server generation event (token or final summary).
pub const TAG_GENERATED: u8 = 0x05;

/// Default cap on a single frame's payload (1 MiB) — far above any
/// legitimate request (max_seq × 4 bytes) yet small enough that a
/// hostile length prefix cannot balloon allocation.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// Correlation id used for connection-level error frames that cannot be
/// attributed to any request (malformed framing, oversized frame).
pub const CORR_CONNECTION: u64 = 0;

/// Typed reason codes carried by error frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum WireErrorCode {
    /// The requested model name is not registered.
    UnknownModel = 1,
    /// The shared submission queue is at capacity.
    QueueFull = 2,
    /// The model is at its admission quota.
    QuotaExceeded = 3,
    /// The request carried no tokens.
    EmptySequence = 4,
    /// The request exceeds the model's maximum sequence length.
    SequenceTooLong = 5,
    /// A token is outside the model's vocabulary.
    TokenOutOfVocab = 6,
    /// The server is draining and no longer admits requests.
    ShuttingDown = 7,
    /// The frame could not be decoded.
    MalformedFrame = 8,
    /// The frame's declared length exceeds the configured maximum.
    FrameTooLarge = 9,
    /// The frame was well-formed but its tag names a request kind this
    /// server does not support (e.g. a newer protocol revision).
    UnsupportedKind = 10,
    /// The target model was prepared without activation quantization, so
    /// it cannot serve generations (the KV-cache stores activation
    /// codes).
    DecodeUnsupported = 11,
}

impl WireErrorCode {
    /// Decodes a reason code from its wire value.
    pub fn from_u16(code: u16) -> Option<Self> {
        Some(match code {
            1 => Self::UnknownModel,
            2 => Self::QueueFull,
            3 => Self::QuotaExceeded,
            4 => Self::EmptySequence,
            5 => Self::SequenceTooLong,
            6 => Self::TokenOutOfVocab,
            7 => Self::ShuttingDown,
            8 => Self::MalformedFrame,
            9 => Self::FrameTooLarge,
            10 => Self::UnsupportedKind,
            11 => Self::DecodeUnsupported,
            _ => return None,
        })
    }

    /// Maps an engine-side rejection to its wire code.
    pub fn from_submit_error(err: &SubmitError) -> Self {
        match err {
            SubmitError::QueueFull => Self::QueueFull,
            SubmitError::ShuttingDown => Self::ShuttingDown,
            SubmitError::UnknownModel { .. } => Self::UnknownModel,
            SubmitError::ModelQuotaExceeded { .. } => Self::QuotaExceeded,
            SubmitError::EmptySequence => Self::EmptySequence,
            SubmitError::SequenceTooLong { .. } => Self::SequenceTooLong,
            SubmitError::TokenOutOfVocab { .. } => Self::TokenOutOfVocab,
            SubmitError::DecodeUnsupported { .. } => Self::DecodeUnsupported,
        }
    }
}

/// One decoded frame, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: run `tokens` through the model registered as
    /// `model`, answer with the same `corr`.
    Request {
        /// Client-chosen correlation id (echoed in the reply; avoid 0,
        /// which is reserved for connection-level errors).
        corr: u64,
        /// The registered model name to route to.
        model: String,
        /// The input token ids.
        tokens: Vec<usize>,
    },
    /// Server → client: the answered request.
    Response {
        /// Echo of the request's correlation id.
        corr: u64,
        /// The task-head output, bit-exact.
        output: TaskOutput,
        /// How many requests shared the batch.
        batch_size: u32,
        /// Submission → batch-formed wait.
        queue_wait: Duration,
        /// Submission → response latency (server-side).
        latency: Duration,
        /// The request's activation-encoding counters.
        stats: QuantizedStats,
    },
    /// Server → client: the request (or, with `corr` 0, the connection)
    /// was rejected.
    Error {
        /// Echo of the request's correlation id, or [`CORR_CONNECTION`].
        corr: u64,
        /// The typed reason.
        code: WireErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Client → server: generate up to `max_tokens` greedy tokens from
    /// `prompt`, answered by a stream of [`Frame::Generated`] frames.
    Generate {
        /// Client-chosen correlation id shared by every frame of the
        /// generation's stream.
        corr: u64,
        /// The registered model name to route to.
        model: String,
        /// The prompt token ids.
        prompt: Vec<usize>,
        /// Token budget (must be non-zero; `prompt + max_tokens` must
        /// fit the model's `max_seq`).
        max_tokens: u32,
        /// Optional early-stop token.
        eos: Option<u32>,
    },
    /// Server → client: one generation event — a sampled token, or the
    /// stream's final summary.
    Generated {
        /// Echo of the generation's correlation id.
        corr: u64,
        /// Token position within the generation (the summary frame
        /// carries the total token count here).
        index: u32,
        /// The sampled token id (unused — zero — on the summary frame).
        token: u32,
        /// `Some` exactly on the stream's final frame.
        summary: Option<GenSummary>,
    },
}

/// The closing summary of a generation stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenSummary {
    /// Queue passes the generation consumed server-side.
    pub steps: u32,
    /// Submission → first service slice (server-side).
    pub queue_wait: Duration,
    /// Submission → final token (server-side).
    pub latency: Duration,
    /// Merged activation-encoding counters (prefill + every step).
    pub stats: QuantizedStats,
}

impl GenSummary {
    /// Builds the wire summary from an answered engine generation.
    pub fn from_response(response: &GenerateResponse) -> Self {
        Self {
            steps: response.steps as u32,
            queue_wait: response.queue_wait,
            latency: response.latency,
            stats: response.stats,
        }
    }
}

/// Why a frame could not be decoded.
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended mid-frame (inside the length prefix or payload).
    Truncated,
    /// The length prefix exceeds the configured maximum frame size.
    FrameTooLarge {
        /// The declared payload length.
        declared: usize,
        /// The configured cap.
        max: usize,
    },
    /// The payload does not decode as any known frame.
    Malformed {
        /// What failed, for diagnostics.
        detail: &'static str,
    },
    /// The frame was well-formed at the framing layer but its tag names
    /// a kind this endpoint does not implement — kept distinct from
    /// [`WireError::Malformed`] so servers can answer with the typed
    /// [`WireErrorCode::UnsupportedKind`] instead of a generic decode
    /// failure.
    UnsupportedTag {
        /// The unrecognized tag byte.
        tag: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::FrameTooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte maximum")
            }
            WireError::Malformed { detail } => write!(f, "malformed frame: {detail}"),
            WireError::UnsupportedTag { tag } => {
                write!(f, "unsupported frame tag 0x{tag:02x}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A decode failure lifted into `io::Error` space for socket loops.
#[derive(Debug)]
pub enum ReadFrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The bytes arrived but do not form a valid frame.
    Wire(WireError),
}

impl fmt::Display for ReadFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadFrameError::Io(e) => write!(f, "i/o error reading frame: {e}"),
            ReadFrameError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReadFrameError {}

impl From<io::Error> for ReadFrameError {
    fn from(e: io::Error) -> Self {
        ReadFrameError::Io(e)
    }
}

impl From<WireError> for ReadFrameError {
    fn from(e: WireError) -> Self {
        ReadFrameError::Wire(e)
    }
}

/// Little-endian byte writer for frame payloads.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(tag: u8) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.push(tag);
        Self { buf }
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32_bits(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
    fn f32_vec(&mut self, v: &[f32]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.f32_bits(x);
        }
    }
}

/// Little-endian cursor over a frame payload.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(WireError::Malformed { detail: what }),
        }
    }
    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }
    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().expect("2 bytes")))
    }
    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }
    fn f32_bits(&mut self, what: &'static str) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32(what)?))
    }
    fn f32_vec(&mut self, what: &'static str) -> Result<Vec<f32>, WireError> {
        let n = self.u32(what)? as usize;
        // The remaining payload bounds the element count: a hostile
        // length can't trigger a huge reserve.
        if n.checked_mul(4).is_none_or(|bytes| bytes > self.buf.len() - self.pos) {
            return Err(WireError::Malformed { detail: what });
        }
        (0..n).map(|_| self.f32_bits(what)).collect()
    }
    fn finished(&self, what: &'static str) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed { detail: what })
        }
    }
}

impl Frame {
    /// Encodes this frame's payload (tag byte included, length prefix
    /// not).
    pub fn encode_payload(&self) -> Vec<u8> {
        match self {
            Frame::Request { corr, model, tokens } => {
                let mut e = Enc::new(TAG_REQUEST);
                e.u64(*corr);
                e.u16(model.len() as u16);
                e.bytes(model.as_bytes());
                e.u32(tokens.len() as u32);
                for &t in tokens {
                    e.u32(t as u32);
                }
                e.buf
            }
            Frame::Response { corr, output, batch_size, queue_wait, latency, stats } => {
                let mut e = Enc::new(TAG_RESPONSE);
                e.u64(*corr);
                e.u32(*batch_size);
                e.u64(queue_wait.as_micros() as u64);
                e.u64(latency.as_micros() as u64);
                e.u64(stats.act_values as u64);
                e.u64(stats.act_outliers as u64);
                match output {
                    TaskOutput::Logits(v) => {
                        e.buf.push(1);
                        e.f32_vec(v);
                    }
                    TaskOutput::Score(s) => {
                        e.buf.push(2);
                        e.f32_bits(*s);
                    }
                    TaskOutput::Span(start, end) => {
                        e.buf.push(3);
                        e.f32_vec(start);
                        e.f32_vec(end);
                    }
                }
                e.buf
            }
            Frame::Error { corr, code, message } => {
                let mut e = Enc::new(TAG_ERROR);
                e.u64(*corr);
                e.u16(*code as u16);
                e.u32(message.len() as u32);
                e.bytes(message.as_bytes());
                e.buf
            }
            Frame::Generate { corr, model, prompt, max_tokens, eos } => {
                let mut e = Enc::new(TAG_GENERATE);
                e.u64(*corr);
                e.u16(model.len() as u16);
                e.bytes(model.as_bytes());
                e.u32(*max_tokens);
                match eos {
                    Some(t) => {
                        e.buf.push(1);
                        e.u32(*t);
                    }
                    None => e.buf.push(0),
                }
                e.u32(prompt.len() as u32);
                for &t in prompt {
                    e.u32(t as u32);
                }
                e.buf
            }
            Frame::Generated { corr, index, token, summary } => {
                let mut e = Enc::new(TAG_GENERATED);
                e.u64(*corr);
                e.u32(*index);
                e.u32(*token);
                match summary {
                    None => e.buf.push(0),
                    Some(s) => {
                        e.buf.push(1);
                        e.u32(s.steps);
                        e.u64(s.queue_wait.as_micros() as u64);
                        e.u64(s.latency.as_micros() as u64);
                        e.u64(s.stats.act_values as u64);
                        e.u64(s.stats.act_outliers as u64);
                    }
                }
                e.buf
            }
        }
    }

    /// Decodes a frame from its payload bytes (tag byte included, length
    /// prefix not).
    ///
    /// # Errors
    ///
    /// [`WireError::UnsupportedTag`] on an unrecognized tag;
    /// [`WireError::Malformed`] on a short payload, invalid UTF-8 name,
    /// out-of-range count, or trailing garbage.
    pub fn decode_payload(payload: &[u8]) -> Result<Frame, WireError> {
        let mut d = Dec::new(payload);
        let frame = match d.u8("frame tag")? {
            TAG_REQUEST => {
                let corr = d.u64("request corr id")?;
                let name_len = d.u16("model name length")? as usize;
                let name = d.take(name_len, "model name bytes")?;
                let model = std::str::from_utf8(name)
                    .map_err(|_| WireError::Malformed { detail: "model name utf-8" })?
                    .to_owned();
                let ntokens = d.u32("token count")? as usize;
                if ntokens.checked_mul(4).is_none_or(|bytes| bytes > payload.len()) {
                    return Err(WireError::Malformed { detail: "token count" });
                }
                let tokens = (0..ntokens)
                    .map(|_| d.u32("token id").map(|t| t as usize))
                    .collect::<Result<Vec<_>, _>>()?;
                Frame::Request { corr, model, tokens }
            }
            TAG_RESPONSE => {
                let corr = d.u64("response corr id")?;
                let batch_size = d.u32("batch size")?;
                let queue_wait = Duration::from_micros(d.u64("queue wait")?);
                let latency = Duration::from_micros(d.u64("latency")?);
                // The wire carries the per-request activation counters
                // only; kernel attribution is server-side diagnostics.
                let stats = QuantizedStats {
                    act_values: d.u64("act values")? as usize,
                    act_outliers: d.u64("act outliers")? as usize,
                    ..QuantizedStats::default()
                };
                let output = match d.u8("output kind")? {
                    1 => TaskOutput::Logits(d.f32_vec("logits")?),
                    2 => TaskOutput::Score(d.f32_bits("score")?),
                    3 => TaskOutput::Span(d.f32_vec("span start")?, d.f32_vec("span end")?),
                    _ => return Err(WireError::Malformed { detail: "output kind" }),
                };
                Frame::Response { corr, output, batch_size, queue_wait, latency, stats }
            }
            TAG_ERROR => {
                let corr = d.u64("error corr id")?;
                let code = WireErrorCode::from_u16(d.u16("error code")?)
                    .ok_or(WireError::Malformed { detail: "error code" })?;
                let msg_len = d.u32("message length")? as usize;
                let message = std::str::from_utf8(d.take(msg_len, "message bytes")?)
                    .map_err(|_| WireError::Malformed { detail: "message utf-8" })?
                    .to_owned();
                Frame::Error { corr, code, message }
            }
            TAG_GENERATE => {
                let corr = d.u64("generate corr id")?;
                let name_len = d.u16("model name length")? as usize;
                let name = d.take(name_len, "model name bytes")?;
                let model = std::str::from_utf8(name)
                    .map_err(|_| WireError::Malformed { detail: "model name utf-8" })?
                    .to_owned();
                let max_tokens = d.u32("max tokens")?;
                let eos = match d.u8("eos flag")? {
                    0 => None,
                    1 => Some(d.u32("eos token")?),
                    _ => return Err(WireError::Malformed { detail: "eos flag" }),
                };
                let nprompt = d.u32("prompt count")? as usize;
                if nprompt.checked_mul(4).is_none_or(|bytes| bytes > payload.len()) {
                    return Err(WireError::Malformed { detail: "prompt count" });
                }
                let prompt = (0..nprompt)
                    .map(|_| d.u32("prompt token").map(|t| t as usize))
                    .collect::<Result<Vec<_>, _>>()?;
                Frame::Generate { corr, model, prompt, max_tokens, eos }
            }
            TAG_GENERATED => {
                let corr = d.u64("generated corr id")?;
                let index = d.u32("token index")?;
                let token = d.u32("token id")?;
                let summary = match d.u8("done flag")? {
                    0 => None,
                    1 => Some(GenSummary {
                        steps: d.u32("steps")?,
                        queue_wait: Duration::from_micros(d.u64("gen queue wait")?),
                        latency: Duration::from_micros(d.u64("gen latency")?),
                        stats: QuantizedStats {
                            act_values: d.u64("gen act values")? as usize,
                            act_outliers: d.u64("gen act outliers")? as usize,
                            ..QuantizedStats::default()
                        },
                    }),
                    _ => return Err(WireError::Malformed { detail: "done flag" }),
                };
                Frame::Generated { corr, index, token, summary }
            }
            tag => return Err(WireError::UnsupportedTag { tag }),
        };
        d.finished("trailing bytes")?;
        Ok(frame)
    }

    /// Builds the response frame for an answered engine request.
    pub fn from_response(corr: u64, response: Response) -> Frame {
        Frame::Response {
            corr,
            output: response.output,
            batch_size: response.batch_size as u32,
            queue_wait: response.queue_wait,
            latency: response.latency,
            stats: response.stats,
        }
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates the writer's failure; [`io::ErrorKind::InvalidInput`] when
/// the encoded frame exceeds `max_frame_bytes`.
pub fn write_frame(w: &mut impl Write, frame: &Frame, max_frame_bytes: usize) -> io::Result<()> {
    let payload = frame.encode_payload();
    if payload.len() > max_frame_bytes {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the {max_frame_bytes}-byte maximum", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between frames).
///
/// # Errors
///
/// [`ReadFrameError::Wire`] with [`WireError::Truncated`] when the
/// stream ends *inside* a frame, [`WireError::FrameTooLarge`] before any
/// oversized payload is read, [`WireError::Malformed`] on a payload that
/// does not decode; [`ReadFrameError::Io`] on transport failure.
pub fn read_frame(
    r: &mut impl Read,
    max_frame_bytes: usize,
) -> Result<Option<Frame>, ReadFrameError> {
    let mut len = [0u8; 4];
    // A clean EOF before any length byte is a graceful hangup; one after
    // some bytes is truncation.
    let mut filled = 0;
    while filled < len.len() {
        match r.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let declared = u32::from_le_bytes(len) as usize;
    if declared > max_frame_bytes {
        return Err(WireError::FrameTooLarge { declared, max: max_frame_bytes }.into());
    }
    let mut payload = vec![0u8; declared];
    if let Err(e) = r.read_exact(&mut payload) {
        return if e.kind() == io::ErrorKind::UnexpectedEof {
            Err(WireError::Truncated.into())
        } else {
            Err(e.into())
        };
    }
    Ok(Some(Frame::decode_payload(&payload)?))
}

/// What the server answered for one request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerReply {
    /// The request was served.
    Response {
        /// The task-head output, bit-exact.
        output: TaskOutput,
        /// How many requests shared the batch.
        batch_size: u32,
        /// Submission → batch-formed wait (server-side).
        queue_wait: Duration,
        /// Submission → response latency (server-side).
        latency: Duration,
        /// The request's activation-encoding counters.
        stats: QuantizedStats,
    },
    /// The request was rejected with a typed reason.
    Rejected {
        /// The reason code.
        code: WireErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// How a [`NetClient::generate`] call ended.
#[derive(Debug, Clone, PartialEq)]
pub enum GenerateOutcome {
    /// The generation ran to completion.
    Generated {
        /// Every sampled token, in stream order.
        tokens: Vec<usize>,
        /// The stream's closing summary.
        summary: GenSummary,
    },
    /// The generation was rejected with a typed reason.
    Rejected {
        /// The reason code.
        code: WireErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// A blocking client for the wire protocol: one `TcpStream`, framed
/// writes and reads. Requests may be pipelined — send many, then match
/// replies by correlation id.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl NetClient {
    /// Connects to a serving frontend.
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, max_frame_bytes: DEFAULT_MAX_FRAME_BYTES })
    }

    /// Sends one request frame without waiting for the reply
    /// (pipelining).
    ///
    /// # Errors
    ///
    /// Propagates the transport failure.
    pub fn send(&mut self, corr: u64, model: &str, tokens: &[usize]) -> io::Result<()> {
        let frame = Frame::Request { corr, model: model.to_owned(), tokens: tokens.to_vec() };
        write_frame(&mut self.stream, &frame, self.max_frame_bytes)
    }

    /// Receives the next reply frame, whatever request it answers.
    ///
    /// # Errors
    ///
    /// `io::ErrorKind::UnexpectedEof` when the server hung up,
    /// `InvalidData` on an undecodable or non-reply frame.
    pub fn recv(&mut self) -> io::Result<(u64, ServerReply)> {
        let frame = read_frame(&mut self.stream, self.max_frame_bytes)
            .map_err(|e| match e {
                ReadFrameError::Io(e) => e,
                ReadFrameError::Wire(e) => io::Error::new(io::ErrorKind::InvalidData, e),
            })?
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
            })?;
        match frame {
            Frame::Response { corr, output, batch_size, queue_wait, latency, stats } => {
                Ok((corr, ServerReply::Response { output, batch_size, queue_wait, latency, stats }))
            }
            Frame::Error { corr, code, message } => {
                Ok((corr, ServerReply::Rejected { code, message }))
            }
            Frame::Request { .. } | Frame::Generate { .. } => {
                Err(io::Error::new(io::ErrorKind::InvalidData, "server sent a request frame"))
            }
            Frame::Generated { .. } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "generation frame outside a generate call (mixed pipelining is unsupported)",
            )),
        }
    }

    /// One synchronous request/reply round trip.
    ///
    /// # Errors
    ///
    /// Everything [`NetClient::send`] and [`NetClient::recv`] can fail
    /// with, plus `InvalidData` when the reply's correlation id does not
    /// match (the connection is carrying pipelined traffic).
    pub fn call(&mut self, corr: u64, model: &str, tokens: &[usize]) -> io::Result<ServerReply> {
        self.send(corr, model, tokens)?;
        let (got, reply) = self.recv()?;
        if got != corr && got != CORR_CONNECTION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("reply for corr {got} while awaiting {corr}"),
            ));
        }
        Ok(reply)
    }

    /// Sends one generation request frame without waiting for the token
    /// stream.
    ///
    /// # Errors
    ///
    /// Propagates the transport failure.
    pub fn send_generate(
        &mut self,
        corr: u64,
        model: &str,
        prompt: &[usize],
        max_tokens: usize,
        eos: Option<usize>,
    ) -> io::Result<()> {
        let frame = Frame::Generate {
            corr,
            model: model.to_owned(),
            prompt: prompt.to_vec(),
            max_tokens: max_tokens as u32,
            eos: eos.map(|t| t as u32),
        };
        write_frame(&mut self.stream, &frame, self.max_frame_bytes)
    }

    /// One synchronous generation: sends the request and drains its
    /// token stream until the summary (or error) frame. Do not pipeline
    /// other calls on the connection while a generation is in flight.
    ///
    /// # Errors
    ///
    /// Transport failures, `UnexpectedEof` when the server hangs up
    /// mid-stream, and `InvalidData` on out-of-order frames (a token
    /// index skipping, a foreign correlation id, or a non-generation
    /// frame).
    pub fn generate(
        &mut self,
        corr: u64,
        model: &str,
        prompt: &[usize],
        max_tokens: usize,
        eos: Option<usize>,
    ) -> io::Result<GenerateOutcome> {
        self.send_generate(corr, model, prompt, max_tokens, eos)?;
        let mut tokens = Vec::new();
        loop {
            let frame = read_frame(&mut self.stream, self.max_frame_bytes)
                .map_err(|e| match e {
                    ReadFrameError::Io(e) => e,
                    ReadFrameError::Wire(e) => io::Error::new(io::ErrorKind::InvalidData, e),
                })?
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-generation")
                })?;
            match frame {
                Frame::Generated { corr: got, index, token, summary } if got == corr => {
                    if index as usize != tokens.len() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("token index {index} out of order (expected {})", tokens.len()),
                        ));
                    }
                    match summary {
                        None => tokens.push(token as usize),
                        Some(summary) => return Ok(GenerateOutcome::Generated { tokens, summary }),
                    }
                }
                Frame::Error { corr: got, code, message }
                    if got == corr || got == CORR_CONNECTION =>
                {
                    return Ok(GenerateOutcome::Rejected { code, message })
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected frame during generation: {other:?}"),
                    ))
                }
            }
        }
    }

    /// The underlying stream, for timeouts or shutdown.
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let payload = frame.encode_payload();
        assert_eq!(Frame::decode_payload(&payload), Ok(frame.clone()));
        // And through the framed stream layer.
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame, DEFAULT_MAX_FRAME_BYTES).unwrap();
        let got = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(got, Some(frame));
    }

    #[test]
    fn frames_round_trip_bit_exactly() {
        round_trip(Frame::Request {
            corr: 7,
            model: "sentiment".into(),
            tokens: vec![0, 1, 399, 42],
        });
        round_trip(Frame::Response {
            corr: u64::MAX,
            output: TaskOutput::Logits(vec![0.25, -1.5e-30, f32::MIN_POSITIVE, -0.0]),
            batch_size: 5,
            queue_wait: Duration::from_micros(123),
            latency: Duration::from_micros(4567),
            stats: QuantizedStats {
                act_values: 999,
                act_outliers: 27,
                ..QuantizedStats::default()
            },
        });
        round_trip(Frame::Response {
            corr: 1,
            output: TaskOutput::Score(f32::NEG_INFINITY),
            batch_size: 1,
            queue_wait: Duration::ZERO,
            latency: Duration::ZERO,
            stats: QuantizedStats { act_values: 0, act_outliers: 0, ..QuantizedStats::default() },
        });
        round_trip(Frame::Response {
            corr: 2,
            output: TaskOutput::Span(vec![1.0, 2.0], vec![]),
            batch_size: 2,
            queue_wait: Duration::from_micros(1),
            latency: Duration::from_micros(2),
            stats: QuantizedStats { act_values: 4, act_outliers: 1, ..QuantizedStats::default() },
        });
        round_trip(Frame::Error {
            corr: 0,
            code: WireErrorCode::MalformedFrame,
            message: "frame tag".into(),
        });
        round_trip(Frame::Generate {
            corr: 11,
            model: "storyteller".into(),
            prompt: vec![4, 0, 17, 255],
            max_tokens: 12,
            eos: Some(9),
        });
        round_trip(Frame::Generate {
            corr: 12,
            model: "storyteller".into(),
            prompt: vec![1],
            max_tokens: 1,
            eos: None,
        });
        round_trip(Frame::Generated { corr: 11, index: 0, token: 42, summary: None });
        round_trip(Frame::Generated {
            corr: 11,
            index: 5,
            token: 0,
            summary: Some(GenSummary {
                steps: 5,
                queue_wait: Duration::from_micros(77),
                latency: Duration::from_micros(8_123),
                stats: QuantizedStats {
                    act_values: 4_096,
                    act_outliers: 12,
                    ..QuantizedStats::default()
                },
            }),
        });
    }

    #[test]
    fn nan_payloads_survive_bit_exactly() {
        // NaN != NaN, so compare bits, not values.
        let frame = Frame::Response {
            corr: 3,
            output: TaskOutput::Score(f32::from_bits(0x7fc0_dead)),
            batch_size: 1,
            queue_wait: Duration::ZERO,
            latency: Duration::ZERO,
            stats: QuantizedStats { act_values: 0, act_outliers: 0, ..QuantizedStats::default() },
        };
        let decoded = Frame::decode_payload(&frame.encode_payload()).unwrap();
        match decoded {
            Frame::Response { output: TaskOutput::Score(s), .. } => {
                assert_eq!(s.to_bits(), 0x7fc0_dead);
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn unknown_tags_are_unsupported_not_malformed() {
        // A recognizably framed payload with a tag outside the table is
        // a *kind* problem, not a decoding problem — it must surface as
        // UnsupportedTag so servers answer with UnsupportedKind.
        assert_eq!(Frame::decode_payload(&[0x09]), Err(WireError::UnsupportedTag { tag: 0x09 }));
        assert_eq!(Frame::decode_payload(&[0xFF]), Err(WireError::UnsupportedTag { tag: 0xFF }));
        // Every implemented tag stays decodable (if only to a Malformed
        // complaint about the truncated body, never UnsupportedTag).
        for tag in [TAG_REQUEST, TAG_RESPONSE, TAG_ERROR, TAG_GENERATE, TAG_GENERATED] {
            assert!(
                matches!(Frame::decode_payload(&[tag]), Err(WireError::Malformed { .. })),
                "tag 0x{tag:02x} should be known"
            );
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        // Empty payload.
        assert!(Frame::decode_payload(&[]).is_err());
        // Truncated request: claims 4 tokens, carries none.
        let mut bad =
            Frame::Request { corr: 1, model: "m".into(), tokens: vec![] }.encode_payload();
        let len = bad.len();
        bad[len - 4..].copy_from_slice(&4u32.to_le_bytes());
        assert!(Frame::decode_payload(&bad).is_err());
        // Trailing garbage after a valid frame.
        let mut ok =
            Frame::Request { corr: 1, model: "m".into(), tokens: vec![3] }.encode_payload();
        ok.push(0xFF);
        assert!(matches!(
            Frame::decode_payload(&ok),
            Err(WireError::Malformed { detail: "trailing bytes" })
        ));
        // Invalid UTF-8 model name.
        let mut bad_name =
            Frame::Request { corr: 1, model: "mm".into(), tokens: vec![] }.encode_payload();
        bad_name[11] = 0xFF; // first name byte (tag 1 + corr 8 + len 2)
        assert!(matches!(
            Frame::decode_payload(&bad_name),
            Err(WireError::Malformed { detail: "model name utf-8" })
        ));
        // An out-of-range eos flag on a Generate frame.
        let mut bad_gen = Frame::Generate {
            corr: 1,
            model: "m".into(),
            prompt: vec![2],
            max_tokens: 3,
            eos: None,
        }
        .encode_payload();
        bad_gen[16] = 7; // eos flag (tag 1 + corr 8 + len 2 + name 1 + max_tokens 4)
        assert!(matches!(
            Frame::decode_payload(&bad_gen),
            Err(WireError::Malformed { detail: "eos flag" })
        ));
        // An out-of-range done flag on a Generated frame.
        let mut bad_done =
            Frame::Generated { corr: 1, index: 0, token: 3, summary: None }.encode_payload();
        let flag = bad_done.len() - 1;
        bad_done[flag] = 2;
        assert!(matches!(
            Frame::decode_payload(&bad_done),
            Err(WireError::Malformed { detail: "done flag" })
        ));
    }

    #[test]
    fn oversized_frames_bounce_before_allocation() {
        // A 4 GiB-ish length prefix must be rejected from the 4 length
        // bytes alone.
        let mut stream: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
        match read_frame(&mut stream, 1024) {
            Err(ReadFrameError::Wire(WireError::FrameTooLarge { declared, max })) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        // Writing an over-limit frame is refused client-side too.
        let frame = Frame::Request { corr: 1, model: "m".into(), tokens: vec![0; 100] };
        let mut out = Vec::new();
        assert!(write_frame(&mut out, &frame, 16).is_err());
        assert!(out.is_empty(), "nothing may hit the wire for a refused frame");
    }

    #[test]
    fn truncation_is_distinguished_from_clean_eof() {
        // Clean EOF at a frame boundary.
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty, 1024), Ok(None)));
        // EOF inside the length prefix.
        let mut partial: &[u8] = &[3, 0];
        assert!(matches!(
            read_frame(&mut partial, 1024),
            Err(ReadFrameError::Wire(WireError::Truncated))
        ));
        // EOF inside the payload.
        let frame = Frame::Request { corr: 9, model: "m".into(), tokens: vec![1, 2] };
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame, 1024).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 1024),
            Err(ReadFrameError::Wire(WireError::Truncated))
        ));
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            WireErrorCode::UnknownModel,
            WireErrorCode::QueueFull,
            WireErrorCode::QuotaExceeded,
            WireErrorCode::EmptySequence,
            WireErrorCode::SequenceTooLong,
            WireErrorCode::TokenOutOfVocab,
            WireErrorCode::ShuttingDown,
            WireErrorCode::MalformedFrame,
            WireErrorCode::FrameTooLarge,
            WireErrorCode::UnsupportedKind,
            WireErrorCode::DecodeUnsupported,
        ] {
            assert_eq!(WireErrorCode::from_u16(code as u16), Some(code));
        }
        assert_eq!(WireErrorCode::from_u16(0), None);
        assert_eq!(WireErrorCode::from_u16(999), None);
    }
}
