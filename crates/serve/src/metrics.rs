//! Serving observability: lock-free counters, a log-scale latency
//! histogram, and a plain-text dump.
//!
//! Everything is atomics so the hot path (workers completing requests,
//! clients submitting) never serializes on a metrics lock. Percentiles
//! come from a log₂ histogram with four sub-buckets per octave
//! (~12.5% resolution), which is plenty for a serving baseline and costs
//! a fixed 256 × 8 bytes.
//!
//! The multi-model engine keeps one [`Metrics`] per registered model
//! plus one aggregate; every event is recorded into both, so each
//! per-model counter column sums exactly to the aggregate.
//! [`ServeReport`] snapshots the whole family.

use mokey_transformer::exec::{PackStats, QuantizedStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const BUCKETS: usize = 256;

/// Fixed-size log-scale histogram of durations.
///
/// Bucket resolution is one quarter-octave: values in `[2^k, 2^(k+1))`
/// microseconds land in one of four sub-buckets, so a reported quantile
/// is within ~12.5% of the true value.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    fn bucket_of(micros: u64) -> usize {
        if micros == 0 {
            return 0;
        }
        let octave = 63 - u64::leading_zeros(micros) as usize;
        let quarter = match octave {
            0 => 0,
            1 => ((micros & 1) << 1) as usize,
            _ => ((micros >> (octave - 2)) & 0b11) as usize,
        };
        (1 + octave * 4 + quarter).min(BUCKETS - 1)
    }

    /// The duration a bucket index represents (its sub-bucket midpoint).
    fn representative(bucket: usize) -> Duration {
        if bucket == 0 {
            return Duration::ZERO;
        }
        let octave = (bucket - 1) / 4;
        let quarter = (bucket - 1) % 4;
        let micros = (1u64 << octave) as f64 * (1.0 + (quarter as f64 + 0.5) / 4.0);
        Duration::from_nanos((micros * 1e3) as u64)
    }

    /// Records one observation.
    pub fn record(&self, d: Duration) {
        let micros = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean observation (zero when empty).
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed) / n)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), within one sub-bucket of the
    /// true value; zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return Self::representative(i);
            }
        }
        Self::representative(BUCKETS - 1)
    }
}

/// Live engine counters, shared by reference between clients and workers.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    submitted: AtomicU64,
    rejected_full: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_invalid: AtomicU64,
    completed: AtomicU64,
    batches_formed: AtomicU64,
    batched_requests: AtomicU64,
    max_batch_size: AtomicU64,
    packed_batches: AtomicU64,
    packed_requests: AtomicU64,
    solo_requests: AtomicU64,
    pad_rows: AtomicU64,
    packed_rows: AtomicU64,
    act_values: AtomicU64,
    act_outliers: AtomicU64,
    generated_tokens: AtomicU64,
    decode_steps: AtomicU64,
    /// End-to-end latency: submission → response sent.
    pub latency: LatencyHistogram,
    /// Queue wait: submission → batch formed.
    pub queue_wait: LatencyHistogram,
    /// Per-generated-token latency: the gap between consecutive sampled
    /// tokens of a generation (the first observation is time-to-first-
    /// token: accept → first sample, including prefill).
    pub per_token: LatencyHistogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh counters; `started` anchors the rate calculations.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            rejected_quota: AtomicU64::new(0),
            rejected_invalid: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            batches_formed: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            max_batch_size: AtomicU64::new(0),
            packed_batches: AtomicU64::new(0),
            packed_requests: AtomicU64::new(0),
            solo_requests: AtomicU64::new(0),
            pad_rows: AtomicU64::new(0),
            packed_rows: AtomicU64::new(0),
            act_values: AtomicU64::new(0),
            act_outliers: AtomicU64::new(0),
            generated_tokens: AtomicU64::new(0),
            decode_steps: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            queue_wait: LatencyHistogram::new(),
            per_token: LatencyHistogram::new(),
        }
    }

    /// Accounts an accepted request.
    pub fn note_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts a request bounced by admission control (queue full).
    pub fn note_rejected_full(&self) {
        self.rejected_full.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts a request shed by its model's admission quota.
    pub fn note_rejected_quota(&self) {
        self.rejected_quota.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts a request bounced by validation.
    pub fn note_rejected_invalid(&self) {
        self.rejected_invalid.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one formed batch and its size.
    pub fn note_batch(&self, size: usize) {
        self.batches_formed.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch_size.fetch_max(size as u64, Ordering::Relaxed);
    }

    /// Accounts how one batch executed: packed groups vs solo fallbacks,
    /// and the padding rows the packs carried.
    pub fn note_packing(&self, packing: &PackStats) {
        self.packed_batches.fetch_add(packing.packed_batches as u64, Ordering::Relaxed);
        self.packed_requests.fetch_add(packing.packed_requests as u64, Ordering::Relaxed);
        self.solo_requests.fetch_add(packing.solo_requests as u64, Ordering::Relaxed);
        self.pad_rows.fetch_add(packing.pad_rows as u64, Ordering::Relaxed);
        self.packed_rows.fetch_add(packing.packed_rows as u64, Ordering::Relaxed);
    }

    /// Accounts one decode slice: a worker pass that advanced a batch of
    /// in-flight generations one token each. Decode slices are *not*
    /// [`Metrics::note_batch`] batches — a generation flows through many
    /// slices but completes once, so counting slices as batches would
    /// corrupt `mean_batch_size`.
    pub fn note_decode_step(&self) {
        self.decode_steps.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one greedily sampled token and its per-token latency
    /// (gap since the generation's previous token; time-to-first-token
    /// for the first).
    pub fn note_generated(&self, inter_token: Duration) {
        self.generated_tokens.fetch_add(1, Ordering::Relaxed);
        self.per_token.record(inter_token);
    }

    /// Accounts one completed request.
    pub fn note_completed(&self, latency: Duration, queue_wait: Duration, stats: &QuantizedStats) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.act_values.fetch_add(stats.act_values as u64, Ordering::Relaxed);
        self.act_outliers.fetch_add(stats.act_outliers as u64, Ordering::Relaxed);
        self.latency.record(latency);
        self.queue_wait.record(queue_wait);
    }

    /// Consistent point-in-time snapshot for reporting.
    pub fn snapshot(&self, peak_queue_depth: usize) -> MetricsReport {
        let elapsed = self.started.elapsed();
        let secs = elapsed.as_secs_f64().max(1e-9);
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches_formed.load(Ordering::Relaxed);
        let act_values = self.act_values.load(Ordering::Relaxed);
        let pad_rows = self.pad_rows.load(Ordering::Relaxed);
        let packed_rows = self.packed_rows.load(Ordering::Relaxed);
        let generated_tokens = self.generated_tokens.load(Ordering::Relaxed);
        MetricsReport {
            elapsed,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            rejected_quota: self.rejected_quota.load(Ordering::Relaxed),
            rejected_invalid: self.rejected_invalid.load(Ordering::Relaxed),
            batches_formed: batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                self.batched_requests.load(Ordering::Relaxed) as f64 / batches as f64
            },
            max_batch_size: self.max_batch_size.load(Ordering::Relaxed),
            packed_batches: self.packed_batches.load(Ordering::Relaxed),
            packed_requests: self.packed_requests.load(Ordering::Relaxed),
            solo_requests: self.solo_requests.load(Ordering::Relaxed),
            pad_waste: if packed_rows == 0 { 0.0 } else { pad_rows as f64 / packed_rows as f64 },
            peak_queue_depth,
            requests_per_sec: completed as f64 / secs,
            act_values,
            act_outliers: self.act_outliers.load(Ordering::Relaxed),
            values_per_sec: act_values as f64 / secs,
            generated_tokens,
            decode_steps: self.decode_steps.load(Ordering::Relaxed),
            tokens_per_sec: generated_tokens as f64 / secs,
            per_token_p50: self.per_token.quantile(0.50),
            per_token_p99: self.per_token.quantile(0.99),
            latency_mean: self.latency.mean(),
            latency_p50: self.latency.quantile(0.50),
            latency_p90: self.latency.quantile(0.90),
            latency_p99: self.latency.quantile(0.99),
            queue_wait_p50: self.queue_wait.quantile(0.50),
            queue_wait_p99: self.queue_wait.quantile(0.99),
        }
    }
}

/// Everything the engine can tell you about one serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsReport {
    /// Wall-clock time since the engine started.
    pub elapsed: Duration,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests bounced by admission control (queue full).
    pub rejected_full: u64,
    /// Requests shed by a model's admission quota
    /// ([`ModelServeConfig::queue_quota`](crate::ModelServeConfig)).
    pub rejected_quota: u64,
    /// Requests bounced by validation (OOV token / over-long sequence).
    pub rejected_invalid: u64,
    /// Batches the dynamic batcher formed.
    pub batches_formed: u64,
    /// Mean formed-batch size (one-shot requests batched /
    /// `batches_formed`; decode slices and completed generations do not
    /// participate).
    pub mean_batch_size: f64,
    /// Largest batch formed.
    pub max_batch_size: u64,
    /// Packed tensor-level groups executed (one tall GEMM per projection
    /// each).
    pub packed_batches: u64,
    /// Requests served inside packed groups.
    pub packed_requests: u64,
    /// Requests that fell back to the per-request loop.
    pub solo_requests: u64,
    /// Fraction of packed rows that were padding (0.0 when nothing
    /// packed).
    pub pad_waste: f64,
    /// High-water mark of the submission-queue depth.
    pub peak_queue_depth: usize,
    /// Completed requests per second of engine lifetime.
    pub requests_per_sec: f64,
    /// Activation values encoded through the dictionaries.
    pub act_values: u64,
    /// Of those, outlier-dictionary hits.
    pub act_outliers: u64,
    /// Activation values encoded per second of engine lifetime.
    pub values_per_sec: f64,
    /// Tokens greedily sampled by in-flight generations.
    pub generated_tokens: u64,
    /// Decode slices: worker passes that advanced a batch of generations
    /// one token each (a generation spans many slices; `generated_tokens
    /// / decode_steps` is the mean decode batch width).
    pub decode_steps: u64,
    /// Generated tokens per second of engine lifetime.
    pub tokens_per_sec: f64,
    /// Median per-generated-token latency (inter-token gap; the first
    /// token's observation is time-to-first-token).
    pub per_token_p50: Duration,
    /// 99th-percentile per-generated-token latency.
    pub per_token_p99: Duration,
    /// Mean end-to-end request latency.
    pub latency_mean: Duration,
    /// Median end-to-end request latency.
    pub latency_p50: Duration,
    /// 90th-percentile end-to-end request latency.
    pub latency_p90: Duration,
    /// 99th-percentile end-to-end request latency.
    pub latency_p99: Duration,
    /// Median submission → batch-formed wait.
    pub queue_wait_p50: Duration,
    /// 99th-percentile submission → batch-formed wait.
    pub queue_wait_p99: Duration,
}

impl MetricsReport {
    /// Plain-text dump of every field, one per line.
    pub fn dump(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        format!(
            "serving metrics ({:.3} s)\n\
             \x20 requests   : {} submitted, {} completed, {} rejected (full), {} shed (quota), {} rejected (invalid)\n\
             \x20 batching   : {} batches, mean size {:.2}, max size {}, peak queue depth {}\n\
             \x20 packing    : {} packed batches ({} requests packed, {} solo), pad waste {:.2}%\n\
             \x20 throughput : {:.1} requests/s, {:.3e} act values/s ({} values, {:.2}% outliers)\n\
             \x20 decode     : {} tokens in {} slices, {:.1} tokens/s, per-token p50 {:.3} ms / p99 {:.3} ms\n\
             \x20 latency    : mean {:.3} ms, p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms\n\
             \x20 queue wait : p50 {:.3} ms, p99 {:.3} ms",
            self.elapsed.as_secs_f64(),
            self.submitted,
            self.completed,
            self.rejected_full,
            self.rejected_quota,
            self.rejected_invalid,
            self.batches_formed,
            self.mean_batch_size,
            self.max_batch_size,
            self.peak_queue_depth,
            self.packed_batches,
            self.packed_requests,
            self.solo_requests,
            100.0 * self.pad_waste,
            self.requests_per_sec,
            self.values_per_sec,
            self.act_values,
            if self.act_values == 0 {
                0.0
            } else {
                100.0 * self.act_outliers as f64 / self.act_values as f64
            },
            self.generated_tokens,
            self.decode_steps,
            self.tokens_per_sec,
            ms(self.per_token_p50),
            ms(self.per_token_p99),
            ms(self.latency_mean),
            ms(self.latency_p50),
            ms(self.latency_p90),
            ms(self.latency_p99),
            ms(self.queue_wait_p50),
            ms(self.queue_wait_p99),
        )
    }
}

/// Snapshot of a multi-model serving run: the aggregate engine report
/// plus one report per registered model (in registration order). Counter
/// columns (`submitted`, `completed`, `batches_formed`, `act_values`, …)
/// sum across models to the aggregate, because the engine records every
/// event into both scopes; derived columns (rates, quantiles,
/// `max_batch_size`) do not sum.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The whole-engine report (what single-model [`serve`](crate::serve)
    /// returns).
    pub aggregate: MetricsReport,
    /// Per-model `(name, report)` pairs, in registration order.
    pub per_model: Vec<(String, MetricsReport)>,
}

impl ServeReport {
    /// The report for a registered model name, if present.
    pub fn model(&self, name: &str) -> Option<&MetricsReport> {
        self.per_model.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }

    /// Plain-text dump: the aggregate, then per-model one-line summaries.
    pub fn dump(&self) -> String {
        let mut out = self.aggregate.dump();
        for (name, r) in &self.per_model {
            out.push_str(&format!(
                "\n  [{name}] {} submitted, {} completed, {:.1} req/s, {} batches \
                 (mean {:.2}), p99 {:.3} ms",
                r.submitted,
                r.completed,
                r.requests_per_sec,
                r.batches_formed,
                r.mean_batch_size,
                r.latency_p99.as_secs_f64() * 1e3,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_report_resolves_models_and_dumps_per_model_lines() {
        let m = Metrics::new();
        m.note_submitted();
        m.note_completed(
            Duration::from_micros(300),
            Duration::from_micros(30),
            &QuantizedStats { act_values: 10, act_outliers: 1, ..Default::default() },
        );
        let report = ServeReport {
            aggregate: m.snapshot(1),
            per_model: vec![("sentiment".into(), m.snapshot(1)), ("topic".into(), m.snapshot(1))],
        };
        assert_eq!(report.model("topic").unwrap().submitted, 1);
        assert!(report.model("absent").is_none());
        let text = report.dump();
        assert!(text.contains("[sentiment]"), "missing per-model line in {text}");
        assert!(text.contains("[topic]"));
    }

    #[test]
    fn histogram_quantiles_track_recorded_scale() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(80));
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        assert!(
            p50 >= Duration::from_micros(80) && p50 <= Duration::from_micros(130),
            "p50 {p50:?}"
        );
        let p99 = h.quantile(0.99);
        assert!(p99 <= Duration::from_micros(130), "p99 {p99:?}");
        // The tail observation dominates the max quantile.
        let p100 = h.quantile(1.0);
        assert!(p100 >= Duration::from_millis(60), "p100 {p100:?}");
        // The mean is exact, not bucketed.
        let mean = h.mean();
        assert!(
            mean >= Duration::from_micros(890) && mean <= Duration::from_micros(910),
            "mean {mean:?}"
        );
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn bucket_round_trip_is_within_one_subbucket() {
        for micros in [1u64, 3, 7, 10, 100, 1_000, 65_537, 1_000_000] {
            let rep = LatencyHistogram::representative(LatencyHistogram::bucket_of(micros));
            let rep_us = rep.as_secs_f64() * 1e6;
            let ratio = rep_us / micros as f64;
            assert!((0.8..=1.4).contains(&ratio), "{micros} µs → {rep_us} µs");
        }
    }

    #[test]
    fn snapshot_derives_rates_and_batch_means() {
        let m = Metrics::new();
        for _ in 0..6 {
            m.note_submitted();
        }
        m.note_rejected_full();
        m.note_batch(4);
        m.note_batch(2);
        m.note_packing(&PackStats {
            packed_batches: 1,
            packed_requests: 4,
            solo_requests: 2,
            pad_rows: 8,
            packed_rows: 64,
        });
        let stats = QuantizedStats { act_values: 100, act_outliers: 3, ..Default::default() };
        for _ in 0..6 {
            m.note_completed(Duration::from_micros(500), Duration::from_micros(50), &stats);
        }
        let report = m.snapshot(5);
        assert_eq!(report.submitted, 6);
        assert_eq!(report.completed, 6);
        assert_eq!(report.rejected_full, 1);
        assert_eq!(report.batches_formed, 2);
        assert!((report.mean_batch_size - 3.0).abs() < 1e-9);
        assert_eq!(report.max_batch_size, 4);
        assert_eq!(report.peak_queue_depth, 5);
        assert_eq!(report.packed_batches, 1);
        assert_eq!(report.packed_requests, 4);
        assert_eq!(report.solo_requests, 2);
        assert!((report.pad_waste - 0.125).abs() < 1e-9);
        assert_eq!(report.act_values, 600);
        assert_eq!(report.act_outliers, 18);
        assert!(report.requests_per_sec > 0.0);
        let text = report.dump();
        for needle in
            ["requests", "batching", "packing", "throughput", "decode", "latency", "queue wait"]
        {
            assert!(text.contains(needle), "missing {needle:?} in {text}");
        }
    }

    #[test]
    fn decode_counters_roll_up_into_token_rates() {
        let m = Metrics::new();
        // Two slices: one advancing three generations, one advancing one.
        m.note_decode_step();
        for _ in 0..3 {
            m.note_generated(Duration::from_micros(200));
        }
        m.note_decode_step();
        m.note_generated(Duration::from_millis(4));
        let report = m.snapshot(0);
        assert_eq!(report.generated_tokens, 4);
        assert_eq!(report.decode_steps, 2);
        assert!(report.tokens_per_sec > 0.0);
        assert!(report.per_token_p50 <= Duration::from_micros(300), "{:?}", report.per_token_p50);
        assert!(report.per_token_p99 >= Duration::from_millis(3), "{:?}", report.per_token_p99);
        // Decode slices are not batches: mean_batch_size stays untouched.
        assert_eq!(report.batches_formed, 0);
    }
}
