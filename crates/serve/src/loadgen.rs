//! Deterministic seeded load generation for tests, benches, and the
//! serving example.
//!
//! Requests are in-vocabulary token sequences with lengths drawn
//! uniformly from a configurable band — the same seed always produces
//! the same traffic, so load tests can pin exact outputs.

use mokey_transformer::Model;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded generator of valid inference requests for one model.
#[derive(Debug)]
pub struct LoadGen {
    rng: StdRng,
    vocab: usize,
    min_len: usize,
    max_len: usize,
}

impl LoadGen {
    /// A generator for `model`'s vocabulary, with request lengths in
    /// `8 ..= min(32, max_seq)` by default.
    pub fn new(model: &Model, seed: u64) -> Self {
        let max_seq = model.config().max_seq;
        Self {
            rng: StdRng::seed_from_u64(seed),
            vocab: model.config().vocab,
            min_len: 8.min(max_seq),
            max_len: 32.min(max_seq),
        }
    }

    /// Overrides the request-length band (clamped to be non-empty).
    pub fn with_lengths(mut self, min_len: usize, max_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self.max_len = max_len.max(self.min_len);
        self
    }

    /// The next request in the deterministic stream.
    pub fn next_request(&mut self) -> Vec<usize> {
        let len = self.rng.gen_range(self.min_len..=self.max_len);
        (0..len).map(|_| self.rng.gen_range(0..self.vocab)).collect()
    }

    /// The next `n` requests.
    pub fn requests(&mut self, n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|_| self.next_request()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mokey_transformer::{Head, ModelConfig};

    fn model() -> Model {
        let config = ModelConfig {
            name: "loadgen-test".into(),
            layers: 1,
            hidden: 32,
            heads: 2,
            ff: 64,
            vocab: 100,
            max_seq: 20,
        };
        Model::synthesize(&config, Head::Classification { classes: 3 }, 5)
    }

    #[test]
    fn same_seed_same_traffic() {
        let m = model();
        let a = LoadGen::new(&m, 7).requests(20);
        let b = LoadGen::new(&m, 7).requests(20);
        assert_eq!(a, b);
        let c = LoadGen::new(&m, 8).requests(20);
        assert_ne!(a, c);
    }

    #[test]
    fn requests_are_always_admissible() {
        let m = model();
        let mut gen = LoadGen::new(&m, 11);
        for tokens in gen.requests(200) {
            assert!(tokens.len() >= 8 && tokens.len() <= 20, "length {}", tokens.len());
            assert!(tokens.iter().all(|&t| t < 100));
        }
    }

    #[test]
    fn length_band_is_configurable() {
        let m = model();
        let mut gen = LoadGen::new(&m, 3).with_lengths(4, 4);
        for tokens in gen.requests(50) {
            assert_eq!(tokens.len(), 4);
        }
    }
}
