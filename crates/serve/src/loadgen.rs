//! Deterministic seeded load generation for tests, benches, and the
//! serving example.
//!
//! Requests are in-vocabulary token sequences with lengths drawn
//! uniformly from a configurable band — the same seed always produces
//! the same traffic, so load tests can pin exact outputs.
//!
//! [`drive_socket_clients`] extends the same seeded streams over the
//! wire: N client threads, each with its own TCP connection, pipelining
//! its stream through the [wire protocol](crate::wire) and recording
//! exact per-request latencies.

use crate::wire::{NetClient, ServerReply};
use mokey_transformer::Model;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::time::{Duration, Instant};

/// Seeded generator of valid inference requests for one model.
#[derive(Debug)]
pub struct LoadGen {
    rng: StdRng,
    vocab: usize,
    max_seq: usize,
    min_len: usize,
    max_len: usize,
}

impl LoadGen {
    /// A generator for `model`'s vocabulary, with request lengths in
    /// `8 ..= min(32, max_seq)` by default.
    pub fn new(model: &Model, seed: u64) -> Self {
        let max_seq = model.config().max_seq;
        Self {
            rng: StdRng::seed_from_u64(seed),
            vocab: model.config().vocab,
            max_seq,
            min_len: 8.min(max_seq),
            max_len: 32.min(max_seq),
        }
    }

    /// Overrides the request-length band (clamped to be non-empty).
    pub fn with_lengths(mut self, min_len: usize, max_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self.max_len = max_len.max(self.min_len);
        self
    }

    /// The next request in the deterministic stream.
    pub fn next_request(&mut self) -> Vec<usize> {
        let len = self.rng.gen_range(self.min_len..=self.max_len);
        (0..len).map(|_| self.rng.gen_range(0..self.vocab)).collect()
    }

    /// The next `n` requests.
    pub fn requests(&mut self, n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|_| self.next_request()).collect()
    }

    /// The next decode request in the deterministic stream: a prompt
    /// from the configured length band plus a new-token budget of up to
    /// `max_new`, jointly clamped so the generation always fits —
    /// `prompt.len() + max_tokens <= max_seq` and `max_tokens >= 1`.
    pub fn next_generate(&mut self, max_new: usize) -> (Vec<usize>, usize) {
        // The prompt must leave room for at least one generated token.
        let cap = self.max_len.min(self.max_seq.saturating_sub(1)).max(1);
        let floor = self.min_len.clamp(1, cap);
        let len = self.rng.gen_range(floor..=cap);
        let prompt = (0..len).map(|_| self.rng.gen_range(0..self.vocab)).collect();
        let max_tokens = max_new.clamp(1, self.max_seq - len);
        (prompt, max_tokens)
    }

    /// The next `n` decode requests.
    pub fn generates(&mut self, n: usize, max_new: usize) -> Vec<(Vec<usize>, usize)> {
        (0..n).map(|_| self.next_generate(max_new)).collect()
    }
}

/// One socket client's load summary.
#[derive(Debug, Clone)]
pub struct SocketConnectionReport {
    /// Requests answered with a response frame.
    pub completed: u64,
    /// Requests answered with an error frame.
    pub rejected: u64,
    /// Median round-trip latency (client-observed, exact).
    pub latency_p50: Duration,
    /// 99th-percentile round-trip latency (client-observed, exact).
    pub latency_p99: Duration,
}

/// Aggregate summary of a [`drive_socket_clients`] run.
#[derive(Debug, Clone)]
pub struct SocketLoadReport {
    /// Client connections driven.
    pub clients: usize,
    /// Requests answered with a response frame, all clients.
    pub completed: u64,
    /// Requests answered with an error frame, all clients.
    pub rejected: u64,
    /// Wall-clock time from first send to last reply.
    pub elapsed: Duration,
    /// `(completed + rejected) / elapsed`.
    pub requests_per_sec: f64,
    /// Median round-trip latency across every request (exact, not
    /// bucketed).
    pub latency_p50: Duration,
    /// 99th-percentile round-trip latency across every request.
    pub latency_p99: Duration,
    /// Per-connection summaries, in client order.
    pub per_connection: Vec<SocketConnectionReport>,
}

/// Exact quantile over unsorted samples (nearest-rank). Zero when empty.
fn exact_quantile(samples: &mut [Duration], q: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    let rank = ((q.clamp(0.0, 1.0) * samples.len() as f64).ceil() as usize).max(1);
    samples[rank - 1]
}

/// Drives `clients` concurrent socket connections against a serving
/// frontend at `addr`, each pipelining `per_client` seeded requests for
/// `model_name` (send-all-then-receive-all, matching replies by
/// correlation id), and reports exact client-observed latency
/// percentiles per connection and overall.
///
/// Traffic is deterministic: client `c` draws from seed
/// `base_seed + c`, so the same call always produces the same request
/// stream.
///
/// # Errors
///
/// Propagates the first connection or transport failure (a rejected
/// *request* is not an error — it is counted in `rejected`).
pub fn drive_socket_clients(
    addr: &str,
    model: &Model,
    model_name: &str,
    clients: usize,
    per_client: usize,
    base_seed: u64,
) -> io::Result<SocketLoadReport> {
    let started = Instant::now();
    let outcomes: Vec<io::Result<(u64, u64, Vec<Duration>)>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr)?;
                    let requests = LoadGen::new(model, base_seed + c as u64).requests(per_client);
                    // Pipelining: every request goes out before the
                    // first reply is read, so the server's batcher sees
                    // real concurrent depth per connection.
                    let mut sent_at = vec![Instant::now(); per_client];
                    for (i, tokens) in requests.iter().enumerate() {
                        sent_at[i] = Instant::now();
                        client.send(1 + i as u64, model_name, tokens)?;
                    }
                    let mut latencies = vec![Duration::ZERO; per_client];
                    let mut completed = 0u64;
                    let mut rejected = 0u64;
                    for _ in 0..per_client {
                        let (corr, reply) = client.recv()?;
                        let index = (corr as usize)
                            .checked_sub(1)
                            .filter(|&i| i < per_client)
                            .ok_or_else(|| {
                                io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!("reply for unknown corr id {corr}"),
                                )
                            })?;
                        latencies[index] = sent_at[index].elapsed();
                        match reply {
                            ServerReply::Response { .. } => completed += 1,
                            ServerReply::Rejected { .. } => rejected += 1,
                        }
                    }
                    Ok((completed, rejected, latencies))
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("socket client panicked")).collect()
    });
    let elapsed = started.elapsed();

    let mut per_connection = Vec::with_capacity(clients);
    let mut all_latencies = Vec::new();
    let mut completed = 0u64;
    let mut rejected = 0u64;
    for outcome in outcomes {
        let (c, r, mut latencies) = outcome?;
        completed += c;
        rejected += r;
        per_connection.push(SocketConnectionReport {
            completed: c,
            rejected: r,
            latency_p50: exact_quantile(&mut latencies, 0.50),
            latency_p99: exact_quantile(&mut latencies, 0.99),
        });
        all_latencies.extend_from_slice(&latencies);
    }
    let answered = completed + rejected;
    Ok(SocketLoadReport {
        clients,
        completed,
        rejected,
        elapsed,
        requests_per_sec: answered as f64 / elapsed.as_secs_f64().max(1e-9),
        latency_p50: exact_quantile(&mut all_latencies, 0.50),
        latency_p99: exact_quantile(&mut all_latencies, 0.99),
        per_connection,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mokey_transformer::{Head, ModelConfig};

    fn model() -> Model {
        let config = ModelConfig {
            name: "loadgen-test".into(),
            layers: 1,
            hidden: 32,
            heads: 2,
            ff: 64,
            vocab: 100,
            max_seq: 20,
        };
        Model::synthesize(&config, Head::Classification { classes: 3 }, 5)
    }

    #[test]
    fn same_seed_same_traffic() {
        let m = model();
        let a = LoadGen::new(&m, 7).requests(20);
        let b = LoadGen::new(&m, 7).requests(20);
        assert_eq!(a, b);
        let c = LoadGen::new(&m, 8).requests(20);
        assert_ne!(a, c);
    }

    #[test]
    fn requests_are_always_admissible() {
        let m = model();
        let mut gen = LoadGen::new(&m, 11);
        for tokens in gen.requests(200) {
            assert!(tokens.len() >= 8 && tokens.len() <= 20, "length {}", tokens.len());
            assert!(tokens.iter().all(|&t| t < 100));
        }
    }

    #[test]
    fn decode_requests_always_fit_the_sequence_budget() {
        let m = model();
        let mut gen = LoadGen::new(&m, 23);
        for (prompt, max_tokens) in gen.generates(200, 64) {
            assert!(!prompt.is_empty());
            assert!(max_tokens >= 1);
            assert!(
                prompt.len() + max_tokens <= 20,
                "over budget: {} + {max_tokens}",
                prompt.len()
            );
            assert!(prompt.iter().all(|&t| t < 100));
        }
        // Deterministic like the one-shot stream.
        let a = LoadGen::new(&m, 23).generates(20, 8);
        let b = LoadGen::new(&m, 23).generates(20, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn length_band_is_configurable() {
        let m = model();
        let mut gen = LoadGen::new(&m, 3).with_lengths(4, 4);
        for tokens in gen.requests(50) {
            assert_eq!(tokens.len(), 4);
        }
    }
}
