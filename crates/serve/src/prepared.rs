//! [`PreparedModel`]: a model quantized **once** and then shared
//! read-only by every serving worker.
//!
//! `mokey_transformer::QuantizedModel` borrows the model it wraps, which
//! is the right shape for one-shot evaluation but not for a long-lived
//! engine; `PreparedModel` owns both halves (the FP model for the
//! forward-pass structure, the `QuantizedContext` for decoded centroid
//! weights, activation dictionaries, and output formats), so it can be
//! handed to a worker pool, stored behind an `Arc`, or kept for the
//! process lifetime. Thread-safety is pinned at compile time below.

use mokey_pipeline::{PipelineError, QuantSession, QuantizationReport, QuantizeSpec};
use mokey_transformer::exec::{
    BatchRun, ExecMode, QuantizedContext, QuantizedExecutor, QuantizedStats,
};
use mokey_transformer::quantize::QuantizedModel;
use mokey_transformer::{Model, TaskOutput};

/// A quantized model ready to serve concurrent inference requests.
///
/// # Example
///
/// ```
/// use mokey_serve::PreparedModel;
/// use mokey_transformer::{Head, Model, ModelConfig, QuantizeSpec};
///
/// let config = ModelConfig::bert_base().scaled(16, 16);
/// let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 1);
/// let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(12, s)).collect();
/// let prepared =
///     PreparedModel::prepare(model, QuantizeSpec::weights_and_activations(), &profile)
///         .expect("non-degenerate model");
/// let (out, stats) = prepared.infer(&prepared.model().random_tokens(12, 99));
/// assert!(stats.act_values > 0);
/// # let _ = out;
/// ```
#[derive(Debug)]
pub struct PreparedModel {
    model: Model,
    ctx: QuantizedContext,
    report: QuantizationReport,
}

// Workers share one `&PreparedModel`; a future non-Sync field (interior
// mutability, an `Rc`) must be caught at compile time, not in a data race.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PreparedModel>();
};

impl PreparedModel {
    /// Quantizes `model` through a default [`QuantSession`] (paper curve
    /// constants) and takes ownership of the result.
    ///
    /// # Errors
    ///
    /// Propagates the session's [`PipelineError`] (degenerate tensor, or
    /// activation quantization without profiling inputs).
    pub fn prepare(
        model: Model,
        spec: QuantizeSpec,
        profile_inputs: &[Vec<usize>],
    ) -> Result<Self, PipelineError> {
        let session = QuantSession::with_defaults();
        Self::prepare_with_session(&session, model, spec, profile_inputs)
    }

    /// Quantizes `model` through an existing session (shared curve,
    /// configuration, and dictionary cache), then takes ownership of both
    /// the model and the session products.
    ///
    /// # Errors
    ///
    /// Propagates the session's [`PipelineError`].
    pub fn prepare_with_session(
        session: &QuantSession,
        model: Model,
        spec: QuantizeSpec,
        profile_inputs: &[Vec<usize>],
    ) -> Result<Self, PipelineError> {
        let (qm, report) =
            QuantizedModel::prepare_with_session(session, &model, spec, profile_inputs)?;
        let ctx = qm.into_context();
        Ok(Self { model, ctx, report })
    }

    /// The owned FP model (forward-pass structure, config, tokenizer
    /// helpers).
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The quantization context (decoded centroid weights, activation
    /// dictionaries, output fixed-point formats).
    pub fn context(&self) -> &QuantizedContext {
        &self.ctx
    }

    /// The preparation-time quantization report.
    pub fn quantization_report(&self) -> &QuantizationReport {
        &self.report
    }

    /// Vocabulary size (requests with out-of-vocabulary tokens are
    /// rejected at admission).
    pub fn vocab(&self) -> usize {
        self.model.config().vocab
    }

    /// Maximum sequence length (longer requests are rejected at
    /// admission).
    pub fn max_seq(&self) -> usize {
        self.model.config().max_seq
    }

    /// Quantized inference on a single request.
    pub fn infer(&self, tokens: &[usize]) -> (TaskOutput, QuantizedStats) {
        let mut exec = QuantizedExecutor::new(&self.ctx);
        let out = self.model.infer(&mut exec, tokens);
        (out, exec.stats())
    }

    /// Quantized inference over a coalesced batch (the engine's batched
    /// path): same-length-bucketed groups run through the packed
    /// tensor-level forward pass, singletons through the per-request
    /// loop. Every output and per-request counter is bit-identical to a
    /// solo [`PreparedModel::infer`]; the returned [`BatchRun`] also
    /// reports how the batch was packed.
    pub fn infer_batch(&self, batch: &[Vec<usize>]) -> BatchRun {
        self.ctx.infer_batch(&self.model, batch)
    }

    /// [`PreparedModel::infer_batch`] with an explicit execution mode
    /// ([`ExecMode::IndexDomain`] runs the projection/FFN GEMMs on codes
    /// via pair-LUTs; outputs and counters stay bit-identical).
    pub fn infer_batch_mode(&self, batch: &[Vec<usize>], mode: ExecMode) -> BatchRun {
        self.ctx.infer_batch_mode(&self.model, batch, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mokey_transformer::{Head, ModelConfig};

    fn prepared() -> PreparedModel {
        let config = ModelConfig {
            name: "prepared-test".into(),
            layers: 1,
            hidden: 32,
            heads: 2,
            ff: 64,
            vocab: 200,
            max_seq: 24,
        };
        let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 9);
        let profile: Vec<Vec<usize>> = (0..2).map(|s| model.random_tokens(12, 70 + s)).collect();
        PreparedModel::prepare(model, QuantizeSpec::weights_and_activations(), &profile)
            .expect("non-degenerate model")
    }

    #[test]
    fn prepared_model_matches_borrowing_quantized_model() {
        let p = prepared();
        let tokens = p.model().random_tokens(12, 500);
        let (via_prepared, stats) = p.infer(&tokens);
        // Same context, same model → identical outputs to the borrowing
        // wrapper it was built from.
        let mut exec = QuantizedExecutor::new(p.context());
        let direct = p.model().infer(&mut exec, &tokens);
        assert_eq!(via_prepared, direct);
        assert_eq!(stats, exec.stats());
    }

    #[test]
    fn batch_outputs_are_bit_identical_to_solo_runs() {
        let p = prepared();
        let batch: Vec<Vec<usize>> = (0..4).map(|s| p.model().random_tokens(10, 900 + s)).collect();
        let run = p.infer_batch(&batch);
        assert_eq!(run.packing.packed_requests, 4, "same-length batch should pack");
        let mut merged = QuantizedStats::default();
        for (tokens, (out, stats)) in batch.iter().zip(&run.results) {
            let (solo, solo_stats) = p.infer(tokens);
            assert_eq!(out, &solo);
            assert_eq!(stats, &solo_stats);
            merged.merge(stats);
        }
        assert_eq!(run.total, merged);
    }

    #[test]
    fn prepare_shares_a_session_cache() {
        let session =
            QuantSession::builder().parallelism(mokey_pipeline::Parallelism::Serial).build();
        let config = ModelConfig {
            name: "prepared-cache".into(),
            layers: 1,
            hidden: 32,
            heads: 2,
            ff: 64,
            vocab: 200,
            max_seq: 24,
        };
        let model = Model::synthesize(&config, Head::Classification { classes: 3 }, 9);
        let weights = model.weight_tensors().len();
        let p1 = PreparedModel::prepare_with_session(
            &session,
            model.clone(),
            QuantizeSpec::weights_only(),
            &[],
        )
        .unwrap();
        assert_eq!(session.cache_stats().misses, weights);
        let p2 =
            PreparedModel::prepare_with_session(&session, model, QuantizeSpec::weights_only(), &[])
                .unwrap();
        assert_eq!(session.cache_stats().misses, weights, "second prepare rebuilt dictionaries");
        assert_eq!(p1.context().weights, p2.context().weights);
    }
}
